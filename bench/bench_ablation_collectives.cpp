// Ablation: ring all-reduce (MPI-style) vs star gather+broadcast
// (gRPC-style) for model aggregation — the design trade-off behind the
// paper's mixed-protocol argument (§3.4.5). Reports per-aggregation wire
// volume at the bottleneck node and modeled time on a 1 Gb/s link, for
// growing cohort sizes.
//
// Expected shape: the star's server volume grows linearly with the cohort
// (2·(P−1)·model bytes through one NIC) while the ring moves a constant
// 2·model bytes per node — which is exactly why the paper aggregates
// intra-site over MPI and reserves the star for the sparse cross-site tier.
#include <cstdio>
#include <thread>

#include "comm/inproc.hpp"
#include "comm/modeled.hpp"
#include "comm/star.hpp"

namespace {

using of::comm::Communicator;
using of::comm::InProcGroup;
using of::comm::ReduceOp;
using of::tensor::Tensor;

struct Result {
  std::uint64_t max_node_bytes = 0;  // busiest node's sent+received bytes
  std::uint64_t total_bytes = 0;
};

Result run_ring(int world, std::size_t numel) {
  InProcGroup group(world);
  std::vector<std::thread> threads;
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      Tensor t = Tensor::full({numel}, static_cast<float>(r));
      group.comm(r).allreduce(t, ReduceOp::Mean);
    });
  }
  for (auto& t : threads) t.join();
  Result out;
  for (int r = 0; r < world; ++r) {
    const auto& s = group.comm(r).stats();
    out.max_node_bytes = std::max(out.max_node_bytes, s.bytes_sent + s.bytes_received);
    out.total_bytes += s.bytes_sent;
  }
  return out;
}

Result run_star(int world, std::size_t numel) {
  InProcGroup group(world);
  std::vector<std::thread> threads;
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      auto& c = group.comm(r);
      Tensor t = Tensor::full({numel}, static_cast<float>(r));
      // Star semantics: everyone ships to rank 0, rank 0 broadcasts back.
      of::comm::star::reduce(c, t, 0, ReduceOp::Mean);
      of::comm::star::broadcast(c, t, 0);
    });
  }
  for (auto& t : threads) t.join();
  Result out;
  for (int r = 0; r < world; ++r) {
    const auto& s = group.comm(r).stats();
    out.max_node_bytes = std::max(out.max_node_bytes, s.bytes_sent + s.bytes_received);
    out.total_bytes += s.bytes_sent;
  }
  return out;
}

}  // namespace

int main() {
  const std::size_t numel = 1 << 18;  // ~1 MB update (262k floats)
  const double gbps = 1e9 / 8.0;
  std::printf("\n=== Ablation: ring all-reduce vs star aggregation (1 MB update) ===\n");
  std::printf("%-8s | %-26s | %-26s\n", "", "ring (MPI-style)", "star (gRPC-style)");
  std::printf("%-8s | %12s | %11s | %12s | %11s\n", "world", "busiest KB", "t @1Gbps",
              "busiest KB", "t @1Gbps");
  std::printf("--------------------------------------------------------------------------\n");
  for (int world : {2, 4, 8, 16}) {
    const Result ring = run_ring(world, numel);
    const Result star = run_star(world, numel);
    std::printf("%-8d | %12.0f | %9.1fms | %12.0f | %9.1fms\n", world,
                ring.max_node_bytes / 1024.0,
                static_cast<double>(ring.max_node_bytes) / gbps * 1e3,
                star.max_node_bytes / 1024.0,
                static_cast<double>(star.max_node_bytes) / gbps * 1e3);
  }
  std::printf("\nring: busiest-node traffic stays ~constant; star: grows with the cohort.\n");
  return 0;
}
