// Ablation: packed vs scalar Paillier encoding, and key-size scaling —
// the design choices that make Table 3b's HE column feasible at all.
// Packing amortizes one bignum encryption across several fixed-point
// values; key size trades (toy) security for modular-arithmetic width.
#include <chrono>
#include <cstdio>

#include "privacy/paillier.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using of::privacy::BigUInt;
using of::privacy::Paillier;
using of::privacy::PaillierVector;
using of::tensor::Rng;
using of::tensor::Tensor;

double seconds(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  Rng rng(5);
  const std::size_t numel = 512;
  const Tensor update = Tensor::randn({numel}, rng, 0.0f, 0.01f);

  std::printf("\n=== Ablation: Paillier packing & key size (%zu-element update) ===\n",
              numel);
  std::printf("%-10s | %-10s | %-12s | %-12s | %-12s\n", "key bits", "values/ct",
              "encrypt (s)", "add (s)", "decrypt (s)");
  std::printf("------------------------------------------------------------------\n");
  for (const std::size_t bits : {128u, 192u, 256u, 384u}) {
    Rng keyrng(42);
    PaillierVector vec(bits, 16, keyrng);
    auto t0 = Clock::now();
    const auto ct_a = vec.encrypt(update, rng);
    const double enc = seconds(t0);
    const auto ct_b = vec.encrypt(update, rng);
    std::vector<BigUInt> acc;
    vec.accumulate(acc, ct_a);
    t0 = Clock::now();
    vec.accumulate(acc, ct_b);
    const double add = seconds(t0);
    t0 = Clock::now();
    (void)vec.decrypt_sum(acc, numel, 2);
    const double dec = seconds(t0);
    std::printf("%-10zu | %-10zu | %-12.4f | %-12.4f | %-12.4f\n", bits,
                vec.values_per_ciphertext(), enc, add, dec);
  }

  // Scalar (no packing) reference at 256 bits: one encryption per value.
  {
    Rng keyrng(42);
    const Paillier scheme = Paillier::keygen(256, keyrng);
    auto t0 = Clock::now();
    for (std::size_t i = 0; i < numel; ++i)
      (void)scheme.encrypt(BigUInt(static_cast<std::uint64_t>(i + 1)), rng);
    std::printf("%-10s | %-10d | %-12.4f | %-12s | %-12s   (scalar reference)\n",
                "256", 1, seconds(t0), "-", "-");
  }
  std::printf("\npacking cuts ciphertext count by values/ct — the difference between\n"
              "Table 3b finishing in minutes versus hours.\n");
  return 0;
}
