// Ablation: synchronous vs asynchronous (FedAsync) scheduling under
// compute heterogeneity — the straggler problem the paper raises when
// discussing synchronous-by-default frameworks (§2.2) and its
// "heterogeneity-aware computing" future-work item.
//
// One cohort member is progressively slower; both schedulers absorb the
// same number of client updates. Synchronous rounds are gated by the
// straggler; async keeps the fast clients busy and pays only a staleness
// penalty on quality.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"

namespace {

struct Outcome {
  double wall_seconds;
  float accuracy;
  double staleness;
};

Outcome run(bool async, double straggler_slowdown) {
  using of::config::ConfigNode;
  auto cfg = of::bench::experiment_config("resnet18_mini", "cifar10_like", "FedAvg",
                                          /*rounds=*/6, /*clients=*/4);
  cfg.set_path("eval_every", ConfigNode::integer(6));
  ConfigNode slowdowns = ConfigNode::list();
  for (int i = 0; i < 3; ++i) slowdowns.push_back(ConfigNode::floating(1.0));
  slowdowns.push_back(ConfigNode::floating(straggler_slowdown));
  cfg.set_path("heterogeneity.slowdowns", slowdowns);
  if (async) {
    cfg.set_path("scheduling.mode", ConfigNode::string("async"));
    cfg.set_path("scheduling.alpha", ConfigNode::floating(0.6));
  }
  of::core::Engine engine(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = engine.run();
  Outcome out;
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  out.accuracy = result.final_accuracy;
  out.staleness = result.rounds.empty() ? 0.0 : result.rounds.back().mean_staleness;
  return out;
}

}  // namespace

int main() {
  std::printf("\n=== Ablation: sync vs async scheduling under stragglers ===\n");
  std::printf("(4 clients, one progressively slower; 24 client updates total;\n"
              " ResNet18-mini / CIFAR10-like)\n\n");
  std::printf("%-10s | %-22s | %-32s\n", "", "synchronous", "asynchronous (FedAsync)");
  std::printf("%-10s | %9s | %8s | %9s | %8s | %9s\n", "slowdown", "wall s", "acc",
              "wall s", "acc", "staleness");
  std::printf("----------------------------------------------------------------------\n");
  for (const double slow : {1.0, 2.0, 4.0, 8.0}) {
    const Outcome s = run(false, slow);
    const Outcome a = run(true, slow);
    std::printf("%-10.0fx | %9.2f | %7.2f%% | %9.2f | %7.2f%% | %9.2f\n", slow,
                s.wall_seconds, s.accuracy * 100.0f, a.wall_seconds, a.accuracy * 100.0f,
                a.staleness);
    std::fflush(stdout);
  }
  std::printf("\nsync wall time scales with the straggler; async stays near-flat and\n"
              "trades a bounded staleness penalty in accuracy.\n");
  return 0;
}
