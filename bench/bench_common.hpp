// Shared helpers for the paper-reproduction bench binaries: experiment
// config builders (the four model/dataset pairings of §3.4) and table
// printing. Each bench binary regenerates one table or figure of the paper;
// EXPERIMENTS.md records the shape comparison against the published values.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "config/yaml.hpp"
#include "core/engine.hpp"

namespace of::bench {

struct Pairing {
  const char* model;
  const char* dataset;
  const char* paper_name;  // what the paper calls this column
};

// The paper's four evaluation pairings (§3.4): ResNet18/CIFAR10,
// VGG11/CIFAR100, AlexNet/Caltech101, MobileNetV3/Caltech256.
inline std::vector<Pairing> paper_pairings() {
  return {{"resnet18_mini", "cifar10_like", "ResNet18"},
          {"vgg11_mini", "cifar100_like", "VGG11"},
          {"alexnet_mini", "caltech101_like", "AlexNet"},
          {"mobilenetv3_mini", "caltech256_like", "MobileNetV3"}};
}

// Base experiment config: centralized topology, 8 clients, Dirichlet(0.5)
// non-IID split, SGD momentum 0.9 — the paper's §3.4 training setup scaled
// to a single-CPU host (see DESIGN.md §1).
inline config::ConfigNode experiment_config(const std::string& model,
                                            const std::string& dataset,
                                            const std::string& algorithm,
                                            std::size_t rounds, std::size_t clients = 8) {
  config::ConfigNode cfg = config::parse_yaml(R"(
seed: 42
topology:
  _target_: src.omnifed.topology.CentralizedTopology
  inner_comm:
    _target_: src.omnifed.communicator.TorchDistCommunicator
datamodule:
  partition: iid
  batch_size: 32
algorithm:
  local_epochs: 2
  lr: 0.1
  momentum: 0.9
  weight_decay: 1.0e-4
)");
  cfg.set_path("topology.num_clients",
               config::ConfigNode::integer(static_cast<std::int64_t>(clients)));
  cfg.set_path("model", config::ConfigNode::string(model));
  cfg.set_path("datamodule.preset", config::ConfigNode::string(dataset));
  cfg.set_path("algorithm._target_", config::ConfigNode::string(algorithm));
  cfg.set_path("algorithm.global_rounds",
               config::ConfigNode::integer(static_cast<std::int64_t>(rounds)));
  cfg.set_path("eval_every", config::ConfigNode::integer(static_cast<std::int64_t>(rounds)));
  return cfg;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n(reproduces %s of the OmniFed paper)\n", title, paper_ref);
  std::printf("================================================================\n");
}

inline void print_row_header(const std::vector<Pairing>& pairings, const char* col0) {
  std::printf("%-18s", col0);
  for (const auto& p : pairings) std::printf(" | %12s", p.paper_name);
  std::printf("\n");
  for (int i = 0; i < 18 + 4 * 15; ++i) std::printf("-");
  std::printf("\n");
}

}  // namespace of::bench
