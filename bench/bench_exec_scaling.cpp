// Scaling study for the of::exec pool (DESIGN.md §8): the same kernels and
// the same one-round federated step, swept over pool thread counts. Each
// benchmark re-configures the global pool from its Threads argument, so a
// single binary produces the serial baseline and the parallel points in one
// run. EXPERIMENTS.md records the measured scaling table — read the numbers
// together with the host core count reported by the Threads=0 sanity line;
// on a single-core container the parallel points measure pool overhead, not
// speedup.
#include <benchmark/benchmark.h>

#include <thread>

#include "core/payload.hpp"
#include "exec/pool.hpp"
#include "nn/loss.hpp"
#include "nn/zoo.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace {

using of::exec::Pool;
using of::tensor::Rng;
using of::tensor::Tensor;

// --- raw kernels -----------------------------------------------------------------

void BM_ExecMatmul(benchmark::State& state) {
  Pool::global().configure(static_cast<std::size_t>(state.range(0)));
  const std::size_t n = 192;
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(a.matmul(b).data());
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n * n * n));
  state.counters["pool_threads"] = static_cast<double>(Pool::global().threads());
  Pool::global().configure(1);
}
BENCHMARK(BM_ExecMatmul)->ArgName("Threads")->Arg(1)->Arg(2)->Arg(4);

void BM_ExecReduce(benchmark::State& state) {
  Pool::global().configure(static_cast<std::size_t>(state.range(0)));
  Rng rng(2);
  const Tensor t = Tensor::randn({1 << 20}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(t.l2_norm_squared());
  state.SetBytesProcessed(state.iterations() * (1 << 20) * 4);
  Pool::global().configure(1);
}
BENCHMARK(BM_ExecReduce)->ArgName("Threads")->Arg(1)->Arg(2)->Arg(4);

// --- aggregation (mean_updates over 8 client frames) ------------------------------

void BM_ExecAggregation(benchmark::State& state) {
  Pool::global().configure(static_cast<std::size_t>(state.range(0)));
  Rng rng(3);
  const int k = 8;
  std::vector<of::tensor::Bytes> frames;
  for (int i = 0; i < k; ++i) {
    std::vector<Tensor> payload{Tensor::randn({1 << 18}, rng)};
    frames.push_back(of::core::encode_update(payload, 1.0, {}, i, k));
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(of::core::mean_updates(frames, nullptr, nullptr));
  state.SetBytesProcessed(state.iterations() * k * (1 << 18) * 4);
  Pool::global().configure(1);
}
BENCHMARK(BM_ExecAggregation)->ArgName("Threads")->Arg(1)->Arg(2)->Arg(4);

// --- model step (fwd+bwd, the per-client inner loop) -------------------------------

void BM_ExecModelStep(benchmark::State& state) {
  Pool::global().configure(static_cast<std::size_t>(state.range(0)));
  auto model = of::nn::zoo::make_model("resnet18_mini", 64, 10, 1);
  Rng rng(4);
  const Tensor x = Tensor::randn({32, 64}, rng);
  std::vector<std::size_t> labels(32);
  for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = i % 10;
  for (auto _ : state) {
    model.zero_grad();
    const Tensor logits = model.forward(x);
    const auto lg = of::nn::softmax_cross_entropy(logits, labels);
    model.backward(lg.grad);
    benchmark::DoNotOptimize(lg.loss);
  }
  state.counters["hw_cores"] = static_cast<double>(std::thread::hardware_concurrency());
  Pool::global().configure(1);
}
BENCHMARK(BM_ExecModelStep)->ArgName("Threads")->Arg(1)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
