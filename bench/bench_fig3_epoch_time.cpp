// Figure 3: average epoch completion time per FL algorithm across the four
// models. Measures the mean wall-clock time of one round (1 local epoch)
// over a few rounds per (algorithm, model) cell.
//
// Shape expectation vs. the paper: lightweight aggregation rules (FedAvg,
// FedProx, FedBN, FedPer, FedNova) cluster together; Moon and Ditto pay for
// extra model copies/forward passes; DiLoCo pays AdamW bookkeeping.
#include <cstdlib>

#include "algorithms/algorithm.hpp"
#include "bench_common.hpp"

int main() {
  const char* env = std::getenv("OMNIFED_BENCH_ROUNDS");
  const std::size_t rounds = env ? static_cast<std::size_t>(std::atoi(env)) : 3;
  const auto pairings = of::bench::paper_pairings();
  of::bench::print_header("Figure 3 — epoch completion time per algorithm (seconds)",
                          "Figure 3");
  std::printf("(mean over %zu rounds of 1 local epoch; 8 clients sharing one CPU)\n\n",
              rounds);
  of::bench::print_row_header(pairings, "Algorithm");
  for (const auto& algo : of::algorithms::algorithm_names()) {
    std::printf("%-18s", algo.c_str());
    std::fflush(stdout);
    for (const auto& p : pairings) {
      auto cfg = of::bench::experiment_config(p.model, p.dataset, algo, rounds);
      cfg.set_path("eval_every", of::config::ConfigNode::integer(0));
      of::core::Engine engine(cfg);
      const auto result = engine.run();
      std::printf(" | %11.4fs", result.mean_round_seconds);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
