// Figure 5: compression overhead of the different techniques — the time to
// compress + exchange + decompress one model update, per codec and model.
//
// The exchange cost is modeled on the codec's wire volume over a paper-like
// cluster link; sparsifiers pay all-gather (payloads from every worker),
// quantization/low-rank pay all-reduce (constant volume), reproducing the
// collective-choice effect the paper highlights in §3.4.2. QSGD's lower
// compression factor (2–4x) makes its total overhead the largest — the
// paper's headline observation for this figure.
#include <chrono>

#include "bench_common.hpp"
#include "comm/modeled.hpp"
#include "compression/compressor.hpp"
#include "nn/zoo.hpp"

namespace {

using of::compression::Compressor;
using of::tensor::Rng;
using of::tensor::Tensor;

struct Row {
  const char* label;
  const char* target;
  const char* k = nullptr;
  int bits = 0;
  int rank = 0;
};

double measure_seconds(Compressor& codec, const Tensor& update, int world,
                       const of::comm::LinkModel& link, int iters) {
  using Clock = std::chrono::steady_clock;
  double total = 0.0;
  for (int it = 0; it < iters; ++it) {
    const auto t0 = Clock::now();
    const auto compressed = codec.compress(update);
    Tensor restored = codec.decompress(compressed);
    total += std::chrono::duration<double>(Clock::now() - t0).count();
    // Modeled wire time: all-gather moves (world-1) payloads through each
    // node, all-reduce moves 2x one payload (reduce-scatter + gather).
    const double per_payload = link.transfer_seconds(compressed.bytes());
    total += codec.allreduce_compatible()
                 ? 2.0 * per_payload
                 : static_cast<double>(world - 1) * per_payload;
  }
  return total / iters;
}

}  // namespace

int main() {
  const std::vector<Row> rows = {
      {"None (fp32)", "Identity"},
      {"TopK-10x", "TopK", "10x"},
      {"TopK-1000x", "TopK", "1000x"},
      {"DGC-10x", "DGC", "10x"},
      {"DGC-1000x", "DGC", "1000x"},
      {"RedSync-100x", "RedSync", "100x"},
      {"SIDCo-100x", "SIDCo", "100x"},
      {"RandomK-100x", "RandomK", "100x"},
      {"QSGD 8-bit", "QSGD", nullptr, 8},
      {"QSGD 16-bit", "QSGD", nullptr, 16},
      {"PowerSGD r-64", "PowerSGD", nullptr, 0, 64},
      {"PowerSGD r-32", "PowerSGD", nullptr, 0, 32},
  };
  const auto pairings = of::bench::paper_pairings();
  const int world = 8;
  const of::comm::LinkModel link{50e-6, 1e9 / 8};  // 1 Gb/s cluster Ethernet
  of::bench::print_header(
      "Figure 5 — compression + communication overhead per round (ms)",
      "Figure 5");
  std::printf("(8 workers, 1 Gb/s modeled link; allgather for sparsifiers, "
              "allreduce for dense codecs)\n\n");
  of::bench::print_row_header(pairings, "Compression");
  Rng rng(7);
  for (const auto& row : rows) {
    std::printf("%-18s", row.label);
    for (const auto& p : pairings) {
      auto model = of::nn::zoo::make_model(p.model, 64, 10, 1);
      const Tensor update = Tensor::randn({model.num_scalars()}, rng);
      using of::config::ConfigNode;
      ConfigNode cfg = ConfigNode::map();
      cfg["_target_"] = ConfigNode::string(row.target);
      if (row.k) cfg["k"] = ConfigNode::string(row.k);
      if (row.bits) cfg["bits"] = ConfigNode::integer(row.bits);
      if (row.rank) cfg["rank"] = ConfigNode::integer(row.rank);
      auto codec = of::compression::make_compressor(cfg);
      const double secs = measure_seconds(*codec, update, world, link, 5);
      std::printf(" | %11.3f", secs * 1e3);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
