// Figure 6: streaming simulation for real-time learning.
//  (a) effective stream-rate vs. target rate, single client, one producer
//  (b) effective stream-rate at target 32 while serving 1..16 concurrent
//      clients from a single producer process
//
// Shape expectation vs. the paper: the achieved rate tracks the target
// closely across the sweep, and target 32 is still met with 16 clients.
#include <thread>

#include "bench_common.hpp"
#include "streaming/consumer.hpp"
#include "streaming/producer.hpp"

namespace {

using of::streaming::Broker;
using of::streaming::RateLimitedProducer;
using of::streaming::StreamingDataLoader;
using of::tensor::Rng;
using of::tensor::Tensor;

// Produce samples at `rate` records/s/topic for `seconds`, one producer
// thread serving every topic round-robin (the paper's single-publisher
// setup); return each client's measured effective rate.
std::vector<double> run_streaming(std::size_t clients, double rate, double seconds) {
  Broker broker;
  for (std::size_t c = 0; c < clients; ++c)
    broker.create_topic("client" + std::to_string(c), 1);

  std::thread producer([&] {
    Rng rng(1);
    // A single producer process feeds all topics round-robin. The token
    // bucket gates once per full round of `clients` produces, so each topic
    // receives `rate` records/s.
    RateLimitedProducer p(broker, "client0", rate);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(seconds);
    std::size_t next = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      const auto payload =
          of::streaming::encode_sample(Tensor::randn({16}, rng), next % 4);
      if (next % clients == 0) {
        p.produce(0, next, payload);  // token-bucket gate on topic 0
      } else {
        broker.produce("client" + std::to_string(next % clients), 0, next, payload);
      }
      ++next;
    }
  });

  std::vector<double> rates(clients, 0.0);
  std::vector<std::thread> consumers;
  for (std::size_t c = 0; c < clients; ++c) {
    consumers.emplace_back([&, c] {
      StreamingDataLoader loader(broker, "client" + std::to_string(c), 1, 0, 8);
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::duration<double>(seconds);
      while (std::chrono::steady_clock::now() < deadline)
        (void)loader.next_batch(0.05);
      rates[c] = loader.effective_rate();
    });
  }
  producer.join();
  for (auto& t : consumers) t.join();
  return rates;
}

}  // namespace

int main() {
  const double window = 1.5;  // seconds per measurement
  of::bench::print_header("Figure 6a — effective stream-rate vs target (1 client)",
                          "Figure 6a");
  std::printf("%-14s | %-14s\n", "target (rec/s)", "achieved (rec/s)");
  std::printf("--------------------------------\n");
  for (const double target : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0}) {
    const auto rates = run_streaming(1, target, window);
    std::printf("%-14.0f | %-14.1f\n", target, rates[0]);
    std::fflush(stdout);
  }

  of::bench::print_header(
      "Figure 6b — per-client stream-rate at target 32 with concurrent clients",
      "Figure 6b");
  std::printf("%-10s | %-16s | %-16s\n", "clients", "mean rate (rec/s)", "min rate (rec/s)");
  std::printf("----------------------------------------------\n");
  for (const std::size_t clients : {1u, 2u, 4u, 8u, 16u}) {
    const auto rates = run_streaming(clients, 32.0, window);
    double sum = 0.0, mn = rates[0];
    for (double r : rates) {
      sum += r;
      mn = std::min(mn, r);
    }
    std::printf("%-10zu | %-16.1f | %-16.1f\n", clients,
                sum / static_cast<double>(clients), mn);
    std::fflush(stdout);
  }
  return 0;
}
