// Figure 7: cross-facility FL with mixed communication protocols.
//
// Two sites of 4 trainers each: intra-site aggregation over the MPI-style
// communicator on a fast modeled LAN (ring all-reduce semantics), cross-site
// aggregation over the gRPC-style star on a slow modeled WAN — compression
// optionally applied *only* to the outer link (paper §3.4.5, Fig. 7a's
// dashed line).
//
// Shape expectation vs. the paper (Fig. 7b): inner comm time per round is
// far below outer comm time; compressing the outer link shrinks the gap.
#include <cstdlib>

#include "bench_common.hpp"

namespace {

of::config::ConfigNode cross_facility_config(std::size_t rounds, bool compress_outer) {
  using of::config::ConfigNode;
  ConfigNode cfg = of::config::parse_yaml(R"(
seed: 42
topology:
  _target_: src.omnifed.topology.HierarchicalTopology
  groups: 2
  group_size: 4
  inner_comm:
    _target_: src.omnifed.communicator.TorchDistCommunicator
    link:
      latency_us: 50       # intra-site 10 Gb/s LAN
      bandwidth_mbps: 10000
      mode: virtual
  outer_comm:
    _target_: src.omnifed.communicator.GrpcCommunicator
    port: 48251
    link:
      latency_us: 20000    # cross-facility WAN: 20 ms, 100 Mb/s
      bandwidth_mbps: 100
      mode: virtual
model: resnet18_mini
datamodule:
  preset: cifar10_like
  partition: dirichlet
  alpha: 0.5
  batch_size: 32
algorithm:
  _target_: src.omnifed.algorithm.FedAvg
  local_epochs: 1
  lr: 0.05
  momentum: 0.9
  weight_decay: 1.0e-4
eval_every: 0
)");
  cfg.set_path("algorithm.global_rounds",
               ConfigNode::integer(static_cast<std::int64_t>(rounds)));
  if (compress_outer) {
    cfg.set_path("topology.outer_comm.compression._target_", ConfigNode::string("TopK"));
    cfg.set_path("topology.outer_comm.compression.k", ConfigNode::string("100x"));
    cfg.set_path("topology.outer_comm.compression.error_feedback",
                 ConfigNode::boolean(true));
  }
  return cfg;
}

void report(const char* label, const of::core::RunResult& r, std::size_t rounds) {
  const double per_round = static_cast<double>(rounds);
  std::printf("%-28s | %10.4f | %10.4f | %9.1f KB | %9.1f KB | %7.2f%%\n", label,
              r.inner_comm.modeled_seconds / per_round,
              r.outer_comm.modeled_seconds / per_round,
              static_cast<double>(r.inner_comm.bytes_sent) / per_round / 1024.0,
              static_cast<double>(r.outer_comm.bytes_sent) / per_round / 1024.0,
              r.final_accuracy * 100.0f);
}

}  // namespace

int main() {
  const char* env = std::getenv("OMNIFED_BENCH_ROUNDS");
  const std::size_t rounds = env ? static_cast<std::size_t>(std::atoi(env)) : 6;
  of::bench::print_header(
      "Figure 7 — cross-facility FL: inner (MPI/LAN) vs outer (gRPC/WAN) overhead",
      "Figure 7");
  std::printf("(2 sites x 4 trainers, ResNet18-mini, FedAvg, %zu rounds; modeled links:\n"
              " inner 50us/10Gbps, outer 20ms/100Mbps; times are modeled seconds/round)\n\n",
              rounds);
  std::printf("%-28s | %10s | %10s | %12s | %12s | %8s\n", "configuration", "inner s/rnd",
              "outer s/rnd", "inner vol", "outer vol", "acc");
  std::printf("---------------------------------------------------------------------------"
              "-------------\n");
  {
    of::core::Engine engine(cross_facility_config(rounds, false));
    report("uncompressed outer", engine.run(), rounds);
  }
  {
    of::core::Engine engine(cross_facility_config(rounds, true));
    report("TopK-100x outer (dashed)", engine.run(), rounds);
  }
  return 0;
}
