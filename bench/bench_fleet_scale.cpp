// Fleet-scale bench: one coordinator, 10k+ simulated clients on a single
// host. Exercises the event-loop accept path (ISSUE: thread-per-connection
// dies at this scale) and the combiner tier's O(model × combiners)
// aggregation bound: the coordinator folds every arriving update into
// StreamingSum partial accumulators instead of buffering clients × model.
//
// Clients are raw-socket drivers forked into a handful of child processes
// (the host caps fds per process, and 10k TcpCommunicator clients would
// each cost threads); the shared pre-encoded update frame makes a child's
// per-client cost one fd plus a few hundred bytes.
//
// The serving-tier sweep (of::serve, DESIGN.md §14) reuses the same raw
// drivers under the coordinator's real population registry, seeded sampler,
// and staleness buffer: fraction-fit invites instead of full broadcasts,
// FedBuff drains every `buffer_size` accepted updates, and churn injected
// at the registry (an invite "leaves" with probability `churn`, rejoining
// two drains later). Driver sockets stay connected throughout — the sweep
// measures the serving tier's bookkeeping and admission control at fleet
// scale, not TCP reconnect cost.
//
// Usage: bench_fleet_scale [clients_csv] [rounds] [combiners_csv]
//                          [serve_clients] [serve_updates]
//   defaults: 1000,4000,10000 clients, 2 rounds, 8 combiners;
//   the combiner sweep runs at the largest client count; the serve sweep
//   runs 2000 clients to 4000 accepted updates (0 disables it).
// Results land in EXPERIMENTS.md.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "comm/tcp.hpp"
#include "core/frame_pool.hpp"
#include "core/payload.hpp"
#include "net_util.hpp"
#include "serve/buffer.hpp"
#include "serve/registry.hpp"
#include "serve/sampler.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace {

using of::comm::TcpCommunicator;
using of::core::FramePool;
using of::core::StreamingSum;
using of::tensor::Bytes;
using of::tensor::Tensor;

// Kernel-assigned at startup: a fixed constant here collides with parallel
// ctest runs of the comm suites (EADDRINUSE at formation).
const std::uint16_t kPort = of::testutil::ephemeral_port();
constexpr std::size_t kModelFloats = 4096;  // ~16 KiB on the wire per frame
constexpr int kModelTag = 1;
constexpr int kUpdateTag = 2;
constexpr int kStopTag = 3;
constexpr int kChildren = 8;

// Mirror of the transport's v2 wire header (src/comm/tcp.cpp FrameHeader).
struct WireHeader {
  std::uint32_t magic = 0x0F5EED02u;
  std::int32_t src = 0;
  std::int32_t tag = 0;
  std::uint32_t round = 0;
  std::uint64_t len = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};
static_assert(sizeof(WireHeader) == 40, "must match the transport header");

// --- fd budget -----------------------------------------------------------------------

// The coordinator holds one fd per client. Try to raise the soft limit to
// the hard limit; if that still cannot cover the sweep, fail fast with an
// actionable message instead of wedging mid-formation with EMFILE.
void ensure_fd_budget(std::size_t max_clients) {
  const rlim_t need = static_cast<rlim_t>(max_clients + 64);
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return;
  if (rl.rlim_cur < need && rl.rlim_max > rl.rlim_cur) {
    rlimit bumped = rl;
    bumped.rlim_cur = std::min(need, rl.rlim_max);
    if (::setrlimit(RLIMIT_NOFILE, &bumped) == 0) rl = bumped;
  }
  if (rl.rlim_cur < need) {
    std::fprintf(stderr,
                 "bench_fleet_scale: fd soft limit %llu < %llu needed for %zu "
                 "clients.\nRaise it first:  ulimit -n %llu\n",
                 static_cast<unsigned long long>(rl.rlim_cur),
                 static_cast<unsigned long long>(need), max_clients,
                 static_cast<unsigned long long>(need));
    std::exit(1);
  }
}

std::size_t read_vm_kb(const char* key) {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line))
    if (line.rfind(key, 0) == 0)
      return static_cast<std::size_t>(std::strtoull(line.c_str() + std::strlen(key),
                                                    nullptr, 10));
  return 0;
}

// --- raw client driver (child process) -----------------------------------------------

bool read_full(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return false;
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_full(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) return false;
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

// Drive ranks [first, first+count): connect + hello each, then per round
// read the model frame and answer with the shared update frame, until the
// coordinator sends the stop tag. Exits the process when done.
void run_client_driver(int first, int count, const Bytes& update_frame) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(kPort);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  std::vector<int> fds(static_cast<std::size_t>(count), -1);
  for (int i = 0; i < count; ++i) {
    for (int attempt = 0; attempt < 2000; ++attempt) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd >= 0 &&
          ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
        fds[static_cast<std::size_t>(i)] = fd;
        break;
      }
      if (fd >= 0) ::close(fd);
      ::usleep(5000);
    }
    if (fds[static_cast<std::size_t>(i)] < 0) std::_Exit(2);
    WireHeader hello;
    hello.src = first + i;
    hello.tag = -1;  // kHelloTag
    if (!write_full(fds[static_cast<std::size_t>(i)], &hello, sizeof(hello)))
      std::_Exit(2);
  }

  Bytes payload;
  std::vector<bool> stopped(fds.size(), false);
  // Every socket gets its own stop frame — drain each one before closing
  // anything, or the coordinator sees links die mid-shutdown.
  for (std::size_t live = fds.size(); live > 0;) {
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (stopped[i]) continue;
      const int fd = fds[i];
      WireHeader h;
      if (!read_full(fd, &h, sizeof(h))) std::_Exit(2);
      payload.resize(h.len);
      if (h.len > 0 && !read_full(fd, payload.data(), payload.size())) std::_Exit(2);
      if (h.tag == kStopTag) {
        stopped[i] = true;
        --live;
        continue;
      }
      WireHeader up;
      up.src = 0;  // the server keys frames by the hello-established peer id
      up.tag = kUpdateTag;
      up.round = h.round;
      up.len = update_frame.size();
      if (!write_full(fd, &up, sizeof(up)) ||
          !write_full(fd, update_frame.data(), update_frame.size()))
        std::_Exit(2);
    }
  }
  for (const int fd : fds) ::close(fd);
  std::_Exit(0);
}

// Serve-mode driver: only a sampled fraction of clients holds an invite at
// any moment, so the sockets must be polled — a fixed read order deadlocks
// the instant the coordinator skips one of this child's ranks.
void run_serve_driver(int first, int count, const Bytes& update_frame) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(kPort);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  std::vector<int> fds(static_cast<std::size_t>(count), -1);
  for (int i = 0; i < count; ++i) {
    for (int attempt = 0; attempt < 2000; ++attempt) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd >= 0 &&
          ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
        fds[static_cast<std::size_t>(i)] = fd;
        break;
      }
      if (fd >= 0) ::close(fd);
      ::usleep(5000);
    }
    if (fds[static_cast<std::size_t>(i)] < 0) std::_Exit(2);
    WireHeader hello;
    hello.src = first + i;
    hello.tag = -1;  // kHelloTag
    if (!write_full(fds[static_cast<std::size_t>(i)], &hello, sizeof(hello)))
      std::_Exit(2);
  }

  std::vector<pollfd> pfds(fds.size());
  for (std::size_t i = 0; i < fds.size(); ++i)
    pfds[i] = {fds[i], POLLIN, 0};
  Bytes payload;
  for (std::size_t live = fds.size(); live > 0;) {
    if (::poll(pfds.data(), pfds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      std::_Exit(2);
    }
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if (pfds[i].fd < 0 || (pfds[i].revents & (POLLIN | POLLHUP)) == 0) continue;
      WireHeader h;
      if (!read_full(pfds[i].fd, &h, sizeof(h))) std::_Exit(2);
      payload.resize(h.len);
      if (h.len > 0 && !read_full(pfds[i].fd, payload.data(), payload.size()))
        std::_Exit(2);
      if (h.tag == kStopTag) {
        pfds[i].fd = -pfds[i].fd;  // poll ignores negative fds
        --live;
        continue;
      }
      WireHeader up;
      up.src = 0;
      up.tag = kUpdateTag;
      up.round = h.round;
      up.len = update_frame.size();
      if (!write_full(pfds[i].fd, &up, sizeof(up)) ||
          !write_full(pfds[i].fd, update_frame.data(), update_frame.size()))
        std::_Exit(2);
    }
  }
  for (const pollfd& p : pfds) ::close(p.fd < 0 ? -p.fd : p.fd);
  std::_Exit(0);
}

// --- coordinator ---------------------------------------------------------------------

struct SweepResult {
  double rounds_per_sec = 0.0;
  double formation_seconds = 0.0;
  std::size_t agg_state_bytes = 0;  // live StreamingSum state, all combiners
  std::size_t vm_hwm_kb = 0;        // process-lifetime peak RSS (monotonic)
  std::size_t vm_rss_kb = 0;
};

SweepResult run_sweep(int clients, int rounds, int combiners,
                      const Bytes& model_frame) {
  std::vector<pid_t> kids;
  const int per_child = (clients + kChildren - 1) / kChildren;
  for (int c = 0; c < kChildren; ++c) {
    const int first = 1 + c * per_child;
    const int count = std::min(per_child, clients - c * per_child);
    if (count <= 0) break;
    const pid_t pid = ::fork();
    if (pid == 0) run_client_driver(first, count, model_frame);
    kids.push_back(pid);
  }

  const auto t_form = std::chrono::steady_clock::now();
  auto server = TcpCommunicator::make_server(kPort, clients + 1);
  SweepResult out;
  out.formation_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_form).count();

  FramePool pool;
  std::vector<StreamingSum> sums;
  sums.reserve(static_cast<std::size_t>(combiners));
  for (int g = 0; g < combiners; ++g) sums.emplace_back(pool);
  StreamingSum root(pool);

  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    for (int p = 1; p <= clients; ++p) server->send_bytes(p, kModelTag, model_frame);
    for (auto& s : sums) s.reset();
    for (int received = 0; received < clients;) {
      auto got = server->try_recv_bytes_any(kUpdateTag, 120.0);
      if (!got) {
        std::fprintf(stderr, "bench_fleet_scale: round %d stalled at %d/%d updates\n",
                     r, received, clients);
        std::exit(1);
      }
      sums[static_cast<std::size_t>(got->first % combiners)].add(got->second);
      ++received;
    }
    root.reset();
    Bytes partial;
    for (auto& s : sums) {
      s.encode_partial_into(1.0, nullptr, partial);
      root.add_partial(partial);
    }
    (void)root.finish_mean();
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  out.rounds_per_sec = rounds / secs;
  for (const auto& s : sums) out.agg_state_bytes += s.peak_bytes();
  out.agg_state_bytes += root.peak_bytes();
  out.vm_hwm_kb = read_vm_kb("VmHWM:");
  out.vm_rss_kb = read_vm_kb("VmRSS:");

  for (int p = 1; p <= clients; ++p) server->send_bytes(p, kStopTag, Bytes{});
  for (const pid_t pid : kids) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
      std::fprintf(stderr, "bench_fleet_scale: client driver %d exited abnormally\n",
                   static_cast<int>(pid));
  }
  return out;
}

// --- serving-tier sweep (of::serve) --------------------------------------------------

struct ServeSweepResult {
  double seconds_to_target = 0.0;  // wall time to absorb `target` updates
  double updates_per_sec = 0.0;
  std::uint64_t drains = 0;
  std::uint64_t rejected_stale = 0;
  std::uint64_t resampled = 0;
  std::uint64_t leaves = 0;
  std::uint64_t population = 0;
};

ServeSweepResult run_serve_sweep(int clients, int target, int buffer_size,
                                 double churn, const Bytes& model_frame) {
  constexpr double kFraction = 0.1;       // cross-device concurrency
  constexpr std::size_t kMaxStaleness = 8;
  constexpr std::uint64_t kRejoinDrains = 2;

  std::vector<pid_t> kids;
  const int per_child = (clients + kChildren - 1) / kChildren;
  for (int c = 0; c < kChildren; ++c) {
    const int first = 1 + c * per_child;
    const int count = std::min(per_child, clients - c * per_child);
    if (count <= 0) break;
    const pid_t pid = ::fork();
    if (pid == 0) run_serve_driver(first, count, model_frame);
    kids.push_back(pid);
  }
  auto server = TcpCommunicator::make_server(kPort, clients + 1);

  FramePool pool;
  of::serve::PopulationRegistry registry;
  of::serve::ClientSampler sampler(0x5E12EDULL);
  of::serve::StalenessBuffer buffer(pool, nullptr,
                                    static_cast<std::size_t>(buffer_size),
                                    kMaxStaleness, 0.6);
  of::tensor::Rng churn_rng(0xC4BEULL);
  for (int c = 1; c <= clients; ++c) registry.join(c, 0);

  std::uint64_t version = 0, resampled = 0, leaves = 0, pick_counter = 0;
  std::vector<std::uint64_t> invited(static_cast<std::size_t>(clients) + 1, 0);
  std::set<int> in_flight;
  std::map<std::uint64_t, std::vector<int>> rejoin_at;  // drain count → ranks

  // An invite either goes out or the client churns away on the spot,
  // returning to the registry two drains later.
  auto send_invite = [&](int dst) -> bool {
    if (churn > 0.0 && churn_rng.bernoulli(churn)) {
      registry.leave(dst, version);
      rejoin_at[version + kRejoinDrains].push_back(dst);
      ++leaves;
      return false;
    }
    server->send_bytes(dst, kModelTag, model_frame);
    invited[static_cast<std::size_t>(dst)] = version;
    in_flight.insert(dst);
    return true;
  };

  std::vector<int> sample = sampler.sample(0, registry.alive(), kFraction);
  auto top_up = [&] {
    const auto accepted = static_cast<std::size_t>(buffer.accepted_total());
    if (accepted >= static_cast<std::size_t>(target)) return;
    std::size_t want = of::serve::ClientSampler::target_count(
        registry.alive_count(), kFraction);
    want = std::min(want, static_cast<std::size_t>(target) - accepted);
    for (int r : sample) {
      if (in_flight.size() >= want) break;
      if (in_flight.count(r) == 0 && registry.is_alive(r)) (void)send_invite(r);
    }
    while (in_flight.size() < want) {
      const std::vector<int> exclude(in_flight.begin(), in_flight.end());
      const int pick =
          sampler.resample(version, pick_counter++, registry.alive(), exclude);
      if (pick < 0) break;
      if (send_invite(pick)) ++resampled;
    }
  };

  const auto t0 = std::chrono::steady_clock::now();
  top_up();
  while (buffer.accepted_total() < static_cast<std::uint64_t>(target)) {
    // Extreme-churn backstop: with nothing in flight no drain can ever
    // release the away cohort, so bring the earliest batch home now.
    while (in_flight.empty()) {
      if (rejoin_at.empty()) {
        std::fprintf(stderr, "bench_fleet_scale: serve sweep starved\n");
        std::exit(1);
      }
      for (const int r : rejoin_at.begin()->second) registry.join(r, version);
      rejoin_at.erase(rejoin_at.begin());
      top_up();
    }
    auto got = server->try_recv_bytes_any(kUpdateTag, 120.0);
    if (!got) {
      std::fprintf(stderr, "bench_fleet_scale: serve sweep stalled at %llu/%d\n",
                   static_cast<unsigned long long>(buffer.accepted_total()), target);
      std::exit(1);
    }
    in_flight.erase(got->first);
    const auto staleness = static_cast<std::size_t>(
        version - invited[static_cast<std::size_t>(got->first)]);
    (void)buffer.offer(got->second, staleness);
    if (buffer.ready()) {
      (void)buffer.drain();
      ++version;
      const auto due = rejoin_at.find(version);
      if (due != rejoin_at.end()) {
        for (const int r : due->second) registry.join(r, version);
        rejoin_at.erase(due);
      }
      sample = sampler.sample(version, registry.alive(), kFraction);
      pick_counter = 0;
    }
    top_up();
  }
  ServeSweepResult out;
  out.seconds_to_target =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  out.updates_per_sec = target / out.seconds_to_target;
  out.drains = buffer.drains_total();
  out.rejected_stale = buffer.rejected_stale_total();
  out.resampled = resampled;
  out.leaves = leaves;
  out.population = registry.population();

  for (int p = 1; p <= clients; ++p) server->send_bytes(p, kStopTag, Bytes{});
  for (const pid_t pid : kids) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
      std::fprintf(stderr, "bench_fleet_scale: serve driver %d exited abnormally\n",
                   static_cast<int>(pid));
  }
  return out;
}

std::vector<int> parse_csv(const char* s) {
  std::vector<int> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::atoi(item.c_str()));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> client_counts = {1000, 4000, 10000};
  int rounds = 2;
  std::vector<int> combiner_counts = {8};
  int serve_clients = 2000;
  int serve_updates = 4000;
  if (argc > 1) client_counts = parse_csv(argv[1]);
  if (argc > 2) rounds = std::atoi(argv[2]);
  if (argc > 3) combiner_counts = parse_csv(argv[3]);
  if (argc > 4) serve_clients = std::atoi(argv[4]);
  if (argc > 5) serve_updates = std::atoi(argv[5]);

  int max_clients = 0;
  for (const int n : client_counts) max_clients = std::max(max_clients, n);
  ensure_fd_budget(static_cast<std::size_t>(max_clients));

  // One shared model/update payload (integer-valued so sums stay exact).
  const std::vector<Tensor> payload = {Tensor::full({kModelFloats}, 2.0f)};
  const Bytes frame = of::core::encode_update(payload, 1.0, {}, 0, 1);
  const std::size_t model_bytes = kModelFloats * sizeof(float);

  std::printf("\n=== Fleet scale: event-loop coordinator + combiner partial sums ===\n");
  std::printf("(model %zu floats = %zu KiB/frame, %d rounds, %d driver processes)\n\n",
              kModelFloats, frame.size() / 1024, rounds, kChildren);
  std::printf("%8s | %9s | %9s | %10s | %12s | %10s\n", "clients", "combiners",
              "form s", "rounds/s", "agg state", "peak RSS");
  std::printf("--------------------------------------------------------------------\n");
  for (const int n : client_counts) {
    const auto r = run_sweep(n, rounds, combiner_counts.front(), frame);
    std::printf("%8d | %9d | %9.2f | %10.3f | %9zu KiB | %7zu MiB\n", n,
                combiner_counts.front(), r.formation_seconds, r.rounds_per_sec,
                r.agg_state_bytes / 1024, r.vm_hwm_kb / 1024);
  }
  if (combiner_counts.size() > 1) {
    std::printf("\ncombiner sweep at %d clients (agg state ~ combiners × model = "
                "combiners × %zu KiB):\n", max_clients, model_bytes / 1024);
    for (const int g : combiner_counts) {
      const auto r = run_sweep(max_clients, rounds, g, frame);
      std::printf("%8d | %9d | %9.2f | %10.3f | %9zu KiB | %7zu MiB\n", max_clients,
                  g, r.formation_seconds, r.rounds_per_sec, r.agg_state_bytes / 1024,
                  r.vm_hwm_kb / 1024);
    }
  }

  if (serve_clients > 0) {
    std::printf("\n=== Serving tier: churning population, fraction-fit sampling, "
                "FedBuff buffer ===\n");
    std::printf("(%d clients, fraction 0.1, %d accepted updates per cell, "
                "max_staleness 8)\n\n", serve_clients, serve_updates);
    std::printf("%6s | %7s | %9s | %10s | %7s | %9s | %9s | %7s | %11s\n",
                "churn", "buffer", "to-tgt s", "updates/s", "drains", "rej stale",
                "resampled", "leaves", "population");
    std::printf("---------------------------------------------------------------"
                "---------------------------\n");
    for (const double churn : {0.0, 0.1, 0.3}) {
      for (const int buf : {16, 64, 256}) {
        const auto r = run_serve_sweep(serve_clients, serve_updates, buf, churn,
                                       frame);
        std::printf("%6.2f | %7d | %9.2f | %10.1f | %7llu | %9llu | %9llu | "
                    "%7llu | %11llu\n",
                    churn, buf, r.seconds_to_target, r.updates_per_sec,
                    static_cast<unsigned long long>(r.drains),
                    static_cast<unsigned long long>(r.rejected_stale),
                    static_cast<unsigned long long>(r.resampled),
                    static_cast<unsigned long long>(r.leaves),
                    static_cast<unsigned long long>(r.population));
      }
    }
  }
  return 0;
}
