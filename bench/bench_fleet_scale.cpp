// Fleet-scale bench: one coordinator, 10k+ simulated clients on a single
// host. Exercises the event-loop accept path (ISSUE: thread-per-connection
// dies at this scale) and the combiner tier's O(model × combiners)
// aggregation bound: the coordinator folds every arriving update into
// StreamingSum partial accumulators instead of buffering clients × model.
//
// Clients are raw-socket drivers forked into a handful of child processes
// (the host caps fds per process, and 10k TcpCommunicator clients would
// each cost threads); the shared pre-encoded update frame makes a child's
// per-client cost one fd plus a few hundred bytes.
//
// Usage: bench_fleet_scale [clients_csv] [rounds] [combiners_csv]
//   defaults: 1000,4000,10000 clients, 2 rounds, 8 combiners;
//   the combiner sweep runs at the largest client count.
// Results land in EXPERIMENTS.md.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "comm/tcp.hpp"
#include "core/frame_pool.hpp"
#include "core/payload.hpp"
#include "tensor/tensor.hpp"

namespace {

using of::comm::TcpCommunicator;
using of::core::FramePool;
using of::core::StreamingSum;
using of::tensor::Bytes;
using of::tensor::Tensor;

constexpr std::uint16_t kPort = 47450;
constexpr std::size_t kModelFloats = 4096;  // ~16 KiB on the wire per frame
constexpr int kModelTag = 1;
constexpr int kUpdateTag = 2;
constexpr int kStopTag = 3;
constexpr int kChildren = 8;

// Mirror of the transport's v2 wire header (src/comm/tcp.cpp FrameHeader).
struct WireHeader {
  std::uint32_t magic = 0x0F5EED02u;
  std::int32_t src = 0;
  std::int32_t tag = 0;
  std::uint32_t round = 0;
  std::uint64_t len = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};
static_assert(sizeof(WireHeader) == 40, "must match the transport header");

// --- fd budget -----------------------------------------------------------------------

// The coordinator holds one fd per client. Try to raise the soft limit to
// the hard limit; if that still cannot cover the sweep, fail fast with an
// actionable message instead of wedging mid-formation with EMFILE.
void ensure_fd_budget(std::size_t max_clients) {
  const rlim_t need = static_cast<rlim_t>(max_clients + 64);
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return;
  if (rl.rlim_cur < need && rl.rlim_max > rl.rlim_cur) {
    rlimit bumped = rl;
    bumped.rlim_cur = std::min(need, rl.rlim_max);
    if (::setrlimit(RLIMIT_NOFILE, &bumped) == 0) rl = bumped;
  }
  if (rl.rlim_cur < need) {
    std::fprintf(stderr,
                 "bench_fleet_scale: fd soft limit %llu < %llu needed for %zu "
                 "clients.\nRaise it first:  ulimit -n %llu\n",
                 static_cast<unsigned long long>(rl.rlim_cur),
                 static_cast<unsigned long long>(need), max_clients,
                 static_cast<unsigned long long>(need));
    std::exit(1);
  }
}

std::size_t read_vm_kb(const char* key) {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line))
    if (line.rfind(key, 0) == 0)
      return static_cast<std::size_t>(std::strtoull(line.c_str() + std::strlen(key),
                                                    nullptr, 10));
  return 0;
}

// --- raw client driver (child process) -----------------------------------------------

bool read_full(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return false;
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_full(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) return false;
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

// Drive ranks [first, first+count): connect + hello each, then per round
// read the model frame and answer with the shared update frame, until the
// coordinator sends the stop tag. Exits the process when done.
void run_client_driver(int first, int count, const Bytes& update_frame) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(kPort);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  std::vector<int> fds(static_cast<std::size_t>(count), -1);
  for (int i = 0; i < count; ++i) {
    for (int attempt = 0; attempt < 2000; ++attempt) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd >= 0 &&
          ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
        fds[static_cast<std::size_t>(i)] = fd;
        break;
      }
      if (fd >= 0) ::close(fd);
      ::usleep(5000);
    }
    if (fds[static_cast<std::size_t>(i)] < 0) std::_Exit(2);
    WireHeader hello;
    hello.src = first + i;
    hello.tag = -1;  // kHelloTag
    if (!write_full(fds[static_cast<std::size_t>(i)], &hello, sizeof(hello)))
      std::_Exit(2);
  }

  Bytes payload;
  std::vector<bool> stopped(fds.size(), false);
  // Every socket gets its own stop frame — drain each one before closing
  // anything, or the coordinator sees links die mid-shutdown.
  for (std::size_t live = fds.size(); live > 0;) {
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (stopped[i]) continue;
      const int fd = fds[i];
      WireHeader h;
      if (!read_full(fd, &h, sizeof(h))) std::_Exit(2);
      payload.resize(h.len);
      if (h.len > 0 && !read_full(fd, payload.data(), payload.size())) std::_Exit(2);
      if (h.tag == kStopTag) {
        stopped[i] = true;
        --live;
        continue;
      }
      WireHeader up;
      up.src = 0;  // the server keys frames by the hello-established peer id
      up.tag = kUpdateTag;
      up.round = h.round;
      up.len = update_frame.size();
      if (!write_full(fd, &up, sizeof(up)) ||
          !write_full(fd, update_frame.data(), update_frame.size()))
        std::_Exit(2);
    }
  }
  for (const int fd : fds) ::close(fd);
  std::_Exit(0);
}

// --- coordinator ---------------------------------------------------------------------

struct SweepResult {
  double rounds_per_sec = 0.0;
  double formation_seconds = 0.0;
  std::size_t agg_state_bytes = 0;  // live StreamingSum state, all combiners
  std::size_t vm_hwm_kb = 0;        // process-lifetime peak RSS (monotonic)
  std::size_t vm_rss_kb = 0;
};

SweepResult run_sweep(int clients, int rounds, int combiners,
                      const Bytes& model_frame) {
  std::vector<pid_t> kids;
  const int per_child = (clients + kChildren - 1) / kChildren;
  for (int c = 0; c < kChildren; ++c) {
    const int first = 1 + c * per_child;
    const int count = std::min(per_child, clients - c * per_child);
    if (count <= 0) break;
    const pid_t pid = ::fork();
    if (pid == 0) run_client_driver(first, count, model_frame);
    kids.push_back(pid);
  }

  const auto t_form = std::chrono::steady_clock::now();
  auto server = TcpCommunicator::make_server(kPort, clients + 1);
  SweepResult out;
  out.formation_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_form).count();

  FramePool pool;
  std::vector<StreamingSum> sums;
  sums.reserve(static_cast<std::size_t>(combiners));
  for (int g = 0; g < combiners; ++g) sums.emplace_back(pool);
  StreamingSum root(pool);

  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    for (int p = 1; p <= clients; ++p) server->send_bytes(p, kModelTag, model_frame);
    for (auto& s : sums) s.reset();
    for (int received = 0; received < clients;) {
      auto got = server->try_recv_bytes_any(kUpdateTag, 120.0);
      if (!got) {
        std::fprintf(stderr, "bench_fleet_scale: round %d stalled at %d/%d updates\n",
                     r, received, clients);
        std::exit(1);
      }
      sums[static_cast<std::size_t>(got->first % combiners)].add(got->second);
      ++received;
    }
    root.reset();
    Bytes partial;
    for (auto& s : sums) {
      s.encode_partial_into(1.0, nullptr, partial);
      root.add_partial(partial);
    }
    (void)root.finish_mean();
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  out.rounds_per_sec = rounds / secs;
  for (const auto& s : sums) out.agg_state_bytes += s.peak_bytes();
  out.agg_state_bytes += root.peak_bytes();
  out.vm_hwm_kb = read_vm_kb("VmHWM:");
  out.vm_rss_kb = read_vm_kb("VmRSS:");

  for (int p = 1; p <= clients; ++p) server->send_bytes(p, kStopTag, Bytes{});
  for (const pid_t pid : kids) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
      std::fprintf(stderr, "bench_fleet_scale: client driver %d exited abnormally\n",
                   static_cast<int>(pid));
  }
  return out;
}

std::vector<int> parse_csv(const char* s) {
  std::vector<int> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::atoi(item.c_str()));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> client_counts = {1000, 4000, 10000};
  int rounds = 2;
  std::vector<int> combiner_counts = {8};
  if (argc > 1) client_counts = parse_csv(argv[1]);
  if (argc > 2) rounds = std::atoi(argv[2]);
  if (argc > 3) combiner_counts = parse_csv(argv[3]);

  int max_clients = 0;
  for (const int n : client_counts) max_clients = std::max(max_clients, n);
  ensure_fd_budget(static_cast<std::size_t>(max_clients));

  // One shared model/update payload (integer-valued so sums stay exact).
  const std::vector<Tensor> payload = {Tensor::full({kModelFloats}, 2.0f)};
  const Bytes frame = of::core::encode_update(payload, 1.0, {}, 0, 1);
  const std::size_t model_bytes = kModelFloats * sizeof(float);

  std::printf("\n=== Fleet scale: event-loop coordinator + combiner partial sums ===\n");
  std::printf("(model %zu floats = %zu KiB/frame, %d rounds, %d driver processes)\n\n",
              kModelFloats, frame.size() / 1024, rounds, kChildren);
  std::printf("%8s | %9s | %9s | %10s | %12s | %10s\n", "clients", "combiners",
              "form s", "rounds/s", "agg state", "peak RSS");
  std::printf("--------------------------------------------------------------------\n");
  for (const int n : client_counts) {
    const auto r = run_sweep(n, rounds, combiner_counts.front(), frame);
    std::printf("%8d | %9d | %9.2f | %10.3f | %9zu KiB | %7zu MiB\n", n,
                combiner_counts.front(), r.formation_seconds, r.rounds_per_sec,
                r.agg_state_bytes / 1024, r.vm_hwm_kb / 1024);
  }
  if (combiner_counts.size() > 1) {
    std::printf("\ncombiner sweep at %d clients (agg state ~ combiners × model = "
                "combiners × %zu KiB):\n", max_clients, model_bytes / 1024);
    for (const int g : combiner_counts) {
      const auto r = run_sweep(max_clients, rounds, g, frame);
      std::printf("%8d | %9d | %9.2f | %10.3f | %9zu KiB | %7zu MiB\n", max_clients,
                  g, r.formation_seconds, r.rounds_per_sec, r.agg_state_bytes / 1024,
                  r.vm_hwm_kb / 1024);
    }
  }
  return 0;
}
