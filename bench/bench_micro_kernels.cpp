// Micro-benchmarks (google-benchmark) for the hot kernels underneath the
// paper's experiments: tensor ops, collectives, compressor kernels, and
// crypto primitives. These are ablation-style measurements backing the
// design choices DESIGN.md calls out (ring all-reduce vs star, packed
// Paillier encoding, sampled DGC thresholds vs exact TopK).
#include <benchmark/benchmark.h>

#include <thread>

#include "comm/inproc.hpp"
#include "compression/powersgd.hpp"
#include "compression/quantize.hpp"
#include "compression/sparsify.hpp"
#include "nn/loss.hpp"
#include "nn/zoo.hpp"
#include "privacy/paillier.hpp"
#include "privacy/secure_agg.hpp"
#include "privacy/sha256.hpp"
#include "simd/simd.hpp"

namespace {

using of::tensor::Rng;
using of::tensor::Tensor;

void BM_TensorAxpy(benchmark::State& state) {
  Rng rng(1);
  Tensor a = Tensor::randn({static_cast<std::size_t>(state.range(0))}, rng);
  const Tensor b = Tensor::randn(a.shape(), rng);
  for (auto _ : state) {
    a.add_scaled_(b, 0.5f);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_TensorAxpy)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(a.matmul(b).data());
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(128);

void BM_ModelForwardBackward(benchmark::State& state) {
  auto model = of::nn::zoo::make_model("resnet18_mini", 64, 10, 1);
  Rng rng(3);
  const Tensor x = Tensor::randn({32, 64}, rng);
  const std::vector<std::size_t> y(32, 1);
  for (auto _ : state) {
    model.zero_grad();
    const Tensor logits = model.forward(x);
    const auto lg = of::nn::softmax_cross_entropy(logits, y);
    model.backward(lg.grad);
    benchmark::DoNotOptimize(lg.loss);
  }
}
BENCHMARK(BM_ModelForwardBackward);

void BM_RingAllreduce(benchmark::State& state) {
  const int world = static_cast<int>(state.range(0));
  const auto numel = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    of::comm::InProcGroup group(world);
    std::vector<std::thread> threads;
    for (int r = 0; r < world; ++r) {
      threads.emplace_back([&, r] {
        Tensor t = Tensor::full({numel}, static_cast<float>(r));
        group.comm(r).allreduce(t, of::comm::ReduceOp::Sum);
        benchmark::DoNotOptimize(t.data());
      });
    }
    for (auto& t : threads) t.join();
  }
  state.SetBytesProcessed(state.iterations() * numel * 4 * world);
}
BENCHMARK(BM_RingAllreduce)->Args({4, 1 << 14})->Args({8, 1 << 14})->Args({8, 1 << 18});

void BM_CompressorKernel(benchmark::State& state, const char* which) {
  Rng rng(4);
  const Tensor t = Tensor::randn({100000}, rng);
  std::unique_ptr<of::compression::Compressor> codec;
  using namespace of::compression;
  if (std::string(which) == "topk") codec = std::make_unique<TopK>(100.0, true);
  else if (std::string(which) == "dgc") codec = std::make_unique<DGC>(100.0, true, 1);
  else if (std::string(which) == "qsgd") codec = std::make_unique<QSGD>(8, 1);
  else codec = std::make_unique<PowerSGD>(32, 1);
  for (auto _ : state) {
    auto c = codec->compress(t);
    benchmark::DoNotOptimize(codec->decompress(c).data());
  }
}
BENCHMARK_CAPTURE(BM_CompressorKernel, topk, "topk");
BENCHMARK_CAPTURE(BM_CompressorKernel, dgc_sampled, "dgc");
BENCHMARK_CAPTURE(BM_CompressorKernel, qsgd8, "qsgd");
BENCHMARK_CAPTURE(BM_CompressorKernel, powersgd32, "powersgd");

// Per-direction QSGD rows: quantize and dequantize measured separately, in
// both simd tables (off = scalar reference, auto = AVX2 when available),
// with bytes/s over the float input so the SIMD speedup reads directly off
// the report (EXPERIMENTS.md "SIMD kernel speedups" table).
void BM_QsgdQuantize(benchmark::State& state, int bits, of::simd::Mode level) {
  of::simd::configure(level);
  Rng rng(5);
  const Tensor t = Tensor::randn({static_cast<std::size_t>(state.range(0))}, rng);
  of::compression::QSGD codec(bits, /*seed=*/1);
  for (auto _ : state) {
    auto c = codec.compress(t);
    benchmark::DoNotOptimize(c.payload.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 4);
  of::simd::configure(of::simd::Mode::Auto);
}

void BM_QsgdDequantize(benchmark::State& state, int bits, of::simd::Mode level) {
  of::simd::configure(level);
  Rng rng(6);
  const Tensor t = Tensor::randn({static_cast<std::size_t>(state.range(0))}, rng);
  of::compression::QSGD codec(bits, /*seed=*/1);
  const auto c = codec.compress(t);
  for (auto _ : state) benchmark::DoNotOptimize(codec.decompress(c).data());
  state.SetBytesProcessed(state.iterations() * state.range(0) * 4);
  of::simd::configure(of::simd::Mode::Auto);
}

#define OF_QSGD_BENCH(fn, tag, bits, level, level_name)               \
  BENCHMARK_CAPTURE(fn, tag##_##level, bits, of::simd::Mode::level)   \
      ->Name(#fn "/" #tag "/" level_name)                             \
      ->Arg(1 << 16)                                                  \
      ->Arg(1 << 20)

OF_QSGD_BENCH(BM_QsgdQuantize, q8, 8, Off, "scalar");
OF_QSGD_BENCH(BM_QsgdQuantize, q8, 8, Auto, "simd");
OF_QSGD_BENCH(BM_QsgdQuantize, q16, 16, Off, "scalar");
OF_QSGD_BENCH(BM_QsgdQuantize, q16, 16, Auto, "simd");
OF_QSGD_BENCH(BM_QsgdDequantize, q8, 8, Off, "scalar");
OF_QSGD_BENCH(BM_QsgdDequantize, q8, 8, Auto, "simd");
OF_QSGD_BENCH(BM_QsgdDequantize, q16, 16, Off, "scalar");
OF_QSGD_BENCH(BM_QsgdDequantize, q16, 16, Auto, "simd");

void BM_Sha256(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state)
    benchmark::DoNotOptimize(of::privacy::Sha256::hash(data.data(), data.size()));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(1 << 16);

void BM_PaillierEncrypt(benchmark::State& state) {
  Rng rng(5);
  const auto bits = static_cast<std::size_t>(state.range(0));
  const auto scheme = of::privacy::Paillier::keygen(bits, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(scheme.encrypt(of::privacy::BigUInt(123456), rng));
}
BENCHMARK(BM_PaillierEncrypt)->Arg(128)->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_PaillierVectorEncrypt(benchmark::State& state) {
  Rng rng(6);
  of::privacy::PaillierVector vec(256, 16, rng);
  const Tensor t = Tensor::randn({static_cast<std::size_t>(state.range(0))}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(vec.encrypt(t, rng).size());
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PaillierVectorEncrypt)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_SecureAggProtect(benchmark::State& state) {
  of::privacy::SecureAggregation sa("bench", 8);
  Rng rng(7);
  const Tensor t = Tensor::randn({static_cast<std::size_t>(state.range(0))}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(sa.protect(t, 0, 8).size());
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SecureAggProtect)->Arg(1 << 12)->Arg(1 << 16)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
