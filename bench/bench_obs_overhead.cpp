// Overhead of the of::obs subsystem (EXPERIMENTS.md "observability
// overhead" table):
//
//   disabled_span        cost of one would-be span when tracing is off —
//                        the price every instrumented site pays forever
//                        (also asserts: zero heap allocations)
//   enabled_span         cost of one recorded span (ring write + 2 clock
//                        reads)
//   round_obs_{off,on}   a full 10-round 4-client inproc FedAvg run with
//                        tracing off vs on — the end-to-end check that
//                        `obs=trace` does not distort what it measures
//   profiler_disabled    the SIGPROF profiler's disabled fast path (one
//                        relaxed load, budget ≤ 10 ns / 0 allocs)
//   spin_profile_{off,on} a fixed CPU-bound spin with the profiler off vs
//                        armed at 997 Hz (10× the default, so the per-sample
//                        cost is resolvable above run-to-run noise); the
//                        time delta ÷ samples is the cost of one SIGPROF +
//                        backtrace + ring write, and delta/time ÷ 10 is the
//                        97 Hz overhead (budget < 3%, see EXPERIMENTS.md)
//   round_profile_on     the same 10-round run with the 97 Hz sampling
//                        profiler armed — wall-time overhead vs round_obs_on
//                        (dominated by the one-time lane allocation on these
//                        sub-interval toy rounds; see EXPERIMENTS.md)
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "config/yaml.hpp"
#include "core/engine.hpp"
#include "obs/obs.hpp"

// --- global allocation counter (same pattern as bench_payload_pipeline) --------

static std::atomic<std::uint64_t> g_allocs{0};

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(a), n ? n : 1) != 0) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n, std::align_val_t a) { return ::operator new(n, a); }
// Nothrow variants must be replaced too: the non-throwing new must pair with
// the free-based delete below (libstdc++'s stable_sort temp buffer uses it).
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return ::operator new(n, std::nothrow);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace {

using of::config::parse_yaml;
using of::core::Engine;
using of::obs::Name;
using of::obs::ScopedSpan;
using of::obs::TraceRecorder;

// --- micro: span cost, disabled vs enabled -------------------------------------

void bench_disabled_span(benchmark::State& state) {
  TraceRecorder::global().reset(1 << 10);
  TraceRecorder::global().set_enabled(false);
  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    ScopedSpan span(Name::LocalTrain, 1, 0, 42);
    benchmark::DoNotOptimize(&span);
  }
  const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs"] = static_cast<double>(allocs);
}
BENCHMARK(bench_disabled_span);

void bench_enabled_span(benchmark::State& state) {
  TraceRecorder::global().reset(1 << 16);
  TraceRecorder::global().set_enabled(true);
  // Warm this thread's ring outside the measured region (the one-time
  // allocation any thread pays on its first recorded event).
  of::obs::instant(Name::LocalTrain, 1, 0, 0);
  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    ScopedSpan span(Name::LocalTrain, 1, 0, 42);
    benchmark::DoNotOptimize(&span);
  }
  const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs"] = static_cast<double>(allocs);
  TraceRecorder::global().set_enabled(false);
}
BENCHMARK(bench_enabled_span);

// --- micro: profiler disabled fast path ----------------------------------------

void bench_profiler_disabled(benchmark::State& state) {
  auto& p = of::obs::Profiler::global();
  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    bool on = p.enabled();
    benchmark::DoNotOptimize(on);
  }
  const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs"] = static_cast<double>(allocs);
}
BENCHMARK(bench_profiler_disabled);

// --- micro: per-sample cost under a CPU-bound spin -----------------------------
//
// ITIMER_PROF fires on CPU time, so a workload shorter than one sampling
// interval takes no samples at all (see round_profile_on below). This spin
// is long enough to be sampled; 997 Hz (also prime) makes the per-sample
// cost resolvable, and the 97 Hz default costs one tenth of the delta.

void bench_spin_profile(benchmark::State& state, bool profile_on) {
  if (profile_on) {
    of::obs::ProfileConfig cfg;
    cfg.enabled = true;
    cfg.hz = 997;
    cfg.ring_capacity = 1 << 14;
    of::obs::Profiler::global().start(cfg);
  }
  volatile double x = 1.0;
  for (auto _ : state) {
    for (int i = 0; i < 4096; ++i) x = x * 1.000001 + 1e-9;
    benchmark::DoNotOptimize(x);
  }
  if (profile_on) {
    state.counters["samples"] =
        static_cast<double>(of::obs::Profiler::global().samples_total());
    of::obs::Profiler::global().stop();
  }
}

void bench_spin_profile_off(benchmark::State& state) {
  bench_spin_profile(state, false);
}
void bench_spin_profile_on(benchmark::State& state) {
  bench_spin_profile(state, true);
}
BENCHMARK(bench_spin_profile_off);
BENCHMARK(bench_spin_profile_on);

// --- macro: full run, obs off vs trace on --------------------------------------

of::config::ConfigNode run_config(bool obs_on, bool profile_on = false) {
  auto cfg = parse_yaml(R"(
seed: 7
topology:
  _target_: src.omnifed.topology.CentralizedTopology
  num_clients: 4
  inner_comm:
    _target_: src.omnifed.communicator.TorchDistCommunicator
model: mlp_tiny
datamodule:
  preset: toy
  partition: iid
  batch_size: 16
algorithm:
  _target_: src.omnifed.algorithm.FedAvg
  global_rounds: 10
  local_epochs: 1
)");
  if (obs_on) {
    auto obs = of::config::ConfigNode::map();
    obs["enabled"] = of::config::ConfigNode::boolean(true);
    obs["ring_capacity"] = of::config::ConfigNode::integer(1 << 16);
    if (profile_on) {
      // Default 97 Hz sampling, no collapsed-stack file: measure the
      // signal + ring-write cost, not symbolization or I/O.
      auto profile = of::config::ConfigNode::map();
      profile["enabled"] = of::config::ConfigNode::boolean(true);
      obs["profile"] = profile;
    }
    // No export paths: measure recording cost, not file I/O.
    cfg["obs"] = obs;
  }
  return cfg;
}

void bench_round_obs(benchmark::State& state, bool obs_on, bool profile_on = false) {
  double rounds_s = 0.0;
  std::uint64_t runs = 0;
  std::uint64_t samples = 0;
  for (auto _ : state) {
    Engine engine(run_config(obs_on, profile_on));
    const auto result = engine.run();
    rounds_s += result.mean_round_seconds;
    ++runs;
    // start() resets the sample counter each run, so accumulate per run
    // (a single 10-round toy run is shorter than one 97 Hz interval).
    samples += of::obs::Profiler::global().samples_total();
  }
  state.counters["mean_round_ms"] =
      runs > 0 ? rounds_s / static_cast<double>(runs) * 1e3 : 0.0;
  if (profile_on) state.counters["samples"] = static_cast<double>(samples);
}

void bench_round_obs_off(benchmark::State& state) { bench_round_obs(state, false); }
void bench_round_obs_on(benchmark::State& state) { bench_round_obs(state, true); }
void bench_round_profile_on(benchmark::State& state) {
  bench_round_obs(state, true, true);
}
BENCHMARK(bench_round_obs_off)->Unit(benchmark::kMillisecond);
BENCHMARK(bench_round_obs_on)->Unit(benchmark::kMillisecond);
BENCHMARK(bench_round_profile_on)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
