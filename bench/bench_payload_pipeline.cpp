// Per-round cost of the update pipeline (encode on every client + aggregate
// on the server) for the payload modes the paper's evaluation sweeps: plain,
// sparsified (TopK), quantized (QSGD) and DP-protected. Beyond wall time,
// each benchmark reports the number of heap allocations a steady-state round
// performs — the figure the zero-copy/pooled-buffer refactor is judged by
// (EXPERIMENTS.md "payload pipeline" table).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "compression/quantize.hpp"
#include "compression/sparsify.hpp"
#include "core/payload.hpp"
#include "privacy/dp.hpp"
#include "simd/simd.hpp"

// --- global allocation counter -----------------------------------------------
// Replacing operator new in this TU counts every heap allocation the round
// makes, library internals included. Counts, not bytes: the pool's win is
// fewer allocator round-trips per round.

static std::atomic<std::uint64_t> g_allocs{0};

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(a), n ? n : 1) != 0) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n, std::align_val_t a) { return ::operator new(n, a); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace {

using of::core::PayloadPlugins;
using of::tensor::Bytes;
using of::tensor::Rng;
using of::tensor::Tensor;

enum class Mode { Plain, PlainF16, TopK, Qsgd, Dp };

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::Plain: return "plain";
    case Mode::PlainF16: return "plain_f16";
    case Mode::TopK: return "topk";
    case Mode::Qsgd: return "qsgd";
    case Mode::Dp: return "dp";
  }
  return "?";
}

// A small-MLP-sized update (~51k params, ~200 KiB on the wire) — big enough
// that per-element work dominates, small enough for a fast smoke run.
std::vector<Tensor> make_update(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> ts;
  ts.push_back(Tensor::randn({784, 64}, rng));
  ts.push_back(Tensor::randn({64}, rng));
  ts.push_back(Tensor::randn({64, 10}, rng));
  ts.push_back(Tensor::randn({10}, rng));
  return ts;
}

struct Pipeline {
  std::unique_ptr<of::compression::Compressor> compressor;
  std::unique_ptr<of::privacy::PrivacyMechanism> privacy;

  explicit Pipeline(Mode m) {
    switch (m) {
      case Mode::Plain: break;
      case Mode::PlainF16: break;  // plain pipeline, f16 wire repr
      case Mode::TopK:
        compressor = std::make_unique<of::compression::TopK>(/*factor=*/100.0, true);
        break;
      case Mode::Qsgd:
        compressor = std::make_unique<of::compression::QSGD>(8, /*seed=*/7);
        break;
      case Mode::Dp:
        privacy = std::make_unique<of::privacy::DifferentialPrivacy>(
            of::privacy::DpParams{/*epsilon=*/8.0, /*delta=*/1e-5, /*clip_norm=*/10.0},
            /*seed=*/11);
        break;
    }
  }
  PayloadPlugins plugins() { return {compressor.get(), privacy.get()}; }
};

// One full round: every client encodes, the server aggregates. Frames live
// in a FramePool, exactly like a NodeRuntime's round loop: after the warmup
// round their capacity is in the pool and steady-state rounds recycle it.
struct Round {
  Pipeline pipe;
  int clients;
  std::vector<Tensor> update;
  of::core::WireRepr repr;
  of::core::FramePool pool;
  std::vector<of::core::FramePool::Handle> frames;

  Round(Mode m, int k)
      : pipe(m),
        clients(k),
        update(make_update(42)),
        repr(m == Mode::PlainF16 ? of::core::WireRepr::F16
                                 : of::core::WireRepr::F32) {}

  std::size_t update_numel() const {
    std::size_t n = 0;
    for (const auto& t : update) n += t.numel();
    return n;
  }

  void encode_all() {
    frames.clear();  // handles return their buffers to the pool first
    for (int c = 0; c < clients; ++c) {
      auto h = pool.acquire();
      of::core::encode_update_into(update, /*weight_scale=*/1.0, pipe.plugins(), c,
                                   clients, pool, *h, repr);
      frames.push_back(std::move(h));
    }
  }

  std::vector<Bytes> frame_copies() const {
    std::vector<Bytes> out;
    out.reserve(frames.size());
    for (const auto& h : frames) out.push_back(*h);
    return out;
  }

  std::vector<Tensor> aggregate(const std::vector<Bytes>& fs) {
    return of::core::mean_updates(fs, pipe.compressor.get(), pipe.privacy.get(), &pool);
  }
};

// Every row runs in both simd tables (auto = AVX2 when the CPU has it, off
// = the scalar reference) and reports bytes/s over the *input* update bytes
// (clients × numel × 4) — the throughput number the ≥4× encode/aggregate
// acceptance criterion is stated over.
void BM_EncodeRound(benchmark::State& state, Mode m, of::simd::Mode simd) {
  of::simd::configure(simd);
  Round round(m, static_cast<int>(state.range(0)));
  round.encode_all();  // warmup: populate pool / codec state
  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    round.encode_all();
    benchmark::DoNotOptimize(round.frames.data());
  }
  const std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);
  state.counters["allocs_per_round"] = benchmark::Counter(
      static_cast<double>(a1 - a0) / static_cast<double>(state.iterations()));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(round.update_numel() * sizeof(float)) *
      state.range(0));
  of::simd::configure(of::simd::Mode::Auto);
}

void BM_AggregateRound(benchmark::State& state, Mode m, of::simd::Mode simd) {
  of::simd::configure(simd);
  Round round(m, static_cast<int>(state.range(0)));
  round.encode_all();
  const std::vector<Bytes> frames = round.frame_copies();
  benchmark::DoNotOptimize(round.aggregate(frames).data());  // warmup
  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    auto mean = round.aggregate(frames);
    benchmark::DoNotOptimize(mean.data());
  }
  const std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);
  state.counters["allocs_per_round"] = benchmark::Counter(
      static_cast<double>(a1 - a0) / static_cast<double>(state.iterations()));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(round.update_numel() * sizeof(float)) *
      state.range(0));
  of::simd::configure(of::simd::Mode::Auto);
}

}  // namespace

#define OF_PIPELINE_BENCH_ONE(fn, mode, level, simd_name)                        \
  BENCHMARK_CAPTURE(fn, mode##_##level, Mode::mode, of::simd::Mode::level)       \
      ->Name(#fn "/" + std::string(mode_name(Mode::mode)) + "/" simd_name)       \
      ->Arg(8)                                                                   \
      ->Arg(64)                                                                  \
      ->Unit(benchmark::kMillisecond)

#define OF_PIPELINE_BENCH(fn, mode)                                              \
  OF_PIPELINE_BENCH_ONE(fn, mode, Off, "scalar");                                \
  OF_PIPELINE_BENCH_ONE(fn, mode, Auto, "simd")

OF_PIPELINE_BENCH(BM_EncodeRound, Plain);
OF_PIPELINE_BENCH(BM_EncodeRound, PlainF16);
OF_PIPELINE_BENCH(BM_EncodeRound, TopK);
OF_PIPELINE_BENCH(BM_EncodeRound, Qsgd);
OF_PIPELINE_BENCH(BM_EncodeRound, Dp);
OF_PIPELINE_BENCH(BM_AggregateRound, Plain);
OF_PIPELINE_BENCH(BM_AggregateRound, PlainF16);
OF_PIPELINE_BENCH(BM_AggregateRound, TopK);
OF_PIPELINE_BENCH(BM_AggregateRound, Qsgd);
OF_PIPELINE_BENCH(BM_AggregateRound, Dp);

BENCHMARK_MAIN();
