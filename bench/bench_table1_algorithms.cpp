// Table 1: convergence quality (final test accuracy) of the 11 built-in FL
// algorithms on the four model/dataset pairings.
//
// Paper setting: 16 clients on a DGX, hundreds of epochs. Here: 8 clients,
// synthetic datasets, ROUNDS global rounds on one CPU — absolute accuracies
// differ, the *ordering pattern* is what EXPERIMENTS.md compares (robust
// mean-style algorithms near the top on every task; Ditto/DiLoCo/FedPer
// sensitive to settings, as the paper observes).
//
//   OMNIFED_BENCH_ROUNDS=N  overrides the round budget (default 12).
#include <cstdlib>

#include "algorithms/algorithm.hpp"
#include "bench_common.hpp"

namespace {

std::size_t rounds_from_env() {
  const char* s = std::getenv("OMNIFED_BENCH_ROUNDS");
  return s ? static_cast<std::size_t>(std::atoi(s)) : 15;
}

void tune(of::config::ConfigNode& cfg, const std::string& algo) {
  using of::config::ConfigNode;
  // Per-algorithm defaults, mirroring the defaults the paper's repo ships.
  if (algo == "FedProx") cfg.set_path("algorithm.mu", ConfigNode::floating(0.01));
  if (algo == "Moon") {
    cfg.set_path("algorithm.mu", ConfigNode::floating(1.0));
    cfg.set_path("algorithm.temperature", ConfigNode::floating(0.5));
  }
  if (algo == "FedDyn") cfg.set_path("algorithm.alpha", ConfigNode::floating(0.01));
  if (algo == "Ditto") cfg.set_path("algorithm.lambda", ConfigNode::floating(0.5));
  if (algo == "DiLoCo") {
    cfg.set_path("algorithm.inner_lr", ConfigNode::floating(0.001));
    cfg.set_path("algorithm.outer_lr", ConfigNode::floating(0.7));
    cfg.set_path("algorithm.outer_momentum", ConfigNode::floating(0.9));
  }
  if (algo == "FedMom") cfg.set_path("algorithm.beta", ConfigNode::floating(0.9));
}

}  // namespace

int main() {
  const std::size_t rounds = rounds_from_env();
  const auto pairings = of::bench::paper_pairings();
  of::bench::print_header("Table 1 — convergence quality of FL algorithms (final test acc %)",
                          "Table 1");
  std::printf("(8 clients, IID split, %zu rounds x 2 local epochs)\n\n", rounds);
  of::bench::print_row_header(pairings, "Algorithm");
  for (const auto& algo : of::algorithms::algorithm_names()) {
    std::printf("%-18s", algo.c_str());
    std::fflush(stdout);
    for (const auto& p : pairings) {
      auto cfg = of::bench::experiment_config(p.model, p.dataset, algo, rounds);
      tune(cfg, algo);
      of::core::Engine engine(cfg);
      const auto result = engine.run();
      std::printf(" | %11.2f%%", result.final_accuracy * 100.0f);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
