// Table 2: convergence quality (final test accuracy) under the paper's
// eight gradient-compression configurations, FedAvg training:
//   TopK 10x / 1000x, DGC 10x / 1000x, QSGD 8-bit / 16-bit,
//   PowerSGD r-64 / r-32
//
// Shape expectation vs. the paper: mild compression (10x, QSGD) tracks the
// uncompressed accuracy closely; 1000x factors and low-rank PowerSGD lose
// several points, more on the harder many-class tasks.
#include <cstdlib>

#include "bench_common.hpp"

namespace {

struct CompressionRow {
  const char* label;
  const char* target;
  const char* k;    // nullptr when unused
  int bits = 0;     // QSGD
  int rank = 0;     // PowerSGD
};

}  // namespace

int main() {
  const char* env = std::getenv("OMNIFED_BENCH_ROUNDS");
  const std::size_t rounds = env ? static_cast<std::size_t>(std::atoi(env)) : 15;
  const std::vector<CompressionRow> rows = {
      {"TopK-10x", "TopK", "10x"},
      {"TopK-1000x", "TopK", "1000x"},
      {"DGC-10x", "DGC", "10x"},
      {"DGC-1000x", "DGC", "1000x"},
      {"QSGD 8-bit", "QSGD", nullptr, 8},
      {"QSGD 16-bit", "QSGD", nullptr, 16},
      {"PowerSGD r-64", "PowerSGD", nullptr, 0, 64},
      {"PowerSGD r-32", "PowerSGD", nullptr, 0, 32},
  };
  const auto pairings = of::bench::paper_pairings();
  of::bench::print_header(
      "Table 2 — convergence quality under gradient compression (final acc %)",
      "Table 2");
  std::printf("(FedAvg, 8 clients, %zu rounds; compressor on the client->server link)\n\n",
              rounds);
  of::bench::print_row_header(pairings, "Compression");
  for (const auto& row : rows) {
    std::printf("%-18s", row.label);
    std::fflush(stdout);
    for (const auto& p : pairings) {
      // FedAvgDelta ≡ FedAvg, but ships deltas so the codecs compress
      // gradient-like quantities (the paper's "gradient compression").
      auto cfg = of::bench::experiment_config(p.model, p.dataset, "FedAvgDelta", rounds);
      using of::config::ConfigNode;
      // Paper Fig. 4 placement: compression under the communicator section.
      cfg.set_path("topology.inner_comm.compression._target_",
                   ConfigNode::string(row.target));
      if (row.k) cfg.set_path("topology.inner_comm.compression.k", ConfigNode::string(row.k));
      if (row.bits)
        cfg.set_path("topology.inner_comm.compression.bits", ConfigNode::integer(row.bits));
      if (row.rank)
        cfg.set_path("topology.inner_comm.compression.rank", ConfigNode::integer(row.rank));
      // Sparsifiers need error feedback at high factors (as in DGC).
      cfg.set_path("topology.inner_comm.compression.error_feedback",
                   ConfigNode::boolean(true));
      of::core::Engine engine(cfg);
      const auto result = engine.run();
      std::printf(" | %11.2f%%", result.final_accuracy * 100.0f);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
