// Table 3a: test accuracy of the four models trained under differential
// privacy with ε ∈ {1, 10}, δ = 1e-5 (Gaussian mechanism on clipped
// updates), FedAvg aggregation via delta encoding (the mechanism clips
// and noises *updates*, not raw parameters — clipping a whole parameter
// vector to C destroys the model regardless of epsilon).
//
// Shape expectation vs. the paper: ε=10 beats ε=1 on every model (less
// noise for the same rounds), and the easy task (ResNet18/CIFAR10 stand-in)
// tolerates DP noise far better than the many-class tasks — exactly the
// pattern of the paper's Table 3a.
#include <cstdlib>

#include "bench_common.hpp"

int main() {
  const char* env = std::getenv("OMNIFED_BENCH_ROUNDS");
  const std::size_t rounds = env ? static_cast<std::size_t>(std::atoi(env)) : 15;
  const auto pairings = of::bench::paper_pairings();
  of::bench::print_header("Table 3a — accuracy under differential privacy (final acc %)",
                          "Table 3a");
  std::printf("(FedAvg via delta encoding, Gaussian mechanism, clip C=5, delta=1e-5, %zu rounds)\n\n", rounds);
  of::bench::print_row_header(pairings, "epsilon");
  for (const double eps : {1.0, 10.0}) {
    std::printf("eps=%-14.0f", eps);
    std::fflush(stdout);
    for (const auto& p : pairings) {
      auto cfg = of::bench::experiment_config(p.model, p.dataset, "FedAvgDelta", rounds);
      using of::config::ConfigNode;
      cfg.set_path("privacy._target_",
                   ConfigNode::string("src.omnifed.privacy.DifferentialPrivacy"));
      cfg.set_path("privacy.epsilon", ConfigNode::floating(eps));
      cfg.set_path("privacy.delta", ConfigNode::floating(1e-5));
      cfg.set_path("privacy.clip_norm", ConfigNode::floating(5.0));
      of::core::Engine engine(cfg);
      const auto result = engine.run();
      std::printf(" | %11.2f%%", result.final_accuracy * 100.0f);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  // Reference row: no privacy, same budget.
  std::printf("%-18s", "no privacy");
  for (const auto& p : pairings) {
    auto cfg = of::bench::experiment_config(p.model, p.dataset, "FedAvgDelta", rounds);
    of::core::Engine engine(cfg);
    std::printf(" | %11.2f%%", engine.run().final_accuracy * 100.0f);
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
