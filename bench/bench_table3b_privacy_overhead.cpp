// Table 3b: compute cost of the privacy mechanisms (DP, HE, SA) per round,
// for each model's full parameter vector: client-side protect() across 8
// clients plus server-side aggregation.
//
// Shape expectation vs. the paper: DP is orders of magnitude cheaper than
// the cryptographic mechanisms, and costs scale with the parameter count
// (VGG > AlexNet > ResNet > MobileNet). One deliberate difference,
// documented in EXPERIMENTS.md: the paper's HMAC-per-element Python SA
// prototype is slower than its HE; our C++ counter-mode SA is faster than
// Paillier (the expected ordering for efficient implementations).
#include <chrono>

#include "bench_common.hpp"
#include "privacy/dp.hpp"
#include "privacy/he.hpp"
#include "privacy/secure_agg.hpp"
#include "nn/zoo.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using of::tensor::Rng;
using of::tensor::Tensor;

double round_cost_seconds(of::privacy::PrivacyMechanism& mech, const Tensor& update,
                          int clients) {
  const auto t0 = Clock::now();
  std::vector<of::tensor::Bytes> frames;
  frames.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) frames.push_back(mech.protect(update, c, clients));
  (void)mech.aggregate_sum(frames, update.numel());
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  const int clients = 8;
  const auto pairings = of::bench::paper_pairings();
  of::bench::print_header(
      "Table 3b — per-round compute cost of privacy mechanisms (seconds)",
      "Table 3b");
  std::printf("(8 clients' protect() + server aggregation on the full update vector;\n"
              " HE = Paillier-256 with packed fixed-point encoding)\n\n");
  std::printf("%-14s", "DNN");
  for (const char* m : {"DP", "HE", "SA"}) std::printf(" | %10s", m);
  std::printf(" | %10s\n", "params");
  std::printf("--------------------------------------------------------------\n");
  Rng rng(3);
  for (const auto& p : pairings) {
    auto model = of::nn::zoo::make_model(p.model, 64, 10, 1);
    const Tensor update = Tensor::randn({model.num_scalars()}, rng, 0.0f, 0.01f);

    of::privacy::DifferentialPrivacy dp({1.0, 1e-5, 1.0}, 11);
    of::privacy::HomomorphicEncryption he(256, clients + 1, 42);
    of::privacy::SecureAggregation sa("bench-key", clients);

    std::printf("%-14s", p.paper_name);
    std::fflush(stdout);
    std::printf(" | %9.3fs", round_cost_seconds(dp, update, clients));
    std::fflush(stdout);
    std::printf(" | %9.3fs", round_cost_seconds(he, update, clients));
    std::fflush(stdout);
    std::printf(" | %9.3fs", round_cost_seconds(sa, update, clients));
    std::printf(" | %10zu\n", model.num_scalars());
    std::fflush(stdout);
  }
  return 0;
}
