// Cost of the distributed telemetry plane (EXPERIMENTS.md "observability
// overhead" table, DESIGN.md §9):
//
//   disabled_span_ctx    one would-be span plus the frame-header context
//                        capture when tracing is off — the per-send price
//                        every transport pays forever (asserts zero heap
//                        allocations; budget: within 2x the plain
//                        disabled-span cost in bench_obs_overhead)
//   summary_serialize    encode one piggyback blob; counters report the
//                        fixed wire size added to each update frame
//   summary_parse_tail   coordinator-side strip of the same blob
//   attribution_round    critical-path attribution cost per round at a
//                        32-client fleet: 32 observe_client joins + one
//                        on_round verdict (runs under Fleet's mutex in
//                        production, so this is the full added lock hold)
//   round_telemetry_off  a 10-round 4-client inproc FedAvg run with obs
//   round_telemetry_on   disabled vs the full plane (spans + piggyback +
//                        fleet registry) — end-to-end per-round overhead
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "config/yaml.hpp"
#include "core/engine.hpp"
#include "obs/obs.hpp"
#include "obs/telemetry.hpp"

// --- global allocation counter (same pattern as bench_obs_overhead) ------------

static std::atomic<std::uint64_t> g_allocs{0};

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(a), n ? n : 1) != 0) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n, std::align_val_t a) { return ::operator new(n, a); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return ::operator new(n, std::nothrow);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace {

using of::config::parse_yaml;
using of::core::Engine;
using of::obs::Name;
using of::obs::ScopedSpan;
using of::obs::TelemetrySummary;
using of::obs::TraceRecorder;

// --- micro: the per-send disabled path -----------------------------------------

void bench_disabled_span_ctx(benchmark::State& state) {
  TraceRecorder::global().reset(1 << 10);
  TraceRecorder::global().set_enabled(false);
  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    ScopedSpan span(Name::Send, 1, 0, 42);
    auto ctx = of::obs::current_context();
    benchmark::DoNotOptimize(&span);
    benchmark::DoNotOptimize(ctx);
  }
  const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs"] = static_cast<double>(allocs);
}
BENCHMARK(bench_disabled_span_ctx);

// --- micro: piggyback blob encode/decode ---------------------------------------

TelemetrySummary sample_summary() {
  TelemetrySummary t;
  t.trace_id = 0x1234'5678'9ABCull;
  t.rank = 3;
  t.round = 17;
  t.clock_offset_ns = -250'000;
  t.rtt_ns = 120'000;
  t.bytes_sent = 1 << 20;
  t.bytes_received = 1 << 20;
  t.pool_hits = 100;
  t.pool_misses = 3;
  for (std::size_t i = 0; i < of::obs::kPhaseCount; ++i)
    t.phases[i] = {10, 5'000'000, 900'000};
  return t;
}

void bench_summary_serialize(benchmark::State& state) {
  const TelemetrySummary t = sample_summary();
  of::AlignedBytes frame;
  frame.reserve(4096);
  for (auto _ : state) {
    frame.clear();
    t.serialize_to(frame);
    benchmark::DoNotOptimize(frame.data());
  }
  state.counters["piggyback_bytes_per_round"] =
      static_cast<double>(TelemetrySummary::kWireBytes);
}
BENCHMARK(bench_summary_serialize);

void bench_summary_parse_tail(benchmark::State& state) {
  of::AlignedBytes frame(4096, 0x5A);
  sample_summary().serialize_to(frame);
  for (auto _ : state) {
    auto t = TelemetrySummary::parse_tail(frame.data(), frame.size());
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(bench_summary_parse_tail);

// --- micro: critical-path attribution ------------------------------------------

void bench_attribution_round(benchmark::State& state) {
  of::obs::Attribution attr;
  constexpr int kClients = 32;
  of::obs::PhaseDigest phases[of::obs::kPhaseCount] = {};
  for (std::size_t i = 0; i < of::obs::kPhaseCount; ++i) {
    phases[i].count = 4;
    phases[i].total_ns = 1000000 * (i + 1);
    phases[i].max_ns = 400000 * (i + 1);
  }
  std::uint32_t round = 0;
  for (auto _ : state) {
    for (int c = 1; c <= kClients; ++c)
      attr.observe_client(static_cast<std::uint32_t>(c), round, phases,
                          0x1000u + static_cast<std::uint64_t>(c));
    const auto cp = attr.on_round(round, 0.25, 0.01);
    benchmark::DoNotOptimize(cp);
    ++round;
  }
  state.counters["clients"] = kClients;
}
BENCHMARK(bench_attribution_round);

// --- macro: full run, telemetry plane off vs on --------------------------------

of::config::ConfigNode run_config(bool telemetry_on) {
  auto cfg = parse_yaml(R"(
seed: 7
topology:
  _target_: src.omnifed.topology.CentralizedTopology
  num_clients: 4
  inner_comm:
    _target_: src.omnifed.communicator.TorchDistCommunicator
model: mlp_tiny
datamodule:
  preset: toy
  partition: iid
  batch_size: 16
algorithm:
  _target_: src.omnifed.algorithm.FedAvg
  global_rounds: 10
  local_epochs: 1
)");
  if (telemetry_on) {
    auto obs = of::config::ConfigNode::map();
    obs["enabled"] = of::config::ConfigNode::boolean(true);
    obs["telemetry"] = of::config::ConfigNode::boolean(true);
    obs["ring_capacity"] = of::config::ConfigNode::integer(1 << 16);
    // No export paths: measure the plane itself, not file I/O.
    cfg["obs"] = obs;
  }
  return cfg;
}

void bench_round_telemetry(benchmark::State& state, bool telemetry_on) {
  double rounds_s = 0.0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    Engine engine(run_config(telemetry_on));
    const auto result = engine.run();
    rounds_s += result.mean_round_seconds;
    ++runs;
  }
  state.counters["mean_round_ms"] =
      runs > 0 ? rounds_s / static_cast<double>(runs) * 1e3 : 0.0;
}

void bench_round_telemetry_off(benchmark::State& state) {
  bench_round_telemetry(state, false);
}
void bench_round_telemetry_on(benchmark::State& state) {
  bench_round_telemetry(state, true);
}
BENCHMARK(bench_round_telemetry_off)->Unit(benchmark::kMillisecond);
BENCHMARK(bench_round_telemetry_on)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
