// Cross-facility FL (paper §3.4.5, Fig. 7a): two sites train a shared model
// — fast MPI-style collectives inside each site, a slow gRPC-style WAN star
// between site leaders, and compression applied only to the WAN link.
//
//   ./cross_facility [groups] [group_size] [rounds] [--trace base.json]
//                    [--dump-config]
//
// `--trace <path>` records the run and, because a multi-site trace is most
// useful per node, also writes one Chrome-trace file per node named
// <path>.rank<N>.json next to the combined <path>. `--dump-config` prints
// the effective merged config (CLI args folded in, defaults materialized
// through of::refl) as YAML and exits.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "config/yaml.hpp"
#include "core/config_check.hpp"
#include "core/engine.hpp"

int main(int argc, char** argv) {
  try {
    std::string trace_path;
    bool dump_config = false;
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--trace") == 0) {
        if (i + 1 >= argc) {
          std::cerr << "error: --trace requires a path argument\n";
          return 1;
        }
        trace_path = argv[++i];
      } else if (std::strcmp(argv[i], "--dump-config") == 0) {
        dump_config = true;
      } else {
        args.emplace_back(argv[i]);
      }
    }
    const int groups = args.size() > 0 ? std::atoi(args[0].c_str()) : 2;
    const int group_size = args.size() > 1 ? std::atoi(args[1].c_str()) : 3;
    const int rounds = args.size() > 2 ? std::atoi(args[2].c_str()) : 5;

    of::config::ConfigNode cfg = of::config::parse_yaml(R"(
seed: 42
topology:
  _target_: src.omnifed.topology.HierarchicalTopology
  inner_comm:
    _target_: src.omnifed.communicator.TorchDistCommunicator
    link: {latency_us: 50, bandwidth_mbps: 10000, mode: virtual}
  outer_comm:
    _target_: src.omnifed.communicator.GrpcCommunicator
    port: 48351
    link: {latency_us: 20000, bandwidth_mbps: 100, mode: virtual}
    compression:
      _target_: src.omnifed.communicator.compression.TopK
      k: 100x
      error_feedback: true
model: resnet18_mini
datamodule: {preset: cifar10_like, partition: iid, batch_size: 32}
algorithm:
  _target_: src.omnifed.algorithm.FedAvg
  local_epochs: 2
  lr: 0.1
  momentum: 0.9
  weight_decay: 1.0e-4
eval_every: 1
)");
    cfg.set_path("topology.groups", of::config::ConfigNode::integer(groups));
    cfg.set_path("topology.group_size", of::config::ConfigNode::integer(group_size));
    cfg.set_path("algorithm.global_rounds", of::config::ConfigNode::integer(rounds));
    if (!trace_path.empty()) {
      cfg.set_path("obs.enabled", of::config::ConfigNode::boolean(true));
      cfg.set_path("obs.trace_path", of::config::ConfigNode::string(trace_path));
      cfg.set_path("obs.split_trace_per_node", of::config::ConfigNode::boolean(true));
    }
    if (dump_config) {
      std::cout << of::core::dump_effective_config(cfg);
      return 0;
    }

    of::core::Engine engine(std::move(cfg));
    std::cout << "cross-facility run: " << groups << " sites x " << group_size
              << " trainers, compressed WAN tier\n";
    const auto result = engine.run();
    for (const auto& r : result.rounds)
      std::cout << "round " << r.round << ": loss=" << r.train_loss
                << " acc=" << r.accuracy * 100 << "%\n";
    std::cout << "modeled comm time/round: inner="
              << result.inner_comm.modeled_seconds / rounds
              << "s outer=" << result.outer_comm.modeled_seconds / rounds << "s\n"
              << "volume/round: inner=" << result.inner_comm.bytes_sent / rounds / 1024
              << "KB outer=" << result.outer_comm.bytes_sent / rounds / 1024 << "KB\n"
              << result.summary() << '\n';
    if (!trace_path.empty())
      std::cout << "traces written to " << trace_path << " and " << trace_path
                << ".rank<N>.json (load at ui.perfetto.dev)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
