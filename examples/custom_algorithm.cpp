// Extending OmniFed with a user-defined algorithm (paper §3.2's
// "override-what-you-need" claim, demonstrated end to end):
//
//   1. subclass Algorithm, overriding only the hooks you need
//   2. register it under a name
//   3. select it from YAML with `_target_:` like any built-in
//
// The example implements *FedAvgServerLR* — FedAvg with a server-side
// relaxation step w ← w_prev + η·(mean − w_prev). η = 1 recovers FedAvg;
// η < 1 damps oscillation on heterogeneous cohorts.
#include <iostream>

#include "algorithms/builtin.hpp"
#include "config/yaml.hpp"
#include "core/engine.hpp"

namespace {

class FedAvgServerLR final : public of::algorithms::Algorithm {
 public:
  std::string name() const override { return "FedAvgServerLR"; }

  std::vector<of::algorithms::Tensor> server_update(
      of::algorithms::ServerState& state,
      const std::vector<of::algorithms::Tensor>& mean) override {
    const float eta = state.params.get_or<float>("server_lr", 0.5f);
    for (std::size_t i = 0; i < state.global.size(); ++i) {
      // w ← w + η (mean − w)
      of::algorithms::Tensor step = mean[i];
      step.sub_(state.global[i]);
      state.global[i].add_scaled_(step, eta);
    }
    return state.global;
  }
};

}  // namespace

int main() {
  try {
    // Step 2: register (a real plugin would do this in a library init fn).
    of::algorithms::algorithm_registry().add(
        "FedAvgServerLR", [](const of::config::ConfigNode&) {
          return std::make_unique<FedAvgServerLR>();
        });

    // Step 3: select by target string from the config.
    auto cfg = of::config::parse_yaml(R"(
seed: 11
topology:
  _target_: src.omnifed.topology.CentralizedTopology
  num_clients: 6
model: mlp_tiny
datamodule: {preset: toy, partition: dirichlet, alpha: 0.3, batch_size: 16}
algorithm:
  _target_: my.plugins.FedAvgServerLR
  server_lr: 0.7
  global_rounds: 6
  local_epochs: 1
  lr: 0.05
  momentum: 0.9
eval_every: 1
)");
    of::core::Engine engine(std::move(cfg));
    const auto result = engine.run();
    std::cout << "custom algorithm '" << result.algorithm << "' ran "
              << result.rounds.size() << " rounds, final accuracy "
              << result.final_accuracy * 100.0f << "%\n";
    for (const auto& r : result.rounds)
      std::cout << "  round " << r.round << ": loss=" << r.train_loss
                << " acc=" << r.accuracy * 100.0f << "%\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
