// Privacy & compression plugins (paper §3.4.2 / §3.4.4): run the same
// federated job four ways — plain, DP, secure aggregation, TopK compression
// — changing nothing but one config section each time, and compare
// accuracy and upstream traffic.
//
//   ./private_compressed_fl [rounds]
#include <cstdlib>
#include <iostream>

#include "config/yaml.hpp"
#include "core/engine.hpp"

namespace {

of::config::ConfigNode base(int rounds) {
  auto cfg = of::config::parse_yaml(R"(
seed: 21
topology:
  _target_: src.omnifed.topology.CentralizedTopology
  num_clients: 6
model: mlp_tiny
datamodule: {preset: toy, partition: dirichlet, alpha: 0.5, batch_size: 16}
algorithm:
  _target_: src.omnifed.algorithm.FedAvg
  local_epochs: 1
  lr: 0.05
  momentum: 0.9
)");
  cfg.set_path("algorithm.global_rounds", of::config::ConfigNode::integer(rounds));
  cfg.set_path("eval_every", of::config::ConfigNode::integer(rounds));
  return cfg;
}

void run(const char* label, of::config::ConfigNode cfg) {
  of::core::Engine engine(std::move(cfg));
  const auto r = engine.run();
  std::cout.width(22);
  std::cout << std::left << label << " | acc ";
  std::cout.width(6);
  std::cout << r.final_accuracy * 100.0f << "% | upstream ";
  std::cout << r.root_comm.bytes_received / 1024 << " KB\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const int rounds = argc > 1 ? std::atoi(argv[1]) : 8;
    using of::config::ConfigNode;

    run("plain FedAvg", base(rounds));

    {  // one-section change: differential privacy
      auto cfg = base(rounds);
      cfg.set_path("privacy._target_",
                   ConfigNode::string("src.omnifed.privacy.DifferentialPrivacy"));
      cfg.set_path("privacy.epsilon", ConfigNode::floating(10.0));
      cfg.set_path("privacy.delta", ConfigNode::floating(1e-5));
      cfg.set_path("privacy.clip_norm", ConfigNode::floating(5.0));
      run("+ DP (eps=10)", std::move(cfg));
    }
    {  // one-section change: secure aggregation
      auto cfg = base(rounds);
      cfg.set_path("privacy._target_",
                   ConfigNode::string("src.omnifed.privacy.SecureAggregation"));
      run("+ secure aggregation", std::move(cfg));
    }
    {  // one-section change: TopK compression (paper Fig. 4 placement)
      auto cfg = base(rounds);
      cfg.set_path("topology.inner_comm.compression._target_",
                   ConfigNode::string("src.omnifed.communicator.compression.TopK"));
      cfg.set_path("topology.inner_comm.compression.k", ConfigNode::string("10x"));
      cfg.set_path("topology.inner_comm.compression.error_feedback",
                   ConfigNode::boolean(true));
      run("+ TopK-10x compression", std::move(cfg));
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
