// Quickstart: centralized FedAvg over 8 clients — the C++ analogue of the
// paper's Fig. 2 YAML. Build the same config programmatically, run the
// Engine, print per-round metrics.
//
//   ./quickstart [config.yaml] [--trace trace.json] [--profile prof.folded]
//                [--dump-config] [dotted.override=value ...]
//
// With no arguments it uses an embedded config equivalent to
// configs/quickstart.yaml. `--trace <path>` turns on of::obs tracing for the
// run and writes a Chrome trace-event file loadable at ui.perfetto.dev.
// `--profile <path>` turns on the SIGPROF sampling profiler and writes
// collapsed stacks (pipe through flamegraph.pl for an SVG).
// `--dump-config` prints the effective merged config (file + overrides +
// defaults materialized through of::refl) as YAML and exits.
#include <cstring>
#include <iostream>
#include <vector>

#include "config/compose.hpp"
#include "config/yaml.hpp"
#include "core/config_check.hpp"
#include "core/engine.hpp"

namespace {

constexpr const char* kDefaultConfig = R"(
seed: 42
topology:
  _target_: src.omnifed.topology.CentralizedTopology
  num_clients: 8
  inner_comm:
    _target_: src.omnifed.communicator.TorchDistCommunicator
model: mlp_tiny
datamodule:
  preset: toy
  partition: dirichlet
  alpha: 0.5
  batch_size: 16
algorithm:
  _target_: src.omnifed.algorithm.FedAvg
  global_rounds: 5
  local_epochs: 1
  lr: 0.05
  momentum: 0.9
  weight_decay: 1.0e-4
eval_every: 1
)";

}  // namespace

int main(int argc, char** argv) {
  try {
    // Peel off --trace <path> wherever it appears; everything else keeps the
    // existing [config.yaml] [override ...] convention.
    std::string trace_path;
    std::string profile_path;
    bool dump_config = false;
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--trace") == 0) {
        if (i + 1 >= argc) {
          std::cerr << "error: --trace requires a path argument\n";
          return 1;
        }
        trace_path = argv[++i];
      } else if (std::strcmp(argv[i], "--profile") == 0) {
        if (i + 1 >= argc) {
          std::cerr << "error: --profile requires a path argument\n";
          return 1;
        }
        profile_path = argv[++i];
      } else if (std::strcmp(argv[i], "--dump-config") == 0) {
        dump_config = true;
      } else {
        args.emplace_back(argv[i]);
      }
    }

    of::config::ConfigNode cfg;
    std::size_t first_override = 0;
    if (!args.empty() && args[0].find('=') == std::string::npos) {
      cfg = of::config::compose(args[0]);
      first_override = 1;
    } else {
      cfg = of::config::parse_yaml(kDefaultConfig);
    }
    for (std::size_t i = first_override; i < args.size(); ++i)
      of::config::apply_override(cfg, args[i]);
    if (!trace_path.empty()) {
      of::config::apply_override(cfg, "obs.enabled=true");
      of::config::apply_override(cfg, "obs.trace_path=" + trace_path);
    }
    if (!profile_path.empty()) {
      of::config::apply_override(cfg, "obs.profile.enabled=true");
      of::config::apply_override(cfg, "obs.profile.path=" + profile_path);
    }
    if (dump_config) {
      std::cout << of::core::dump_effective_config(cfg);
      return 0;
    }

    of::core::Engine engine(std::move(cfg));
    std::cout << "topology: " << engine.topology().kind << " with "
              << engine.topology().num_trainers() << " trainers\n";
    const of::core::RunResult result = engine.run();

    std::cout << "round |   loss   | accuracy | seconds\n";
    for (const auto& r : result.rounds) {
      std::cout.width(5);
      std::cout << r.round << " | ";
      std::cout.width(8);
      std::cout << r.train_loss << " | ";
      std::cout.width(8);
      if (r.accuracy >= 0)
        std::cout << r.accuracy * 100.0f;
      else
        std::cout << "--";
      std::cout << " | " << r.seconds << '\n';
    }
    std::cout << result.summary() << '\n';
    if (!trace_path.empty())
      std::cout << "trace written to " << trace_path
                << " (load it at ui.perfetto.dev or chrome://tracing)\n";
    if (!profile_path.empty())
      std::cout << "profile written to " << profile_path
                << " (collapsed stacks; feed to flamegraph.pl)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
