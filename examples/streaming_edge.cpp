// Real-time learning over streaming data (paper §3.4.3): a Kafka-like
// broker streams labelled samples to edge clients at a target rate; each
// client trains incrementally on the batches it manages to pull, and the
// cohort periodically averages models.
//
//   ./streaming_edge [clients] [rate_per_client] [seconds]
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "comm/inproc.hpp"
#include "data/dataset.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/zoo.hpp"
#include "streaming/consumer.hpp"
#include "streaming/producer.hpp"

int main(int argc, char** argv) {
  try {
    const std::size_t clients = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4;
    const double rate = argc > 2 ? std::atof(argv[2]) : 64.0;
    const double seconds = argc > 3 ? std::atof(argv[3]) : 3.0;

    const auto spec = of::data::preset("toy");
    const auto dataset = of::data::make_synthetic(spec, 7);

    of::streaming::Broker broker;
    for (std::size_t c = 0; c < clients; ++c)
      broker.create_topic("client" + std::to_string(c), 1);

    // Single publisher process streaming the dataset round-robin to the
    // per-client topics at `rate` records/s each.
    std::thread producer([&] {
      of::streaming::RateLimitedProducer gate(broker, "client0", rate);
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::duration<double>(seconds);
      std::size_t i = 0;
      while (std::chrono::steady_clock::now() < deadline) {
        const std::size_t idx = i % dataset.train.size();
        const auto payload = of::streaming::encode_sample(
            dataset.train.x().row(idx), dataset.train.label(idx));
        if (i % clients == 0) gate.produce(0, i, payload);
        else broker.produce("client" + std::to_string(i % clients), 0, i, payload);
        ++i;
      }
    });

    of::comm::InProcGroup group(static_cast<int>(clients));
    std::vector<std::thread> workers;
    std::vector<double> rates(clients, 0.0);
    std::vector<float> accs(clients, 0.0f);
    for (std::size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        auto model = of::nn::zoo::make_model("mlp_tiny", spec.dim, spec.classes, 1);
        of::nn::SGD opt(model.parameters(), 0.05f, 0.9f);
        of::streaming::StreamingDataLoader loader(broker, "client" + std::to_string(c), 1,
                                                  0, 16);
        auto& comm = group.comm(static_cast<int>(c));
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::duration<double>(seconds);
        std::size_t steps = 0;
        while (std::chrono::steady_clock::now() < deadline) {
          const auto batch = loader.next_batch(0.2);
          if (batch.size() == 0) continue;
          model.zero_grad();
          const auto lg = of::nn::softmax_cross_entropy(model.forward(batch.x), batch.y);
          model.backward(lg.grad);
          opt.step();
          // Periodic federated averaging over the cohort.
          if (++steps % 8 == 0) {
            auto flat = model.flat_parameters();
            comm.allreduce(flat, of::comm::ReduceOp::Mean);
            model.set_flat_parameters(flat);
          }
        }
        rates[c] = loader.effective_rate();
        model.set_training(false);
        const auto test = dataset.test.all();
        accs[c] = of::nn::accuracy(model.forward(test.x), test.y);
      });
    }
    producer.join();
    for (auto& w : workers) w.join();

    std::cout << "client | stream-rate (rec/s) | test accuracy\n";
    for (std::size_t c = 0; c < clients; ++c)
      std::cout << "   " << c << "   | " << rates[c] << " | " << accs[c] * 100 << "%\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
