// Scaffold, FedDyn, DiLoCo — drift-corrected and low-communication variants.
#include "algorithms/builtin.hpp"
#include "common/check.hpp"

namespace of::algorithms {
namespace {

std::vector<Tensor> zeros_like(const std::vector<Tensor>& ref) {
  std::vector<Tensor> out;
  out.reserve(ref.size());
  for (const auto& t : ref) out.emplace_back(t.shape());
  return out;
}

}  // namespace

// --- Scaffold -----------------------------------------------------------------
// Global payload: [w_0..w_{k-1}, c_0..c_{k-1}]; client payload: [Δw…, Δc…].

void Scaffold::on_train_start(TrainContext& ctx) {
  ctx.state["c_local"] = zeros_like(shared_values(*ctx.model));
}

void Scaffold::apply_global(TrainContext& ctx, const std::vector<Tensor>& global) {
  OF_CHECK_MSG(global.size() % 2 == 0, "Scaffold global payload must be [w…, c…]");
  const std::size_t k = global.size() / 2;
  std::vector<Tensor> w(global.begin(), global.begin() + static_cast<std::ptrdiff_t>(k));
  set_shared_values(*ctx.model, w);
  ctx.state["c_global"] =
      std::vector<Tensor>(global.begin() + static_cast<std::ptrdiff_t>(k), global.end());
  ctx.state["w_start"] = std::move(w);
}

TrainStats Scaffold::local_train(TrainContext& ctx) {
  // SCAFFOLD's Option-II control update c_i⁺ = c_i − c + (w_start−w_i)/(τ·lr)
  // is derived for *vanilla* local SGD; a momentum optimizer inflates the
  // displacement by ~1/(1−β) and mis-scales the variates, so the algorithm
  // swaps in its own plain-SGD inner optimizer (same LR, no momentum).
  if (!ctx.own_optimizer)
    ctx.own_optimizer = std::make_unique<nn::SGD>(ctx.model->parameters(),
                                                  ctx.optimizer->lr());
  nn::Optimizer* outer = ctx.optimizer;
  ctx.optimizer = ctx.own_optimizer.get();
  ctx.own_optimizer->set_lr(outer->lr());  // follow the schedule
  TrainStats stats = run_sgd_epochs(ctx, [this](TrainContext& c) {
    const auto& cg = c.state.at("c_global");
    const auto& cl = c.state.at("c_local");
    auto params = shared_parameters(*c.model);
    for (std::size_t i = 0; i < params.size(); ++i) {
      // corrected gradient: g − c_i + c
      params[i]->grad.add_(cg[i]);
      params[i]->grad.sub_(cl[i]);
    }
  });
  ctx.optimizer = outer;
  ctx.scalars["tau"] = static_cast<double>(std::max<std::size_t>(1, stats.steps));
  return stats;
}

std::vector<Tensor> Scaffold::client_update(TrainContext& ctx) {
  auto params = shared_parameters(*ctx.model);
  const auto& w_start = ctx.state.at("w_start");
  const auto& cg = ctx.state.at("c_global");
  auto& cl = ctx.state.at("c_local");
  const double tau = ctx.scalars.at("tau");
  const double lr = static_cast<double>(ctx.optimizer->lr());
  std::vector<Tensor> payload;
  payload.reserve(2 * params.size());
  // Δw = w_i − w_start.
  for (std::size_t i = 0; i < params.size(); ++i) {
    Tensor dw = params[i]->value;
    dw.sub_(w_start[i]);
    payload.push_back(std::move(dw));
  }
  // Option-II control update: c_i⁺ = c_i − c + (w_start − w_i)/(τ·lr).
  for (std::size_t i = 0; i < params.size(); ++i) {
    Tensor c_new = cl[i];
    c_new.sub_(cg[i]);
    Tensor drift = w_start[i];
    drift.sub_(params[i]->value);
    c_new.add_scaled_(drift, static_cast<float>(1.0 / (tau * lr)));
    Tensor dc = c_new;
    dc.sub_(cl[i]);
    cl[i] = std::move(c_new);
    payload.push_back(std::move(dc));
  }
  return payload;
}

std::vector<Tensor> Scaffold::initial_global(Model& reference) {
  std::vector<Tensor> g = shared_values(reference);
  const std::vector<Tensor> c = zeros_like(g);
  g.insert(g.end(), c.begin(), c.end());
  return g;
}

std::vector<Tensor> Scaffold::server_update(ServerState& state,
                                            const std::vector<Tensor>& mean) {
  OF_CHECK_MSG(mean.size() == state.global.size(), "Scaffold payload size drift");
  const std::size_t k = mean.size() / 2;
  // w += mean(Δw); c += mean(Δc)  (full participation: |S|/N = 1).
  for (std::size_t i = 0; i < mean.size(); ++i) state.global[i].add_(mean[i]);
  (void)k;
  return state.global;
}

// --- FedDyn ------------------------------------------------------------------

void FedDyn::on_train_start(TrainContext& ctx) {
  ctx.state["lambda"] = zeros_like(shared_values(*ctx.model));
}

void FedDyn::on_round_start(TrainContext& ctx) {
  ctx.state["w_global"] = shared_values(*ctx.model);
}

TrainStats FedDyn::local_train(TrainContext& ctx) {
  const float alpha = ctx.params.get_or<float>("alpha", 0.01f);
  return run_sgd_epochs(ctx, [this, alpha](TrainContext& c) {
    const auto& wg = c.state.at("w_global");
    const auto& lam = c.state.at("lambda");
    auto params = shared_parameters(*c.model);
    for (std::size_t i = 0; i < params.size(); ++i) {
      // grad += α(w − w_global) − λ_i
      params[i]->grad.add_scaled_(params[i]->value, alpha);
      params[i]->grad.add_scaled_(wg[i], -alpha);
      params[i]->grad.sub_(lam[i]);
    }
  });
}

void FedDyn::on_round_end(TrainContext& ctx) {
  const float alpha = ctx.params.get_or<float>("alpha", 0.01f);
  auto params = shared_parameters(*ctx.model);
  const auto& wg = ctx.state.at("w_global");
  auto& lam = ctx.state.at("lambda");
  for (std::size_t i = 0; i < params.size(); ++i) {
    // λ_i ← λ_i − α (w_i − w_global)
    lam[i].add_scaled_(params[i]->value, -alpha);
    lam[i].add_scaled_(wg[i], alpha);
  }
}

std::vector<Tensor> FedDyn::server_update(ServerState& state,
                                          const std::vector<Tensor>& mean) {
  const float alpha = state.params.get_or<float>("alpha", 0.01f);
  if (state.buffers.find("h") == state.buffers.end())
    state.buffers["h"] = zeros_like(mean);
  auto& h = state.buffers.at("h");
  OF_CHECK_MSG(mean.size() == state.global.size(), "FedDyn payload size drift");
  for (std::size_t i = 0; i < mean.size(); ++i) {
    // h ← h − α (mean − w_prev);  w ← mean − h/α
    Tensor drift = mean[i];
    drift.sub_(state.global[i]);
    h[i].add_scaled_(drift, -alpha);
    state.global[i] = mean[i];
    state.global[i].add_scaled_(h[i], -1.0f / alpha);
  }
  return state.global;
}

// --- DiLoCo ------------------------------------------------------------------

void DiLoCo::on_round_start(TrainContext& ctx) {
  ctx.state["w_start"] = shared_values(*ctx.model);
  if (!ctx.own_optimizer) {
    // Inner AdamW, as the DiLoCo recipe prescribes.
    const float inner_lr = ctx.params.get_or<float>("inner_lr", 1e-3f);
    const float wd = ctx.params.get_or<float>("inner_weight_decay", 0.01f);
    ctx.own_optimizer =
        std::make_unique<nn::AdamW>(ctx.model->parameters(), inner_lr, 0.9f, 0.999f,
                                    1e-8f, wd);
  }
}

TrainStats DiLoCo::local_train(TrainContext& ctx) {
  // Swap in the inner optimizer for the local phase.
  nn::Optimizer* outer = ctx.optimizer;
  nn::LRScheduler* sched = ctx.scheduler;
  ctx.optimizer = ctx.own_optimizer.get();
  ctx.scheduler = nullptr;  // AdamW runs at a fixed inner LR
  TrainStats stats = run_sgd_epochs(ctx);
  ctx.optimizer = outer;
  ctx.scheduler = sched;
  return stats;
}

std::vector<Tensor> DiLoCo::client_update(TrainContext& ctx) {
  // Outer pseudo-gradient: w_start − w_local.
  const auto& w_start = ctx.state.at("w_start");
  auto params = shared_parameters(*ctx.model);
  std::vector<Tensor> payload;
  payload.reserve(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    Tensor d = w_start[i];
    d.sub_(params[i]->value);
    payload.push_back(std::move(d));
  }
  return payload;
}

std::vector<Tensor> DiLoCo::server_update(ServerState& state,
                                          const std::vector<Tensor>& mean) {
  const float outer_lr = state.params.get_or<float>("outer_lr", 0.7f);
  const float beta = state.params.get_or<float>("outer_momentum", 0.9f);
  if (state.buffers.find("momentum") == state.buffers.end())
    state.buffers["momentum"] = zeros_like(mean);
  auto& v = state.buffers.at("momentum");
  OF_CHECK_MSG(mean.size() == state.global.size(), "DiLoCo payload size drift");
  for (std::size_t i = 0; i < mean.size(); ++i) {
    // Nesterov momentum SGD on the pseudo-gradient.
    v[i].scale_(beta);
    v[i].add_(mean[i]);
    Tensor step = mean[i];
    step.add_scaled_(v[i], beta);  // g + β v  (Nesterov look-ahead)
    state.global[i].add_scaled_(step, -outer_lr);
  }
  return state.global;
}

}  // namespace of::algorithms
