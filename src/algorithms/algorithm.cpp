#include "algorithms/algorithm.hpp"

#include "common/check.hpp"

namespace of::algorithms {

std::vector<Parameter*> Algorithm::shared_parameters(Model& m) const {
  std::vector<Parameter*> out;
  for (auto* p : m.parameters())
    if (shares_parameter(*p)) out.push_back(p);
  return out;
}

std::vector<Tensor> Algorithm::shared_values(Model& m) const {
  std::vector<Tensor> out;
  for (auto* p : shared_parameters(m)) out.push_back(p->value);
  return out;
}

void Algorithm::set_shared_values(Model& m, const std::vector<Tensor>& values) const {
  auto params = shared_parameters(m);
  OF_CHECK_MSG(params.size() == values.size(),
               name() << ": global payload has " << values.size() << " tensors, model has "
                      << params.size() << " shared parameters");
  for (std::size_t i = 0; i < params.size(); ++i) {
    OF_CHECK_MSG(values[i].same_shape(params[i]->value),
                 name() << ": shape mismatch applying global to " << params[i]->name);
    params[i]->value = values[i];
  }
}

void Algorithm::apply_global(TrainContext& ctx, const std::vector<Tensor>& global) {
  set_shared_values(*ctx.model, global);
}

TrainStats Algorithm::run_sgd_epochs(TrainContext& ctx,
                                     const std::function<void(TrainContext&)>& pre_step) {
  OF_CHECK_MSG(ctx.model && ctx.optimizer && ctx.loader, "incomplete TrainContext");
  TrainStats stats;
  ctx.model->set_training(true);
  for (std::size_t epoch = 0; epoch < ctx.local_epochs; ++epoch) {
    if (ctx.scheduler) ctx.scheduler->on_epoch(ctx.epochs_done);
    for (std::size_t b = 0; b < ctx.loader->num_batches(); ++b) {
      const data::Batch batch = ctx.loader->batch(b);
      ctx.model->zero_grad();
      const Tensor logits = ctx.model->forward(batch.x);
      const nn::LossGrad lg = nn::softmax_cross_entropy(logits, batch.y);
      ctx.model->backward(lg.grad);
      if (pre_step) pre_step(ctx);
      ctx.optimizer->step();
      stats.loss_sum += lg.loss;
      ++stats.steps;
      stats.samples += batch.size();
    }
    ctx.loader->reshuffle();
    ++ctx.epochs_done;
  }
  return stats;
}

TrainStats Algorithm::local_train(TrainContext& ctx) { return run_sgd_epochs(ctx); }

std::vector<Tensor> Algorithm::client_update(TrainContext& ctx) {
  return shared_values(*ctx.model);
}

std::vector<Tensor> Algorithm::initial_global(Model& reference) {
  return shared_values(reference);
}

std::vector<Tensor> Algorithm::server_update(ServerState& state,
                                             const std::vector<Tensor>& mean_update) {
  state.global = mean_update;
  return state.global;
}

float evaluate_accuracy(Model& model, const data::InMemoryDataset& test,
                        std::size_t batch_size) {
  model.set_training(false);
  std::size_t correct = 0;
  for (std::size_t begin = 0; begin < test.size(); begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, test.size());
    std::vector<std::size_t> idx(end - begin);
    for (std::size_t i = begin; i < end; ++i) idx[i - begin] = i;
    const data::Batch batch = test.gather(idx);
    const Tensor logits = model.forward(batch.x);
    const auto preds = logits.argmax_rows();
    for (std::size_t i = 0; i < preds.size(); ++i)
      if (preds[i] == batch.y[i]) ++correct;
  }
  model.set_training(true);
  return test.size() ? static_cast<float>(correct) / static_cast<float>(test.size()) : 0.0f;
}

}  // namespace of::algorithms
