// Algorithm — OmniFed's FL training-logic plugin (paper §3.3).
//
// An Algorithm owns the learning strategy through lifecycle hooks; the Node
// owns resources (model, data, optimizer) and the topology owns transport.
// One round follows the same protocol on every topology:
//
//   1. the global payload G (a list of tensors) reaches every trainer
//      → apply_global(ctx, G)
//   2. local_train(ctx) runs E local epochs
//   3. client_update(ctx) produces the client payload P_i
//   4. transport computes the weighted mean P̄ of all payloads (star
//      gather, ring all-reduce, homomorphic sum, …)
//   5. server_update(state, P̄) produces the next global payload — run on
//      the aggregator for centralized/hierarchical topologies and
//      replicated deterministically on every node for decentralized ones
//
// Every built-in algorithm is expressed so that step 4 is a plain weighted
// mean (deltas, taus, and control variates ride inside the payload); that
// single property is what lets compression, DP, HE, and SA compose with
// any algorithm and any topology without code changes.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "config/node.hpp"
#include "config/registry.hpp"
#include "data/loader.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"

namespace of::algorithms {

using nn::Model;
using nn::Parameter;
using tensor::Rng;
using tensor::Tensor;

struct TrainStats {
  double loss_sum = 0.0;
  std::size_t steps = 0;
  std::size_t samples = 0;

  double mean_loss() const noexcept {
    return steps ? loss_sum / static_cast<double>(steps) : 0.0;
  }
};

// Everything a trainer-side hook may touch. Owned by the Node.
struct TrainContext {
  Model* model = nullptr;
  nn::Optimizer* optimizer = nullptr;
  data::DataLoader* loader = nullptr;
  int client_id = 0;
  int num_clients = 1;
  std::size_t local_epochs = 1;
  std::size_t round = 0;
  std::size_t epochs_done = 0;  // cumulative, drives the LR scheduler
  nn::LRScheduler* scheduler = nullptr;
  Rng* rng = nullptr;
  config::ConfigNode params;  // the algorithm: section of the config

  // Algorithm-private state. Cleared between runs, never serialized.
  std::map<std::string, std::vector<Tensor>> state;
  std::map<std::string, double> scalars;
  Model prev_model;  // Moon: previous local model
  Model aux_model;   // Moon: global snapshot / Ditto: personal model
  // Algorithm-owned optimizer (DiLoCo's inner AdamW replaces the Node's SGD).
  std::unique_ptr<nn::Optimizer> own_optimizer;
};

// Aggregator-side state, replicated on every node for decentralized runs.
struct ServerState {
  std::vector<Tensor> global;  // current global payload
  std::map<std::string, std::vector<Tensor>> buffers;
  config::ConfigNode params;
  std::size_t round = 0;
};

class Algorithm {
 public:
  Algorithm() = default;
  Algorithm(const Algorithm&) = delete;
  Algorithm& operator=(const Algorithm&) = delete;
  virtual ~Algorithm() = default;

  virtual std::string name() const = 0;

  // --- trainer-side lifecycle hooks (override what you need) --------------
  virtual void on_train_start(TrainContext& ctx) { (void)ctx; }
  virtual void on_round_start(TrainContext& ctx) { (void)ctx; }
  virtual void apply_global(TrainContext& ctx, const std::vector<Tensor>& global);
  virtual TrainStats local_train(TrainContext& ctx);
  virtual std::vector<Tensor> client_update(TrainContext& ctx);
  virtual void on_round_end(TrainContext& ctx) { (void)ctx; }

  // --- aggregator-side -------------------------------------------------------
  // The payload broadcast before round 0, derived from a reference model.
  virtual std::vector<Tensor> initial_global(Model& reference);
  // Consume the weighted-mean payload, produce the next global payload.
  virtual std::vector<Tensor> server_update(ServerState& state,
                                            const std::vector<Tensor>& mean_update);

  // --- policy -----------------------------------------------------------------
  // Parameter filter: FedBN keeps BatchNorm local, FedPer keeps the head.
  virtual bool shares_parameter(const Parameter& p) const {
    (void)p;
    return true;
  }
  // Model used for accuracy evaluation (Ditto evaluates its personal model).
  virtual Model* eval_model(TrainContext& ctx) { return ctx.model; }

 protected:
  // Shared-parameter views in deterministic model order.
  std::vector<Parameter*> shared_parameters(Model& m) const;
  std::vector<Tensor> shared_values(Model& m) const;
  void set_shared_values(Model& m, const std::vector<Tensor>& values) const;

  // Default SGD inner loop; `pre_step` runs between backward and
  // optimizer.step() so subclasses can adjust gradients (FedProx's proximal
  // term, Scaffold's control variates, FedDyn's linear correction).
  TrainStats run_sgd_epochs(TrainContext& ctx,
                            const std::function<void(TrainContext&)>& pre_step = nullptr);
};

// Evaluate top-1 accuracy of a model over a dataset (eval mode, batched).
float evaluate_accuracy(Model& model, const data::InMemoryDataset& test,
                        std::size_t batch_size = 256);

using AlgorithmRegistry = config::Registry<Algorithm>;
AlgorithmRegistry& algorithm_registry();
std::unique_ptr<Algorithm> make_algorithm(const config::ConfigNode& cfg);
std::unique_ptr<Algorithm> make_algorithm(const std::string& target_name);
std::vector<std::string> algorithm_names();

}  // namespace of::algorithms
