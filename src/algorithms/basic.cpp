// FedProx, FedMom, FedNova — the "classic" FedAvg variants.
#include "algorithms/builtin.hpp"
#include "common/check.hpp"

namespace of::algorithms {

// --- FedAvgDelta -----------------------------------------------------------------

void FedAvgDelta::on_round_start(TrainContext& ctx) {
  ctx.state["w_start"] = shared_values(*ctx.model);
}

std::vector<Tensor> FedAvgDelta::client_update(TrainContext& ctx) {
  const auto& w_start = ctx.state.at("w_start");
  auto params = shared_parameters(*ctx.model);
  OF_CHECK(params.size() == w_start.size());
  std::vector<Tensor> payload;
  payload.reserve(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    Tensor d = params[i]->value;
    d.sub_(w_start[i]);
    payload.push_back(std::move(d));
  }
  return payload;
}

std::vector<Tensor> FedAvgDelta::server_update(ServerState& state,
                                               const std::vector<Tensor>& mean) {
  OF_CHECK_MSG(mean.size() == state.global.size(), "FedAvgDelta payload size drift");
  for (std::size_t i = 0; i < mean.size(); ++i) state.global[i].add_(mean[i]);
  return state.global;
}

// --- FedProx -----------------------------------------------------------------

void FedProx::on_round_start(TrainContext& ctx) {
  // Stash the round-start (global) parameters for the proximal pull.
  ctx.state["w_global"] = shared_values(*ctx.model);
}

TrainStats FedProx::local_train(TrainContext& ctx) {
  const float mu = ctx.params.get_or<float>("mu", 0.01f);
  return run_sgd_epochs(ctx, [this, mu](TrainContext& c) {
    const auto& w_global = c.state.at("w_global");
    auto params = shared_parameters(*c.model);
    OF_CHECK(params.size() == w_global.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      // grad += μ (w − w_global)
      params[i]->grad.add_scaled_(params[i]->value, mu);
      params[i]->grad.add_scaled_(w_global[i], -mu);
    }
  });
}

// --- FedMom ------------------------------------------------------------------

std::vector<Tensor> FedMom::server_update(ServerState& state,
                                          const std::vector<Tensor>& mean) {
  const float beta = state.params.get_or<float>("beta", 0.9f);
  if (state.round == 0 && state.buffers.find("momentum") == state.buffers.end()) {
    std::vector<Tensor> v;
    for (const auto& t : mean) v.emplace_back(t.shape());
    state.buffers["momentum"] = std::move(v);
  }
  auto& v = state.buffers.at("momentum");
  OF_CHECK_MSG(v.size() == mean.size() && state.global.size() == mean.size(),
               "FedMom payload size drift");
  for (std::size_t i = 0; i < mean.size(); ++i) {
    // Δ = w_prev − mean;  v ← β v + Δ;  w ← w_prev − v
    Tensor delta = state.global[i];
    delta.sub_(mean[i]);
    v[i].scale_(beta);
    v[i].add_(delta);
    state.global[i].sub_(v[i]);
  }
  return state.global;
}

// --- FedNova -----------------------------------------------------------------

void FedNova::on_round_start(TrainContext& ctx) {
  ctx.state["w_start"] = shared_values(*ctx.model);
  ctx.scalars["tau"] = 0.0;
}

TrainStats FedNova::local_train(TrainContext& ctx) {
  TrainStats stats = run_sgd_epochs(ctx);
  ctx.scalars["tau"] = static_cast<double>(stats.steps);
  return stats;
}

std::vector<Tensor> FedNova::client_update(TrainContext& ctx) {
  const auto& w_start = ctx.state.at("w_start");
  const double tau = std::max(1.0, ctx.scalars.at("tau"));
  std::vector<Tensor> payload;
  auto params = shared_parameters(*ctx.model);
  OF_CHECK(params.size() == w_start.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    // Normalized direction d_i = (w_start − w_i) / τ_i.
    Tensor d = w_start[i];
    d.sub_(params[i]->value);
    d.scale_(static_cast<float>(1.0 / tau));
    payload.push_back(std::move(d));
  }
  payload.push_back(Tensor({1}, static_cast<float>(tau)));
  return payload;
}

std::vector<Tensor> FedNova::server_update(ServerState& state,
                                           const std::vector<Tensor>& mean) {
  OF_CHECK_MSG(mean.size() == state.global.size() + 1,
               "FedNova payload must be deltas + tau");
  const float tau_eff = mean.back()[0];  // mean of client taus
  for (std::size_t i = 0; i < state.global.size(); ++i)
    state.global[i].add_scaled_(mean[i], -tau_eff);
  return state.global;
}

}  // namespace of::algorithms
