// The 11 built-in FL algorithms (paper §3.4.1): FedAvg, FedProx, FedMom,
// FedNova, Scaffold, Moon, FedPer, FedDyn, FedBN, Ditto, DiLoCo.
//
// Every algorithm is a single class overriding only the hooks it needs —
// the paper's "single-file algorithm plugin" claim, transplanted to C++.
// Payload conventions are documented per class; all of them keep step 4
// of the round protocol a plain weighted mean (see algorithm.hpp).
#pragma once

#include "algorithms/algorithm.hpp"

namespace of::algorithms {

// FedAvg (McMahan et al. 2017): payload = model parameters; global = mean.
class FedAvg : public Algorithm {
 public:
  std::string name() const override { return "FedAvg"; }
};

// FedAvgDelta: mathematically identical to FedAvg (global = w_start +
// mean(w_i − w_start) = mean(w_i)) but transmits *deltas*, so gradient
// compressors act on gradient-like quantities instead of raw weights —
// the wire encoding the paper's §3.4.2 gradient-compression study implies.
class FedAvgDelta final : public Algorithm {
 public:
  std::string name() const override { return "FedAvgDelta"; }
  void on_round_start(TrainContext& ctx) override;
  std::vector<Tensor> client_update(TrainContext& ctx) override;
  std::vector<Tensor> server_update(ServerState& state,
                                    const std::vector<Tensor>& mean) override;
};

// FedProx (Li et al. 2018): FedAvg + proximal term μ/2·‖w − w_global‖² in
// the local objective, realized as +μ(w − w_global) on the gradients.
class FedProx final : public Algorithm {
 public:
  std::string name() const override { return "FedProx"; }
  void on_round_start(TrainContext& ctx) override;
  TrainStats local_train(TrainContext& ctx) override;
};

// FedMom (Huo et al. 2020): server-side momentum over the aggregated
// model. Payload = parameters; server: Δ = w_prev − mean,
// v ← β·v + Δ, w ← w_prev − v.
class FedMom final : public Algorithm {
 public:
  std::string name() const override { return "FedMom"; }
  std::vector<Tensor> server_update(ServerState& state,
                                    const std::vector<Tensor>& mean) override;
};

// FedNova (Wang et al. 2020): normalized averaging for heterogeneous local
// step counts. Payload = [delta/τ_i per parameter…, τ_i]; server:
// w ← w_prev − mean(τ)·mean(delta/τ).
class FedNova final : public Algorithm {
 public:
  std::string name() const override { return "FedNova"; }
  void on_round_start(TrainContext& ctx) override;
  TrainStats local_train(TrainContext& ctx) override;
  std::vector<Tensor> client_update(TrainContext& ctx) override;
  std::vector<Tensor> server_update(ServerState& state,
                                    const std::vector<Tensor>& mean) override;
};

// SCAFFOLD (Karimireddy et al. 2020): control variates correct client
// drift. Payload = [Δw…, Δc…]; global payload = [w…, c…]. Local gradients
// are corrected by (c − c_i).
class Scaffold final : public Algorithm {
 public:
  std::string name() const override { return "Scaffold"; }
  void on_train_start(TrainContext& ctx) override;
  void apply_global(TrainContext& ctx, const std::vector<Tensor>& global) override;
  TrainStats local_train(TrainContext& ctx) override;
  std::vector<Tensor> client_update(TrainContext& ctx) override;
  std::vector<Tensor> initial_global(Model& reference) override;
  std::vector<Tensor> server_update(ServerState& state,
                                    const std::vector<Tensor>& mean) override;
};

// MOON (Li et al. 2021): model-contrastive loss pulls local features
// toward the global model's and away from the previous local model's.
class Moon final : public Algorithm {
 public:
  std::string name() const override { return "Moon"; }
  void apply_global(TrainContext& ctx, const std::vector<Tensor>& global) override;
  TrainStats local_train(TrainContext& ctx) override;
  void on_round_end(TrainContext& ctx) override;
};

// FedPer (Arivazhagan et al. 2019): base layers are federated, the
// classification head stays personal.
class FedPer final : public Algorithm {
 public:
  std::string name() const override { return "FedPer"; }
  bool shares_parameter(const Parameter& p) const override { return !p.is_head; }
};

// FedDyn (Acar et al. 2021): dynamic regularization. Each client keeps a
// dual variable λ_i; local loss −⟨λ_i, w⟩ + α/2·‖w − w_global‖²; server
// integrates drift h and shifts the average.
class FedDyn final : public Algorithm {
 public:
  std::string name() const override { return "FedDyn"; }
  void on_train_start(TrainContext& ctx) override;
  void on_round_start(TrainContext& ctx) override;
  TrainStats local_train(TrainContext& ctx) override;
  void on_round_end(TrainContext& ctx) override;
  std::vector<Tensor> server_update(ServerState& state,
                                    const std::vector<Tensor>& mean) override;
};

// FedBN (Li et al. 2021): BatchNorm parameters never leave the client.
class FedBN final : public Algorithm {
 public:
  std::string name() const override { return "FedBN"; }
  bool shares_parameter(const Parameter& p) const override { return !p.is_batchnorm; }
};

// Ditto (Li et al. 2021): a personal model v_i trained with a proximal pull
// toward the federated global model; evaluation uses the personal model.
class Ditto final : public Algorithm {
 public:
  std::string name() const override { return "Ditto"; }
  TrainStats local_train(TrainContext& ctx) override;
  Model* eval_model(TrainContext& ctx) override;
};

// DiLoCo (Douillard et al. 2023): H inner steps of AdamW locally, outer
// Nesterov-momentum SGD over the pseudo-gradient (w_start − w_local).
class DiLoCo final : public Algorithm {
 public:
  std::string name() const override { return "DiLoCo"; }
  void on_round_start(TrainContext& ctx) override;
  TrainStats local_train(TrainContext& ctx) override;
  std::vector<Tensor> client_update(TrainContext& ctx) override;
  std::vector<Tensor> server_update(ServerState& state,
                                    const std::vector<Tensor>& mean) override;
};

}  // namespace of::algorithms
