#include "algorithms/builtin.hpp"

namespace of::algorithms {
namespace {

template <typename A>
void add(AlgorithmRegistry& reg, const char* name) {
  reg.add(name, [](const config::ConfigNode&) -> std::unique_ptr<Algorithm> {
    return std::make_unique<A>();
  });
}

void register_builtin(AlgorithmRegistry& reg) {
  add<FedAvg>(reg, "FedAvg");
  add<FedAvgDelta>(reg, "FedAvgDelta");
  add<FedProx>(reg, "FedProx");
  add<FedMom>(reg, "FedMom");
  add<FedNova>(reg, "FedNova");
  add<Scaffold>(reg, "Scaffold");
  add<Moon>(reg, "Moon");
  add<FedPer>(reg, "FedPer");
  add<FedDyn>(reg, "FedDyn");
  add<FedBN>(reg, "FedBN");
  add<Ditto>(reg, "Ditto");
  add<DiLoCo>(reg, "DiLoCo");
}

}  // namespace

AlgorithmRegistry& algorithm_registry() {
  static AlgorithmRegistry reg = [] {
    AlgorithmRegistry r;
    register_builtin(r);
    return r;
  }();
  return reg;
}

std::unique_ptr<Algorithm> make_algorithm(const config::ConfigNode& cfg) {
  return algorithm_registry().create(cfg);
}

std::unique_ptr<Algorithm> make_algorithm(const std::string& target_name) {
  return algorithm_registry().create(target_name, config::ConfigNode::map());
}

std::vector<std::string> algorithm_names() {
  return {"FedAvg", "FedProx", "FedMom", "FedNova", "Scaffold", "Moon",
          "FedPer", "FedDyn",  "FedBN",  "Ditto",   "DiLoCo"};
}

}  // namespace of::algorithms
