// Moon and Ditto — the personalization-flavoured algorithms that keep extra
// model copies on the client. (FedPer and FedBN are pure parameter filters
// and live entirely in builtin.hpp.)
#include <cmath>

#include "algorithms/builtin.hpp"
#include "common/check.hpp"

namespace of::algorithms {
namespace {

// Row-wise cosine similarity s_b = <a_b, c_b>/(|a_b||c_b|) and its gradient
// with respect to a. Returns similarities; accumulates d(mean loss)/da into
// `grad_a` scaled by `coeff`.
std::vector<float> cosine_rows(const Tensor& a, const Tensor& b) {
  const std::size_t rows = a.size(0), cols = a.size(1);
  std::vector<float> sims(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      dot += a(r, c) * b(r, c);
      na += a(r, c) * a(r, c);
      nb += b(r, c) * b(r, c);
    }
    sims[r] = static_cast<float>(dot / (std::sqrt(na * nb) + 1e-12));
  }
  return sims;
}

// d cos(a_r, b_r)/d a_r = b/(|a||b|) − cos·a/|a|².
void add_cosine_grad(const Tensor& a, const Tensor& b, std::size_t row, float coeff,
                     Tensor& grad_a) {
  const std::size_t cols = a.size(1);
  double na2 = 0.0, nb2 = 0.0, dot = 0.0;
  for (std::size_t c = 0; c < cols; ++c) {
    na2 += a(row, c) * a(row, c);
    nb2 += b(row, c) * b(row, c);
    dot += a(row, c) * b(row, c);
  }
  const double na = std::sqrt(na2) + 1e-12, nb = std::sqrt(nb2) + 1e-12;
  const double cos = dot / (na * nb);
  for (std::size_t c = 0; c < cols; ++c) {
    const double g = b(row, c) / (na * nb) - cos * a(row, c) / (na2 + 1e-12);
    grad_a(row, c) += coeff * static_cast<float>(g);
  }
}

}  // namespace

// --- Moon --------------------------------------------------------------------

void Moon::apply_global(TrainContext& ctx, const std::vector<Tensor>& global) {
  Algorithm::apply_global(ctx, global);
  // Snapshot the freshly applied global model for the contrastive anchor.
  ctx.aux_model = ctx.model->clone();
  ctx.aux_model.set_training(false);
}

TrainStats Moon::local_train(TrainContext& ctx) {
  const float mu = ctx.params.get_or<float>("mu", 1.0f);
  const float temperature = ctx.params.get_or<float>("temperature", 0.5f);
  const bool have_prev = ctx.prev_model.valid();

  TrainStats stats;
  ctx.model->set_training(true);
  for (std::size_t epoch = 0; epoch < ctx.local_epochs; ++epoch) {
    if (ctx.scheduler) ctx.scheduler->on_epoch(ctx.epochs_done);
    for (std::size_t b = 0; b < ctx.loader->num_batches(); ++b) {
      const data::Batch batch = ctx.loader->batch(b);
      ctx.model->zero_grad();
      // Task loss through the full network.
      const Tensor logits = ctx.model->forward(batch.x);
      const nn::LossGrad lg = nn::softmax_cross_entropy(logits, batch.y);
      ctx.model->backward(lg.grad);
      double loss = lg.loss;
      if (have_prev) {
        // Model-contrastive term. The CE backward has consumed its cached
        // activations, so re-running the feature extractor is safe.
        const Tensor z = ctx.model->features(batch.x);
        const Tensor z_glob = ctx.aux_model.features(batch.x);
        const Tensor z_prev = ctx.prev_model.features(batch.x);
        const auto sim_g = cosine_rows(z, z_glob);
        const auto sim_p = cosine_rows(z, z_prev);
        const std::size_t rows = z.size(0);
        Tensor dz(z.shape());
        double lcon = 0.0;
        for (std::size_t r = 0; r < rows; ++r) {
          const float eg = std::exp(sim_g[r] / temperature);
          const float ep = std::exp(sim_p[r] / temperature);
          const float denom = eg + ep;
          lcon += -std::log(std::max(eg / denom, 1e-12f));
          // dL/dsim_g = −(1 − eg/denom)/T ; dL/dsim_p = (ep/denom)/T
          const float d_sim_g = -(1.0f - eg / denom) / temperature;
          const float d_sim_p = (ep / denom) / temperature;
          const float scale = mu / static_cast<float>(rows);
          add_cosine_grad(z, z_glob, r, scale * d_sim_g, dz);
          add_cosine_grad(z, z_prev, r, scale * d_sim_p, dz);
        }
        ctx.model->features_backward(dz);
        loss += mu * lcon / static_cast<double>(rows);
      }
      ctx.optimizer->step();
      stats.loss_sum += loss;
      ++stats.steps;
      stats.samples += batch.size();
    }
    ctx.loader->reshuffle();
    ++ctx.epochs_done;
  }
  return stats;
}

void Moon::on_round_end(TrainContext& ctx) {
  ctx.prev_model = ctx.model->clone();
  ctx.prev_model.set_training(false);
}

// --- Ditto -------------------------------------------------------------------

TrainStats Ditto::local_train(TrainContext& ctx) {
  // At entry the model carries the just-applied global parameters.
  const std::vector<Tensor> w_global = shared_values(*ctx.model);
  // Phase 1: the federated model trains exactly like FedAvg.
  TrainStats stats = run_sgd_epochs(ctx);

  // Phase 2: the personal model v_i takes prox-regularized steps toward
  // the global parameters.
  const float lambda = ctx.params.get_or<float>("lambda", 0.5f);
  const float lr = ctx.params.get_or<float>("personal_lr", ctx.optimizer->lr());
  if (!ctx.aux_model.valid()) ctx.aux_model = ctx.model->clone();
  ctx.aux_model.set_training(true);
  auto personal_params = shared_parameters(ctx.aux_model);
  OF_CHECK(personal_params.size() == w_global.size());
  for (std::size_t b = 0; b < ctx.loader->num_batches(); ++b) {
    const data::Batch batch = ctx.loader->batch(b);
    ctx.aux_model.zero_grad();
    const Tensor logits = ctx.aux_model.forward(batch.x);
    const nn::LossGrad lg = nn::softmax_cross_entropy(logits, batch.y);
    ctx.aux_model.backward(lg.grad);
    // v ← v − lr (∇f(v) + λ (v − w_global)) — personal params only; any
    // non-shared parameters follow plain SGD.
    for (std::size_t i = 0; i < personal_params.size(); ++i) {
      auto& p = *personal_params[i];
      p.grad.add_scaled_(p.value, lambda);
      p.grad.add_scaled_(w_global[i], -lambda);
    }
    for (auto* p : ctx.aux_model.parameters()) p->value.add_scaled_(p->grad, -lr);
  }
  return stats;
}

Model* Ditto::eval_model(TrainContext& ctx) {
  return ctx.aux_model.valid() ? &ctx.aux_model : ctx.model;
}

}  // namespace of::algorithms
