#include "comm/amqp.hpp"

#include <chrono>

#include "common/check.hpp"
#include "obs/trace.hpp"

namespace of::comm {
namespace {

// Queue-record frame: i32 src | i32 tag | payload.
Bytes frame(int src, int tag, ConstByteSpan payload) {
  Bytes out;
  out.reserve(8 + payload.size());
  tensor::append_pod<std::int32_t>(out, src);
  tensor::append_pod<std::int32_t>(out, tag);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void unframe(const Bytes& record, int& src, int& tag, Bytes& payload) {
  std::size_t off = 0;
  src = tensor::read_pod<std::int32_t>(record, off);
  tag = tensor::read_pod<std::int32_t>(record, off);
  payload.assign(record.begin() + static_cast<std::ptrdiff_t>(off), record.end());
}

}  // namespace

AmqpGroup::AmqpGroup(int world_size) : world_size_(world_size) {
  OF_CHECK_MSG(world_size >= 1, "group needs at least one rank");
  for (int r = 0; r < world_size; ++r) broker_.create_topic(queue_name(r), 1);
  comms_.reserve(static_cast<std::size_t>(world_size));
  for (int r = 0; r < world_size; ++r)
    comms_.push_back(std::make_unique<AmqpCommunicator>(*this, r));
}

AmqpCommunicator& AmqpGroup::comm(int rank) {
  OF_CHECK_MSG(rank >= 0 && rank < world_size_, "rank " << rank << " out of range");
  return *comms_[static_cast<std::size_t>(rank)];
}

AmqpCommunicator::AmqpCommunicator(AmqpGroup& group, int rank)
    : group_(&group), rank_(rank) {}

int AmqpCommunicator::world_size() const { return group_->world_size(); }

void AmqpCommunicator::send_bytes(int dst, int tag, ConstByteSpan payload) {
  OF_CHECK_MSG(dst >= 0 && dst < world_size(), "publish to invalid rank " << dst);
  OF_CHECK_MSG(dst != rank_, "self-publish is not supported");
  account_send(payload.size());
  obs::instant(obs::Name::AmqpPublish, rank_, 0, payload.size());
  group_->broker().produce(AmqpGroup::queue_name(dst), 0,
                           static_cast<std::uint64_t>(rank_), frame(rank_, tag, payload));
}

std::optional<std::pair<int, Bytes>> AmqpCommunicator::pull_any(int tag,
                                                                double timeout_seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  for (;;) {
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->first.second == tag && !it->second.empty()) {
        const int src = it->first.first;
        Bytes b = std::move(it->second.front());
        it->second.pop();
        if (it->second.empty()) pending_.erase(it);
        account_recv(b.size());
        return std::make_pair(src, std::move(b));
      }
    }
    const double remaining =
        std::chrono::duration<double>(deadline - std::chrono::steady_clock::now()).count();
    if (remaining <= 0.0) return std::nullopt;
    const auto records = group_->broker().fetch(AmqpGroup::queue_name(rank_), 0,
                                                next_offset_, 64, remaining);
    for (const auto& r : records) {
      int rsrc = 0, rtag = 0;
      Bytes payload;
      unframe(r.payload, rsrc, rtag, payload);
      pending_[{rsrc, rtag}].push(std::move(payload));
      next_offset_ = r.offset + 1;
    }
  }
}

std::pair<int, Bytes> AmqpCommunicator::recv_bytes_any(int tag) {
  auto got = pull_any(tag, timeout_seconds_);
  OF_CHECK_MSG(got.has_value(),
               "AMQP recv-any timeout: rank " << rank_ << " waited for tag " << tag);
  return std::move(*got);
}

std::optional<std::pair<int, Bytes>> AmqpCommunicator::try_recv_bytes_any(
    int tag, double timeout_seconds) {
  return pull_any(tag, timeout_seconds);
}

Bytes AmqpCommunicator::recv_bytes(int src, int tag) {
  OF_CHECK_MSG(src >= 0 && src < world_size(), "subscribe to invalid rank " << src);
  const auto key = std::make_pair(src, tag);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds_);
  for (;;) {
    auto it = pending_.find(key);
    if (it != pending_.end() && !it->second.empty()) {
      Bytes b = std::move(it->second.front());
      it->second.pop();
      if (it->second.empty()) pending_.erase(it);
      account_recv(b.size());
      return b;
    }
    const double remaining =
        std::chrono::duration<double>(deadline - std::chrono::steady_clock::now()).count();
    OF_CHECK_MSG(remaining > 0.0, "AMQP recv timeout: rank " << rank_ << " waited for (src="
                                                             << src << ", tag=" << tag << ')');
    const auto records = group_->broker().fetch(AmqpGroup::queue_name(rank_), 0,
                                                next_offset_, 64, remaining);
    for (const auto& r : records) {
      int rsrc = 0, rtag = 0;
      Bytes payload;
      unframe(r.payload, rsrc, rtag, payload);
      pending_[{rsrc, rtag}].push(std::move(payload));
      next_offset_ = r.offset + 1;
    }
  }
}

}  // namespace of::comm
