// AmqpCommunicator — the publish/subscribe middleware path the paper lists
// as in development (§3.3): "clients push updates to a queue, which is
// subsequently pulled by the aggregator Node".
//
// Implemented on top of the streaming broker substrate: every node owns a
// queue (topic "node<rank>", one partition, so per-sender FIFO holds);
// send publishes a framed record to the destination's queue, recv pulls
// from the own queue and demultiplexes by (src, tag). Connectivity is
// any-to-any, so the inherited tree/ring collectives apply unchanged —
// swapping TorchDist ↔ Amqp in the config changes no caller code.
#pragma once

#include <map>
#include <memory>
#include <queue>

#include "comm/communicator.hpp"
#include "streaming/broker.hpp"

namespace of::comm {

class AmqpGroup;

class AmqpCommunicator final : public Communicator {
 public:
  AmqpCommunicator(AmqpGroup& group, int rank);

  int rank() const override { return rank_; }
  int world_size() const override;
  std::string name() const override { return "AmqpCommunicator"; }

  void send_bytes(int dst, int tag, ConstByteSpan payload) override;
  using Communicator::send_bytes;
  Bytes recv_bytes(int src, int tag) override;
  // Queues are inherently any-source: the next matching frame in arrival
  // order, from whichever publisher — exactly the semantics the paper
  // wants AMQP for ("clients push updates to a queue").
  std::pair<int, Bytes> recv_bytes_any(int tag) override;
  std::optional<std::pair<int, Bytes>> try_recv_bytes_any(int tag,
                                                          double timeout_seconds) override;

  void set_recv_timeout(double seconds) noexcept { timeout_seconds_ = seconds; }

 private:
  // Pull from the queue until a frame with `tag` is available or the
  // deadline passes; nullopt on timeout.
  std::optional<std::pair<int, Bytes>> pull_any(int tag, double timeout_seconds);

  AmqpGroup* group_;
  int rank_;
  std::uint64_t next_offset_ = 0;
  // Frames pulled from the queue but not yet requested by recv.
  std::map<std::pair<int, int>, std::queue<Bytes>> pending_;
  double timeout_seconds_ = 60.0;
};

// Owns the broker and one communicator per rank.
class AmqpGroup {
 public:
  explicit AmqpGroup(int world_size);
  AmqpGroup(const AmqpGroup&) = delete;
  AmqpGroup& operator=(const AmqpGroup&) = delete;

  int world_size() const noexcept { return world_size_; }
  AmqpCommunicator& comm(int rank);
  streaming::Broker& broker() noexcept { return broker_; }

  static std::string queue_name(int rank) { return "node" + std::to_string(rank); }

 private:
  int world_size_;
  streaming::Broker broker_;
  std::vector<std::unique_ptr<AmqpCommunicator>> comms_;
};

}  // namespace of::comm
