#include "comm/communicator.hpp"

#include <algorithm>
#include <chrono>

#include "common/check.hpp"

namespace of::comm {
namespace {

class ScopedTimer {
 public:
  explicit ScopedTimer(double& acc) : acc_(acc), t0_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    acc_ += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_).count();
  }

 private:
  double& acc_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace

void apply_reduce(Tensor& acc, const Tensor& incoming, ReduceOp op) {
  OF_CHECK_MSG(acc.same_shape(incoming), "reduce shape mismatch");
  switch (op) {
    case ReduceOp::Sum:
    case ReduceOp::Mean:  // Mean divides at the end of the collective
      acc.add_(incoming);
      break;
    case ReduceOp::Max:
      for (std::size_t i = 0; i < acc.numel(); ++i)
        acc[i] = std::max(acc[i], incoming[i]);
      break;
  }
}

void Communicator::send_tensor(int dst, int tag, const Tensor& t) {
  send_bytes(dst, tag, tensor::serialize_tensor(t));
}

Tensor Communicator::recv_tensor(int src, int tag) {
  return tensor::deserialize_tensor(recv_bytes(src, tag));
}

// --- binomial-tree broadcast --------------------------------------------------
// Ranks are re-labelled relative to the root; in round k, ranks < 2^k with
// data forward to rank + 2^k. log2(P) rounds.
void Communicator::broadcast(Tensor& t, int root) {
  const int P = world_size();
  OF_CHECK_MSG(root >= 0 && root < P, "broadcast root out of range");
  if (P == 1) return;
  double elapsed = 0.0;
  {
    ScopedTimer timer(elapsed);
    const int tag = next_collective_tag();
    const int vrank = (rank() - root + P) % P;
    // Receive phase: wait on the parent (vrank with its lowest set bit
    // cleared), then fall through to forwarding.
    int mask = 1;
    while (mask < P) {
      if (vrank & mask) {
        t = recv_tensor(((vrank ^ mask) + root) % P, tag);
        break;
      }
      mask <<= 1;
    }
    // Send phase: forward to children vrank + m for m below our entry mask.
    mask >>= 1;
    while (mask > 0) {
      const int child = vrank + mask;
      if (child < P) send_tensor((child + root) % P, tag, t);
      mask >>= 1;
    }
  }
  account_time(elapsed);
}

// --- ring all-reduce -------------------------------------------------------------
// Reduce-scatter then all-gather; 2(P-1) steps, each moving ~numel/P
// elements — the bandwidth-optimal algorithm (Horovod/NCCL style) the paper
// cites for fast intra-site aggregation.
void Communicator::allreduce(Tensor& t, ReduceOp op) {
  const int P = world_size();
  if (P == 1) {
    if (op == ReduceOp::Mean) { /* mean of one contribution is itself */ }
    return;
  }
  double elapsed = 0.0;
  {
    ScopedTimer timer(elapsed);
    const int tag = next_collective_tag();
    const int r = rank();
    const std::size_t n = t.numel();
    // Chunk boundaries: chunk c covers [bound[c], bound[c+1]).
    std::vector<std::size_t> bound(static_cast<std::size_t>(P) + 1);
    for (int c = 0; c <= P; ++c)
      bound[static_cast<std::size_t>(c)] = n * static_cast<std::size_t>(c) / static_cast<std::size_t>(P);
    const int right = (r + 1) % P;
    const int left = (r - 1 + P) % P;

    auto slice_of = [&](const Tensor& src, int c) {
      const std::size_t b = bound[static_cast<std::size_t>(c)], e = bound[static_cast<std::size_t>(c) + 1];
      Tensor s({e - b});
      std::copy_n(src.data() + b, e - b, s.data());
      return s;
    };

    // Phase 1: reduce-scatter. After P-1 steps, rank r holds the fully
    // reduced chunk (r+1) mod P.
    for (int step = 0; step < P - 1; ++step) {
      const int send_chunk = ((r - step) % P + P) % P;
      const int recv_chunk = ((r - step - 1) % P + P) % P;
      send_tensor(right, tag, slice_of(t, send_chunk));
      Tensor incoming = recv_tensor(left, tag);
      const std::size_t b = bound[static_cast<std::size_t>(recv_chunk)];
      const std::size_t len = incoming.numel();
      OF_CHECK(len == bound[static_cast<std::size_t>(recv_chunk) + 1] - b);
      if (op == ReduceOp::Max) {
        for (std::size_t i = 0; i < len; ++i)
          t[b + i] = std::max(t[b + i], incoming[i]);
      } else {
        for (std::size_t i = 0; i < len; ++i) t[b + i] += incoming[i];
      }
    }
    // Phase 2: all-gather the reduced chunks around the ring.
    for (int step = 0; step < P - 1; ++step) {
      const int send_chunk = ((r + 1 - step) % P + P) % P;
      const int recv_chunk = ((r - step) % P + P) % P;
      send_tensor(right, tag + 1, slice_of(t, send_chunk));
      Tensor incoming = recv_tensor(left, tag + 1);
      const std::size_t b = bound[static_cast<std::size_t>(recv_chunk)];
      OF_CHECK(incoming.numel() == bound[static_cast<std::size_t>(recv_chunk) + 1] - b);
      std::copy_n(incoming.data(), incoming.numel(), t.data() + b);
    }
    if (op == ReduceOp::Mean) t.scale_(1.0f / static_cast<float>(P));
  }
  account_time(elapsed);
}

// --- binomial-tree reduce ----------------------------------------------------------
void Communicator::reduce(Tensor& t, int root, ReduceOp op) {
  const int P = world_size();
  OF_CHECK_MSG(root >= 0 && root < P, "reduce root out of range");
  if (P == 1) return;
  double elapsed = 0.0;
  {
    ScopedTimer timer(elapsed);
    const int tag = next_collective_tag();
    const int vrank = (rank() - root + P) % P;
    for (int mask = 1; mask < P; mask <<= 1) {
      if ((vrank & mask) != 0) {
        // Send the partial to the peer with this bit cleared, then done.
        const int peer = ((vrank & ~mask) + root) % P;
        send_tensor(peer, tag, t);
        break;
      }
      const int peer_v = vrank | mask;
      if (peer_v < P) {
        Tensor incoming = recv_tensor((peer_v + root) % P, tag);
        apply_reduce(t, incoming, op);
      }
    }
    if (vrank == 0 && op == ReduceOp::Mean) t.scale_(1.0f / static_cast<float>(P));
  }
  account_time(elapsed);
}

std::vector<Tensor> Communicator::gather(const Tensor& t, int root) {
  const int P = world_size();
  OF_CHECK_MSG(root >= 0 && root < P, "gather root out of range");
  double elapsed = 0.0;
  std::vector<Tensor> out;
  {
    ScopedTimer timer(elapsed);
    const int tag = next_collective_tag();
    if (rank() == root) {
      out.resize(static_cast<std::size_t>(P));
      out[static_cast<std::size_t>(root)] = t;
      for (int p = 0; p < P; ++p)
        if (p != root) out[static_cast<std::size_t>(p)] = recv_tensor(p, tag);
    } else {
      send_tensor(root, tag, t);
    }
  }
  account_time(elapsed);
  return out;
}

std::vector<Tensor> Communicator::allgather(const Tensor& t) {
  const int P = world_size();
  std::vector<Tensor> out(static_cast<std::size_t>(P));
  if (P == 1) {
    out[0] = t;
    return out;
  }
  double elapsed = 0.0;
  {
    ScopedTimer timer(elapsed);
    const int tag = next_collective_tag();
    const int r = rank();
    const int right = (r + 1) % P;
    const int left = (r - 1 + P) % P;
    out[static_cast<std::size_t>(r)] = t;
    // Ring: in step s, forward the block received in step s-1.
    int have = r;
    for (int step = 0; step < P - 1; ++step) {
      send_tensor(right, tag, out[static_cast<std::size_t>(have)]);
      const int incoming_idx = ((left - step) % P + P) % P;
      out[static_cast<std::size_t>(incoming_idx)] = recv_tensor(left, tag);
      have = incoming_idx;
    }
  }
  account_time(elapsed);
  return out;
}

void Communicator::barrier() {
  Tensor token({1});
  // Reduce-then-broadcast of a 1-element token synchronizes everyone.
  reduce(token, 0, ReduceOp::Sum);
  broadcast(token, 0);
}

std::vector<Bytes> Communicator::gather_bytes(const Bytes& b, int root) {
  const int P = world_size();
  std::vector<Bytes> out;
  const int tag = next_collective_tag();
  if (rank() == root) {
    out.resize(static_cast<std::size_t>(P));
    out[static_cast<std::size_t>(root)] = b;
    for (int p = 0; p < P; ++p)
      if (p != root) out[static_cast<std::size_t>(p)] = recv_bytes(p, tag);
  } else {
    send_bytes(root, tag, b);
  }
  return out;
}

void Communicator::broadcast_bytes(Bytes& b, int root) {
  const int P = world_size();
  const int tag = next_collective_tag();
  if (rank() == root) {
    for (int p = 0; p < P; ++p)
      if (p != root) send_bytes(p, tag, b);
  } else {
    b = recv_bytes(root, tag);
  }
}

std::vector<Bytes> Communicator::allgather_bytes(const Bytes& b) {
  // Gather-to-root then re-broadcast a packed frame list. Not the
  // bandwidth-optimal ring variant, but variable-length frames make the
  // ring chunking awkward and these frames are already compressed.
  std::vector<Bytes> all = gather_bytes(b, 0);
  Bytes packed;
  if (rank() == 0) {
    tensor::append_pod<std::uint32_t>(packed, static_cast<std::uint32_t>(all.size()));
    for (const auto& f : all) {
      tensor::append_pod<std::uint64_t>(packed, f.size());
      packed.insert(packed.end(), f.begin(), f.end());
    }
  }
  broadcast_bytes(packed, 0);
  if (rank() != 0) {
    all.clear();
    std::size_t off = 0;
    const auto count = tensor::read_pod<std::uint32_t>(packed, off);
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto len = tensor::read_pod<std::uint64_t>(packed, off);
      OF_CHECK_MSG(off + len <= packed.size(), "allgather_bytes frame truncated");
      all.emplace_back(packed.begin() + static_cast<std::ptrdiff_t>(off),
                       packed.begin() + static_cast<std::ptrdiff_t>(off + len));
      off += len;
    }
  }
  return all;
}

}  // namespace of::comm
