// Communicator — OmniFed's unified communication API (paper §3.3).
//
// One abstract interface with point-to-point primitives and collective
// operations; concrete backends (shared-memory "MPI", TCP "gRPC", modeled
// WAN links) plug in underneath without any caller change. Collectives have
// default implementations built on send/recv using the textbook algorithms
// (binomial-tree broadcast/reduce, ring all-reduce, ring all-gather);
// backends with different connectivity (the TCP star) override them.
//
// All ranks of a group must call collectives in the same order — the same
// contract as MPI. Per-communicator byte/time accounting feeds the paper's
// communication-overhead figures.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "tensor/serialize.hpp"
#include "tensor/tensor.hpp"

namespace of::comm {

using tensor::Bytes;
using tensor::ConstByteSpan;
using tensor::Tensor;

enum class ReduceOp { Sum, Mean, Max };

struct CommStats {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  double seconds_in_comm = 0.0;   // wall time blocked in comm calls
  double modeled_seconds = 0.0;   // synthetic network-model delay (ModeledLink)
  std::uint64_t reconnects = 0;      // successful link re-establishments (TCP)
  std::uint64_t frames_dropped = 0;  // frames lost to a dead link (TCP)

  CommStats& operator+=(const CommStats& o) {
    bytes_sent += o.bytes_sent;
    bytes_received += o.bytes_received;
    messages_sent += o.messages_sent;
    messages_received += o.messages_received;
    seconds_in_comm += o.seconds_in_comm;
    modeled_seconds += o.modeled_seconds;
    reconnects += o.reconnects;
    frames_dropped += o.frames_dropped;
    return *this;
  }
};

class Communicator {
 public:
  Communicator() = default;
  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;
  virtual ~Communicator() = default;

  virtual int rank() const = 0;
  virtual int world_size() const = 0;
  virtual std::string name() const = 0;
  // True when point-to-point links exist only between rank 0 and the other
  // ranks (client/server star). Callers composing collectives from
  // send/recv must then use star algorithms (see star.hpp).
  virtual bool star_only() const { return false; }
  // Public tag allocation for external collective helpers.
  int claim_collective_tag() noexcept { return next_collective_tag(); }

  // --- point-to-point -------------------------------------------------------
  // Tags namespace the message streams; user code should use tags in
  // [0, 2^20), higher tags are reserved for collective internals.
  // Span-primary: backends read the payload during the call and never keep
  // the view (TCP copies into its outbox only while a link is down), so
  // callers can send straight out of a pooled frame buffer.
  virtual void send_bytes(int dst, int tag, ConstByteSpan payload) = 0;
  virtual Bytes recv_bytes(int src, int tag) = 0;

  // Owning-buffer convenience; forwards to the span overload.
  void send_bytes(int dst, int tag, const Bytes& payload) {
    send_bytes(dst, tag, ConstByteSpan(payload));
  }

  void send_tensor(int dst, int tag, const Tensor& t);
  Tensor recv_tensor(int src, int tag);

  // Any-source receive: next message carrying `tag` from whichever peer
  // delivered first. The backbone of asynchronous aggregation (FedAsync):
  // the server consumes updates in completion order instead of rank order.
  // Backends without a natural any-source queue may not support it.
  virtual std::pair<int, Bytes> recv_bytes_any(int tag) {
    (void)tag;
    OF_CHECK_MSG(false, name() << " does not support any-source receive");
  }

  // Bounded-wait any-source receive: like recv_bytes_any, but returns
  // std::nullopt when `timeout_seconds` elapses instead of throwing. The
  // building block of deadline-based partial aggregation (star.hpp).
  virtual std::optional<std::pair<int, Bytes>> try_recv_bytes_any(int tag,
                                                                  double timeout_seconds) {
    (void)tag;
    (void)timeout_seconds;
    OF_CHECK_MSG(false, name() << " does not support bounded any-source receive");
  }

  // Liveness of the link to `rank`, when the backend can observe it (TCP
  // marks a peer down on EOF/write failure). Backends with no liveness
  // signal report every peer alive; callers must then rely on deadlines.
  virtual bool peer_alive(int rank) const {
    (void)rank;
    return true;
  }

  // --- collectives -----------------------------------------------------------
  virtual void broadcast(Tensor& t, int root);
  virtual void allreduce(Tensor& t, ReduceOp op);
  virtual void reduce(Tensor& t, int root, ReduceOp op);
  virtual std::vector<Tensor> gather(const Tensor& t, int root);
  virtual std::vector<Tensor> allgather(const Tensor& t);
  virtual void barrier();

  // Variable-length byte gather (compressed payloads are not fixed-size).
  virtual std::vector<Bytes> gather_bytes(const Bytes& b, int root);
  virtual void broadcast_bytes(Bytes& b, int root);
  // All-gather of variable-length frames (sparse-codec exchange path).
  virtual std::vector<Bytes> allgather_bytes(const Bytes& b);

  // Virtual so backends with thread-updated counters (TCP reconnects) can
  // merge them into the snapshot without racing the owner thread.
  virtual CommStats stats() const { return stats_; }
  void reset_stats() noexcept { stats_ = CommStats{}; }

 protected:
  // Subclasses route every wire crossing through these for accounting.
  void account_send(std::size_t bytes) noexcept {
    stats_.bytes_sent += bytes;
    ++stats_.messages_sent;
  }
  void account_recv(std::size_t bytes) noexcept {
    stats_.bytes_received += bytes;
    ++stats_.messages_received;
  }
  void account_time(double seconds) noexcept { stats_.seconds_in_comm += seconds; }
  void account_modeled(double seconds) noexcept { stats_.modeled_seconds += seconds; }

  // Fresh tag block for one collective invocation. All ranks call
  // collectives in the same order, so sequence numbers line up.
  //
  // The slot alone aliases once the sequence wraps the window: collective
  // N and N+window would share a tag, so a frame a slow peer left behind
  // from an old collective could satisfy a new collective's recv. The
  // epoch byte (bits 21..28) disambiguates adjacent wraps — a stale frame
  // from the previous pass through the window carries a different tag and
  // is never matched. (Aliasing returns after 256 full windows; with the
  // default 2^16 window that is ~16M collectives in flight, far beyond any
  // plausible backlog.)
  int next_collective_tag() noexcept {
    const std::uint32_t seq = collective_seq_++;
    const std::uint32_t slot = seq % collective_tag_window_;
    const std::uint32_t epoch = (seq / collective_tag_window_) % 256;
    return kCollectiveTagBase + 16 * static_cast<int>(slot) +
           (static_cast<int>(epoch) << 21);
  }

  static constexpr int kCollectiveTagBase = 1 << 20;
  static constexpr std::uint32_t kCollectiveSeqWindow = 1 << 16;

  CommStats stats_;

 public:
  // Shrink the slot window so a test can exercise the wrap path without
  // issuing 2^16 collectives. Production code never calls this.
  void set_collective_tag_window_for_test(std::uint32_t window) noexcept {
    collective_tag_window_ = window == 0 ? 1 : window;
  }

 private:
  std::uint32_t collective_seq_ = 0;
  std::uint32_t collective_tag_window_ = kCollectiveSeqWindow;
};

// Apply `op` elementwise: acc = acc (op) incoming.
void apply_reduce(Tensor& acc, const Tensor& incoming, ReduceOp op);

}  // namespace of::comm
