#include "comm/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "common/check.hpp"
#include "obs/profiler.hpp"

namespace of::comm {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  OF_CHECK_MSG(epoll_fd_ >= 0, "epoll_create1() failed (errno=" << errno << ")");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  OF_CHECK_MSG(wake_fd_ >= 0, "eventfd() failed (errno=" << errno << ")");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  OF_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0);
}

EventLoop::~EventLoop() {
  stop();
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void EventLoop::start() {
  OF_CHECK_MSG(!thread_.joinable(), "EventLoop already started");
  stop_.store(false);
  thread_ = std::thread([this] { run(); });
}

void EventLoop::stop() {
  stop_.store(true);
  wake();
  if (thread_.joinable()) {
    // stop() from inside a callback would self-join; the loop exits on its
    // own once the current callback returns.
    if (!on_loop_thread()) thread_.join();
  }
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  // The eventfd counter saturates rather than blocks; a failed write only
  // means a wakeup is already pending.
  (void)!::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::add_fd(int fd, std::uint32_t events, ReadyFn fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    handlers_[fd] = std::move(fn);
  }
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  OF_CHECK_MSG(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
               "epoll_ctl(ADD) failed for fd " << fd << " (errno=" << errno << ")");
  if (!on_loop_thread()) wake();
}

void EventLoop::modify_fd(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  OF_CHECK_MSG(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0,
               "epoll_ctl(MOD) failed for fd " << fd << " (errno=" << errno << ")");
}

void EventLoop::remove_fd(int fd) {
  // A dying fd may already be detached from epoll (e.g. closed elsewhere);
  // dropping the handler is what matters.
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  handlers_.erase(fd);
  deadlines_.erase(fd);
}

void EventLoop::arm_deadline(int fd, double seconds, Fn fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    deadlines_[fd] = Deadline{
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(seconds)),
        std::move(fn)};
  }
  if (!on_loop_thread()) wake();
}

void EventLoop::cancel_deadline(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  deadlines_.erase(fd);
}

void EventLoop::post(Fn fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    posted_.push_back(std::move(fn));
  }
  wake();
}

int EventLoop::timeout_ms_locked() const {
  if (!posted_.empty()) return 0;
  if (deadlines_.empty()) return -1;
  Clock::time_point next = Clock::time_point::max();
  for (const auto& [fd, d] : deadlines_) next = std::min(next, d.when);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      next - Clock::now())
                      .count();
  if (ms <= 0) return 0;
  return static_cast<int>(std::min<long long>(ms, 60'000));
}

void EventLoop::run() {
  loop_thread_id_.store(std::this_thread::get_id());
  obs::Profiler::set_thread_name("epoll-loop");
  epoll_event events[256];
  while (!stop_.load(std::memory_order_acquire)) {
    int timeout;
    {
      std::lock_guard<std::mutex> lock(mu_);
      timeout = timeout_ms_locked();
    }
    const int n = ::epoll_wait(epoll_fd_, events,
                               static_cast<int>(std::size(events)), timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd itself broke — only happens at teardown
    }
    for (int i = 0; i < n && !stop_.load(std::memory_order_acquire); ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drain;
        (void)!::read(wake_fd_, &drain, sizeof(drain));
        continue;
      }
      ReadyFn fn;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = handlers_.find(fd);
        if (it == handlers_.end()) continue;  // removed earlier in this batch
        fn = it->second;
      }
      fn(events[i].events);
    }
    // Posted work, then due deadlines — both collected under the lock,
    // invoked outside it so they may re-enter the registration API.
    std::vector<Fn> run_now;
    {
      std::lock_guard<std::mutex> lock(mu_);
      run_now.swap(posted_);
      const auto now = Clock::now();
      for (auto it = deadlines_.begin(); it != deadlines_.end();) {
        if (it->second.when <= now) {
          run_now.push_back(std::move(it->second.fn));
          it = deadlines_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (auto& fn : run_now) {
      if (stop_.load(std::memory_order_acquire)) break;
      fn();
    }
  }
  loop_thread_id_.store(std::thread::id{});
}

}  // namespace of::comm
