// EventLoop — a single-threaded epoll reactor (DESIGN.md §10).
//
// The TCP star coordinator used to spawn one blocking reader thread per
// accepted connection, which caps "cross-device" at a handful of ranks.
// The event loop replaces that with one thread multiplexing every accepted
// socket: callers register nonblocking fds with a readiness callback, and
// the loop invokes callbacks from its own thread as epoll reports events.
//
// Contract:
//   - Callbacks run on the loop thread, one at a time, with no internal
//     lock held — a callback may freely call add_fd/modify_fd/remove_fd/
//     arm_deadline (including on its own fd).
//   - add/modify/remove and arm/cancel_deadline are thread-safe; the
//     common pattern is "register before start(), then mutate only from
//     callbacks".
//   - One pending deadline per fd: arm_deadline replaces any previous one,
//     remove_fd cancels it. Deadlines are one-shot and fire on the loop
//     thread (used for the hello-admission budget and HTTP scrape
//     deadlines, so a silent or stalled connection cannot hold per-
//     connection state forever).
//   - post(fn) runs fn on the loop thread at the next wakeup — the hook
//     for cross-thread work that must touch loop-owned state.
//
// The loop never closes fds it did not create (epoll/eventfd); ownership
// of registered sockets stays with the caller.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace of::comm {

class EventLoop {
 public:
  // Invoked with the epoll event mask (EPOLLIN / EPOLLOUT / EPOLLHUP...).
  using ReadyFn = std::function<void(std::uint32_t)>;
  using Fn = std::function<void()>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  void start();
  // Idempotent; joins the loop thread. Pending deadlines and posted fns are
  // discarded, registered fds are left open for their owners to close.
  void stop();

  void add_fd(int fd, std::uint32_t events, ReadyFn fn);
  void modify_fd(int fd, std::uint32_t events);
  void remove_fd(int fd);  // also cancels the fd's pending deadline

  // One-shot timer keyed by fd; fires on the loop thread after `seconds`
  // unless cancelled or re-armed first.
  void arm_deadline(int fd, double seconds, Fn fn);
  void cancel_deadline(int fd);

  // Run `fn` on the loop thread at the next wakeup.
  void post(Fn fn);

  bool on_loop_thread() const noexcept {
    return std::this_thread::get_id() == loop_thread_id_;
  }

 private:
  using Clock = std::chrono::steady_clock;
  struct Deadline {
    Clock::time_point when;
    Fn fn;
  };

  void run();
  void wake();
  // Milliseconds until the nearest deadline (-1 = none), under mu_.
  int timeout_ms_locked() const;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  std::atomic<std::thread::id> loop_thread_id_{};
  std::atomic<bool> stop_{false};

  mutable std::mutex mu_;  // guards handlers_, deadlines_, posted_
  std::map<int, ReadyFn> handlers_;
  std::map<int, Deadline> deadlines_;
  std::vector<Fn> posted_;
};

}  // namespace of::comm
