#include "comm/inproc.hpp"

#include <chrono>

#include "common/check.hpp"
#include "obs/trace.hpp"

namespace of::comm {

InProcCommunicator::InProcCommunicator(InProcGroup& group, int rank)
    : group_(&group), rank_(rank) {}

int InProcCommunicator::world_size() const { return group_->world_size(); }

void InProcCommunicator::send_bytes(int dst, int tag, ConstByteSpan payload) {
  OF_CHECK_MSG(dst >= 0 && dst < world_size(), "send to invalid rank " << dst);
  OF_CHECK_MSG(dst != rank_, "self-send is not supported");
  account_send(payload.size());
  obs::instant(obs::Name::InProcDeliver, rank_, 0, payload.size());
  // The mailbox owns its frames (the sender's buffer may be pooled and
  // reused), so the one copy of the in-process hop happens here.
  group_->deliver(dst, rank_, tag, Bytes(payload.begin(), payload.end()));
}

Bytes InProcCommunicator::recv_bytes(int src, int tag) {
  OF_CHECK_MSG(src >= 0 && src < world_size(), "recv from invalid rank " << src);
  Bytes b = group_->take(rank_, src, tag, timeout_seconds_);
  account_recv(b.size());
  return b;
}

std::pair<int, Bytes> InProcCommunicator::recv_bytes_any(int tag) {
  auto [src, b] = group_->take_any(rank_, tag, timeout_seconds_);
  account_recv(b.size());
  return {src, std::move(b)};
}

std::optional<std::pair<int, Bytes>> InProcCommunicator::try_recv_bytes_any(
    int tag, double timeout_seconds) {
  auto got = group_->try_take_any(rank_, tag, timeout_seconds);
  if (got) account_recv(got->second.size());
  return got;
}

InProcGroup::InProcGroup(int world_size) : world_size_(world_size) {
  OF_CHECK_MSG(world_size >= 1, "group needs at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(world_size));
  comms_.reserve(static_cast<std::size_t>(world_size));
  for (int r = 0; r < world_size; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    comms_.push_back(std::make_unique<InProcCommunicator>(*this, r));
  }
}

InProcCommunicator& InProcGroup::comm(int rank) {
  OF_CHECK_MSG(rank >= 0 && rank < world_size_, "rank " << rank << " out of range");
  return *comms_[static_cast<std::size_t>(rank)];
}

void InProcGroup::deliver(int dst, int src, int tag, Bytes payload) {
  // Capture the sending thread's trace context here (deliver runs on the
  // sender); the taking thread adopts it, completing the cross-thread edge.
  Message msg{std::move(payload), obs::current_context()};
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.slots[{src, tag}].push(std::move(msg));
  }
  box.cv.notify_all();
}

Bytes InProcGroup::take(int dst, int src, int tag, double timeout_seconds) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  std::unique_lock<std::mutex> lock(box.mu);
  const auto key = std::make_pair(src, tag);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeout_seconds));
  const bool ok = box.cv.wait_until(lock, deadline, [&] {
    auto it = box.slots.find(key);
    return it != box.slots.end() && !it->second.empty();
  });
  OF_CHECK_MSG(ok, "recv timeout: rank " << dst << " waited " << timeout_seconds
                                         << "s for (src=" << src << ", tag=" << tag
                                         << ") — collective-order mismatch?");
  auto it = box.slots.find(key);
  Message msg = std::move(it->second.front());
  it->second.pop();
  if (it->second.empty()) box.slots.erase(it);
  obs::adopt_remote_context(msg.ctx);
  return std::move(msg.payload);
}

std::pair<int, Bytes> InProcGroup::take_any(int dst, int tag, double timeout_seconds) {
  auto got = try_take_any(dst, tag, timeout_seconds);
  OF_CHECK_MSG(got.has_value(), "recv-any timeout: rank " << dst << " waited "
                                                          << timeout_seconds << "s for tag "
                                                          << tag);
  return std::move(*got);
}

std::optional<std::pair<int, Bytes>> InProcGroup::try_take_any(int dst, int tag,
                                                               double timeout_seconds) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  std::unique_lock<std::mutex> lock(box.mu);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeout_seconds));
  auto find_match = [&]() -> decltype(box.slots)::iterator {
    for (auto it = box.slots.begin(); it != box.slots.end(); ++it)
      if (it->first.second == tag && !it->second.empty()) return it;
    return box.slots.end();
  };
  decltype(box.slots)::iterator hit = box.slots.end();
  const bool ok = box.cv.wait_until(lock, deadline, [&] {
    hit = find_match();
    return hit != box.slots.end();
  });
  if (!ok) return std::nullopt;
  const int src = hit->first.first;
  Message msg = std::move(hit->second.front());
  hit->second.pop();
  if (hit->second.empty()) box.slots.erase(hit);
  obs::adopt_remote_context(msg.ctx);
  return std::make_pair(src, std::move(msg.payload));
}

}  // namespace of::comm
