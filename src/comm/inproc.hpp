// InProcCommunicator — the TorchDistCommunicator/MPI stand-in.
//
// A process group of N ranks living in one process (one thread per rank,
// matching the Engine's Ray-actor-per-node model). Point-to-point messages
// go through per-destination mailboxes keyed by (src, tag); the collectives
// are the real tree/ring algorithms inherited from Communicator, so byte
// counts and step structure match a genuine MPI backend.
//
// recv_bytes blocks with a deadline (default 60 s): a mismatched collective
// ordering across ranks surfaces as a readable timeout error, not a hang.
#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <queue>

#include "comm/communicator.hpp"
#include "obs/context.hpp"

namespace of::comm {

class InProcGroup;

class InProcCommunicator final : public Communicator {
 public:
  InProcCommunicator(InProcGroup& group, int rank);

  int rank() const override { return rank_; }
  int world_size() const override;
  std::string name() const override { return "InProcCommunicator"; }

  void send_bytes(int dst, int tag, ConstByteSpan payload) override;
  using Communicator::send_bytes;
  Bytes recv_bytes(int src, int tag) override;
  std::pair<int, Bytes> recv_bytes_any(int tag) override;
  std::optional<std::pair<int, Bytes>> try_recv_bytes_any(int tag,
                                                          double timeout_seconds) override;

  void set_recv_timeout(double seconds) noexcept { timeout_seconds_ = seconds; }

 private:
  InProcGroup* group_;
  int rank_;
  double timeout_seconds_ = 60.0;
};

// Owns the mailboxes and hands out one Communicator per rank. Create the
// group on the orchestrating thread, then give comm(r) to rank r's thread.
class InProcGroup {
 public:
  explicit InProcGroup(int world_size);
  ~InProcGroup() = default;
  InProcGroup(const InProcGroup&) = delete;
  InProcGroup& operator=(const InProcGroup&) = delete;

  int world_size() const noexcept { return world_size_; }
  InProcCommunicator& comm(int rank);

 private:
  friend class InProcCommunicator;

  // One in-flight message: payload plus the sender's trace context, adopted
  // by the taker so cross-thread spans stay causally linked (DESIGN.md §9).
  struct Message {
    Bytes payload;
    obs::TraceContext ctx;
  };

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::map<std::pair<int, int>, std::queue<Message>> slots;  // (src, tag) → FIFO
  };

  void deliver(int dst, int src, int tag, Bytes payload);
  Bytes take(int dst, int src, int tag, double timeout_seconds);
  std::pair<int, Bytes> take_any(int dst, int tag, double timeout_seconds);
  std::optional<std::pair<int, Bytes>> try_take_any(int dst, int tag,
                                                    double timeout_seconds);

  int world_size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<InProcCommunicator>> comms_;
};

}  // namespace of::comm
