#include "comm/modeled.hpp"

#include <chrono>
#include <thread>

#include "comm/star.hpp"
#include "obs/trace.hpp"

namespace of::comm {

ModeledLinkCommunicator::ModeledLinkCommunicator(Communicator& inner, LinkModel model,
                                                 DelayMode mode)
    : inner_(&inner), model_(model), mode_(mode) {}

void ModeledLinkCommunicator::delay_for(std::size_t bytes) {
  const double t = model_.transfer_seconds(bytes);
  modeled_delay_ += t;
  account_modeled(t);
  // arg carries the *modeled* delay in ns, whether or not it is slept.
  obs::instant(obs::Name::ModeledDelay, -1, 0,
               static_cast<std::uint64_t>(t * 1e9));
  if (mode_ == DelayMode::Sleep && t > 0.0)
    std::this_thread::sleep_for(std::chrono::duration<double>(t));
}

void ModeledLinkCommunicator::send_bytes(int dst, int tag, ConstByteSpan payload) {
  delay_for(payload.size());  // sender pays latency + serialization delay
  inner_->send_bytes(dst, tag, payload);
  account_send(payload.size());
}

Bytes ModeledLinkCommunicator::recv_bytes(int src, int tag) {
  Bytes b = inner_->recv_bytes(src, tag);
  account_recv(b.size());
  return b;
}

std::pair<int, Bytes> ModeledLinkCommunicator::recv_bytes_any(int tag) {
  auto [src, b] = inner_->recv_bytes_any(tag);
  account_recv(b.size());
  return {src, std::move(b)};
}

std::optional<std::pair<int, Bytes>> ModeledLinkCommunicator::try_recv_bytes_any(
    int tag, double timeout_seconds) {
  auto got = inner_->try_recv_bytes_any(tag, timeout_seconds);
  if (got) account_recv(got->second.size());
  return got;
}

void ModeledLinkCommunicator::broadcast(Tensor& t, int root) {
  if (star_only()) star::broadcast(*this, t, root);
  else Communicator::broadcast(t, root);
}

void ModeledLinkCommunicator::allreduce(Tensor& t, ReduceOp op) {
  if (star_only()) star::allreduce(*this, t, op);
  else Communicator::allreduce(t, op);
}

void ModeledLinkCommunicator::reduce(Tensor& t, int root, ReduceOp op) {
  if (star_only()) star::reduce(*this, t, root, op);
  else Communicator::reduce(t, root, op);
}

std::vector<Tensor> ModeledLinkCommunicator::gather(const Tensor& t, int root) {
  return star_only() ? star::gather(*this, t, root) : Communicator::gather(t, root);
}

std::vector<Tensor> ModeledLinkCommunicator::allgather(const Tensor& t) {
  return star_only() ? star::allgather(*this, t) : Communicator::allgather(t);
}

void ModeledLinkCommunicator::barrier() {
  if (star_only()) star::barrier(*this);
  else Communicator::barrier();
}

std::vector<Bytes> ModeledLinkCommunicator::gather_bytes(const Bytes& b, int root) {
  return star_only() ? star::gather_bytes(*this, b, root)
                     : Communicator::gather_bytes(b, root);
}

void ModeledLinkCommunicator::broadcast_bytes(Bytes& b, int root) {
  if (star_only()) star::broadcast_bytes(*this, b, root);
  else Communicator::broadcast_bytes(b, root);
}

}  // namespace of::comm
