// ModeledLinkCommunicator — a decorator that injects a synthetic network
// model (per-message latency + bytes/bandwidth serialization delay) around
// any inner communicator. This is how the repo reproduces the paper's
// cross-facility experiment (Fig. 7): the intra-site "MPI" group gets a
// fast link model, the cross-site "gRPC" star gets a slow WAN model.
//
// Two delay modes:
//   Sleep   — really sleeps, so wall-clock measurements show the regime
//   Virtual — only accounts the delay into stats().seconds_in_comm, for
//             fast deterministic tests
#pragma once

#include <memory>

#include "comm/communicator.hpp"

namespace of::comm {

struct LinkModel {
  double latency_seconds = 0.0;
  double bandwidth_bytes_per_second = 0.0;  // 0 = infinite

  double transfer_seconds(std::size_t bytes) const noexcept {
    double t = latency_seconds;
    if (bandwidth_bytes_per_second > 0.0)
      t += static_cast<double>(bytes) / bandwidth_bytes_per_second;
    return t;
  }

  // Convenience presets used in benches and examples.
  static LinkModel lan() { return {50e-6, 10e9 / 8}; }        // 50 µs, 10 Gb/s
  static LinkModel datacenter() { return {10e-6, 100e9 / 8}; }  // 10 µs, 100 Gb/s
  static LinkModel wan() { return {20e-3, 100e6 / 8}; }        // 20 ms, 100 Mb/s
};

enum class DelayMode { Sleep, Virtual };

class ModeledLinkCommunicator final : public Communicator {
 public:
  // Non-owning view over `inner`: the group owner keeps the inner alive.
  ModeledLinkCommunicator(Communicator& inner, LinkModel model, DelayMode mode);

  int rank() const override { return inner_->rank(); }
  int world_size() const override { return inner_->world_size(); }
  std::string name() const override { return "ModeledLink(" + inner_->name() + ")"; }
  bool star_only() const override { return inner_->star_only(); }

  void send_bytes(int dst, int tag, ConstByteSpan payload) override;
  using Communicator::send_bytes;
  Bytes recv_bytes(int src, int tag) override;
  std::pair<int, Bytes> recv_bytes_any(int tag) override;
  std::optional<std::pair<int, Bytes>> try_recv_bytes_any(int tag,
                                                          double timeout_seconds) override;
  bool peer_alive(int rank) const override { return inner_->peer_alive(rank); }
  CommStats stats() const override {
    // Surface the inner transport's fault counters through the decorator.
    CommStats s = stats_;
    const CommStats in = inner_->stats();
    s.reconnects += in.reconnects;
    s.frames_dropped += in.frames_dropped;
    return s;
  }

  // Collectives: use the inherited tree/ring algorithms over the delayed
  // send/recv when fully connected; fall back to star algorithms when the
  // inner topology is a star.
  void broadcast(Tensor& t, int root) override;
  void allreduce(Tensor& t, ReduceOp op) override;
  void reduce(Tensor& t, int root, ReduceOp op) override;
  std::vector<Tensor> gather(const Tensor& t, int root) override;
  std::vector<Tensor> allgather(const Tensor& t) override;
  void barrier() override;
  std::vector<Bytes> gather_bytes(const Bytes& b, int root) override;
  void broadcast_bytes(Bytes& b, int root) override;

  // Total modeled delay injected so far (useful in Virtual mode).
  double modeled_delay_seconds() const noexcept { return modeled_delay_; }

 private:
  void delay_for(std::size_t bytes);

  Communicator* inner_;
  LinkModel model_;
  DelayMode mode_;
  double modeled_delay_ = 0.0;
};

}  // namespace of::comm
