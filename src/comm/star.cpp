#include "comm/star.hpp"

#include <algorithm>
#include <chrono>
#include <set>

#include "common/check.hpp"

namespace of::comm::star {

void broadcast(Communicator& c, Tensor& t, int root) {
  OF_CHECK_MSG(root == 0, "star collectives require root == 0 (the hub)");
  const int tag = c.claim_collective_tag();
  if (c.rank() == 0) {
    const Bytes payload = tensor::serialize_tensor(t);
    for (int p = 1; p < c.world_size(); ++p) c.send_bytes(p, tag, payload);
  } else {
    t = tensor::deserialize_tensor(c.recv_bytes(0, tag));
  }
}

void reduce(Communicator& c, Tensor& t, int root, ReduceOp op) {
  OF_CHECK_MSG(root == 0, "star collectives require root == 0 (the hub)");
  const int tag = c.claim_collective_tag();
  if (c.rank() == 0) {
    for (int p = 1; p < c.world_size(); ++p) {
      Tensor incoming = tensor::deserialize_tensor(c.recv_bytes(p, tag));
      apply_reduce(t, incoming, op);
    }
    if (op == ReduceOp::Mean) t.scale_(1.0f / static_cast<float>(c.world_size()));
  } else {
    c.send_bytes(0, tag, tensor::serialize_tensor(t));
  }
}

void allreduce(Communicator& c, Tensor& t, ReduceOp op) {
  reduce(c, t, 0, op);
  broadcast(c, t, 0);
}

std::vector<Tensor> gather(Communicator& c, const Tensor& t, int root) {
  OF_CHECK_MSG(root == 0, "star collectives require root == 0 (the hub)");
  const int tag = c.claim_collective_tag();
  std::vector<Tensor> out;
  if (c.rank() == 0) {
    out.resize(static_cast<std::size_t>(c.world_size()));
    out[0] = t;
    for (int p = 1; p < c.world_size(); ++p)
      out[static_cast<std::size_t>(p)] = tensor::deserialize_tensor(c.recv_bytes(p, tag));
  } else {
    c.send_bytes(0, tag, tensor::serialize_tensor(t));
  }
  return out;
}

std::vector<Tensor> allgather(Communicator& c, const Tensor& t) {
  std::vector<Tensor> all = gather(c, t, 0);
  const int tag = c.claim_collective_tag();
  if (c.rank() == 0) {
    const Bytes packed = tensor::serialize_tensors(all);
    for (int p = 1; p < c.world_size(); ++p) c.send_bytes(p, tag, packed);
  } else {
    all = tensor::deserialize_tensors(c.recv_bytes(0, tag));
  }
  return all;
}

void barrier(Communicator& c) {
  const int tag = c.claim_collective_tag();
  const Bytes empty;
  if (c.rank() == 0) {
    for (int p = 1; p < c.world_size(); ++p) (void)c.recv_bytes(p, tag);
    for (int p = 1; p < c.world_size(); ++p) c.send_bytes(p, tag + 1, empty);
  } else {
    c.send_bytes(0, tag, empty);
    (void)c.recv_bytes(0, tag + 1);
  }
}

std::vector<Bytes> gather_bytes(Communicator& c, const Bytes& b, int root) {
  OF_CHECK_MSG(root == 0, "star collectives require root == 0 (the hub)");
  const int tag = c.claim_collective_tag();
  std::vector<Bytes> out;
  if (c.rank() == 0) {
    out.resize(static_cast<std::size_t>(c.world_size()));
    out[0] = b;
    for (int p = 1; p < c.world_size(); ++p)
      out[static_cast<std::size_t>(p)] = c.recv_bytes(p, tag);
  } else {
    c.send_bytes(0, tag, b);
  }
  return out;
}

StreamingGather gather_bytes_streaming(Communicator& c, const Bytes& b,
                                       const FrameSink& sink,
                                       const PartialGatherOptions& opt) {
  using clock = std::chrono::steady_clock;
  OF_CHECK_MSG(opt.min_clients >= 0 && opt.min_clients < c.world_size(),
               "partial gather quorum " << opt.min_clients << " out of range for world size "
                                        << c.world_size());
  const int tag = c.claim_collective_tag();
  StreamingGather out;
  if (c.rank() != 0) {
    c.send_bytes(0, tag, b);
    return out;
  }

  std::set<int> pending;
  for (int p = 1; p < c.world_size(); ++p) pending.insert(p);

  // Drain frames that are already queued before judging liveness: on the
  // final round a fast client sends its update and exits, and its EOF can
  // reach the event loop before this gather starts — the update is sitting
  // in the inbox while peer_alive() already says dead. Data first, then the
  // verdict.
  while (!pending.empty()) {
    auto queued = c.try_recv_bytes_any(tag, 0.0);
    if (!queued) break;
    const int src = queued->first;
    if (pending.count(src) == 0) continue;  // duplicate or out-of-group frame
    sink(src, std::move(queued->second));
    out.participated.push_back(src);
    pending.erase(src);
  }

  // Now a peer known dead with nothing queued cannot contribute this
  // round — don't let a crashed client consume the whole deadline.
  for (auto it = pending.begin(); it != pending.end();) {
    if (c.peer_alive(*it)) {
      ++it;
    } else {
      out.dropped.push_back(*it);
      it = pending.erase(it);
    }
  }

  const auto start = clock::now();
  const auto deadline = start + std::chrono::duration_cast<clock::duration>(
                                    std::chrono::duration<double>(opt.deadline_seconds));
  const auto quorum_deadline =
      start + std::chrono::duration_cast<clock::duration>(std::chrono::duration<double>(
                  std::max(opt.deadline_seconds, opt.quorum_timeout_seconds)));

  while (!pending.empty()) {
    const auto now = clock::now();
    const bool past_deadline = now >= deadline;
    if (past_deadline) {
      out.deadline_hit = true;
      if (static_cast<int>(out.participated.size()) >= opt.min_clients) break;
      OF_CHECK_MSG(now < quorum_deadline,
                   "partial gather: only " << out.participated.size() << " of a required "
                                           << opt.min_clients
                                           << " clients reported before the quorum timeout");
    }
    const auto limit = past_deadline ? quorum_deadline : deadline;
    const double wait =
        std::max(1e-3, std::chrono::duration<double>(limit - now).count());
    auto got = c.try_recv_bytes_any(tag, wait);
    if (!got) continue;  // re-evaluate deadline / quorum state
    const int src = got->first;
    if (pending.count(src) == 0) continue;  // duplicate or out-of-group frame
    sink(src, std::move(got->second));
    out.participated.push_back(src);
    pending.erase(src);
  }
  out.dropped.insert(out.dropped.end(), pending.begin(), pending.end());
  std::sort(out.participated.begin(), out.participated.end());
  std::sort(out.dropped.begin(), out.dropped.end());
  return out;
}

PartialGather gather_bytes_partial(Communicator& c, const Bytes& b,
                                   const PartialGatherOptions& opt) {
  // The materializing variant is the streaming one with a store-by-rank sink.
  PartialGather out;
  std::vector<Bytes>& frames = out.frames;
  if (c.rank() == 0) {
    frames.resize(static_cast<std::size_t>(c.world_size()));
    frames[0] = b;
  }
  StreamingGather sg = gather_bytes_streaming(
      c, b,
      [&frames](int src, Bytes&& frame) {
        frames[static_cast<std::size_t>(src)] = std::move(frame);
      },
      opt);
  out.participated = std::move(sg.participated);
  out.dropped = std::move(sg.dropped);
  out.deadline_hit = sg.deadline_hit;
  return out;
}

void broadcast_bytes(Communicator& c, Bytes& b, int root) {
  OF_CHECK_MSG(root == 0, "star collectives require root == 0 (the hub)");
  const int tag = c.claim_collective_tag();
  if (c.rank() == 0) {
    for (int p = 1; p < c.world_size(); ++p) c.send_bytes(p, tag, b);
  } else {
    b = c.recv_bytes(0, tag);
  }
}

}  // namespace of::comm::star
