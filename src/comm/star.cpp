#include "comm/star.hpp"

#include "common/check.hpp"

namespace of::comm::star {

void broadcast(Communicator& c, Tensor& t, int root) {
  OF_CHECK_MSG(root == 0, "star collectives require root == 0 (the hub)");
  const int tag = c.claim_collective_tag();
  if (c.rank() == 0) {
    const Bytes payload = tensor::serialize_tensor(t);
    for (int p = 1; p < c.world_size(); ++p) c.send_bytes(p, tag, payload);
  } else {
    t = tensor::deserialize_tensor(c.recv_bytes(0, tag));
  }
}

void reduce(Communicator& c, Tensor& t, int root, ReduceOp op) {
  OF_CHECK_MSG(root == 0, "star collectives require root == 0 (the hub)");
  const int tag = c.claim_collective_tag();
  if (c.rank() == 0) {
    for (int p = 1; p < c.world_size(); ++p) {
      Tensor incoming = tensor::deserialize_tensor(c.recv_bytes(p, tag));
      apply_reduce(t, incoming, op);
    }
    if (op == ReduceOp::Mean) t.scale_(1.0f / static_cast<float>(c.world_size()));
  } else {
    c.send_bytes(0, tag, tensor::serialize_tensor(t));
  }
}

void allreduce(Communicator& c, Tensor& t, ReduceOp op) {
  reduce(c, t, 0, op);
  broadcast(c, t, 0);
}

std::vector<Tensor> gather(Communicator& c, const Tensor& t, int root) {
  OF_CHECK_MSG(root == 0, "star collectives require root == 0 (the hub)");
  const int tag = c.claim_collective_tag();
  std::vector<Tensor> out;
  if (c.rank() == 0) {
    out.resize(static_cast<std::size_t>(c.world_size()));
    out[0] = t;
    for (int p = 1; p < c.world_size(); ++p)
      out[static_cast<std::size_t>(p)] = tensor::deserialize_tensor(c.recv_bytes(p, tag));
  } else {
    c.send_bytes(0, tag, tensor::serialize_tensor(t));
  }
  return out;
}

std::vector<Tensor> allgather(Communicator& c, const Tensor& t) {
  std::vector<Tensor> all = gather(c, t, 0);
  const int tag = c.claim_collective_tag();
  if (c.rank() == 0) {
    const Bytes packed = tensor::serialize_tensors(all);
    for (int p = 1; p < c.world_size(); ++p) c.send_bytes(p, tag, packed);
  } else {
    all = tensor::deserialize_tensors(c.recv_bytes(0, tag));
  }
  return all;
}

void barrier(Communicator& c) {
  const int tag = c.claim_collective_tag();
  const Bytes empty;
  if (c.rank() == 0) {
    for (int p = 1; p < c.world_size(); ++p) (void)c.recv_bytes(p, tag);
    for (int p = 1; p < c.world_size(); ++p) c.send_bytes(p, tag + 1, empty);
  } else {
    c.send_bytes(0, tag, empty);
    (void)c.recv_bytes(0, tag + 1);
  }
}

std::vector<Bytes> gather_bytes(Communicator& c, const Bytes& b, int root) {
  OF_CHECK_MSG(root == 0, "star collectives require root == 0 (the hub)");
  const int tag = c.claim_collective_tag();
  std::vector<Bytes> out;
  if (c.rank() == 0) {
    out.resize(static_cast<std::size_t>(c.world_size()));
    out[0] = b;
    for (int p = 1; p < c.world_size(); ++p)
      out[static_cast<std::size_t>(p)] = c.recv_bytes(p, tag);
  } else {
    c.send_bytes(0, tag, b);
  }
  return out;
}

void broadcast_bytes(Communicator& c, Bytes& b, int root) {
  OF_CHECK_MSG(root == 0, "star collectives require root == 0 (the hub)");
  const int tag = c.claim_collective_tag();
  if (c.rank() == 0) {
    for (int p = 1; p < c.world_size(); ++p) c.send_bytes(p, tag, b);
  } else {
    b = c.recv_bytes(0, tag);
  }
}

}  // namespace of::comm::star
