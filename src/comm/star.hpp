// Star-topology collective algorithms, shared by every communicator whose
// connectivity is client/server only (TcpCommunicator and any decorator
// wrapped around it). Rank 0 is always the hub. Every rank of the group
// must call these in the same order.
#pragma once

#include <functional>

#include "comm/communicator.hpp"

namespace of::comm::star {

void broadcast(Communicator& c, Tensor& t, int root);
void reduce(Communicator& c, Tensor& t, int root, ReduceOp op);
void allreduce(Communicator& c, Tensor& t, ReduceOp op);
std::vector<Tensor> gather(Communicator& c, const Tensor& t, int root);
std::vector<Tensor> allgather(Communicator& c, const Tensor& t);
void barrier(Communicator& c);
std::vector<Bytes> gather_bytes(Communicator& c, const Bytes& b, int root);
void broadcast_bytes(Communicator& c, Bytes& b, int root);

// --- deadline-based partial gather --------------------------------------------
//
// The fault-tolerant variant of gather_bytes: the hub collects client frames
// until either everyone reported or the round deadline passes. Past the
// deadline it proceeds with whatever arrived, provided at least
// `min_clients` made it; otherwise it keeps waiting (up to
// `quorum_timeout_seconds` total) for a quorum. Stragglers past the cutoff
// are recorded as dropped — the aggregation layer re-weights around them.

struct PartialGatherOptions {
  int min_clients = 1;                  // quorum: proceed past deadline with >= this many
  double deadline_seconds = 5.0;        // soft per-round cutoff
  double quorum_timeout_seconds = 60.0; // hard cutoff waiting for the quorum itself
};

struct PartialGather {
  // Indexed by rank; frames[0] is the hub's own contribution, a dropped
  // client's slot stays empty.
  std::vector<Bytes> frames;
  std::vector<int> participated;  // client ranks that made the cutoff (sorted)
  std::vector<int> dropped;       // client ranks excluded this round (sorted)
  bool deadline_hit = false;      // true when at least one straggler was outwaited
};

// Collective: every rank calls it in the same order. Clients send and return
// an empty result; the hub (rank 0) returns the populated PartialGather.
PartialGather gather_bytes_partial(Communicator& c, const Bytes& b,
                                   const PartialGatherOptions& opt);

// Streaming variant — the combiner tier's primitive. Same deadline/quorum
// protocol as gather_bytes_partial, but the hub never materializes the frame
// set: each client frame is handed to `sink(src, frame)` the moment it
// arrives (the hub's own contribution `b` is NOT sunk — the caller already
// holds it). With a StreamingSum behind the sink, hub aggregation state is
// O(model), not O(clients × model).
struct StreamingGather {
  std::vector<int> participated;  // client ranks that made the cutoff (sorted)
  std::vector<int> dropped;       // client ranks excluded this round (sorted)
  bool deadline_hit = false;
};
using FrameSink = std::function<void(int src, Bytes&& frame)>;
StreamingGather gather_bytes_streaming(Communicator& c, const Bytes& b,
                                       const FrameSink& sink,
                                       const PartialGatherOptions& opt);

}  // namespace of::comm::star
