// Star-topology collective algorithms, shared by every communicator whose
// connectivity is client/server only (TcpCommunicator and any decorator
// wrapped around it). Rank 0 is always the hub. Every rank of the group
// must call these in the same order.
#pragma once

#include "comm/communicator.hpp"

namespace of::comm::star {

void broadcast(Communicator& c, Tensor& t, int root);
void reduce(Communicator& c, Tensor& t, int root, ReduceOp op);
void allreduce(Communicator& c, Tensor& t, ReduceOp op);
std::vector<Tensor> gather(Communicator& c, const Tensor& t, int root);
std::vector<Tensor> allgather(Communicator& c, const Tensor& t);
void barrier(Communicator& c);
std::vector<Bytes> gather_bytes(Communicator& c, const Bytes& b, int root);
void broadcast_bytes(Communicator& c, Bytes& b, int root);

}  // namespace of::comm::star
