#include "comm/tcp.hpp"

#include "comm/star.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "common/check.hpp"

namespace of::comm {
namespace {

constexpr std::uint32_t kMagic = 0x0F5EED01u;
constexpr int kHelloTag = -1;

struct FrameHeader {
  std::uint32_t magic;
  std::int32_t src;
  std::int32_t tag;
  std::uint64_t len;
};

bool read_exact(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r <= 0) return false;  // EOF or error — connection closing
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void write_exact(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::write(fd, p + sent, n - sent);
    OF_CHECK_MSG(w > 0, "TCP write failed (errno=" << errno << ")");
    sent += static_cast<std::size_t>(w);
  }
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

TcpCommunicator::TcpCommunicator(int rank, int world_size)
    : rank_(rank), world_size_(world_size) {}

std::unique_ptr<TcpCommunicator> TcpCommunicator::make_server(std::uint16_t port,
                                                              int world_size) {
  OF_CHECK_MSG(world_size >= 1, "world size must be >= 1");
  auto comm = std::unique_ptr<TcpCommunicator>(new TcpCommunicator(0, world_size));

  comm->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  OF_CHECK_MSG(comm->listen_fd_ >= 0, "socket() failed");
  int one = 1;
  ::setsockopt(comm->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  OF_CHECK_MSG(::bind(comm->listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
               "bind() failed on port " << port << " (errno=" << errno << ")");
  OF_CHECK_MSG(::listen(comm->listen_fd_, world_size) == 0, "listen() failed");

  socklen_t alen = sizeof(addr);
  OF_CHECK(::getsockname(comm->listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen) == 0);
  comm->port_ = ntohs(addr.sin_port);

  // Accept world_size-1 clients; each introduces itself with a hello frame.
  for (int i = 0; i < world_size - 1; ++i) {
    const int fd = ::accept(comm->listen_fd_, nullptr, nullptr);
    OF_CHECK_MSG(fd >= 0, "accept() failed");
    set_nodelay(fd);
    FrameHeader h{};
    OF_CHECK_MSG(read_exact(fd, &h, sizeof(h)), "client hello read failed");
    OF_CHECK_MSG(h.magic == kMagic && h.tag == kHelloTag && h.len == 0,
                 "malformed client hello");
    const int peer = h.src;
    OF_CHECK_MSG(peer >= 1 && peer < world_size, "client announced invalid rank " << peer);
    OF_CHECK_MSG(!comm->peer_fd_.count(peer), "duplicate client rank " << peer);
    comm->peer_fd_[peer] = fd;
    comm->write_mu_[peer] = std::make_unique<std::mutex>();
    comm->start_reader(peer, fd);
  }
  return comm;
}

std::unique_ptr<TcpCommunicator> TcpCommunicator::make_client(const std::string& host,
                                                              std::uint16_t port, int rank,
                                                              int world_size) {
  OF_CHECK_MSG(rank >= 1 && rank < world_size, "client rank must be in [1, world)");
  auto comm = std::unique_ptr<TcpCommunicator>(new TcpCommunicator(rank, world_size));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  OF_CHECK_MSG(fd >= 0, "socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  OF_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
               "bad server address '" << host << "'");
  // Retry: the server thread may still be binding/accepting earlier peers.
  int rc = -1;
  for (int attempt = 0; attempt < 250; ++attempt) {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  OF_CHECK_MSG(rc == 0, "connect() to " << host << ':' << port << " failed");
  set_nodelay(fd);
  comm->peer_fd_[0] = fd;
  comm->write_mu_[0] = std::make_unique<std::mutex>();
  // Hello frame announces our rank.
  FrameHeader h{kMagic, rank, kHelloTag, 0};
  write_exact(fd, &h, sizeof(h));
  comm->port_ = port;
  comm->start_reader(0, fd);
  return comm;
}

TcpCommunicator::~TcpCommunicator() {
  shutting_down_.store(true);
  for (auto& [peer, fd] : peer_fd_) ::shutdown(fd, SHUT_RDWR);
  for (auto& t : readers_)
    if (t.joinable()) t.join();
  for (auto& [peer, fd] : peer_fd_) ::close(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void TcpCommunicator::start_reader(int peer_rank, int fd) {
  readers_.emplace_back([this, peer_rank, fd] {
    for (;;) {
      FrameHeader h{};
      if (!read_exact(fd, &h, sizeof(h))) return;  // peer closed
      if (h.magic != kMagic) return;               // protocol violation → drop link
      Bytes payload(h.len);
      if (h.len > 0 && !read_exact(fd, payload.data(), payload.size())) return;
      {
        std::lock_guard<std::mutex> lock(inbox_mu_);
        inbox_[{peer_rank, h.tag}].push(std::move(payload));
      }
      inbox_cv_.notify_all();
    }
  });
}

void TcpCommunicator::write_frame(int fd, int tag, const Bytes& payload) {
  FrameHeader h{kMagic, rank_, tag, payload.size()};
  // One frame = header + payload under the per-socket lock so concurrent
  // senders cannot interleave.
  write_exact(fd, &h, sizeof(h));
  if (!payload.empty()) write_exact(fd, payload.data(), payload.size());
}

void TcpCommunicator::send_bytes(int dst, int tag, const Bytes& payload) {
  auto it = peer_fd_.find(dst);
  OF_CHECK_MSG(it != peer_fd_.end(),
               "no TCP link from rank " << rank_ << " to rank " << dst
                                        << " (star topology: clients only talk to the server)");
  std::lock_guard<std::mutex> lock(*write_mu_.at(dst));
  write_frame(it->second, tag, payload);
  account_send(payload.size());
}

Bytes TcpCommunicator::take(int src, int tag) {
  std::unique_lock<std::mutex> lock(inbox_mu_);
  const auto key = std::make_pair(src, tag);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds_));
  const bool ok = inbox_cv_.wait_until(lock, deadline, [&] {
    auto it = inbox_.find(key);
    return it != inbox_.end() && !it->second.empty();
  });
  OF_CHECK_MSG(ok, "TCP recv timeout waiting for (src=" << src << ", tag=" << tag << ')');
  auto it = inbox_.find(key);
  Bytes b = std::move(it->second.front());
  it->second.pop();
  if (it->second.empty()) inbox_.erase(it);
  return b;
}

Bytes TcpCommunicator::recv_bytes(int src, int tag) {
  Bytes b = take(src, tag);
  account_recv(b.size());
  return b;
}

std::pair<int, Bytes> TcpCommunicator::recv_bytes_any(int tag) {
  std::unique_lock<std::mutex> lock(inbox_mu_);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds_));
  auto find_match = [&]() -> decltype(inbox_)::iterator {
    for (auto it = inbox_.begin(); it != inbox_.end(); ++it)
      if (it->first.second == tag && !it->second.empty()) return it;
    return inbox_.end();
  };
  decltype(inbox_)::iterator hit = inbox_.end();
  const bool ok = inbox_cv_.wait_until(lock, deadline, [&] {
    hit = find_match();
    return hit != inbox_.end();
  });
  OF_CHECK_MSG(ok, "TCP recv-any timeout waiting for tag " << tag);
  const int src = hit->first.first;
  Bytes b = std::move(hit->second.front());
  hit->second.pop();
  if (hit->second.empty()) inbox_.erase(hit);
  account_recv(b.size());
  return {src, std::move(b)};
}

// --- star-topology collectives (shared algorithms in star.hpp) -----------------

void TcpCommunicator::broadcast(Tensor& t, int root) { star::broadcast(*this, t, root); }
void TcpCommunicator::reduce(Tensor& t, int root, ReduceOp op) {
  star::reduce(*this, t, root, op);
}
void TcpCommunicator::allreduce(Tensor& t, ReduceOp op) { star::allreduce(*this, t, op); }
std::vector<Tensor> TcpCommunicator::gather(const Tensor& t, int root) {
  return star::gather(*this, t, root);
}
std::vector<Tensor> TcpCommunicator::allgather(const Tensor& t) {
  return star::allgather(*this, t);
}
void TcpCommunicator::barrier() { star::barrier(*this); }
std::vector<Bytes> TcpCommunicator::gather_bytes(const Bytes& b, int root) {
  return star::gather_bytes(*this, b, root);
}
void TcpCommunicator::broadcast_bytes(Bytes& b, int root) {
  star::broadcast_bytes(*this, b, root);
}

}  // namespace of::comm
