#include "comm/tcp.hpp"

#include "comm/star.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/check.hpp"
#include "obs/registry.hpp"
#include "obs/scrape.hpp"
#include "obs/trace.hpp"

namespace of::comm {
namespace {

// Global mirrors of the per-instance telemetry atomics. The members keep
// their per-communicator semantics (CommStats reports one link's counts);
// the registry gives the uniform process-wide surface exporters read.
obs::Counter& tcp_reconnects() {
  static obs::Counter& c = obs::Registry::global().counter("tcp.reconnects");
  return c;
}
obs::Counter& tcp_frames_dropped() {
  static obs::Counter& c = obs::Registry::global().counter("tcp.frames_dropped");
  return c;
}
obs::Histogram& tcp_frame_recv_bytes() {
  static obs::Histogram& h = obs::Registry::global().histogram("tcp.recv_frame_bytes");
  return h;
}

constexpr std::uint32_t kMagic = 0x0F5EED02u;  // v2: header carries trace context
constexpr int kHelloTag = -1;
// Clock-sync control frames (DESIGN.md §9): a client ping carries an 8-byte
// echo token; the server's reader answers immediately with pong = token +
// its own timestamp. Negative tags sit below the user range [0, 2^20) and
// the collective range, so pings can never alias a collective slot.
constexpr int kPingTag = -2;
constexpr int kPongTag = -3;
// Upper bound on a single frame payload. Anything larger is a corrupt or
// hostile header — reject it before allocating.
constexpr std::uint64_t kMaxFrameBytes = 1ull << 30;  // 1 GiB
// Frames queued per downed link before the oldest is dropped.
constexpr std::size_t kMaxOutboxFrames = 128;
// A connecting socket must deliver its hello within this budget, or the
// accept loop moves on (a silent connector must not stall admission).
constexpr double kHelloTimeoutSeconds = 10.0;

// Wire header v2 — 40 bytes, naturally aligned, no padding. Mirrored by
// tests/test_comm.cpp; keep the two in lockstep.
struct FrameHeader {
  std::uint32_t magic;
  std::int32_t src;
  std::int32_t tag;
  std::uint32_t round;
  std::uint64_t len;
  std::uint64_t trace_id;
  std::uint64_t span_id;
};
static_assert(sizeof(FrameHeader) == 40, "frame header must stay packed");

bool read_exact(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0 && errno == EINTR) continue;  // interrupted, not broken
    if (r <= 0) return false;               // EOF or error — connection closing
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_exact(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a closed peer must surface as EPIPE, not kill the process.
    const ssize_t w = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) return false;
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void set_recv_timeout_opt(int fd, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

sockaddr_in resolve(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  OF_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
               "bad server address '" << host << "'");
  return addr;
}

// One fresh socket per attempt: a fd whose connect() failed is in an
// unspecified state and must not be reused.
int connect_once(const sockaddr_in& addr) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  set_nodelay(fd);
  return fd;
}

void put_le64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

// Serve one read-only HTTP GET on a freshly accepted socket. The accept
// loop has already consumed the 4 sniff bytes ("GET "), so the stream
// resumes at the request path. SO_RCVTIMEO (hello budget) still applies, so
// a stalled client can't wedge admission for longer than that.
void serve_http_get(int fd) {
  std::string req;
  char buf[512];
  while (req.find("\r\n\r\n") == std::string::npos && req.size() < 8192) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;
    req.append(buf, static_cast<std::size_t>(r));
  }
  std::size_t end = req.find(' ');
  if (end == std::string::npos) end = req.find('\r');
  const std::string path = end == std::string::npos ? req : req.substr(0, end);
  const std::string resp = obs::render_http(obs::handle_scrape(path));
  (void)write_exact(fd, resp.data(), resp.size());
}

}  // namespace

TcpCommunicator::TcpCommunicator(int rank, int world_size, FaultTolerance ft)
    : rank_(rank), world_size_(world_size), ft_(ft) {
  if (rank == 0) {
    for (int p = 1; p < world_size; ++p) peers_[p] = std::make_unique<Peer>();
  } else {
    peers_[0] = std::make_unique<Peer>();
  }
}

TcpCommunicator::Peer& TcpCommunicator::peer(int rank) {
  auto it = peers_.find(rank);
  OF_CHECK_MSG(it != peers_.end(),
               "no TCP link from rank " << rank_ << " to rank " << rank
                                        << " (star topology: clients only talk to the server)");
  return *it->second;
}

const TcpCommunicator::Peer& TcpCommunicator::peer(int rank) const {
  return const_cast<TcpCommunicator*>(this)->peer(rank);
}

std::unique_ptr<TcpCommunicator> TcpCommunicator::make_server(std::uint16_t port,
                                                              int world_size,
                                                              FaultTolerance ft) {
  OF_CHECK_MSG(world_size >= 1, "world size must be >= 1");
  auto comm = std::unique_ptr<TcpCommunicator>(new TcpCommunicator(0, world_size, ft));

  comm->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  OF_CHECK_MSG(comm->listen_fd_ >= 0, "socket() failed");
  int one = 1;
  ::setsockopt(comm->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  OF_CHECK_MSG(::bind(comm->listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
               "bind() failed on port " << port << " (errno=" << errno << ")");
  OF_CHECK_MSG(::listen(comm->listen_fd_, world_size) == 0, "listen() failed");

  socklen_t alen = sizeof(addr);
  OF_CHECK(::getsockname(comm->listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen) == 0);
  comm->port_ = ntohs(addr.sin_port);

  // One persistent accept loop serves both the initial connects and any
  // mid-run rejoins; construction blocks until the group is complete.
  comm->accept_thread_ = std::thread([c = comm.get()] { c->accept_loop(); });
  {
    std::unique_lock<std::mutex> lock(comm->setup_mu_);
    const bool ok = comm->setup_cv_.wait_for(lock, std::chrono::seconds(120), [&] {
      return comm->connected_ == world_size - 1 || !comm->setup_error_.empty();
    });
    const std::string err = comm->setup_error_;
    comm->initial_done_ = true;
    lock.unlock();
    OF_CHECK_MSG(err.empty(), err);
    OF_CHECK_MSG(ok, "TCP server timed out waiting for " << world_size - 1 << " clients");
  }
  return comm;
}

std::unique_ptr<TcpCommunicator> TcpCommunicator::make_client(const std::string& host,
                                                              std::uint16_t port, int rank,
                                                              int world_size,
                                                              FaultTolerance ft) {
  OF_CHECK_MSG(rank >= 1 && rank < world_size, "client rank must be in [1, world)");
  auto comm = std::unique_ptr<TcpCommunicator>(new TcpCommunicator(rank, world_size, ft));
  comm->host_ = host;
  comm->port_ = port;
  const sockaddr_in addr = resolve(host, port);
  // Retry: the server thread may still be binding/accepting earlier peers.
  int fd = -1;
  for (int attempt = 0; attempt < 250 && fd < 0; ++attempt) {
    fd = connect_once(addr);
    if (fd < 0) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  OF_CHECK_MSG(fd >= 0, "connect() to " << host << ':' << port << " failed");
  // Hello frame announces our rank.
  FrameHeader h{kMagic, rank, kHelloTag, 0, 0, 0, 0};
  if (!write_exact(fd, &h, sizeof(h))) {
    ::close(fd);
    OF_CHECK_MSG(false, "client hello write to " << host << ':' << port << " failed");
  }
  Peer& p = comm->peer(0);
  p.fd = fd;
  p.up = true;
  comm->start_reader(0, fd);
  return comm;
}

TcpCommunicator::~TcpCommunicator() {
  shutting_down_.store(true);
  for (auto& [r, p] : peers_) {
    std::lock_guard<std::mutex> lock(p->mu);
    if (p->fd >= 0) ::shutdown(p->fd, SHUT_RDWR);
  }
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept thread is the only other writer of readers_; after its join
  // the vector is stable.
  for (auto& t : readers_)
    if (t.joinable()) t.join();
  for (auto& [r, p] : peers_)
    if (p->fd >= 0) ::close(p->fd);
  for (int fd : retired_fds_) ::close(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void TcpCommunicator::retire_fd(int fd) {
  // Keep the descriptor open (a reader may still be blocked on it) but dead;
  // actually closed at teardown so the number can't be reused mid-run.
  ::shutdown(fd, SHUT_RDWR);
  std::lock_guard<std::mutex> lock(setup_mu_);
  retired_fds_.push_back(fd);
}

void TcpCommunicator::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down (teardown) or broken
    }
    if (shutting_down_.load()) {
      ::close(fd);
      return;
    }
    set_nodelay(fd);
    set_recv_timeout_opt(fd, kHelloTimeoutSeconds);
    // Sniff the first 4 bytes before committing to a frame header: a
    // plain-text "GET " is an HTTP scrape of the obs registry (served and
    // closed, never admitted as a peer), anything else must be a hello.
    std::uint8_t head[sizeof(FrameHeader)];
    bool got_hello = read_exact(fd, head, 4);
    if (got_hello && std::memcmp(head, "GET ", 4) == 0) {
      serve_http_get(fd);
      ::close(fd);
      continue;
    }
    if (got_hello) got_hello = read_exact(fd, head + 4, sizeof(head) - 4);
    FrameHeader h{};
    if (got_hello) std::memcpy(&h, head, sizeof(h));
    std::string err;
    if (!got_hello)
      err = "client hello read failed";
    else if (h.magic != kMagic || h.tag != kHelloTag || h.len != 0)
      err = "malformed client hello";
    else if (h.src < 1 || h.src >= world_size_)
      err = "client announced invalid rank " + std::to_string(h.src);
    bool initial = false;
    {
      std::lock_guard<std::mutex> lock(setup_mu_);
      initial = !initial_done_;
    }
    if (err.empty() && initial) {
      Peer& p = peer(h.src);
      std::lock_guard<std::mutex> lock(p.mu);
      if (p.up) err = "duplicate client rank " + std::to_string(h.src);
    }
    if (!err.empty()) {
      ::close(fd);
      if (initial) {
        // During group formation a bad hello aborts construction (the
        // connecting side is part of this run and is misbehaving).
        std::lock_guard<std::mutex> lock(setup_mu_);
        setup_error_ = err;
        setup_cv_.notify_all();
        return;
      }
      continue;  // mid-run intruder/garbage: drop it, keep serving
    }
    set_recv_timeout_opt(fd, 0.0);  // hello budget only; frames block freely

    Peer& p = peer(h.src);
    {
      std::lock_guard<std::mutex> lock(p.mu);
      if (p.fd >= 0) retire_fd(p.fd);  // rejoin replaces the old link
      p.fd = fd;
      p.up = true;
      if (!initial) {
        reconnects_.fetch_add(1, std::memory_order_relaxed);
        tcp_reconnects().inc();
        obs::instant(obs::Name::TcpReconnect, rank_, 0,
                     static_cast<std::uint64_t>(h.src));
      }
      flush_outbox_locked(p);
    }
    start_reader(h.src, fd);
    if (initial) {
      std::lock_guard<std::mutex> lock(setup_mu_);
      ++connected_;
      setup_cv_.notify_all();
    }
  }
}

void TcpCommunicator::start_reader(int peer_rank, int fd) {
  std::lock_guard<std::mutex> lock(readers_mu_);
  readers_.emplace_back([this, peer_rank, fd] { reader_main(peer_rank, fd); });
}

void TcpCommunicator::reader_main(int peer_rank, int fd) {
  for (;;) {
    read_frames(peer_rank, fd);  // returns when the link breaks
    if (shutting_down_.load()) return;
    Peer& p = peer(peer_rank);
    {
      std::lock_guard<std::mutex> lock(p.mu);
      if (p.fd != fd) return;  // a rejoin already replaced this link; new reader owns it
      p.up = false;
    }
    // Server side: the client rejoins through the accept loop (which spawns
    // a fresh reader). Without fault tolerance a dead link stays dead.
    if (rank_ == 0 || !ft_.enabled) return;
    const int nfd = client_reconnect();
    if (nfd < 0) return;  // gave up (or shutdown)
    fd = nfd;
  }
}

void TcpCommunicator::read_frames(int peer_rank, int fd) {
  for (;;) {
    FrameHeader h{};
    if (!read_exact(fd, &h, sizeof(h))) return;        // peer closed
    if (h.magic != kMagic) return;                     // protocol violation → drop link
    if (h.len > kMaxFrameBytes) return;                // absurd length → drop link
    Bytes payload(h.len);
    if (h.len > 0 && !read_exact(fd, payload.data(), payload.size())) return;
    if (h.tag == kPingTag && rank_ == 0) {
      // Clock-sync ping: answer from the reader itself so the sample never
      // waits behind application recvs. Payload: echo token + our clock
      // (trace timebase), plus the injectable test skew.
      if (payload.size() != 8) return;  // malformed control frame → drop link
      Bytes pong;
      pong.reserve(16);
      put_le64(pong, get_le64(payload.data()));
      const std::int64_t server_ns =
          static_cast<std::int64_t>(obs::TraceRecorder::global().now_ns()) +
          pong_skew_ns_.load(std::memory_order_relaxed);
      put_le64(pong, static_cast<std::uint64_t>(server_ns));
      Peer& p = peer(peer_rank);
      std::lock_guard<std::mutex> lock(p.mu);
      if (p.up && p.fd >= 0)
        (void)write_frame_locked(p, kPongTag, ConstByteSpan(pong), {});
      continue;
    }
    tcp_frame_recv_bytes().observe(h.len);
    obs::instant(obs::Name::TcpRecv, rank_, 0, h.len);
    {
      std::lock_guard<std::mutex> lock(inbox_mu_);
      inbox_[{peer_rank, h.tag}].push(
          Inbound{std::move(payload), obs::TraceContext{h.trace_id, h.span_id, h.round}});
    }
    inbox_cv_.notify_all();
  }
}

bool TcpCommunicator::interruptible_sleep(double seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (shutting_down_.load()) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return !shutting_down_.load();
}

int TcpCommunicator::client_reconnect() {
  const sockaddr_in addr = resolve(host_, port_);
  Peer& p = peer(0);
  double backoff = ft_.backoff_seconds;
  for (int attempt = 0; attempt < ft_.max_reconnect_attempts; ++attempt) {
    {
      obs::ScopedSpan backoff_span(obs::Name::TcpBackoff, rank_, 0,
                                   static_cast<std::uint64_t>(attempt));
      if (!interruptible_sleep(backoff)) return -1;
    }
    backoff = std::min(backoff * 2.0, ft_.backoff_max_seconds);
    const int fd = connect_once(addr);
    if (fd < 0) continue;
    FrameHeader h{kMagic, rank_, kHelloTag, 0, 0, 0, 0};
    if (!write_exact(fd, &h, sizeof(h))) {
      ::close(fd);
      continue;
    }
    std::lock_guard<std::mutex> lock(p.mu);
    if (shutting_down_.load()) {
      ::close(fd);
      return -1;
    }
    if (p.fd >= 0) retire_fd(p.fd);
    p.fd = fd;
    p.up = true;
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    tcp_reconnects().inc();
    obs::instant(obs::Name::TcpReconnect, rank_, 0, 0);
    flush_outbox_locked(p);
    return fd;
  }
  return -1;
}

bool TcpCommunicator::write_frame_locked(Peer& p, int tag, ConstByteSpan payload,
                                         const obs::TraceContext& ctx) {
  FrameHeader h{kMagic, rank_, tag, ctx.round, payload.size(), ctx.trace_id, ctx.span_id};
  // One frame = header + payload under the peer lock so concurrent senders
  // cannot interleave. Scatter I/O sends both pieces in one syscall without
  // building a combined buffer; sendmsg rather than writev so MSG_NOSIGNAL
  // applies (a closed peer must surface as EPIPE, not kill the process).
  // The loop advances the iovec across partial writes, which may stop
  // anywhere, including mid-header.
  iovec iov[2];
  iov[0].iov_base = &h;
  iov[0].iov_len = sizeof(h);
  iov[1].iov_base = const_cast<std::uint8_t*>(payload.data());
  iov[1].iov_len = payload.size();
  const int iov_cnt = payload.empty() ? 1 : 2;
  int idx = 0;
  while (idx < iov_cnt) {
    msghdr msg{};
    msg.msg_iov = &iov[idx];
    msg.msg_iovlen = static_cast<std::size_t>(iov_cnt - idx);
    const ssize_t n = ::sendmsg(p.fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    std::size_t left = static_cast<std::size_t>(n);
    while (idx < iov_cnt && left >= iov[idx].iov_len) {
      left -= iov[idx].iov_len;
      ++idx;
    }
    if (idx < iov_cnt && left > 0) {
      iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + left;
      iov[idx].iov_len -= left;
    }
  }
  return true;
}

void TcpCommunicator::queue_frame_locked(Peer& p, int tag, ConstByteSpan payload,
                                         const obs::TraceContext& ctx) {
  if (p.outbox.size() >= kMaxOutboxFrames) {
    p.outbox.pop_front();  // oldest frame is the stalest — sacrifice it
    frames_dropped_.fetch_add(1, std::memory_order_relaxed);
    tcp_frames_dropped().inc();
  }
  // The outbox outlives the caller's view, so this is the one place the
  // span is copied into an owned buffer.
  p.outbox.push_back(Frame{tag, Bytes(payload.begin(), payload.end()), ctx});
}

void TcpCommunicator::flush_outbox_locked(Peer& p) {
  while (!p.outbox.empty()) {
    Frame& f = p.outbox.front();
    if (!write_frame_locked(p, f.tag, f.payload, f.ctx)) {
      p.up = false;  // link died again mid-flush; keep the rest queued
      return;
    }
    p.outbox.pop_front();
  }
}

void TcpCommunicator::send_bytes(int dst, int tag, ConstByteSpan payload) {
  obs::ScopedSpan span(obs::Name::TcpSend, rank_, 0, payload.size());
  // Capture the sender's context outside the peer lock; one relaxed load
  // when tracing is off.
  const obs::TraceContext ctx = obs::current_context();
  Peer& p = peer(dst);
  std::lock_guard<std::mutex> lock(p.mu);
  if (!p.up) {
    OF_CHECK_MSG(ft_.enabled, "TCP link from rank " << rank_ << " to rank " << dst
                                                    << " is down");
    queue_frame_locked(p, tag, payload, ctx);
    account_send(payload.size());
    return;
  }
  if (!write_frame_locked(p, tag, payload, ctx)) {
    // The stream broke mid-frame; the receiver resyncs from scratch on the
    // next connection, so replaying the whole frame is safe.
    p.up = false;
    OF_CHECK_MSG(ft_.enabled, "TCP write to rank " << dst << " failed (errno=" << errno
                                                   << ")");
    queue_frame_locked(p, tag, payload, ctx);
  }
  account_send(payload.size());
}

std::optional<obs::ClockSample> TcpCommunicator::ping_server(double timeout_seconds) {
  OF_CHECK_MSG(rank_ != 0, "ping_server is a client-side operation");
  // Distinct token per ping so a pong that outlived a timed-out earlier
  // ping can't be mistaken for this one's answer.
  const std::uint64_t token =
      (static_cast<std::uint64_t>(rank_) << 48) ^
      ping_token_.fetch_add(1, std::memory_order_relaxed);
  Bytes ping;
  ping.reserve(8);
  put_le64(ping, token);
  Peer& p = peer(0);
  const std::int64_t t0 =
      static_cast<std::int64_t>(obs::TraceRecorder::global().now_ns());
  {
    std::lock_guard<std::mutex> lock(p.mu);
    if (!p.up || p.fd < 0) return std::nullopt;
    if (!write_frame_locked(p, kPingTag, ConstByteSpan(ping), {})) return std::nullopt;
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  const auto key = std::make_pair(0, kPongTag);
  std::unique_lock<std::mutex> lock(inbox_mu_);
  for (;;) {
    const bool ok = inbox_cv_.wait_until(lock, deadline, [&] {
      auto it = inbox_.find(key);
      return it != inbox_.end() && !it->second.empty();
    });
    if (!ok) return std::nullopt;
    auto it = inbox_.find(key);
    Inbound in = std::move(it->second.front());
    it->second.pop();
    if (it->second.empty()) inbox_.erase(it);
    if (in.payload.size() != 16 || get_le64(in.payload.data()) != token)
      continue;  // stale or malformed pong: discard, keep waiting
    obs::ClockSample s;
    s.t0_ns = t0;
    s.server_ns = static_cast<std::int64_t>(get_le64(in.payload.data() + 8));
    s.t1_ns = static_cast<std::int64_t>(obs::TraceRecorder::global().now_ns());
    return s;
  }
}

void TcpCommunicator::inject_disconnect(int peer_rank) {
  Peer& p = peer(peer_rank);
  std::lock_guard<std::mutex> lock(p.mu);
  if (p.fd >= 0) ::shutdown(p.fd, SHUT_RDWR);
}

bool TcpCommunicator::peer_alive(int rank) const {
  if (rank == rank_) return true;
  auto it = peers_.find(rank);
  if (it == peers_.end()) return false;
  std::lock_guard<std::mutex> lock(it->second->mu);
  return it->second->up;
}

CommStats TcpCommunicator::stats() const {
  CommStats s = stats_;
  s.reconnects = reconnects_.load(std::memory_order_relaxed);
  s.frames_dropped = frames_dropped_.load(std::memory_order_relaxed);
  return s;
}

Bytes TcpCommunicator::take(int src, int tag) {
  std::unique_lock<std::mutex> lock(inbox_mu_);
  const auto key = std::make_pair(src, tag);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds_));
  const bool ok = inbox_cv_.wait_until(lock, deadline, [&] {
    auto it = inbox_.find(key);
    return it != inbox_.end() && !it->second.empty();
  });
  OF_CHECK_MSG(ok, "TCP recv timeout waiting for (src=" << src << ", tag=" << tag << ')');
  auto it = inbox_.find(key);
  Inbound in = std::move(it->second.front());
  it->second.pop();
  if (it->second.empty()) inbox_.erase(it);
  obs::adopt_remote_context(in.ctx);
  return std::move(in.payload);
}

Bytes TcpCommunicator::recv_bytes(int src, int tag) {
  Bytes b = take(src, tag);
  account_recv(b.size());
  return b;
}

std::optional<std::pair<int, Bytes>> TcpCommunicator::try_recv_bytes_any(
    int tag, double timeout_seconds) {
  std::unique_lock<std::mutex> lock(inbox_mu_);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  auto find_match = [&]() -> decltype(inbox_)::iterator {
    for (auto it = inbox_.begin(); it != inbox_.end(); ++it)
      if (it->first.second == tag && !it->second.empty()) return it;
    return inbox_.end();
  };
  decltype(inbox_)::iterator hit = inbox_.end();
  const bool ok = inbox_cv_.wait_until(lock, deadline, [&] {
    hit = find_match();
    return hit != inbox_.end();
  });
  if (!ok) return std::nullopt;
  const int src = hit->first.first;
  Inbound in = std::move(hit->second.front());
  hit->second.pop();
  if (hit->second.empty()) inbox_.erase(hit);
  obs::adopt_remote_context(in.ctx);
  account_recv(in.payload.size());
  return std::make_pair(src, std::move(in.payload));
}

std::pair<int, Bytes> TcpCommunicator::recv_bytes_any(int tag) {
  auto got = try_recv_bytes_any(tag, timeout_seconds_);
  OF_CHECK_MSG(got.has_value(), "TCP recv-any timeout waiting for tag " << tag);
  return std::move(*got);
}

// --- star-topology collectives (shared algorithms in star.hpp) -----------------

void TcpCommunicator::broadcast(Tensor& t, int root) { star::broadcast(*this, t, root); }
void TcpCommunicator::reduce(Tensor& t, int root, ReduceOp op) {
  star::reduce(*this, t, root, op);
}
void TcpCommunicator::allreduce(Tensor& t, ReduceOp op) { star::allreduce(*this, t, op); }
std::vector<Tensor> TcpCommunicator::gather(const Tensor& t, int root) {
  return star::gather(*this, t, root);
}
std::vector<Tensor> TcpCommunicator::allgather(const Tensor& t) {
  return star::allgather(*this, t);
}
void TcpCommunicator::barrier() { star::barrier(*this); }
std::vector<Bytes> TcpCommunicator::gather_bytes(const Bytes& b, int root) {
  return star::gather_bytes(*this, b, root);
}
void TcpCommunicator::broadcast_bytes(Bytes& b, int root) {
  star::broadcast_bytes(*this, b, root);
}

}  // namespace of::comm
