#include "comm/tcp.hpp"

#include "comm/event_loop.hpp"
#include "comm/star.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/check.hpp"
#include "obs/registry.hpp"
#include "obs/scrape.hpp"
#include "obs/trace.hpp"

namespace of::comm {
namespace {

// Global mirrors of the per-instance telemetry atomics. The members keep
// their per-communicator semantics (CommStats reports one link's counts);
// the registry gives the uniform process-wide surface exporters read.
obs::Counter& tcp_reconnects() {
  static obs::Counter& c = obs::Registry::global().counter("tcp.reconnects");
  return c;
}
obs::Counter& tcp_frames_dropped() {
  static obs::Counter& c = obs::Registry::global().counter("tcp.frames_dropped");
  return c;
}
obs::Histogram& tcp_frame_recv_bytes() {
  static obs::Histogram& h = obs::Registry::global().histogram("tcp.recv_frame_bytes");
  return h;
}

constexpr std::uint32_t kMagic = 0x0F5EED02u;  // v2: header carries trace context
constexpr int kHelloTag = -1;
// Clock-sync control frames (DESIGN.md §9): a client ping carries an 8-byte
// echo token; the server's reader answers immediately with pong = token +
// its own timestamp. Negative tags sit below the user range [0, 2^20) and
// the collective range, so pings can never alias a collective slot.
constexpr int kPingTag = -2;
constexpr int kPongTag = -3;
// Upper bound on a single frame payload. Anything larger is a corrupt or
// hostile header — reject it before allocating.
constexpr std::uint64_t kMaxFrameBytes = 1ull << 30;  // 1 GiB
// Frames queued per downed link before the oldest is dropped.
constexpr std::size_t kMaxOutboxFrames = 128;
// A connecting socket must deliver its hello within this budget, or its
// connection state is dropped (a silent connector must not hold
// per-connection state forever — it was never a member).
constexpr double kHelloTimeoutSeconds = 10.0;
// Budget for one HTTP scrape, receive and send combined. Served off the
// event loop, so a stalled scraper costs one fd for this long — it never
// wedges admission of real ranks.
constexpr double kScrapeDeadlineSeconds = 2.0;
// A send that makes no progress for this long means the peer stopped
// draining; treat the link as broken (accepted sockets are nonblocking, so
// backpressure surfaces as EAGAIN instead of blocking in the kernel).
constexpr double kWriteStallSeconds = 60.0;
// Scrape requests larger than this are garbage, not HTTP.
constexpr std::size_t kMaxHttpRequestBytes = 8192;

// Wire header v2 — 40 bytes, naturally aligned, no padding. Mirrored by
// tests/test_comm.cpp; keep the two in lockstep.
struct FrameHeader {
  std::uint32_t magic;
  std::int32_t src;
  std::int32_t tag;
  std::uint32_t round;
  std::uint64_t len;
  std::uint64_t trace_id;
  std::uint64_t span_id;
};
static_assert(sizeof(FrameHeader) == 40, "frame header must stay packed");

bool read_exact(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0 && errno == EINTR) continue;  // interrupted, not broken
    if (r <= 0) return false;               // EOF or error — connection closing
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_exact(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a closed peer must surface as EPIPE, not kill the process.
    const ssize_t w = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) return false;
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in resolve(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  OF_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
               "bad server address '" << host << "'");
  return addr;
}

// One fresh socket per attempt: a fd whose connect() failed is in an
// unspecified state and must not be reused.
int connect_once(const sockaddr_in& addr) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  set_nodelay(fd);
  return fd;
}

void put_le64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// Render the response for one scrape request (the path ends at the first
// space or CR). The sniffed "GET " prefix is part of `req`.
std::string render_scrape_response(const std::string& req) {
  std::string rest = req.substr(4);
  std::size_t end = rest.find(' ');
  if (end == std::string::npos) end = rest.find('\r');
  const std::string path = end == std::string::npos ? rest : rest.substr(0, end);
  return obs::render_http(obs::handle_scrape(path));
}

// splitmix64 step — jitter for the connect backoff, no global RNG state.
std::uint64_t mix64(std::uint64_t& s) {
  s += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

double ConnectBackoff::next() {
  // Jitter in [0.5, 1.5) × delay so a 10k-client burst doesn't retry in
  // lockstep; delay doubles per attempt, both capped at 0.5 s.
  const double jitter = 0.5 + static_cast<double>(mix64(state_) % 1024) / 1024.0;
  const double d = std::min(delay_ * jitter, 0.5);
  delay_ = std::min(delay_ * 2.0, 0.5);
  return d;
}

std::vector<double> connect_backoff_schedule(std::uint64_t seed, int attempts) {
  ConnectBackoff b(seed);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(attempts));
  for (int i = 0; i < attempts; ++i) out.push_back(b.next());
  return out;
}

// Server-side connection state machines. The whole struct is owned by the
// event-loop thread: every mutation happens inside a loop callback, so no
// lock guards it. An fd appears in `conns` from accept until drop — entry
// presence is fd ownership.
struct TcpCommunicator::ServerState {
  enum class Stage { kSniff, kHello, kHeader, kPayload, kHttpRead, kHttpWrite };
  struct Conn {
    Stage stage = Stage::kSniff;
    int peer = -1;        // admitted rank; -1 until the hello is validated
    std::size_t got = 0;  // bytes of the current unit (sniff/header/payload) read
    std::uint8_t head[sizeof(FrameHeader)];
    FrameHeader h{};  // current frame header, once reassembled
    Bytes payload;
    std::string http_req;   // scrape request, accumulated until CRLFCRLF
    std::string http_resp;  // scrape response, drained under EPOLLOUT
    std::size_t http_sent = 0;
  };
  std::map<int, std::unique_ptr<Conn>> conns;  // fd → state machine
  std::map<int, int> fd_of_peer;               // admitted rank → live fd
};

TcpCommunicator::TcpCommunicator(int rank, int world_size, FaultTolerance ft)
    : rank_(rank), world_size_(world_size), ft_(ft) {
  if (rank == 0) {
    for (int p = 1; p < world_size; ++p) peers_[p] = std::make_unique<Peer>();
  } else {
    peers_[0] = std::make_unique<Peer>();
  }
}

TcpCommunicator::Peer& TcpCommunicator::peer(int rank) {
  auto it = peers_.find(rank);
  OF_CHECK_MSG(it != peers_.end(),
               "no TCP link from rank " << rank_ << " to rank " << rank
                                        << " (star topology: clients only talk to the server)");
  return *it->second;
}

const TcpCommunicator::Peer& TcpCommunicator::peer(int rank) const {
  return const_cast<TcpCommunicator*>(this)->peer(rank);
}

std::unique_ptr<TcpCommunicator> TcpCommunicator::make_server(std::uint16_t port,
                                                              int world_size,
                                                              FaultTolerance ft) {
  OF_CHECK_MSG(world_size >= 1, "world size must be >= 1");
  auto comm = std::unique_ptr<TcpCommunicator>(new TcpCommunicator(0, world_size, ft));

  comm->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  OF_CHECK_MSG(comm->listen_fd_ >= 0, "socket() failed");
  int one = 1;
  ::setsockopt(comm->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  OF_CHECK_MSG(::bind(comm->listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
               "bind() failed on port " << port << " (errno=" << errno << ")");
  // Full kernel backlog: at 10k-client scale every rank connects in one burst
  // at round start, and a backlog capped at world_size drops SYNs.
  OF_CHECK_MSG(::listen(comm->listen_fd_, SOMAXCONN) == 0, "listen() failed");

  socklen_t alen = sizeof(addr);
  OF_CHECK(::getsockname(comm->listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen) == 0);
  comm->port_ = ntohs(addr.sin_port);

  // One event loop serves the initial connects, any mid-run rejoins, and
  // HTTP scrapes; construction blocks until the group is complete.
  set_nonblocking(comm->listen_fd_);
  comm->srv_ = std::make_unique<ServerState>();
  comm->loop_ = std::make_unique<EventLoop>();
  comm->loop_->add_fd(comm->listen_fd_, EPOLLIN,
                      [c = comm.get()](std::uint32_t) { c->server_on_accept(); });
  comm->loop_->start();
  {
    std::unique_lock<std::mutex> lock(comm->setup_mu_);
    const bool ok = comm->setup_cv_.wait_for(lock, std::chrono::seconds(120), [&] {
      return comm->connected_ == world_size - 1 || !comm->setup_error_.empty();
    });
    const std::string err = comm->setup_error_;
    comm->initial_done_ = true;
    lock.unlock();
    OF_CHECK_MSG(err.empty(), err);
    OF_CHECK_MSG(ok, "TCP server timed out waiting for " << world_size - 1 << " clients");
  }
  return comm;
}

std::unique_ptr<TcpCommunicator> TcpCommunicator::make_client(const std::string& host,
                                                              std::uint16_t port, int rank,
                                                              int world_size,
                                                              FaultTolerance ft) {
  OF_CHECK_MSG(rank >= 1 && rank < world_size, "client rank must be in [1, world)");
  auto comm = std::unique_ptr<TcpCommunicator>(new TcpCommunicator(rank, world_size, ft));
  comm->host_ = host;
  comm->port_ = port;
  const sockaddr_in addr = resolve(host, port);
  // Retry with jittered exponential backoff: the server may still be binding,
  // but a coordinator that never binds must surface as a clean error within
  // the connect budget, not an infinite 20 ms spin.
  const double budget =
      ft.connect_timeout_seconds > 0 ? ft.connect_timeout_seconds : 30.0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(budget);
  ConnectBackoff backoff(ft.connect_backoff_seed != 0
                             ? ft.connect_backoff_seed
                             : (static_cast<std::uint64_t>(rank) << 32) ^
                                   static_cast<std::uint64_t>(port));
  int attempts = 0;
  int fd = -1;
  for (;;) {
    ++attempts;
    fd = connect_once(addr);
    if (fd >= 0) break;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    const double remain = std::chrono::duration<double>(deadline - now).count();
    std::this_thread::sleep_for(
        std::chrono::duration<double>(std::min(backoff.next(), remain)));
  }
  OF_CHECK_MSG(fd >= 0, "connect() to " << host << ':' << port << " failed after "
                            << attempts << " attempts over " << budget
                            << "s — is the coordinator up?");
  // Hello frame announces our rank.
  FrameHeader h{kMagic, rank, kHelloTag, 0, 0, 0, 0};
  if (!write_exact(fd, &h, sizeof(h))) {
    ::close(fd);
    OF_CHECK_MSG(false, "client hello write to " << host << ':' << port << " failed");
  }
  Peer& p = comm->peer(0);
  p.fd = fd;
  p.up = true;
  comm->start_reader(0, fd);
  return comm;
}

TcpCommunicator::~TcpCommunicator() {
  shutting_down_.store(true);
  // Stop the server loop first: once it is joined, no callback can race the
  // teardown below, and srv_ is safe to walk from this thread.
  if (loop_) loop_->stop();
  for (auto& [r, p] : peers_) {
    std::lock_guard<std::mutex> lock(p->mu);
    if (p->fd >= 0) ::shutdown(p->fd, SHUT_RDWR);
  }
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  for (auto& t : readers_)
    if (t.joinable()) t.join();
  for (auto& [r, p] : peers_)
    if (p->fd >= 0) ::close(p->fd);
  for (int fd : retired_fds_) ::close(fd);
  if (srv_) {
    // Admitted fds were closed through peers_ above; what's left is
    // pre-admission and scrape connections.
    for (auto& [fd, c] : srv_->conns)
      if (c->peer < 0) ::close(fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void TcpCommunicator::set_peer_lifecycle(std::function<void(int, bool)> cb) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  lifecycle_ = std::move(cb);
}

void TcpCommunicator::notify_lifecycle(int peer_rank, bool up) {
  std::function<void(int, bool)> cb;
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    cb = lifecycle_;
  }
  if (cb) cb(peer_rank, up);
}

void TcpCommunicator::retire_fd(int fd) {
  // Keep the descriptor open (a reader may still be blocked on it) but dead;
  // actually closed at teardown so the number can't be reused mid-run.
  ::shutdown(fd, SHUT_RDWR);
  std::lock_guard<std::mutex> lock(setup_mu_);
  retired_fds_.push_back(fd);
}

// --- event-driven server side — every method below runs on the loop thread ----

void TcpCommunicator::server_on_accept() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (backlog drained) or listen socket shut down
    }
    if (shutting_down_.load()) {
      ::close(fd);
      return;
    }
    set_nodelay(fd);
    srv_->conns[fd] = std::make_unique<ServerState::Conn>();
    // Hello-admission budget: a silent connector must not hold per-connection
    // state forever. Fires unless the conn is admitted (or sniffs as HTTP,
    // which re-arms the tighter scrape deadline) first.
    loop_->arm_deadline(fd, kHelloTimeoutSeconds,
                        [this, fd] { server_on_deadline(fd); });
    loop_->add_fd(fd, EPOLLIN,
                  [this, fd](std::uint32_t ev) { server_on_conn(fd, ev); });
  }
}

void TcpCommunicator::server_on_deadline(int fd) {
  // Hello never arrived, or a scrape stalled. Either way the connection was
  // never (or is no longer) useful — drop it quietly; a real member that lost
  // the race simply reconnects.
  server_drop_conn(fd, std::string());
}

void TcpCommunicator::server_drop_conn(int fd, const std::string& err) {
  auto it = srv_->conns.find(fd);
  if (it == srv_->conns.end()) return;
  const int peer_rank = it->second->peer;
  loop_->remove_fd(fd);
  srv_->conns.erase(it);
  if (peer_rank >= 0) {
    srv_->fd_of_peer.erase(peer_rank);
    // Wake any sender stalled in poll(POLLOUT) on this socket before taking
    // the peer lock it holds.
    ::shutdown(fd, SHUT_RDWR);
    Peer& p = peer(peer_rank);
    {
      std::lock_guard<std::mutex> lock(p.mu);
      if (p.fd == fd) {
        p.up = false;
        p.fd = -1;  // closed below; a rejoin installs a fresh fd
      }
    }
    notify_lifecycle(peer_rank, false);
  }
  ::close(fd);
  if (!err.empty()) {
    // During group formation a malformed hello aborts construction (the
    // connecting side is part of this run and is misbehaving). Mid-run
    // garbage was already dropped above.
    std::lock_guard<std::mutex> lock(setup_mu_);
    if (!initial_done_ && setup_error_.empty()) {
      setup_error_ = err;
      setup_cv_.notify_all();
    }
  }
}

void TcpCommunicator::server_admit(int fd, int src) {
  loop_->cancel_deadline(fd);
  bool initial = false;
  {
    std::lock_guard<std::mutex> lock(setup_mu_);
    initial = !initial_done_;
  }
  Peer& p = peer(src);
  if (initial) {
    bool duplicate = false;
    {
      std::lock_guard<std::mutex> lock(p.mu);
      duplicate = p.up;
    }
    if (duplicate) {
      server_drop_conn(fd, "duplicate client rank " + std::to_string(src));
      return;
    }
  }
  // A rejoin replaces the old link. Shut the old socket down before taking
  // the peer lock so a sender stalled on it wakes up and releases the lock.
  const auto old_it = srv_->fd_of_peer.find(src);
  const int old_fd = old_it == srv_->fd_of_peer.end() ? -1 : old_it->second;
  if (old_fd >= 0) {
    ::shutdown(old_fd, SHUT_RDWR);
    loop_->remove_fd(old_fd);
    srv_->conns.erase(old_fd);
  }
  srv_->conns[fd]->peer = src;
  srv_->fd_of_peer[src] = fd;
  {
    std::lock_guard<std::mutex> lock(p.mu);
    p.fd = fd;
    p.up = true;
    if (!initial) {
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      tcp_reconnects().inc();
      obs::instant(obs::Name::TcpReconnect, rank_, 0,
                   static_cast<std::uint64_t>(src));
    }
    flush_outbox_locked(p);
  }
  if (old_fd >= 0) ::close(old_fd);  // no sender can hold it once p.fd moved on
  notify_lifecycle(src, true);
  if (initial) {
    std::lock_guard<std::mutex> lock(setup_mu_);
    ++connected_;
    setup_cv_.notify_all();
  }
}

void TcpCommunicator::server_dispatch(int fd, int peer_rank, int tag,
                                      std::uint32_t round, std::uint64_t trace_id,
                                      std::uint64_t span_id) {
  auto it = srv_->conns.find(fd);
  if (it == srv_->conns.end()) return;
  Bytes payload = std::exchange(it->second->payload, Bytes{});
  if (tag == kPingTag) {
    // Clock-sync ping: answer from the loop so the sample never waits behind
    // application recvs. Payload: echo token + our clock (trace timebase),
    // plus the injectable test skew.
    if (payload.size() != 8) {
      server_drop_conn(fd, std::string());  // malformed control frame
      return;
    }
    Bytes pong;
    pong.reserve(16);
    put_le64(pong, get_le64(payload.data()));
    const std::int64_t server_ns =
        static_cast<std::int64_t>(obs::TraceRecorder::global().now_ns()) +
        pong_skew_ns_.load(std::memory_order_relaxed);
    put_le64(pong, static_cast<std::uint64_t>(server_ns));
    Peer& p = peer(peer_rank);
    std::lock_guard<std::mutex> lock(p.mu);
    if (p.up && p.fd >= 0)
      (void)write_frame_locked(p, kPongTag, ConstByteSpan(pong), {});
    return;
  }
  tcp_frame_recv_bytes().observe(payload.size());
  obs::instant(obs::Name::TcpRecv, rank_, 0, payload.size());
  {
    std::lock_guard<std::mutex> lock(inbox_mu_);
    inbox_[{peer_rank, tag}].push(
        Inbound{std::move(payload), obs::TraceContext{trace_id, span_id, round}});
  }
  inbox_cv_.notify_all();
}

void TcpCommunicator::server_on_conn(int fd, std::uint32_t events) {
  (void)events;  // level-triggered: state decides what to attempt, not the mask
  auto it = srv_->conns.find(fd);
  if (it == srv_->conns.end()) return;
  ServerState::Conn* c = it->second.get();
  using Stage = ServerState::Stage;

  if (c->stage == Stage::kHttpWrite) {
    while (c->http_sent < c->http_resp.size()) {
      const ssize_t w = ::send(fd, c->http_resp.data() + c->http_sent,
                               c->http_resp.size() - c->http_sent, MSG_NOSIGNAL);
      if (w < 0 && errno == EINTR) continue;
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (w <= 0) {
        server_drop_conn(fd, std::string());
        return;
      }
      c->http_sent += static_cast<std::size_t>(w);
    }
    server_drop_conn(fd, std::string());  // response complete; scrapes are one-shot
    return;
  }

  for (;;) {
    // One read per iteration; the stage decides the destination buffer.
    std::uint8_t* dst = nullptr;
    std::size_t want = 0;
    char http_buf[512];
    switch (c->stage) {
      case Stage::kSniff:
        dst = c->head;
        want = 4;
        break;
      case Stage::kHello:
      case Stage::kHeader:
        dst = c->head;
        want = sizeof(FrameHeader);
        break;
      case Stage::kPayload:
        dst = c->payload.data();
        want = c->payload.size();
        break;
      case Stage::kHttpRead:
        dst = reinterpret_cast<std::uint8_t*>(http_buf);
        want = c->got + sizeof(http_buf);  // unbounded unit; got tracks nothing
        break;
      case Stage::kHttpWrite:
        return;  // handled above
    }
    const std::size_t room = c->stage == Stage::kHttpRead ? sizeof(http_buf)
                                                          : want - c->got;
    const ssize_t r = ::read(fd, c->stage == Stage::kHttpRead ? dst : dst + c->got,
                             room);
    if (r < 0 && errno == EINTR) continue;
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (r <= 0) {
      // EOF or error. Pre-admission this is a vanished connector (dropped
      // quietly — it was never a member); post-admission it is a broken
      // link, surfaced through peer_alive()/fault tolerance.
      server_drop_conn(fd, std::string());
      return;
    }

    if (c->stage == Stage::kHttpRead) {
      c->http_req.append(http_buf, static_cast<std::size_t>(r));
      if (c->http_req.size() > kMaxHttpRequestBytes) {
        server_drop_conn(fd, std::string());  // garbage, not HTTP
        return;
      }
      if (c->http_req.find("\r\n\r\n") == std::string::npos) continue;
      c->http_resp = render_scrape_response(c->http_req);
      c->http_sent = 0;
      c->stage = Stage::kHttpWrite;
      // Level-triggered EPOLLOUT fires immediately on a writable socket, so
      // the response goes out on the next loop pass.
      loop_->modify_fd(fd, EPOLLOUT);
      return;
    }

    c->got += static_cast<std::size_t>(r);
    if (c->got < want) continue;

    switch (c->stage) {
      case Stage::kSniff:
        if (std::memcmp(c->head, "GET ", 4) == 0) {
          // HTTP scrape, never a peer: tighter deadline covers recv + send.
          c->stage = Stage::kHttpRead;
          c->http_req.assign(reinterpret_cast<char*>(c->head), 4);
          loop_->arm_deadline(fd, kScrapeDeadlineSeconds,
                              [this, fd] { server_on_deadline(fd); });
        } else {
          c->stage = Stage::kHello;  // head already holds the first 4 bytes
        }
        break;
      case Stage::kHello: {
        FrameHeader h;
        std::memcpy(&h, c->head, sizeof(h));
        std::string err;
        if (h.magic != kMagic || h.tag != kHelloTag || h.len != 0)
          err = "malformed client hello";
        else if (h.src < 1 || h.src >= world_size_)
          err = "client announced invalid rank " + std::to_string(h.src);
        if (!err.empty()) {
          server_drop_conn(fd, err);
          return;
        }
        server_admit(fd, h.src);
        if (srv_->conns.find(fd) == srv_->conns.end()) return;  // admit refused
        c->stage = Stage::kHeader;
        c->got = 0;
        break;
      }
      case Stage::kHeader:
        std::memcpy(&c->h, c->head, sizeof(c->h));
        if (c->h.magic != kMagic || c->h.len > kMaxFrameBytes) {
          server_drop_conn(fd, std::string());  // protocol violation → drop link
          return;
        }
        c->got = 0;
        if (c->h.len == 0) {
          c->payload.clear();
          server_dispatch(fd, c->peer, c->h.tag, c->h.round, c->h.trace_id,
                          c->h.span_id);
          if (srv_->conns.find(fd) == srv_->conns.end()) return;
        } else {
          c->payload.resize(c->h.len);
          c->stage = Stage::kPayload;
        }
        break;
      case Stage::kPayload:
        c->stage = Stage::kHeader;
        c->got = 0;
        server_dispatch(fd, c->peer, c->h.tag, c->h.round, c->h.trace_id,
                        c->h.span_id);
        if (srv_->conns.find(fd) == srv_->conns.end()) return;
        break;
      case Stage::kHttpRead:
      case Stage::kHttpWrite:
        break;  // unreachable
    }
  }
}

void TcpCommunicator::start_reader(int peer_rank, int fd) {
  std::lock_guard<std::mutex> lock(readers_mu_);
  readers_.emplace_back([this, peer_rank, fd] { reader_main(peer_rank, fd); });
}

void TcpCommunicator::reader_main(int peer_rank, int fd) {
  for (;;) {
    read_frames(peer_rank, fd);  // returns when the link breaks
    if (shutting_down_.load()) return;
    Peer& p = peer(peer_rank);
    {
      std::lock_guard<std::mutex> lock(p.mu);
      if (p.fd != fd) return;  // a rejoin already replaced this link; new reader owns it
      p.up = false;
    }
    // Only clients run readers (the server multiplexes on its event loop);
    // without fault tolerance a dead link stays dead.
    if (rank_ == 0 || !ft_.enabled) return;
    const int nfd = client_reconnect();
    if (nfd < 0) return;  // gave up (or shutdown)
    fd = nfd;
  }
}

void TcpCommunicator::read_frames(int peer_rank, int fd) {
  for (;;) {
    FrameHeader h{};
    if (!read_exact(fd, &h, sizeof(h))) return;        // peer closed
    if (h.magic != kMagic) return;                     // protocol violation → drop link
    if (h.len > kMaxFrameBytes) return;                // absurd length → drop link
    Bytes payload(h.len);
    if (h.len > 0 && !read_exact(fd, payload.data(), payload.size())) return;
    tcp_frame_recv_bytes().observe(h.len);
    obs::instant(obs::Name::TcpRecv, rank_, 0, h.len);
    {
      std::lock_guard<std::mutex> lock(inbox_mu_);
      inbox_[{peer_rank, h.tag}].push(
          Inbound{std::move(payload), obs::TraceContext{h.trace_id, h.span_id, h.round}});
    }
    inbox_cv_.notify_all();
  }
}

bool TcpCommunicator::interruptible_sleep(double seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (shutting_down_.load()) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return !shutting_down_.load();
}

int TcpCommunicator::client_reconnect() {
  const sockaddr_in addr = resolve(host_, port_);
  Peer& p = peer(0);
  double backoff = ft_.backoff_seconds;
  for (int attempt = 0; attempt < ft_.max_reconnect_attempts; ++attempt) {
    {
      obs::ScopedSpan backoff_span(obs::Name::TcpBackoff, rank_, 0,
                                   static_cast<std::uint64_t>(attempt));
      if (!interruptible_sleep(backoff)) return -1;
    }
    backoff = std::min(backoff * 2.0, ft_.backoff_max_seconds);
    const int fd = connect_once(addr);
    if (fd < 0) continue;
    FrameHeader h{kMagic, rank_, kHelloTag, 0, 0, 0, 0};
    if (!write_exact(fd, &h, sizeof(h))) {
      ::close(fd);
      continue;
    }
    std::lock_guard<std::mutex> lock(p.mu);
    if (shutting_down_.load()) {
      ::close(fd);
      return -1;
    }
    if (p.fd >= 0) retire_fd(p.fd);
    p.fd = fd;
    p.up = true;
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    tcp_reconnects().inc();
    obs::instant(obs::Name::TcpReconnect, rank_, 0, 0);
    flush_outbox_locked(p);
    return fd;
  }
  return -1;
}

bool TcpCommunicator::write_frame_locked(Peer& p, int tag, ConstByteSpan payload,
                                         const obs::TraceContext& ctx) {
  FrameHeader h{kMagic, rank_, tag, ctx.round, payload.size(), ctx.trace_id, ctx.span_id};
  // One frame = header + payload under the peer lock so concurrent senders
  // cannot interleave. Scatter I/O sends both pieces in one syscall without
  // building a combined buffer; sendmsg rather than writev so MSG_NOSIGNAL
  // applies (a closed peer must surface as EPIPE, not kill the process).
  // The loop advances the iovec across partial writes, which may stop
  // anywhere, including mid-header.
  iovec iov[2];
  iov[0].iov_base = &h;
  iov[0].iov_len = sizeof(h);
  iov[1].iov_base = const_cast<std::uint8_t*>(payload.data());
  iov[1].iov_len = payload.size();
  const int iov_cnt = payload.empty() ? 1 : 2;
  int idx = 0;
  while (idx < iov_cnt) {
    msghdr msg{};
    msg.msg_iov = &iov[idx];
    msg.msg_iovlen = static_cast<std::size_t>(iov_cnt - idx);
    const ssize_t n = ::sendmsg(p.fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Server-side sockets are nonblocking, so backpressure surfaces here
        // instead of blocking in the kernel. Wait for drain under a stall
        // budget: a peer that stopped reading breaks the link rather than
        // wedging the sender (and whoever waits on the peer lock) forever.
        pollfd pf{p.fd, POLLOUT, 0};
        const int pr = ::poll(&pf, 1, static_cast<int>(kWriteStallSeconds * 1000));
        if (pr > 0) continue;
        return false;  // stall budget exhausted, or the socket died
      }
      return false;
    }
    std::size_t left = static_cast<std::size_t>(n);
    while (idx < iov_cnt && left >= iov[idx].iov_len) {
      left -= iov[idx].iov_len;
      ++idx;
    }
    if (idx < iov_cnt && left > 0) {
      iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + left;
      iov[idx].iov_len -= left;
    }
  }
  return true;
}

void TcpCommunicator::queue_frame_locked(Peer& p, int tag, ConstByteSpan payload,
                                         const obs::TraceContext& ctx) {
  if (p.outbox.size() >= kMaxOutboxFrames) {
    p.outbox.pop_front();  // oldest frame is the stalest — sacrifice it
    frames_dropped_.fetch_add(1, std::memory_order_relaxed);
    tcp_frames_dropped().inc();
  }
  // The outbox outlives the caller's view, so this is the one place the
  // span is copied into an owned buffer.
  p.outbox.push_back(Frame{tag, Bytes(payload.begin(), payload.end()), ctx});
}

void TcpCommunicator::flush_outbox_locked(Peer& p) {
  while (!p.outbox.empty()) {
    Frame& f = p.outbox.front();
    if (!write_frame_locked(p, f.tag, f.payload, f.ctx)) {
      p.up = false;  // link died again mid-flush; keep the rest queued
      return;
    }
    p.outbox.pop_front();
  }
}

void TcpCommunicator::send_bytes(int dst, int tag, ConstByteSpan payload) {
  obs::ScopedSpan span(obs::Name::TcpSend, rank_, 0, payload.size());
  // Capture the sender's context outside the peer lock; one relaxed load
  // when tracing is off.
  const obs::TraceContext ctx = obs::current_context();
  Peer& p = peer(dst);
  std::lock_guard<std::mutex> lock(p.mu);
  if (!p.up) {
    OF_CHECK_MSG(ft_.enabled, "TCP link from rank " << rank_ << " to rank " << dst
                                                    << " is down");
    queue_frame_locked(p, tag, payload, ctx);
    account_send(payload.size());
    return;
  }
  if (!write_frame_locked(p, tag, payload, ctx)) {
    // The stream broke mid-frame; the receiver resyncs from scratch on the
    // next connection, so replaying the whole frame is safe.
    p.up = false;
    OF_CHECK_MSG(ft_.enabled, "TCP write to rank " << dst << " failed (errno=" << errno
                                                   << ")");
    queue_frame_locked(p, tag, payload, ctx);
  }
  account_send(payload.size());
}

std::optional<obs::ClockSample> TcpCommunicator::ping_server(double timeout_seconds) {
  OF_CHECK_MSG(rank_ != 0, "ping_server is a client-side operation");
  // Distinct token per ping so a pong that outlived a timed-out earlier
  // ping can't be mistaken for this one's answer.
  const std::uint64_t token =
      (static_cast<std::uint64_t>(rank_) << 48) ^
      ping_token_.fetch_add(1, std::memory_order_relaxed);
  Bytes ping;
  ping.reserve(8);
  put_le64(ping, token);
  Peer& p = peer(0);
  const std::int64_t t0 =
      static_cast<std::int64_t>(obs::TraceRecorder::global().now_ns());
  {
    std::lock_guard<std::mutex> lock(p.mu);
    if (!p.up || p.fd < 0) return std::nullopt;
    if (!write_frame_locked(p, kPingTag, ConstByteSpan(ping), {})) return std::nullopt;
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  const auto key = std::make_pair(0, kPongTag);
  std::unique_lock<std::mutex> lock(inbox_mu_);
  for (;;) {
    const bool ok = inbox_cv_.wait_until(lock, deadline, [&] {
      auto it = inbox_.find(key);
      return it != inbox_.end() && !it->second.empty();
    });
    if (!ok) return std::nullopt;
    auto it = inbox_.find(key);
    Inbound in = std::move(it->second.front());
    it->second.pop();
    if (it->second.empty()) inbox_.erase(it);
    if (in.payload.size() != 16 || get_le64(in.payload.data()) != token)
      continue;  // stale or malformed pong: discard, keep waiting
    obs::ClockSample s;
    s.t0_ns = t0;
    s.server_ns = static_cast<std::int64_t>(get_le64(in.payload.data() + 8));
    s.t1_ns = static_cast<std::int64_t>(obs::TraceRecorder::global().now_ns());
    return s;
  }
}

void TcpCommunicator::inject_disconnect(int peer_rank) {
  Peer& p = peer(peer_rank);
  std::lock_guard<std::mutex> lock(p.mu);
  if (p.fd >= 0) ::shutdown(p.fd, SHUT_RDWR);
}

bool TcpCommunicator::peer_alive(int rank) const {
  if (rank == rank_) return true;
  auto it = peers_.find(rank);
  if (it == peers_.end()) return false;
  std::lock_guard<std::mutex> lock(it->second->mu);
  return it->second->up;
}

CommStats TcpCommunicator::stats() const {
  CommStats s = stats_;
  s.reconnects = reconnects_.load(std::memory_order_relaxed);
  s.frames_dropped = frames_dropped_.load(std::memory_order_relaxed);
  return s;
}

Bytes TcpCommunicator::take(int src, int tag) {
  std::unique_lock<std::mutex> lock(inbox_mu_);
  const auto key = std::make_pair(src, tag);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds_));
  const bool ok = inbox_cv_.wait_until(lock, deadline, [&] {
    auto it = inbox_.find(key);
    return it != inbox_.end() && !it->second.empty();
  });
  OF_CHECK_MSG(ok, "TCP recv timeout waiting for (src=" << src << ", tag=" << tag << ')');
  auto it = inbox_.find(key);
  Inbound in = std::move(it->second.front());
  it->second.pop();
  if (it->second.empty()) inbox_.erase(it);
  obs::adopt_remote_context(in.ctx);
  return std::move(in.payload);
}

Bytes TcpCommunicator::recv_bytes(int src, int tag) {
  Bytes b = take(src, tag);
  account_recv(b.size());
  return b;
}

std::optional<std::pair<int, Bytes>> TcpCommunicator::try_recv_bytes_any(
    int tag, double timeout_seconds) {
  std::unique_lock<std::mutex> lock(inbox_mu_);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  auto find_match = [&]() -> decltype(inbox_)::iterator {
    for (auto it = inbox_.begin(); it != inbox_.end(); ++it)
      if (it->first.second == tag && !it->second.empty()) return it;
    return inbox_.end();
  };
  decltype(inbox_)::iterator hit = inbox_.end();
  const bool ok = inbox_cv_.wait_until(lock, deadline, [&] {
    hit = find_match();
    return hit != inbox_.end();
  });
  if (!ok) return std::nullopt;
  const int src = hit->first.first;
  Inbound in = std::move(hit->second.front());
  hit->second.pop();
  if (hit->second.empty()) inbox_.erase(hit);
  obs::adopt_remote_context(in.ctx);
  account_recv(in.payload.size());
  return std::make_pair(src, std::move(in.payload));
}

std::pair<int, Bytes> TcpCommunicator::recv_bytes_any(int tag) {
  auto got = try_recv_bytes_any(tag, timeout_seconds_);
  OF_CHECK_MSG(got.has_value(), "TCP recv-any timeout waiting for tag " << tag);
  return std::move(*got);
}

// --- star-topology collectives (shared algorithms in star.hpp) -----------------

void TcpCommunicator::broadcast(Tensor& t, int root) { star::broadcast(*this, t, root); }
void TcpCommunicator::reduce(Tensor& t, int root, ReduceOp op) {
  star::reduce(*this, t, root, op);
}
void TcpCommunicator::allreduce(Tensor& t, ReduceOp op) { star::allreduce(*this, t, op); }
std::vector<Tensor> TcpCommunicator::gather(const Tensor& t, int root) {
  return star::gather(*this, t, root);
}
std::vector<Tensor> TcpCommunicator::allgather(const Tensor& t) {
  return star::allgather(*this, t);
}
void TcpCommunicator::barrier() { star::barrier(*this); }
std::vector<Bytes> TcpCommunicator::gather_bytes(const Bytes& b, int root) {
  return star::gather_bytes(*this, b, root);
}
void TcpCommunicator::broadcast_bytes(Bytes& b, int root) {
  star::broadcast_bytes(*this, b, root);
}

}  // namespace of::comm
