// TcpCommunicator — the GrpcCommunicator stand-in (paper §3.3).
//
// A real TCP client/server star: rank 0 is the server (aggregator-side),
// ranks 1..P-1 connect as clients. Frames are length-prefixed binary (our
// protocol-buffers stand-in):
//
//   u32 magic | i32 src | i32 tag | u64 len | payload[len]
//
// Point-to-point is only defined along star edges (server↔client), so the
// tree/ring collective defaults are overridden with client/server
// semantics: broadcast = server sends to each client, reduce/gather =
// clients send to the server. This reproduces gRPC-based FL's O(P · model)
// server bottleneck that the paper contrasts with ring all-reduce.
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>

#include "comm/communicator.hpp"

namespace of::comm {

class TcpCommunicator final : public Communicator {
 public:
  // Bind + listen on `port` (0 = ephemeral), accept `world_size`-1 clients.
  // Blocks until the group is fully connected.
  static std::unique_ptr<TcpCommunicator> make_server(std::uint16_t port, int world_size);
  // Connect to the server; `rank` in [1, world_size).
  static std::unique_ptr<TcpCommunicator> make_client(const std::string& host,
                                                      std::uint16_t port, int rank,
                                                      int world_size);

  ~TcpCommunicator() override;

  int rank() const override { return rank_; }
  int world_size() const override { return world_size_; }
  std::string name() const override { return "TcpCommunicator"; }
  bool star_only() const override { return true; }
  std::uint16_t port() const noexcept { return port_; }

  void send_bytes(int dst, int tag, const Bytes& payload) override;
  Bytes recv_bytes(int src, int tag) override;
  std::pair<int, Bytes> recv_bytes_any(int tag) override;

  // Star-topology collectives (root must be the server rank 0).
  void broadcast(Tensor& t, int root) override;
  void allreduce(Tensor& t, ReduceOp op) override;
  void reduce(Tensor& t, int root, ReduceOp op) override;
  std::vector<Tensor> gather(const Tensor& t, int root) override;
  std::vector<Tensor> allgather(const Tensor& t) override;
  void barrier() override;
  std::vector<Bytes> gather_bytes(const Bytes& b, int root) override;
  void broadcast_bytes(Bytes& b, int root) override;

 private:
  TcpCommunicator(int rank, int world_size);

  void start_reader(int peer_rank, int fd);
  void write_frame(int fd, int tag, const Bytes& payload);
  Bytes take(int src, int tag);

  int rank_;
  int world_size_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;

  // peer rank → socket fd (server: one per client; client: {0 → server fd}).
  std::map<int, int> peer_fd_;
  std::map<int, std::unique_ptr<std::mutex>> write_mu_;
  std::vector<std::thread> readers_;
  std::atomic<bool> shutting_down_{false};

  std::mutex inbox_mu_;
  std::condition_variable inbox_cv_;
  std::map<std::pair<int, int>, std::queue<Bytes>> inbox_;
  double timeout_seconds_ = 60.0;
};

}  // namespace of::comm
