// TcpCommunicator — the GrpcCommunicator stand-in (paper §3.3).
//
// A real TCP client/server star: rank 0 is the server (aggregator-side),
// ranks 1..P-1 connect as clients. Frames are length-prefixed binary (our
// protocol-buffers stand-in), v2 with the trace context in the header
// (DESIGN.md §9):
//
//   u32 magic | i32 src | i32 tag | u32 round | u64 len
//                                 | u64 trace_id | u64 span_id | payload[len]
//
// Control tags live below the user/collective ranges: hello = −1,
// clock-sync ping = −2 / pong = −3 (answered on the server's event loop,
// never touching the collective tag window). A plain-text "GET " where a
// frame header would be is served as a read-only HTTP scrape of the obs
// registry/fleet (obs/scrape.hpp) and the connection closed; the response
// is written off the accept path under a deadline, so a stalled scraper
// cannot wedge admission of real ranks.
//
// Server side (rank 0): one epoll event loop (event_loop.hpp) owns the
// listen socket and every accepted connection. Accepted sockets are
// nonblocking; a per-connection state machine reassembles v2 frames
// (sniff → hello → header → payload) and posts them to the inbox, so
// thousands of clients multiplex in one thread instead of one blocking
// reader thread each (DESIGN.md §10). Clients keep a single blocking
// reader thread for their one server link.
//
// Point-to-point is only defined along star edges (server↔client), so the
// tree/ring collective defaults are overridden with client/server
// semantics: broadcast = server sends to each client, reduce/gather =
// clients send to the server. This reproduces gRPC-based FL's O(P · model)
// server bottleneck that the paper contrasts with ring all-reduce.
//
// Fault tolerance (optional, per-communicator): a broken link marks the
// peer down instead of killing the run. Clients reconnect with capped
// exponential backoff; the server keeps accepting so a rejoining client is
// re-admitted mid-run. Frames sent while a link is down are queued (bounded)
// and replayed on reconnect; overflow is dropped and counted. Liveness is
// observable through peer_alive(), reconnects/frames_dropped through
// stats() — the raw material of deadline-based partial aggregation.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "comm/communicator.hpp"
#include "obs/clocksync.hpp"
#include "obs/context.hpp"

namespace of::comm {

class EventLoop;

struct TcpFaultTolerance {
  bool enabled = false;
  int max_reconnect_attempts = 8;
  double backoff_seconds = 0.05;      // first retry delay
  double backoff_max_seconds = 2.0;   // exponential backoff cap
  // Initial-connect budget (make_client): retries with jittered exponential
  // backoff until this deadline, then fails with a clean error instead of
  // spinning forever against a coordinator that never bound.
  double connect_timeout_seconds = 30.0;
  // Seed for the connect-backoff jitter chain. 0 = derive from (rank, port),
  // which decorrelates a connect burst but differs run to run; the Engine
  // sets a splitmix64-derived per-node seed so retry schedules reproduce
  // with the run seed.
  std::uint64_t connect_backoff_seed = 0;
};

// The initial-connect retry pacing: jittered exponential backoff, delay ×2
// per attempt, jitter in [0.5, 1.5), both capped at 0.5 s. Pure in `seed` —
// two chains with the same seed produce the identical schedule, which is
// what makes a run's connect storm reproducible (tests/test_comm.cpp).
class ConnectBackoff {
 public:
  explicit ConnectBackoff(std::uint64_t seed) : state_(seed) {}
  // Delay before the next connect attempt, seconds.
  double next();

 private:
  std::uint64_t state_;
  double delay_ = 0.02;
};

// The first `attempts` delays of the chain, for schedule-level assertions.
std::vector<double> connect_backoff_schedule(std::uint64_t seed, int attempts);

class TcpCommunicator final : public Communicator {
 public:
  using FaultTolerance = TcpFaultTolerance;

  // Bind + listen on `port` (0 = ephemeral), accept `world_size`-1 clients.
  // Blocks until the group is fully connected.
  static std::unique_ptr<TcpCommunicator> make_server(std::uint16_t port, int world_size,
                                                      FaultTolerance ft = {});
  // Connect to the server; `rank` in [1, world_size).
  static std::unique_ptr<TcpCommunicator> make_client(const std::string& host,
                                                      std::uint16_t port, int rank,
                                                      int world_size, FaultTolerance ft = {});

  ~TcpCommunicator() override;

  int rank() const override { return rank_; }
  int world_size() const override { return world_size_; }
  std::string name() const override { return "TcpCommunicator"; }
  bool star_only() const override { return true; }
  std::uint16_t port() const noexcept { return port_; }

  void send_bytes(int dst, int tag, ConstByteSpan payload) override;
  using Communicator::send_bytes;
  Bytes recv_bytes(int src, int tag) override;
  std::pair<int, Bytes> recv_bytes_any(int tag) override;
  std::optional<std::pair<int, Bytes>> try_recv_bytes_any(int tag,
                                                          double timeout_seconds) override;
  bool peer_alive(int rank) const override;
  CommStats stats() const override;

  void set_recv_timeout(double seconds) noexcept { timeout_seconds_ = seconds; }
  std::uint64_t reconnect_count() const noexcept { return reconnects_.load(); }

  // Fault-injection hook: tear down the live socket to `peer_rank` (clients:
  // 0, the server link). Both sides observe the loss; with fault tolerance
  // on, the client reconnects with backoff and queued frames are replayed.
  void inject_disconnect(int peer_rank = 0);

  // Server only: observe the event loop's connection lifecycle. Fired on
  // the loop thread with (client rank, up) at every admission and drop —
  // the transport-level liveness feed of the serving tier's population
  // registry (src/serve/registry.hpp). Pass nullptr to detach; callers must
  // detach before destroying whatever the callback captures.
  void set_peer_lifecycle(std::function<void(int, bool)> cb);

  // Clock-sync ping (clients only): send a ping to the server, wait for the
  // pong, and return the (t0, server, t1) sample for the offset estimator.
  // Pings ride control tag −2/−3 — they never claim a collective tag, so a
  // re-ping can interleave freely with an in-flight gather even under a
  // shrunken tag window. Returns nullopt if the link is down or the pong
  // doesn't arrive within the timeout.
  std::optional<obs::ClockSample> ping_server(double timeout_seconds = 1.0);

  // Test hook: skew the server's pong timestamps by `ns` so offset recovery
  // can be exercised within one process (which shares one steady clock).
  void set_pong_skew_for_test(std::int64_t ns) noexcept {
    pong_skew_ns_.store(ns, std::memory_order_relaxed);
  }

  // Star-topology collectives (root must be the server rank 0).
  void broadcast(Tensor& t, int root) override;
  void allreduce(Tensor& t, ReduceOp op) override;
  void reduce(Tensor& t, int root, ReduceOp op) override;
  std::vector<Tensor> gather(const Tensor& t, int root) override;
  std::vector<Tensor> allgather(const Tensor& t) override;
  void barrier() override;
  std::vector<Bytes> gather_bytes(const Bytes& b, int root) override;
  void broadcast_bytes(Bytes& b, int root) override;

 private:
  // A queued-or-delivered frame: payload plus the sender's trace context
  // (captured at send time so a replay after reconnect keeps its origin).
  struct Frame {
    int tag = 0;
    Bytes payload;
    obs::TraceContext ctx;
  };

  // One star edge. `mu` guards fd/up/outbox and serializes frame writes so
  // concurrent senders cannot interleave.
  struct Peer {
    int fd = -1;
    bool up = false;
    std::mutex mu;
    std::deque<Frame> outbox;  // frames queued while down
  };

  // An inbox entry: the received payload and the frame header's context,
  // adopted by the thread that takes the frame.
  struct Inbound {
    Bytes payload;
    obs::TraceContext ctx;
  };

  TcpCommunicator(int rank, int world_size, FaultTolerance ft);

  void start_reader(int peer_rank, int fd);
  void reader_main(int peer_rank, int fd);
  // Pull frames off `fd` into the inbox until the link breaks.
  void read_frames(int peer_rank, int fd);
  // Client-side reconnect loop (capped exponential backoff). Returns the new
  // fd, or -1 when attempts are exhausted or shutdown began.
  int client_reconnect();
  // Sleep in small slices so shutdown stays responsive; false if shutting down.
  bool interruptible_sleep(double seconds);

  // --- event-driven server side (rank 0) — all run on the loop thread ---------
  // Drain the nonblocking listen socket: accept, register the connection
  // state machine, arm its hello-admission deadline.
  void server_on_accept();
  // Readiness callback for one accepted connection: advance its read (or
  // HTTP write) state machine as far as the socket allows.
  void server_on_conn(int fd, std::uint32_t events);
  // Per-connection deadline: hello never arrived / scrape stalled. Drops
  // the connection quietly (a silent connector is not a member).
  void server_on_deadline(int fd);
  // Admit a connection that delivered a valid hello as peer `src`.
  void server_admit(int fd, int src);
  // Tear down one connection. `err` non-empty aborts setup during group
  // formation (a misbehaving member), and is ignored mid-run.
  void server_drop_conn(int fd, const std::string& err);
  // Deliver one reassembled frame from an admitted connection (answers
  // pings inline, everything else goes to the inbox).
  void server_dispatch(int fd, int peer_rank, int tag, std::uint32_t round,
                       std::uint64_t trace_id, std::uint64_t span_id);

  Peer& peer(int rank);
  const Peer& peer(int rank) const;
  bool write_frame_locked(Peer& p, int tag, ConstByteSpan payload,
                          const obs::TraceContext& ctx);
  void queue_frame_locked(Peer& p, int tag, ConstByteSpan payload,
                          const obs::TraceContext& ctx);
  void flush_outbox_locked(Peer& p);
  void retire_fd(int fd);
  Bytes take(int src, int tag);

  int rank_;
  int world_size_;
  FaultTolerance ft_;
  std::uint16_t port_ = 0;
  std::string host_;  // clients: server address, for reconnects
  int listen_fd_ = -1;

  // peer rank → link state (server: one per client; client: {0 → server}).
  // The map is populated before any thread starts and never resized after,
  // so lookups are lock-free; per-peer state is guarded by Peer::mu.
  std::map<int, std::unique_ptr<Peer>> peers_;

  std::mutex setup_mu_;  // guards the three fields below + retired_fds_
  std::condition_variable setup_cv_;
  int connected_ = 0;
  bool initial_done_ = false;
  std::string setup_error_;
  std::vector<int> retired_fds_;  // fds replaced by a rejoin; closed at teardown

  // Server: the epoll reactor and its per-connection read-state machines
  // (defined in tcp.cpp; loop-thread-owned).
  struct ServerState;
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<ServerState> srv_;

  std::mutex lifecycle_mu_;
  std::function<void(int, bool)> lifecycle_;  // server: admission/drop observer
  void notify_lifecycle(int peer_rank, bool up);

  std::mutex readers_mu_;
  std::vector<std::thread> readers_;
  std::atomic<bool> shutting_down_{false};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> frames_dropped_{0};
  std::atomic<std::int64_t> pong_skew_ns_{0};
  std::atomic<std::uint64_t> ping_token_{0};

  std::mutex inbox_mu_;
  std::condition_variable inbox_cv_;
  std::map<std::pair<int, int>, std::queue<Inbound>> inbox_;
  double timeout_seconds_ = 60.0;
};

}  // namespace of::comm
