// 64-byte-aligned allocation for wire frames and kernel scratch.
//
// The of::simd kernels read frame views with 256-bit loads; FramePool
// frames and every `tensor::Bytes` buffer therefore allocate on 64-byte
// (cache-line) boundaries so vector loops over a frame body start aligned
// whenever the in-frame offset is. The allocator rides std::vector — same
// growth policy, same interface — only the underlying operator new carries
// an alignment request. Alignment is asserted where pooled frames are
// handed out (frame_pool.cpp, debug builds).
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace of {

inline constexpr std::size_t kFrameAlign = 64;

template <typename T, std::size_t Align = kFrameAlign>
class AlignedAllocator {
 public:
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of two");
  static_assert(Align >= alignof(T), "alignment below the type's natural alignment");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) noexcept {
    return false;
  }
};

// The frame currency: tensor::Bytes and refl::tlv::Bytes both alias this,
// so byte buffers flow between the tensor wire layer and the TLV layer
// without copies or conversions.
using AlignedBytes = std::vector<std::uint8_t, AlignedAllocator<std::uint8_t>>;

}  // namespace of
