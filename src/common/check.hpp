// Lightweight runtime-check macros used across all OmniFed modules.
//
// OF_CHECK throws std::runtime_error on violation; it is used for
// recoverable precondition violations on public API boundaries (per the
// C++ Core Guidelines I.5/I.6 interface-contract rules). Internal logic
// errors use OF_ASSERT which is compiled out in NDEBUG builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace of {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "OF_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::runtime_error(os.str());
}

}  // namespace of

#define OF_CHECK(cond)                                                \
  do {                                                                \
    if (!(cond)) ::of::throw_check_failure(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define OF_CHECK_MSG(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::ostringstream of_check_os_;                                \
      of_check_os_ << msg;                                            \
      ::of::throw_check_failure(#cond, __FILE__, __LINE__, of_check_os_.str()); \
    }                                                                 \
  } while (0)

#ifdef NDEBUG
#define OF_ASSERT(cond) ((void)0)
#else
#define OF_ASSERT(cond) OF_CHECK(cond)
#endif
