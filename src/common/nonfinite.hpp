// Structured per-client numeric-admission error.
//
// A NaN/Inf coordinate in a client update used to slip silently into the
// wire frame: QSGD's per-bucket norm went NaN, dequantize smeared it across
// the whole bucket, and the aggregated model was poisoned. The encode path
// now screens inputs while it scales-and-stores (the finite check is fused
// into the SIMD store, so admission costs no extra pass) and throws this
// error naming the offending client and flat coordinate. The node's round
// loop catches it and degrades exactly like a dropped survivor: the client
// emits a skip marker and the aggregator divides by the contributors it
// actually got.
#pragma once

#include <cstddef>
#include <sstream>
#include <stdexcept>

namespace of {

class NonFiniteUpdateError : public std::runtime_error {
 public:
  explicit NonFiniteUpdateError(std::size_t coordinate, int client_id = -1)
      : std::runtime_error(format(coordinate, client_id)),
        coordinate_(coordinate),
        client_id_(client_id) {}

  // Flat coordinate (index into the scale-while-flatten order) of the first
  // non-finite element.
  std::size_t coordinate() const noexcept { return coordinate_; }
  // Reporting client, or -1 when the thrower does not know it (e.g. a codec
  // below the payload layer; encode_update_into rethrows with the id).
  int client_id() const noexcept { return client_id_; }

 private:
  static std::string format(std::size_t coordinate, int client_id) {
    std::ostringstream os;
    os << "non-finite update coordinate " << coordinate;
    if (client_id >= 0) os << " from client " << client_id;
    os << " rejected at encode admission";
    return os.str();
  }

  std::size_t coordinate_;
  int client_id_;
};

}  // namespace of
