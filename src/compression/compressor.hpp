// Gradient compression plugins (paper §3.4.2).
//
// A Compressor turns a dense float tensor (the model update) into a compact
// byte payload and back. Sparsification codecs (TopK, RandomK, DGC, RedSync,
// SIDCo) emit index/value pairs and therefore need all-gather style
// exchange; quantization (QSGD) and low-rank (PowerSGD) codecs decompress to
// dense tensors compatible with all-reduce — exactly the distinction the
// paper draws when explaining Fig. 5's overhead differences.
//
// ErrorFeedbackCompressor wraps any codec with residual accumulation
// (Karimireddy et al.'s EF-SGD), which DGC/PowerSGD require for
// convergence at high compression factors.
#pragma once

#include <memory>
#include <string>

#include "config/node.hpp"
#include "config/registry.hpp"
#include "tensor/serialize.hpp"
#include "tensor/tensor.hpp"

namespace of::compression {

using tensor::Bytes;
using tensor::ConstByteSpan;
using tensor::ConstFloatSpan;
using tensor::FloatSpan;
using tensor::Rng;
using tensor::Tensor;

struct Compressed {
  Bytes payload;
  std::size_t original_numel = 0;
  std::string codec;

  std::size_t bytes() const noexcept { return payload.size(); }
  // Achieved compression factor vs. float32.
  double achieved_ratio() const noexcept {
    return payload.empty() ? 1.0
                           : static_cast<double>(original_numel * sizeof(float)) /
                                 static_cast<double>(payload.size());
  }
};

// Non-owning view of a compressed payload — what decompress reads when the
// payload lives inside a larger received frame (the zero-copy decode path).
struct CompressedView {
  tensor::ConstByteSpan payload;
  std::size_t original_numel = 0;

  CompressedView() = default;
  CompressedView(tensor::ConstByteSpan p, std::size_t n) : payload(p), original_numel(n) {}
  // Implicit: an owning Compressed viewed in place.
  CompressedView(const Compressed& c) : payload(c.payload), original_numel(c.original_numel) {}
};

class Compressor {
 public:
  Compressor() = default;
  Compressor(const Compressor&) = delete;
  Compressor& operator=(const Compressor&) = delete;
  virtual ~Compressor() = default;

  // Span-primary API (the zero-copy pipeline). compress clears and rewrites
  // `out.payload` — capacity survives, so pooled buffers amortize across
  // rounds. decompress *overwrites* `out` entirely (sparse codecs zero-fill
  // then scatter); `out.size()` must equal `c.original_numel`.
  virtual void compress(tensor::ConstFloatSpan input, Compressed& out) = 0;
  virtual void decompress(const CompressedView& c, tensor::FloatSpan out) = 0;
  virtual std::string name() const = 0;
  // True when decompressed updates can be summed elementwise by all-reduce
  // (dense output); false for sparse codecs that exchange via all-gather.
  virtual bool allreduce_compatible() const = 0;

  // Fused scale-while-flatten compression: compress the concatenation of
  // `payload`'s tensors with every element pre-scaled by `scale` (in double,
  // matching tensor::append_scaled_span), without the caller materializing
  // an intermediate flat float frame. Implementations MUST produce bytes
  // bitwise identical to `compress(flatten_scaled(payload, scale))` and
  // SHOULD throw of::NonFiniteUpdateError (coordinate in flatten order) when
  // a non-finite element is met at admission. Returning false means "no
  // fused path" — the caller falls back to flatten-then-compress. The
  // default has no fused path; wrappers that transform the input (error
  // feedback) keep the default so the residual arithmetic stays in the
  // unfused pipeline.
  virtual bool compress_scaled(const std::vector<Tensor>& payload, double scale,
                               Compressed& out) {
    (void)payload;
    (void)scale;
    (void)out;
    return false;
  }

  // Bind stochastic codecs to a (round, client) stream. Randomized codecs
  // (QSGD's stochastic rounding) derive their randomness counter-style from
  // (seed, round, client) instead of mutating a shared RNG, so compressing
  // the same input twice in the same stream yields identical bytes — a
  // retransmit after a transport fault is bit-reproducible. Deterministic
  // codecs ignore it.
  virtual void set_stream(std::uint64_t round, std::uint64_t client) {
    (void)round;
    (void)client;
  }

  // Owning conveniences for tests and cold paths.
  Compressed compress(const Tensor& t) {
    Compressed c;
    compress(t.span(), c);
    return c;
  }
  Tensor decompress(const Compressed& c) {
    Tensor t({c.original_numel});
    decompress(CompressedView(c), t.span());
    return t;
  }
};

// Residual (error-feedback) wrapper: compresses (input + residual) and
// keeps what the codec dropped for the next round.
class ErrorFeedbackCompressor final : public Compressor {
 public:
  explicit ErrorFeedbackCompressor(std::unique_ptr<Compressor> inner);

  void compress(tensor::ConstFloatSpan input, Compressed& out) override;
  void decompress(const CompressedView& c, tensor::FloatSpan out) override {
    inner_->decompress(c, out);
  }
  using Compressor::compress;
  using Compressor::decompress;
  std::string name() const override { return "EF(" + inner_->name() + ")"; }
  bool allreduce_compatible() const override { return inner_->allreduce_compatible(); }
  void set_stream(std::uint64_t round, std::uint64_t client) override {
    inner_->set_stream(round, client);
  }

  const Tensor& residual() const noexcept { return residual_; }

 private:
  std::unique_ptr<Compressor> inner_;
  Tensor residual_;                // flat, sized to the last input
  std::vector<float> corrected_;   // input + residual scratch
  std::vector<float> scratch_;     // reconstructed-update scratch
};

// Registry + factory. Accepts config of the paper's Fig. 4 shape:
//   _target_: src.omnifed.communicator.compression.TopK
//   k: 1000x            # factor form; or `factor: 1000`, or absolute `k: 500`
//   error_feedback: true
// Param structs are reflected (src/refl/), so unknown/typo'd keys fail with
// a path-aware error unless strict=false.
using CompressorRegistry = config::Registry<Compressor, bool /*strict*/>;
CompressorRegistry& compressor_registry();
std::unique_ptr<Compressor> make_compressor(const config::ConfigNode& cfg,
                                            bool strict = true);

// Parse "1000x" → 1000.0 (factor) or plain numbers → absolute k.
// Returns {factor_or_k, is_factor}.
std::pair<double, bool> parse_k_spec(const config::ConfigNode& cfg);

}  // namespace of::compression
