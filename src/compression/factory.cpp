// Compressor registry wiring + the ErrorFeedback wrapper implementation.
#include <cmath>

#include "compression/compressor.hpp"
#include "compression/powersgd.hpp"
#include "compression/quantize.hpp"
#include "compression/sparsify.hpp"
#include "refl/config_io.hpp"

namespace of::compression {

// Per-codec param structs. Parsed via refl::from_node so unknown keys fail
// with a `compression.<key>` path; the polymorphic `k: 1000x` spec and the
// wrapper-level `error_feedback`/`_target_`/`seed` keys stay hand-handled
// and ride the extra_keys allowlist.
namespace params {
struct Sparsifier {};  // k/factor only (allowlisted)
struct Dgc {
  double sample_fraction = 0.01;
};
struct RedSync {
  double tolerance = 0.2;
  int max_iterations = 20;
};
struct Sidco {
  int stages = 3;
};
struct Qsgd {
  int bits = 8;
  std::size_t bucket_size = 2048;
};
struct PowerSgd {
  std::size_t rank = 32;
};
}  // namespace params
}  // namespace of::compression

template <>
struct of::refl::Reflect<of::compression::params::Sparsifier> {
  OF_REFL_FIELDS()
};
template <>
struct of::refl::Reflect<of::compression::params::Dgc> {
  OF_REFL_FIELDS(
      field("sample_fraction", &of::compression::params::Dgc::sample_fraction, 1)
          .gt(0)
          .le(1))
};
template <>
struct of::refl::Reflect<of::compression::params::RedSync> {
  OF_REFL_FIELDS(
      field("tolerance", &of::compression::params::RedSync::tolerance, 1).gt(0),
      field("max_iterations", &of::compression::params::RedSync::max_iterations, 2)
          .ge(1))
};
template <>
struct of::refl::Reflect<of::compression::params::Sidco> {
  OF_REFL_FIELDS(field("stages", &of::compression::params::Sidco::stages, 1).ge(1))
};
template <>
struct of::refl::Reflect<of::compression::params::Qsgd> {
  OF_REFL_FIELDS(field("bits", &of::compression::params::Qsgd::bits, 1).ge(1).le(16),
                 field("bucket_size", &of::compression::params::Qsgd::bucket_size, 2)
                     .ge(1))
};
template <>
struct of::refl::Reflect<of::compression::params::PowerSgd> {
  OF_REFL_FIELDS(field("rank", &of::compression::params::PowerSgd::rank, 1).ge(1))
};

namespace of::compression {

ErrorFeedbackCompressor::ErrorFeedbackCompressor(std::unique_ptr<Compressor> inner)
    : inner_(std::move(inner)) {
  OF_CHECK_MSG(inner_ != nullptr, "ErrorFeedback needs an inner compressor");
}

void ErrorFeedbackCompressor::compress(tensor::ConstFloatSpan input, Compressed& out) {
  const std::size_t n = input.size();
  if (residual_.numel() != n) residual_ = Tensor({n});
  corrected_.resize(n);
  for (std::size_t i = 0; i < n; ++i) corrected_[i] = input[i] + residual_[i];
  inner_->compress(tensor::ConstFloatSpan(corrected_), out);
  // residual ← what the codec dropped this round.
  scratch_.resize(n);
  inner_->decompress(CompressedView(out), tensor::FloatSpan(scratch_));
  for (std::size_t i = 0; i < n; ++i) residual_[i] = corrected_[i] - scratch_[i];
}

std::pair<double, bool> parse_k_spec(const config::ConfigNode& cfg) {
  // Accept the paper's `k: 1000x` (factor), `factor: 1000`, or absolute
  // `k: 500`.
  if (cfg.has("factor")) return {cfg.at("factor").as_double(), true};
  OF_CHECK_MSG(cfg.has("k"), "sparsifier config needs `k:` or `factor:`");
  const config::ConfigNode& k = cfg.at("k");
  if (k.kind() == config::ConfigNode::Kind::String) {
    std::string s = k.as_string();
    OF_CHECK_MSG(!s.empty(), "empty k spec");
    if (s.back() == 'x' || s.back() == 'X') {
      s.pop_back();
      return {std::stod(s), true};
    }
    return {std::stod(s), false};
  }
  return {k.as_double(), false};
}

namespace {

std::uint64_t cfg_seed(const config::ConfigNode& cfg) {
  return static_cast<std::uint64_t>(cfg.get_or<std::int64_t>("seed", 0x5eedULL));
}

// Keys every codec block may carry besides its reflected params: the factory
// selector, the ErrorFeedback wrapper toggle, the rng seed, and the
// polymorphic k-spec (string "1000x" or number — stays hand-parsed).
const std::vector<std::string> kCommonKeys = {"_target_", "error_feedback", "seed"};
const std::vector<std::string> kSparsifierKeys = {"_target_", "error_feedback", "seed",
                                                  "k", "factor"};

template <class P>
P codec_params(const config::ConfigNode& cfg, bool strict,
               const std::vector<std::string>& extra = kCommonKeys) {
  return refl::from_node<P>(cfg, "compression", extra, strict);
}

void register_builtin(CompressorRegistry& reg) {
  reg.add("Identity", [](const config::ConfigNode& cfg, bool strict) {
    codec_params<params::Sparsifier>(cfg, strict, kCommonKeys);
    return std::make_unique<Identity>();
  });
  reg.add("TopK",
          [](const config::ConfigNode& cfg, bool strict) -> std::unique_ptr<Compressor> {
            codec_params<params::Sparsifier>(cfg, strict, kSparsifierKeys);
            auto [spec, is_factor] = parse_k_spec(cfg);
            return std::make_unique<TopK>(spec, is_factor);
          });
  reg.add("RandomK",
          [](const config::ConfigNode& cfg, bool strict) -> std::unique_ptr<Compressor> {
            codec_params<params::Sparsifier>(cfg, strict, kSparsifierKeys);
            auto [spec, is_factor] = parse_k_spec(cfg);
            return std::make_unique<RandomK>(spec, is_factor, cfg_seed(cfg));
          });
  reg.add("DGC",
          [](const config::ConfigNode& cfg, bool strict) -> std::unique_ptr<Compressor> {
            const auto p = codec_params<params::Dgc>(cfg, strict, kSparsifierKeys);
            auto [spec, is_factor] = parse_k_spec(cfg);
            return std::make_unique<DGC>(spec, is_factor, cfg_seed(cfg),
                                         p.sample_fraction);
          });
  reg.add("RedSync",
          [](const config::ConfigNode& cfg, bool strict) -> std::unique_ptr<Compressor> {
            const auto p = codec_params<params::RedSync>(cfg, strict, kSparsifierKeys);
            auto [spec, is_factor] = parse_k_spec(cfg);
            return std::make_unique<RedSync>(spec, is_factor, p.tolerance,
                                             p.max_iterations);
          });
  reg.add("SIDCo",
          [](const config::ConfigNode& cfg, bool strict) -> std::unique_ptr<Compressor> {
            const auto p = codec_params<params::Sidco>(cfg, strict, kSparsifierKeys);
            auto [spec, is_factor] = parse_k_spec(cfg);
            return std::make_unique<SIDCo>(spec, is_factor, p.stages);
          });
  reg.add("QSGD",
          [](const config::ConfigNode& cfg, bool strict) -> std::unique_ptr<Compressor> {
            const auto p = codec_params<params::Qsgd>(cfg, strict);
            return std::make_unique<QSGD>(p.bits, cfg_seed(cfg), p.bucket_size);
          });
  reg.add("PowerSGD",
          [](const config::ConfigNode& cfg, bool strict) -> std::unique_ptr<Compressor> {
            const auto p = codec_params<params::PowerSgd>(cfg, strict);
            return std::make_unique<PowerSGD>(p.rank, cfg_seed(cfg));
          });
}

}  // namespace

CompressorRegistry& compressor_registry() {
  static CompressorRegistry reg = [] {
    CompressorRegistry r;
    register_builtin(r);
    return r;
  }();
  return reg;
}

std::unique_ptr<Compressor> make_compressor(const config::ConfigNode& cfg, bool strict) {
  auto codec = compressor_registry().create(cfg, strict);
  if (cfg.is_map() && cfg.get_or<bool>("error_feedback", false))
    return std::make_unique<ErrorFeedbackCompressor>(std::move(codec));
  return codec;
}

}  // namespace of::compression
