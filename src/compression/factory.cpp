// Compressor registry wiring + the ErrorFeedback wrapper implementation.
#include <cmath>

#include "compression/compressor.hpp"
#include "compression/powersgd.hpp"
#include "compression/quantize.hpp"
#include "compression/sparsify.hpp"

namespace of::compression {

ErrorFeedbackCompressor::ErrorFeedbackCompressor(std::unique_ptr<Compressor> inner)
    : inner_(std::move(inner)) {
  OF_CHECK_MSG(inner_ != nullptr, "ErrorFeedback needs an inner compressor");
}

void ErrorFeedbackCompressor::compress(tensor::ConstFloatSpan input, Compressed& out) {
  const std::size_t n = input.size();
  if (residual_.numel() != n) residual_ = Tensor({n});
  corrected_.resize(n);
  for (std::size_t i = 0; i < n; ++i) corrected_[i] = input[i] + residual_[i];
  inner_->compress(tensor::ConstFloatSpan(corrected_), out);
  // residual ← what the codec dropped this round.
  scratch_.resize(n);
  inner_->decompress(CompressedView(out), tensor::FloatSpan(scratch_));
  for (std::size_t i = 0; i < n; ++i) residual_[i] = corrected_[i] - scratch_[i];
}

std::pair<double, bool> parse_k_spec(const config::ConfigNode& cfg) {
  // Accept the paper's `k: 1000x` (factor), `factor: 1000`, or absolute
  // `k: 500`.
  if (cfg.has("factor")) return {cfg.at("factor").as_double(), true};
  OF_CHECK_MSG(cfg.has("k"), "sparsifier config needs `k:` or `factor:`");
  const config::ConfigNode& k = cfg.at("k");
  if (k.kind() == config::ConfigNode::Kind::String) {
    std::string s = k.as_string();
    OF_CHECK_MSG(!s.empty(), "empty k spec");
    if (s.back() == 'x' || s.back() == 'X') {
      s.pop_back();
      return {std::stod(s), true};
    }
    return {std::stod(s), false};
  }
  return {k.as_double(), false};
}

namespace {

std::uint64_t cfg_seed(const config::ConfigNode& cfg) {
  return static_cast<std::uint64_t>(cfg.get_or<std::int64_t>("seed", 0x5eedULL));
}

void register_builtin(CompressorRegistry& reg) {
  reg.add("Identity", [](const config::ConfigNode&) {
    return std::make_unique<Identity>();
  });
  reg.add("TopK", [](const config::ConfigNode& cfg) -> std::unique_ptr<Compressor> {
    auto [spec, is_factor] = parse_k_spec(cfg);
    return std::make_unique<TopK>(spec, is_factor);
  });
  reg.add("RandomK", [](const config::ConfigNode& cfg) -> std::unique_ptr<Compressor> {
    auto [spec, is_factor] = parse_k_spec(cfg);
    return std::make_unique<RandomK>(spec, is_factor, cfg_seed(cfg));
  });
  reg.add("DGC", [](const config::ConfigNode& cfg) -> std::unique_ptr<Compressor> {
    auto [spec, is_factor] = parse_k_spec(cfg);
    return std::make_unique<DGC>(spec, is_factor, cfg_seed(cfg),
                                 cfg.get_or<double>("sample_fraction", 0.01));
  });
  reg.add("RedSync", [](const config::ConfigNode& cfg) -> std::unique_ptr<Compressor> {
    auto [spec, is_factor] = parse_k_spec(cfg);
    return std::make_unique<RedSync>(spec, is_factor, cfg.get_or<double>("tolerance", 0.2),
                                     cfg.get_or<int>("max_iterations", 20));
  });
  reg.add("SIDCo", [](const config::ConfigNode& cfg) -> std::unique_ptr<Compressor> {
    auto [spec, is_factor] = parse_k_spec(cfg);
    return std::make_unique<SIDCo>(spec, is_factor, cfg.get_or<int>("stages", 3));
  });
  reg.add("QSGD", [](const config::ConfigNode& cfg) -> std::unique_ptr<Compressor> {
    return std::make_unique<QSGD>(cfg.get_or<int>("bits", 8), cfg_seed(cfg),
                                  cfg.get_or<std::size_t>("bucket_size", 2048));
  });
  reg.add("PowerSGD", [](const config::ConfigNode& cfg) -> std::unique_ptr<Compressor> {
    return std::make_unique<PowerSGD>(cfg.get_or<std::size_t>("rank", 32), cfg_seed(cfg));
  });
}

}  // namespace

CompressorRegistry& compressor_registry() {
  static CompressorRegistry reg = [] {
    CompressorRegistry r;
    register_builtin(r);
    return r;
  }();
  return reg;
}

std::unique_ptr<Compressor> make_compressor(const config::ConfigNode& cfg) {
  auto codec = compressor_registry().create(cfg);
  if (cfg.is_map() && cfg.get_or<bool>("error_feedback", false))
    return std::make_unique<ErrorFeedbackCompressor>(std::move(codec));
  return codec;
}

}  // namespace of::compression
