#include "compression/powersgd.hpp"

#include <cmath>

namespace of::compression {
namespace {

// Modified Gram–Schmidt, in place on the columns of a (rows × r) matrix.
// Projections run twice ("twice is enough", Giraud et al.) and columns that
// collapse below a *relative* threshold are zeroed, not normalized: blowing
// float cancellation noise up to a unit vector would silently break
// orthogonality whenever the input is rank-deficient.
void orthonormalize_columns(Tensor& m) {
  const std::size_t rows = m.size(0), r = m.size(1);
  for (std::size_t j = 0; j < r; ++j) {
    double orig_norm2 = 0.0;
    for (std::size_t i = 0; i < rows; ++i) orig_norm2 += m(i, j) * m(i, j);
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t k = 0; k < j; ++k) {
        double dot = 0.0;
        for (std::size_t i = 0; i < rows; ++i) dot += m(i, k) * m(i, j);
        for (std::size_t i = 0; i < rows; ++i)
          m(i, j) -= static_cast<float>(dot) * m(i, k);
      }
    }
    double norm2 = 0.0;
    for (std::size_t i = 0; i < rows; ++i) norm2 += m(i, j) * m(i, j);
    if (norm2 <= 1e-12 * orig_norm2 || norm2 == 0.0) {
      for (std::size_t i = 0; i < rows; ++i) m(i, j) = 0.0f;
      continue;
    }
    const float inv = 1.0f / std::sqrt(static_cast<float>(norm2));
    for (std::size_t i = 0; i < rows; ++i) m(i, j) *= inv;
  }
}

void matrix_shape(std::size_t n, std::size_t& rows, std::size_t& cols) {
  cols = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  cols = std::max<std::size_t>(1, cols);
  rows = (n + cols - 1) / cols;
}

}  // namespace

PowerSGD::PowerSGD(std::size_t rank, std::uint64_t seed) : rank_(rank), rng_(seed) {
  OF_CHECK_MSG(rank >= 1, "PowerSGD rank must be >= 1");
}

void PowerSGD::compress(ConstFloatSpan t, Compressed& c) {
  const std::size_t n = t.size();
  std::size_t rows = 0, cols = 0;
  matrix_shape(n, rows, cols);
  const std::size_t r = std::min({rank_, rows, cols});

  // Zero-padded matrix view of the flat update.
  Tensor m({rows, cols});
  std::copy_n(t.data(), n, m.data());

  if (q_state_.empty() || state_numel_ != n ||
      q_state_.size(1) != r) {  // (re)initialize the warm-start factor
    q_state_ = Tensor::randn({cols, r}, rng_);
    orthonormalize_columns(q_state_);
    state_numel_ = n;
  }

  Tensor p = m.matmul(q_state_);  // rows × r
  orthonormalize_columns(p);
  Tensor q = m.transpose2d().matmul(p);  // cols × r
  q_state_ = q;

  c.codec = "PowerSGD";
  c.original_numel = n;
  c.payload.clear();
  tensor::append_pod<std::uint64_t>(c.payload, rows);
  tensor::append_pod<std::uint64_t>(c.payload, cols);
  tensor::append_pod<std::uint64_t>(c.payload, r);
  tensor::append_span(c.payload, p.data(), p.numel());
  tensor::append_span(c.payload, q.data(), q.numel());
}

void PowerSGD::decompress(const CompressedView& c, FloatSpan out) {
  OF_CHECK_MSG(out.size() == c.original_numel, "PowerSGD decompress size mismatch");
  std::size_t off = 0;
  const auto rows = static_cast<std::size_t>(tensor::read_pod<std::uint64_t>(c.payload, off));
  const auto cols = static_cast<std::size_t>(tensor::read_pod<std::uint64_t>(c.payload, off));
  const auto r = static_cast<std::size_t>(tensor::read_pod<std::uint64_t>(c.payload, off));
  Tensor p({rows, r}), q({cols, r});
  tensor::read_span(c.payload, off, p.data(), p.numel());
  tensor::read_span(c.payload, off, q.data(), q.numel());
  OF_CHECK_MSG(off == c.payload.size(), "PowerSGD payload has trailing bytes");
  Tensor m = p.matmul(q.transpose2d());  // rows × cols
  OF_CHECK_MSG(c.original_numel <= m.numel(), "PowerSGD shape mismatch");
  std::copy_n(m.data(), c.original_numel, out.data());
}

}  // namespace of::compression
