// PowerSGD low-rank gradient compression (Vogels et al., NeurIPS 2019).
//
// The flat update of n elements is viewed as a ~square matrix M
// (rows × cols, zero-padded). One subspace iteration with a warm-started
// right factor Q approximates M ≈ P Qᵀ with rank r:
//     P = M Q;  orthonormalize(P);  Q ← Mᵀ P
// The payload carries P and Q — (rows+cols)·r floats instead of rows·cols —
// and decompression is a dense rank-r product, so the codec composes with
// all-reduce (the property the paper highlights in §3.4.2). Warm-starting Q
// across rounds is what makes a single power iteration converge.
#pragma once

#include "compression/compressor.hpp"

namespace of::compression {

class PowerSGD final : public Compressor {
 public:
  PowerSGD(std::size_t rank, std::uint64_t seed);

  void compress(ConstFloatSpan input, Compressed& out) override;
  void decompress(const CompressedView& c, FloatSpan out) override;
  using Compressor::compress;
  using Compressor::decompress;
  std::string name() const override { return "PowerSGD"; }
  bool allreduce_compatible() const override { return true; }

  std::size_t rank_r() const noexcept { return rank_; }

 private:
  std::size_t rank_;
  Rng rng_;
  Tensor q_state_;             // warm-started (cols × r)
  std::size_t state_numel_ = 0;  // numel the state was built for
};

}  // namespace of::compression
