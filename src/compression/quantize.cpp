#include "compression/quantize.hpp"

#include <cmath>
#include <cstring>
#include <initializer_list>

#include "common/nonfinite.hpp"
#include "simd/simd.hpp"

namespace of::compression {

QSGD::QSGD(int bits, std::uint64_t seed, std::size_t bucket_size)
    : bits_(bits), bucket_size_(bucket_size), seed_(seed) {
  OF_CHECK_MSG(bits == 8 || bits == 16, "QSGD supports 8 or 16 bits, got " << bits);
  OF_CHECK_MSG(bucket_size >= 1, "QSGD bucket size must be >= 1");
  levels_ = (bits == 8) ? 127u : 32767u;  // leave one bit for the sign
}

std::uint64_t QSGD::stream_seed(std::uint64_t bucket) const noexcept {
  // splitmix64-style mixing of (seed, round, client, bucket). A shared
  // mutated RNG would make the rounding depend on every compress call that
  // ran before this one — retransmits and replays would emit different
  // bytes; the counter form makes each (round, client, bucket) stream
  // self-contained.
  std::uint64_t x = seed_;
  for (std::uint64_t word : {round_, client_, bucket}) {
    x += 0x9e3779b97f4a7c15ull + word;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
  }
  return x;
}

void QSGD::quantize_bucket(std::uint8_t* out, const float* src, std::size_t len,
                           std::size_t begin, std::uint64_t bucket) {
  // Per-bucket norm: quantization error scales with the *bucket* norm,
  // not the whole-vector norm — the bucketing every practical QSGD
  // implementation uses (quantization over the full vector would drown
  // high-dimensional updates in noise). The 4-lane sum keeps the value
  // identical between the scalar and AVX2 tables.
  const double norm2 = simd::sum_squares(src, len);
  if (!std::isfinite(norm2)) {
    // A NaN/Inf coordinate must not reach the wire: the stored norm would
    // be NaN and dequantize would spread it across the whole bucket and
    // into the aggregated model. Reject at admission with the offending
    // flat coordinate so the fault path can drop this client like any
    // other per-client failure.
    throw NonFiniteUpdateError(begin + simd::find_nonfinite(src, len));
  }
  const float norm = static_cast<float>(std::sqrt(norm2));
  std::memcpy(out, &norm, sizeof(float));
  std::uint8_t* codes = out + sizeof(float);
  const std::size_t codebytes = bits_ == 8 ? 1 : 2;
  if (norm == 0.0f) {
    // An all-zero bucket consumes no rounding draws (the scalar reference
    // returned before drawing), so the stream stays aligned with replays.
    std::memset(codes, 0, len * codebytes);
    return;
  }
  // The RNG state chain is inherently serial; draws are pre-generated here
  // and the arithmetic (abs/div/floor/round/clamp/sign-fold) vectorizes.
  draws_.resize(len);
  Rng rng(stream_seed(bucket));  // fresh per-bucket stream; see stream_seed()
  for (std::size_t i = 0; i < len; ++i) draws_[i] = rng.next_float();
  const float s = static_cast<float>(levels_);
  if (bits_ == 8) {
    simd::qsgd_quantize_i8(reinterpret_cast<std::int8_t*>(codes), src,
                           draws_.data(), norm, s, levels_, len);
  } else {
    simd::qsgd_quantize_i16(reinterpret_cast<std::int16_t*>(codes), src,
                            draws_.data(), norm, s, levels_, len);
  }
}

void QSGD::compress(ConstFloatSpan t, Compressed& c) {
  c.codec = "QSGD";
  c.original_numel = t.size();
  const std::size_t n = t.size();
  const std::size_t codebytes = bits_ == 8 ? 1 : 2;
  const std::size_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  c.payload.clear();
  c.payload.resize(buckets * sizeof(float) + n * codebytes);
  std::size_t off = 0;
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t begin = b * bucket_size_;
    const std::size_t len = std::min(bucket_size_, n - begin);
    quantize_bucket(c.payload.data() + off, t.data() + begin, len, begin, b);
    off += sizeof(float) + len * codebytes;
  }
}

bool QSGD::compress_scaled(const std::vector<Tensor>& payload, double scale,
                           Compressed& c) {
  std::size_t n = 0;
  for (const Tensor& t : payload) n += t.numel();
  c.codec = "QSGD";
  c.original_numel = n;
  const std::size_t codebytes = bits_ == 8 ? 1 : 2;
  const std::size_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  c.payload.clear();
  c.payload.resize(buckets * sizeof(float) + n * codebytes);
  tile_.resize(std::min(bucket_size_, std::max<std::size_t>(n, 1)));
  // Scale-while-flatten one bucket-sized tile at a time: the tile is the
  // only float staging this path touches, so the O(model) intermediate
  // frame of flatten-then-compress never exists. Tiles are filled with the
  // same double-precision scale store as tensor::append_scaled_span, and
  // quantize_bucket sees exactly the values the unfused pipeline would —
  // the output bytes are bitwise identical.
  std::size_t ti = 0;    // tensor cursor
  std::size_t toff = 0;  // intra-tensor offset
  std::size_t off = 0;
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t begin = b * bucket_size_;
    const std::size_t len = std::min(bucket_size_, n - begin);
    std::size_t filled = 0;
    while (filled < len) {
      const Tensor& t = payload[ti];
      const std::size_t take = std::min(t.numel() - toff, len - filled);
      if (!simd::scale_store(tile_.data() + filled, t.data() + toff, scale,
                             take)) {
        throw NonFiniteUpdateError(
            begin + filled + simd::find_nonfinite(t.data() + toff, take));
      }
      filled += take;
      toff += take;
      if (toff == t.numel()) {
        ++ti;
        toff = 0;
      }
    }
    quantize_bucket(c.payload.data() + off, tile_.data(), len, begin, b);
    off += sizeof(float) + len * codebytes;
  }
  return true;
}

void QSGD::decompress(const CompressedView& c, FloatSpan t) {
  OF_CHECK_MSG(t.size() == c.original_numel, "QSGD decompress size mismatch");
  const float s = static_cast<float>(levels_);
  const std::size_t n = c.original_numel;
  const std::size_t codebytes = bits_ == 8 ? 1 : 2;
  const std::size_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  std::size_t off = 0;
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t begin = b * bucket_size_;
    const std::size_t len = std::min(bucket_size_, n - begin);
    const float norm = tensor::read_pod<float>(c.payload, off);
    OF_CHECK_MSG(off + len * codebytes <= c.payload.size(),
                 "QSGD payload truncated");
    if (bits_ == 8) {
      simd::qsgd_dequantize_i8(t.data() + begin, c.payload.data() + off, norm,
                               s, len);
    } else {
      simd::qsgd_dequantize_i16(t.data() + begin, c.payload.data() + off, norm,
                                s, len);
    }
    off += len * codebytes;
  }
  OF_CHECK_MSG(off == c.payload.size(), "QSGD payload has trailing bytes");
}

}  // namespace of::compression
