#include "compression/quantize.hpp"

#include <cmath>
#include <initializer_list>

namespace of::compression {

QSGD::QSGD(int bits, std::uint64_t seed, std::size_t bucket_size)
    : bits_(bits), bucket_size_(bucket_size), seed_(seed) {
  OF_CHECK_MSG(bits == 8 || bits == 16, "QSGD supports 8 or 16 bits, got " << bits);
  OF_CHECK_MSG(bucket_size >= 1, "QSGD bucket size must be >= 1");
  levels_ = (bits == 8) ? 127u : 32767u;  // leave one bit for the sign
}

std::uint64_t QSGD::stream_seed(std::uint64_t bucket) const noexcept {
  // splitmix64-style mixing of (seed, round, client, bucket). A shared
  // mutated RNG would make the rounding depend on every compress call that
  // ran before this one — retransmits and replays would emit different
  // bytes; the counter form makes each (round, client, bucket) stream
  // self-contained.
  std::uint64_t x = seed_;
  for (std::uint64_t word : {round_, client_, bucket}) {
    x += 0x9e3779b97f4a7c15ull + word;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
  }
  return x;
}

void QSGD::compress(ConstFloatSpan t, Compressed& c) {
  c.codec = "QSGD";
  c.original_numel = t.size();
  c.payload.clear();
  const float s = static_cast<float>(levels_);
  const std::size_t n = t.size();
  const std::size_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  c.payload.reserve(buckets * 4 + n * (bits_ == 8 ? 1 : 2));
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t begin = b * bucket_size_;
    const std::size_t end = std::min(begin + bucket_size_, n);
    // Per-bucket norm: quantization error scales with the *bucket* norm,
    // not the whole-vector norm — the bucketing every practical QSGD
    // implementation uses (quantization over the full vector would drown
    // high-dimensional updates in noise).
    double norm2 = 0.0;
    for (std::size_t i = begin; i < end; ++i)
      norm2 += static_cast<double>(t[i]) * static_cast<double>(t[i]);
    const float norm = static_cast<float>(std::sqrt(norm2));
    tensor::append_pod<float>(c.payload, norm);
    Rng rng(stream_seed(b));  // fresh per-bucket stream; see stream_seed()
    auto quantize_one = [&](float v) -> std::uint32_t {
      if (norm == 0.0f) return 0;
      const float a = std::fabs(v) / norm * s;  // in [0, s]
      const float floor_a = std::floor(a);
      const float frac = a - floor_a;
      std::uint32_t level = static_cast<std::uint32_t>(floor_a);
      if (rng.next_float() < frac) ++level;  // stochastic rounding
      if (level > levels_) level = levels_;
      return level;
    };
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t level = quantize_one(t[i]);
      if (bits_ == 8) {
        const std::int8_t code = static_cast<std::int8_t>(
            t[i] < 0.0f ? -static_cast<int>(level) : static_cast<int>(level));
        tensor::append_pod<std::int8_t>(c.payload, code);
      } else {
        const std::int16_t code = static_cast<std::int16_t>(
            t[i] < 0.0f ? -static_cast<int>(level) : static_cast<int>(level));
        tensor::append_pod<std::int16_t>(c.payload, code);
      }
    }
  }
}

void QSGD::decompress(const CompressedView& c, FloatSpan t) {
  OF_CHECK_MSG(t.size() == c.original_numel, "QSGD decompress size mismatch");
  std::size_t off = 0;
  const float s = static_cast<float>(levels_);
  const std::size_t n = c.original_numel;
  const std::size_t buckets = (n + bucket_size_ - 1) / bucket_size_;
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t begin = b * bucket_size_;
    const std::size_t end = std::min(begin + bucket_size_, n);
    const float norm = tensor::read_pod<float>(c.payload, off);
    for (std::size_t i = begin; i < end; ++i) {
      if (bits_ == 8) {
        const auto code = tensor::read_pod<std::int8_t>(c.payload, off);
        t[i] = norm * static_cast<float>(code) / s;
      } else {
        const auto code = tensor::read_pod<std::int16_t>(c.payload, off);
        t[i] = norm * static_cast<float>(code) / s;
      }
    }
  }
  OF_CHECK_MSG(off == c.payload.size(), "QSGD payload has trailing bytes");
}

}  // namespace of::compression
