// QSGD stochastic quantization (Alistarh et al., NeurIPS 2017).
//
// Each element is mapped to sign · ‖v_bucket‖₂ · (level/s) where level is
// a stochastic rounding of |v|/‖v_bucket‖₂ · s to an integer in [0, s].
// Quantization runs per *bucket* (as in the reference implementation):
// normalizing by the whole-vector norm would make per-element error grow
// with √dim and drown large models in noise. With s chosen to fit 8 or 16
// bits (sign folded into the level code), the codec achieves the paper's
// 4× / 2× factors against float32 and is unbiased:
// E[decompress(compress(v))] = v.
#pragma once

#include "compression/compressor.hpp"

namespace of::compression {

class QSGD final : public Compressor {
 public:
  // bits ∈ {8, 16}: total storage per element, including the sign.
  QSGD(int bits, std::uint64_t seed, std::size_t bucket_size = 2048);

  void compress(ConstFloatSpan input, Compressed& out) override;
  void decompress(const CompressedView& c, FloatSpan out) override;
  // Fused quantize-on-the-wire: scale-while-flatten one bucket-sized tile at
  // a time and quantize it in place — no intermediate flat float frame.
  // Bitwise identical to compress(flatten_scaled(...)); throws
  // of::NonFiniteUpdateError at the first non-finite input coordinate.
  bool compress_scaled(const std::vector<Tensor>& payload, double scale,
                       Compressed& out) override;
  using Compressor::compress;
  using Compressor::decompress;
  std::string name() const override { return "QSGD"; }
  bool allreduce_compatible() const override { return true; }
  // Counter-based rounding stream: randomness is a pure function of
  // (seed, round, client, bucket), never of how many times compress ran.
  void set_stream(std::uint64_t round, std::uint64_t client) override {
    round_ = round;
    client_ = client;
  }

  int bits() const noexcept { return bits_; }

 private:
  std::uint64_t stream_seed(std::uint64_t bucket) const noexcept;
  // Quantize one bucket of `src` (already scaled) into the payload at
  // `out`; `begin` is the bucket's flat coordinate base for error reports.
  void quantize_bucket(std::uint8_t* out, const float* src, std::size_t len,
                       std::size_t begin, std::uint64_t bucket);

  int bits_;
  std::size_t bucket_size_;
  std::uint32_t levels_;  // s = 2^(bits-1) - 1 magnitude levels
  std::uint64_t seed_;
  std::uint64_t round_ = 0;
  std::uint64_t client_ = 0;
  std::vector<float> draws_;  // per-element rounding draws (serial RNG, SIMD math)
  std::vector<float> tile_;   // bucket-sized scale-while-flatten scratch
};

}  // namespace of::compression
