#include "compression/sparsify.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace of::compression {

void sparse_encode(Bytes& out, const std::vector<std::uint32_t>& idx,
                   const std::vector<float>& val) {
  OF_CHECK_MSG(idx.size() == val.size(), "sparse_encode: idx/val size mismatch");
  out.clear();
  out.reserve(8 + idx.size() * (sizeof(std::uint32_t) + sizeof(float)));
  tensor::append_pod<std::uint64_t>(out, idx.size());
  tensor::append_span(out, idx.data(), idx.size());
  tensor::append_span(out, val.data(), val.size());
}

Bytes sparse_encode(const std::vector<std::uint32_t>& idx, const std::vector<float>& val) {
  Bytes out;
  sparse_encode(out, idx, val);
  return out;
}

void sparse_decode(tensor::ConstByteSpan payload, std::vector<std::uint32_t>& idx,
                   std::vector<float>& val) {
  std::size_t off = 0;
  const auto nnz = tensor::read_pod<std::uint64_t>(payload, off);
  OF_CHECK_MSG(nnz <= (payload.size() - off) / (sizeof(std::uint32_t) + sizeof(float)),
               "sparse nnz " << nnz << " exceeds payload — corrupt frame?");
  idx.resize(nnz);
  val.resize(nnz);
  tensor::read_span(payload, off, idx.data(), nnz);
  tensor::read_span(payload, off, val.data(), nnz);
  OF_CHECK_MSG(off == payload.size(), "sparse payload has trailing bytes");
}

std::size_t resolve_k(double factor_or_k, bool is_factor, std::size_t numel) {
  double k = is_factor ? static_cast<double>(numel) / factor_or_k : factor_or_k;
  k = std::min(k, static_cast<double>(numel));
  return std::max<std::size_t>(1, static_cast<std::size_t>(k));
}

namespace {

using tensor::ConstFloatSpan;
using tensor::FloatSpan;

void pack_sparse(const char* codec, std::size_t numel,
                 const std::vector<std::uint32_t>& idx, const std::vector<float>& val,
                 Compressed& out) {
  out.codec = codec;
  out.original_numel = numel;
  sparse_encode(out.payload, idx, val);
}

void unpack_sparse(const CompressedView& c, FloatSpan out) {
  OF_CHECK_MSG(out.size() == c.original_numel, "sparse decompress size mismatch");
  std::vector<std::uint32_t> idx;
  std::vector<float> val;
  sparse_decode(c.payload, idx, val);
  std::fill(out.begin(), out.end(), 0.0f);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    OF_CHECK_MSG(idx[i] < c.original_numel, "sparse index out of range");
    out[idx[i]] = val[i];
  }
}

// Select every coordinate with |v| >= threshold, up to `cap` entries
// (largest first if over cap would be exact; we just truncate scan order,
// which matches the reference DGC/RedSync implementations).
void select_above(ConstFloatSpan t, float threshold, std::size_t cap,
                  std::vector<std::uint32_t>& idx, std::vector<float>& val) {
  idx.clear();
  val.clear();
  for (std::size_t i = 0; i < t.size() && idx.size() < cap; ++i) {
    if (std::fabs(t[i]) >= threshold) {
      idx.push_back(static_cast<std::uint32_t>(i));
      val.push_back(t[i]);
    }
  }
}

std::size_t count_above(ConstFloatSpan t, float threshold) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < t.size(); ++i)
    if (std::fabs(t[i]) >= threshold) ++n;
  return n;
}

}  // namespace

// --- TopK ------------------------------------------------------------------------

TopK::TopK(double factor_or_k, bool is_factor) : spec_(factor_or_k), is_factor_(is_factor) {
  OF_CHECK_MSG(factor_or_k > 0, "TopK spec must be positive");
}

void TopK::compress(ConstFloatSpan t, Compressed& out) {
  const std::size_t k = resolve_k(spec_, is_factor_, t.size());
  // nth_element on |values| gives the exact k-th largest magnitude.
  std::vector<float> work(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) work[i] = std::fabs(t[i]);
  std::nth_element(work.begin(), work.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   work.end(), std::greater<float>());
  const float threshold = work[k - 1];
  std::vector<std::uint32_t> idx;
  std::vector<float> val;
  select_above(t, threshold, k, idx, val);
  pack_sparse("TopK", t.size(), idx, val, out);
}

void TopK::decompress(const CompressedView& c, FloatSpan out) { unpack_sparse(c, out); }

// --- RandomK ---------------------------------------------------------------------

RandomK::RandomK(double factor_or_k, bool is_factor, std::uint64_t seed)
    : spec_(factor_or_k), is_factor_(is_factor), rng_(seed) {
  OF_CHECK_MSG(factor_or_k > 0, "RandomK spec must be positive");
}

void RandomK::compress(ConstFloatSpan t, Compressed& out) {
  const std::size_t n = t.size();
  const std::size_t k = resolve_k(spec_, is_factor_, n);
  // Partial Fisher–Yates: draw k distinct indices in O(k).
  std::vector<std::uint32_t> pool(n);
  std::iota(pool.begin(), pool.end(), 0u);
  std::vector<std::uint32_t> idx(k);
  std::vector<float> val(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + rng_.next_below(n - i);
    std::swap(pool[i], pool[j]);
    idx[i] = pool[i];
    // Unbiased estimator: scale kept values by n/k.
    val[i] = t[pool[i]] * static_cast<float>(n) / static_cast<float>(k);
  }
  pack_sparse("RandomK", n, idx, val, out);
}

void RandomK::decompress(const CompressedView& c, FloatSpan out) { unpack_sparse(c, out); }

// --- DGC -------------------------------------------------------------------------

DGC::DGC(double factor_or_k, bool is_factor, std::uint64_t seed, double sample_fraction)
    : spec_(factor_or_k), is_factor_(is_factor), rng_(seed),
      sample_fraction_(sample_fraction) {
  OF_CHECK_MSG(sample_fraction > 0 && sample_fraction <= 1.0, "bad DGC sample fraction");
}

void DGC::compress(ConstFloatSpan t, Compressed& out) {
  const std::size_t n = t.size();
  const std::size_t k = resolve_k(spec_, is_factor_, n);
  // Sample-based threshold estimation (DGC §3.1): take a random sample,
  // find the magnitude that keeps the target fraction of the *sample*, use
  // it as the global threshold, then adjust. The sample must be large
  // enough that the target fraction covers a handful of sample entries, or
  // the estimated threshold degenerates to the sample maximum — hence the
  // 32·(n/k) floor at extreme compression factors.
  const std::size_t sample_n = std::min(
      n, std::max({k, static_cast<std::size_t>(sample_fraction_ * static_cast<double>(n)),
                   32 * ((n + k - 1) / std::max<std::size_t>(1, k))}));
  std::vector<float> sample;
  sample.reserve(sample_n);
  if (sample_n >= n) {
    for (std::size_t i = 0; i < n; ++i) sample.push_back(std::fabs(t[i]));
  } else {
    for (std::size_t i = 0; i < sample_n; ++i)
      sample.push_back(std::fabs(t[rng_.next_below(n)]));
  }
  const std::size_t sample_k = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(k) / static_cast<double>(n) *
                                  static_cast<double>(sample.size())));
  std::nth_element(sample.begin(),
                   sample.begin() + static_cast<std::ptrdiff_t>(sample_k - 1), sample.end(),
                   std::greater<float>());
  float threshold = sample[sample_k - 1];
  // Hierarchical adjustment in both directions (DGC tightens; we also relax
  // when the estimate overshoots and too few coordinates survive).
  for (int round = 0; round < 8; ++round) {
    const std::size_t above = count_above(t, threshold);
    if (above > 2 * k) threshold *= 1.3f;
    else if (above < std::max<std::size_t>(1, k / 2)) threshold *= 0.7f;
    else break;
  }
  std::vector<std::uint32_t> idx;
  std::vector<float> val;
  select_above(t, threshold, 2 * k, idx, val);
  pack_sparse("DGC", n, idx, val, out);
}

void DGC::decompress(const CompressedView& c, FloatSpan out) { unpack_sparse(c, out); }

// --- RedSync ---------------------------------------------------------------------

RedSync::RedSync(double factor_or_k, bool is_factor, double tolerance, int max_iterations)
    : spec_(factor_or_k), is_factor_(is_factor), tolerance_(tolerance),
      max_iterations_(max_iterations) {}

void RedSync::compress(ConstFloatSpan t, Compressed& out) {
  const std::size_t n = t.size();
  const std::size_t k = resolve_k(spec_, is_factor_, n);
  // Trimmed binary search of the magnitude threshold (RedSync's
  // "trimmed top-k"): land within (1 ± tolerance)·k survivors.
  float lo = 0.0f, hi = 0.0f;
  for (std::size_t i = 0; i < n; ++i) hi = std::max(hi, std::fabs(t[i]));
  float threshold = hi / 2.0f;
  for (int it = 0; it < max_iterations_; ++it) {
    const std::size_t above = count_above(t, threshold);
    if (static_cast<double>(above) >= (1.0 - tolerance_) * static_cast<double>(k) &&
        static_cast<double>(above) <= (1.0 + tolerance_) * static_cast<double>(k))
      break;
    if (above > k) lo = threshold;
    else hi = threshold;
    threshold = 0.5f * (lo + hi);
  }
  std::vector<std::uint32_t> idx;
  std::vector<float> val;
  select_above(t, threshold, static_cast<std::size_t>((1.0 + tolerance_) *
                                                      static_cast<double>(k)) + 1,
               idx, val);
  if (idx.empty()) {  // degenerate: everything below threshold — keep the max
    std::size_t best = 0;
    for (std::size_t i = 1; i < n; ++i)
      if (std::fabs(t[i]) > std::fabs(t[best])) best = i;
    idx.push_back(static_cast<std::uint32_t>(best));
    val.push_back(t[best]);
  }
  pack_sparse("RedSync", n, idx, val, out);
}

void RedSync::decompress(const CompressedView& c, FloatSpan out) { unpack_sparse(c, out); }

// --- SIDCo -----------------------------------------------------------------------

SIDCo::SIDCo(double factor_or_k, bool is_factor, int stages)
    : spec_(factor_or_k), is_factor_(is_factor), stages_(stages) {
  OF_CHECK_MSG(stages >= 1, "SIDCo needs at least one stage");
}

void SIDCo::compress(ConstFloatSpan t, Compressed& out) {
  const std::size_t n = t.size();
  const std::size_t k = resolve_k(spec_, is_factor_, n);
  // Model |g| as Exponential(1/mean). P(|g| > τ) = exp(-τ/mean), so the
  // threshold hitting a target ratio r is τ = -mean·ln(r). Multi-stage:
  // re-fit on the survivors with the residual ratio, sharpening the
  // estimate without ever sorting (SIDCo's key trick).
  const double target = static_cast<double>(k) / static_cast<double>(n);
  const double per_stage = std::pow(target, 1.0 / static_cast<double>(stages_));
  float threshold = 0.0f;
  double mean = 0.0;
  std::size_t count = n;
  for (std::size_t i = 0; i < n; ++i) mean += std::fabs(t[i]);
  mean /= std::max<std::size_t>(1, count);
  for (int s = 0; s < stages_; ++s) {
    threshold += static_cast<float>(-mean * std::log(per_stage));
    // Re-fit the exponential on survivors (mean of exceedances − τ).
    double sum = 0.0;
    std::size_t m = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const float a = std::fabs(t[i]);
      if (a >= threshold) {
        sum += a - threshold;
        ++m;
      }
    }
    if (m == 0) break;
    mean = sum / static_cast<double>(m);
    count = m;
  }
  std::vector<std::uint32_t> idx;
  std::vector<float> val;
  select_above(t, threshold, 2 * k, idx, val);
  if (idx.empty()) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < n; ++i)
      if (std::fabs(t[i]) > std::fabs(t[best])) best = i;
    idx.push_back(static_cast<std::uint32_t>(best));
    val.push_back(t[best]);
  }
  pack_sparse("SIDCo", n, idx, val, out);
}

void SIDCo::decompress(const CompressedView& c, FloatSpan out) { unpack_sparse(c, out); }

// --- Identity ---------------------------------------------------------------------

void Identity::compress(ConstFloatSpan t, Compressed& out) {
  out.codec = "Identity";
  out.original_numel = t.size();
  out.payload.clear();
  tensor::append_span(out.payload, t);
}

void Identity::decompress(const CompressedView& c, FloatSpan out) {
  OF_CHECK_MSG(c.payload.size() == c.original_numel * sizeof(float),
               "identity payload size mismatch");
  OF_CHECK_MSG(out.size() == c.original_numel, "identity decompress size mismatch");
  std::memcpy(out.data(), c.payload.data(), c.payload.size());
}

}  // namespace of::compression
