// Sparsification codecs: TopK, RandomK, DGC, RedSync, SIDCo.
// All emit the shared sparse payload format (see sparse_encode) and differ
// only in how they *select* which coordinates survive:
//   TopK    — exact magnitude top-k (nth_element)
//   RandomK — uniform random k (cheapest selection, worst quality)
//   DGC     — Deep Gradient Compression: threshold estimated from a random
//             sample, then refined — avoids a full sort on huge tensors
//   RedSync — trimmed binary search of the threshold to land within a
//             tolerance band of the target k
//   SIDCo   — statistical fit (exponential model of |g|) with multi-stage
//             refinement to estimate the threshold analytically
#pragma once

#include "compression/compressor.hpp"

namespace of::compression {

// Shared sparse payload: u64 nnz | u32 idx[nnz] | f32 val[nnz].
// The into-form clears `out` (keeping capacity) before writing.
void sparse_encode(Bytes& out, const std::vector<std::uint32_t>& idx,
                   const std::vector<float>& val);
Bytes sparse_encode(const std::vector<std::uint32_t>& idx, const std::vector<float>& val);
void sparse_decode(tensor::ConstByteSpan payload, std::vector<std::uint32_t>& idx,
                   std::vector<float>& val);

// Resolve an absolute k from a factor-or-absolute spec for a given size.
std::size_t resolve_k(double factor_or_k, bool is_factor, std::size_t numel);

class TopK final : public Compressor {
 public:
  // factor form: keep numel/factor elements; absolute form: keep k.
  TopK(double factor_or_k, bool is_factor);
  void compress(ConstFloatSpan input, Compressed& out) override;
  void decompress(const CompressedView& c, FloatSpan out) override;
  using Compressor::compress;
  using Compressor::decompress;
  std::string name() const override { return "TopK"; }
  bool allreduce_compatible() const override { return false; }

 private:
  double spec_;
  bool is_factor_;
};

class RandomK final : public Compressor {
 public:
  RandomK(double factor_or_k, bool is_factor, std::uint64_t seed);
  void compress(ConstFloatSpan input, Compressed& out) override;
  void decompress(const CompressedView& c, FloatSpan out) override;
  using Compressor::compress;
  using Compressor::decompress;
  std::string name() const override { return "RandomK"; }
  bool allreduce_compatible() const override { return false; }

 private:
  double spec_;
  bool is_factor_;
  Rng rng_;
};

class DGC final : public Compressor {
 public:
  DGC(double factor_or_k, bool is_factor, std::uint64_t seed,
      double sample_fraction = 0.01);
  void compress(ConstFloatSpan input, Compressed& out) override;
  void decompress(const CompressedView& c, FloatSpan out) override;
  using Compressor::compress;
  using Compressor::decompress;
  std::string name() const override { return "DGC"; }
  bool allreduce_compatible() const override { return false; }

 private:
  double spec_;
  bool is_factor_;
  Rng rng_;
  double sample_fraction_;
};

class RedSync final : public Compressor {
 public:
  RedSync(double factor_or_k, bool is_factor, double tolerance = 0.2,
          int max_iterations = 20);
  void compress(ConstFloatSpan input, Compressed& out) override;
  void decompress(const CompressedView& c, FloatSpan out) override;
  using Compressor::compress;
  using Compressor::decompress;
  std::string name() const override { return "RedSync"; }
  bool allreduce_compatible() const override { return false; }

 private:
  double spec_;
  bool is_factor_;
  double tolerance_;
  int max_iterations_;
};

class SIDCo final : public Compressor {
 public:
  SIDCo(double factor_or_k, bool is_factor, int stages = 3);
  void compress(ConstFloatSpan input, Compressed& out) override;
  void decompress(const CompressedView& c, FloatSpan out) override;
  using Compressor::compress;
  using Compressor::decompress;
  std::string name() const override { return "SIDCo"; }
  bool allreduce_compatible() const override { return false; }

 private:
  double spec_;
  bool is_factor_;
  int stages_;
};

class Identity final : public Compressor {
 public:
  void compress(ConstFloatSpan input, Compressed& out) override;
  void decompress(const CompressedView& c, FloatSpan out) override;
  using Compressor::compress;
  using Compressor::decompress;
  std::string name() const override { return "Identity"; }
  bool allreduce_compatible() const override { return true; }
};

}  // namespace of::compression
