#include "config/compose.hpp"

#include "config/yaml.hpp"

namespace of::config {
namespace {

std::string dirname_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

// A defaults entry is either a scalar name ("base") or a one-entry map
// ("topology: centralized" / "override topology: centralized").
void apply_default_entry(ConfigNode& target, const ConfigNode& entry,
                         const std::string& base_dir) {
  if (entry.is_scalar()) {
    const std::string name = entry.as_string();
    ConfigNode loaded = load_yaml_file(base_dir + "/" + name + ".yaml");
    target.merge_from(loaded);
    return;
  }
  OF_CHECK_MSG(entry.is_map() && entry.size() == 1,
               "defaults entry must be a name or single 'group: option' pair");
  std::string group = entry.items().front().first;
  const ConfigNode& option = entry.items().front().second;
  // Hydra syntax: "override <group>" marks replacement of an earlier
  // default; composition order already handles it, so just strip the marker.
  constexpr const char* kOverride = "override ";
  if (group.rfind(kOverride, 0) == 0) group = group.substr(std::string(kOverride).size());
  OF_CHECK_MSG(option.is_scalar(), "defaults option for group '" << group
                                                                 << "' must be a name");
  ConfigNode loaded =
      load_yaml_file(base_dir + "/" + group + "/" + option.as_string() + ".yaml");
  target[group].merge_from(loaded);
}

}  // namespace

void apply_override(ConfigNode& root, const std::string& assignment) {
  const auto eq = assignment.find('=');
  OF_CHECK_MSG(eq != std::string::npos && eq > 0,
               "override must be 'dotted.path=value', got '" << assignment << "'");
  const std::string path = assignment.substr(0, eq);
  const std::string value = assignment.substr(eq + 1);
  root.set_path(path, parse_scalar(value));
}

ConfigNode compose_from(ConfigNode root, const std::string& base_dir,
                        const std::vector<std::string>& overrides) {
  ConfigNode result = ConfigNode::map();
  if (root.is_map() && root.has("defaults")) {
    const ConfigNode& defaults = root.at("defaults");
    OF_CHECK_MSG(defaults.is_list(), "'defaults' must be a list");
    for (std::size_t i = 0; i < defaults.size(); ++i)
      apply_default_entry(result, defaults.at(i), base_dir);
    root.erase("defaults");
  }
  result.merge_from(root);  // the file body wins over its defaults
  for (const auto& ov : overrides) apply_override(result, ov);
  return result;
}

ConfigNode compose(const std::string& path, const std::vector<std::string>& overrides) {
  return compose_from(load_yaml_file(path), dirname_of(path), overrides);
}

}  // namespace of::config
