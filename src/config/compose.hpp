// Hydra-style composition: a config may carry a `defaults:` list whose
// entries pull in group files, and callers may pass dotted-path command-line
// overrides ("algorithm.lr=0.05"). This reproduces the paper's Fig. 2
// workflow: one-line changes in YAML (or on the CLI) swap the algorithm,
// topology, communicator, model, or dataset.
//
//   defaults:
//     - base                      # merge <dir>/base.yaml at the root
//     - topology: centralized    # merge <dir>/topology/centralized.yaml under `topology:`
//     - override algorithm: fedprox   # same, explicitly replacing an earlier default
//
// Entries compose in order; the body of the file wins over its defaults;
// CLI overrides win over everything.
#pragma once

#include <string>
#include <vector>

#include "config/node.hpp"

namespace of::config {

// Apply one "dotted.path=value" assignment (value parsed as a YAML scalar
// or flow list).
void apply_override(ConfigNode& root, const std::string& assignment);

// Compose a parsed config whose group files live under `base_dir`.
ConfigNode compose_from(ConfigNode root, const std::string& base_dir,
                        const std::vector<std::string>& overrides = {});

// Load + compose the config file at `path`; group files are resolved
// relative to its directory.
ConfigNode compose(const std::string& path, const std::vector<std::string>& overrides = {});

}  // namespace of::config
