#include "config/node.hpp"

#include <cstdlib>
#include <sstream>

namespace of::config {

ConfigNode ConfigNode::boolean(bool v) {
  ConfigNode n;
  n.kind_ = Kind::Bool;
  n.bool_ = v;
  return n;
}

ConfigNode ConfigNode::integer(std::int64_t v) {
  ConfigNode n;
  n.kind_ = Kind::Int;
  n.int_ = v;
  return n;
}

ConfigNode ConfigNode::floating(double v) {
  ConfigNode n;
  n.kind_ = Kind::Float;
  n.float_ = v;
  return n;
}

ConfigNode ConfigNode::string(std::string v) {
  ConfigNode n;
  n.kind_ = Kind::String;
  n.string_ = std::move(v);
  return n;
}

ConfigNode ConfigNode::map() {
  ConfigNode n;
  n.kind_ = Kind::Map;
  return n;
}

ConfigNode ConfigNode::list() {
  ConfigNode n;
  n.kind_ = Kind::List;
  return n;
}

bool ConfigNode::as_bool() const {
  OF_CHECK_MSG(kind_ == Kind::Bool, "config node is not a bool");
  return bool_;
}

std::int64_t ConfigNode::as_int() const {
  OF_CHECK_MSG(kind_ == Kind::Int, "config node is not an int");
  return int_;
}

double ConfigNode::as_double() const {
  if (kind_ == Kind::Int) return static_cast<double>(int_);
  OF_CHECK_MSG(kind_ == Kind::Float, "config node is not a number");
  return float_;
}

const std::string& ConfigNode::as_string() const {
  OF_CHECK_MSG(kind_ == Kind::String, "config node is not a string");
  return string_;
}

bool ConfigNode::has(const std::string& key) const {
  if (kind_ != Kind::Map) return false;
  for (const auto& [k, v] : map_)
    if (k == key) return true;
  return false;
}

const ConfigNode& ConfigNode::at(const std::string& key) const {
  OF_CHECK_MSG(kind_ == Kind::Map, "config node is not a map (looking up '" << key << "')");
  for (const auto& [k, v] : map_)
    if (k == key) return v;
  OF_CHECK_MSG(false, "missing config key '" << key << "'");
}

ConfigNode& ConfigNode::operator[](const std::string& key) {
  if (kind_ == Kind::Null) kind_ = Kind::Map;
  OF_CHECK_MSG(kind_ == Kind::Map, "config node is not a map (setting '" << key << "')");
  for (auto& [k, v] : map_)
    if (k == key) return v;
  map_.emplace_back(key, ConfigNode());
  return map_.back().second;
}

void ConfigNode::erase(const std::string& key) {
  OF_CHECK_MSG(kind_ == Kind::Map, "erase on non-map config node");
  for (auto it = map_.begin(); it != map_.end(); ++it) {
    if (it->first == key) {
      map_.erase(it);
      return;
    }
  }
}

const std::vector<std::pair<std::string, ConfigNode>>& ConfigNode::items() const {
  OF_CHECK_MSG(kind_ == Kind::Map, "items() on non-map config node");
  return map_;
}

std::vector<std::pair<std::string, ConfigNode>>& ConfigNode::items() {
  OF_CHECK_MSG(kind_ == Kind::Map, "items() on non-map config node");
  return map_;
}

std::size_t ConfigNode::size() const {
  if (kind_ == Kind::List) return list_.size();
  if (kind_ == Kind::Map) return map_.size();
  OF_CHECK_MSG(false, "size() on scalar config node");
}

const ConfigNode& ConfigNode::at(std::size_t i) const {
  OF_CHECK_MSG(kind_ == Kind::List, "indexed access on non-list config node");
  OF_CHECK_MSG(i < list_.size(), "config list index " << i << " out of range");
  return list_[i];
}

void ConfigNode::push_back(ConfigNode v) {
  if (kind_ == Kind::Null) kind_ = Kind::List;
  OF_CHECK_MSG(kind_ == Kind::List, "push_back on non-list config node");
  list_.push_back(std::move(v));
}

namespace {
std::vector<std::string> split_dotted(const std::string& dotted) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : dotted) {
    if (c == '.') {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  parts.push_back(cur);
  return parts;
}
}  // namespace

const ConfigNode& ConfigNode::at_path(const std::string& dotted) const {
  const ConfigNode* cur = this;
  for (const auto& part : split_dotted(dotted)) {
    OF_CHECK_MSG(cur->has(part), "missing config path '" << dotted << "' (at '" << part << "')");
    cur = &cur->at(part);
  }
  return *cur;
}

bool ConfigNode::has_path(const std::string& dotted) const {
  const ConfigNode* cur = this;
  for (const auto& part : split_dotted(dotted)) {
    if (!cur->has(part)) return false;
    cur = &cur->at(part);
  }
  return true;
}

void ConfigNode::set_path(const std::string& dotted, ConfigNode value) {
  ConfigNode* cur = this;
  const auto parts = split_dotted(dotted);
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) cur = &(*cur)[parts[i]];
  (*cur)[parts.back()] = std::move(value);
}

void ConfigNode::merge_from(const ConfigNode& overlay) {
  if (overlay.kind_ == Kind::Map && kind_ == Kind::Map) {
    for (const auto& [k, v] : overlay.map_) (*this)[k].merge_from(v);
  } else {
    *this = overlay;
  }
}

namespace {
bool needs_quotes(const std::string& s) {
  if (s.empty()) return true;
  if (s == "true" || s == "false" || s == "null" || s == "~") return true;
  // Strings that parse as numbers must be quoted to round-trip.
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  if (end == s.c_str() + s.size()) return true;
  for (char c : s)
    if (c == ':' || c == '#' || c == '\n' || c == '[' || c == ']' || c == '{' ||
        c == '}' || c == ',' || c == '"')
      return true;
  return s.front() == ' ' || s.back() == ' ' || s.front() == '-';
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}
}  // namespace

std::string ConfigNode::dump(int indent) const {
  std::ostringstream os;
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  switch (kind_) {
    case Kind::Null: return "null";
    case Kind::Bool: return bool_ ? "true" : "false";
    case Kind::Int: {
      os << int_;
      return os.str();
    }
    case Kind::Float: {
      os.precision(17);
      os << float_;
      const std::string s = os.str();
      // Ensure the dump re-parses as a float, not an int.
      return (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
              s.find("inf") == std::string::npos && s.find("nan") == std::string::npos)
                 ? s + ".0"
                 : s;
    }
    case Kind::String: return needs_quotes(string_) ? quote(string_) : string_;
    case Kind::Map: {
      if (map_.empty()) return "{}";
      bool first = true;
      for (const auto& [k, v] : map_) {
        if (!first) os << '\n';
        first = false;
        os << pad << k << ':';
        if (v.is_map() && v.size() > 0) os << '\n' << v.dump(indent + 1);
        else if (v.is_list() && v.size() > 0) os << '\n' << v.dump(indent + 1);
        else os << ' ' << v.dump(0);
      }
      return os.str();
    }
    case Kind::List: {
      if (list_.empty()) return "[]";
      bool first = true;
      for (const auto& v : list_) {
        if (!first) os << '\n';
        first = false;
        os << pad << "- ";
        if (v.is_map() && v.size() > 0) {
          // Block map under the list item: "- " supplies the first line's
          // indentation, following entries align at indent+1.
          std::string block = v.dump(indent + 1);
          const std::string childpad(static_cast<std::size_t>(indent + 1) * 2, ' ');
          if (block.rfind(childpad, 0) == 0) block = block.substr(childpad.size());
          os << block;
        } else if (v.is_list() || v.is_map()) {
          // Lists (or empty maps) directly inside a list item render in
          // flow form — "- - x" block nesting does not round-trip.
          os << v.dump_flow();
        } else {
          os << v.dump(0);
        }
      }
      return os.str();
    }
  }
  return "null";
}

std::string ConfigNode::dump_flow() const {
  switch (kind_) {
    case Kind::Map: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, v] : map_) {
        if (!first) out += ", ";
        first = false;
        out += k;
        out += ": ";
        out += v.dump_flow();
      }
      out += '}';
      return out;
    }
    case Kind::List: {
      std::string out = "[";
      bool first = true;
      for (const auto& v : list_) {
        if (!first) out += ", ";
        first = false;
        out += v.dump_flow();
      }
      out += ']';
      return out;
    }
    default:
      return dump(0);
  }
}

bool ConfigNode::operator==(const ConfigNode& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::Null: return true;
    case Kind::Bool: return bool_ == other.bool_;
    case Kind::Int: return int_ == other.int_;
    case Kind::Float: return float_ == other.float_;
    case Kind::String: return string_ == other.string_;
    case Kind::Map: return map_ == other.map_;
    case Kind::List: return list_ == other.list_;
  }
  return false;
}

}  // namespace of::config
