// ConfigNode — the in-memory configuration tree (OmegaConf stand-in).
// A node is null, a scalar (bool/int/float/string), an insertion-ordered
// map, or a list. Typed accessors throw with the offending path so config
// errors in YAML files surface as readable messages.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace of::config {

class ConfigNode {
 public:
  enum class Kind { Null, Bool, Int, Float, String, Map, List };

  ConfigNode() = default;
  static ConfigNode null() { return ConfigNode(); }
  static ConfigNode boolean(bool v);
  static ConfigNode integer(std::int64_t v);
  static ConfigNode floating(double v);
  static ConfigNode string(std::string v);
  static ConfigNode map();
  static ConfigNode list();

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::Null; }
  bool is_map() const noexcept { return kind_ == Kind::Map; }
  bool is_list() const noexcept { return kind_ == Kind::List; }
  bool is_scalar() const noexcept {
    return kind_ == Kind::Bool || kind_ == Kind::Int || kind_ == Kind::Float ||
           kind_ == Kind::String;
  }

  // --- scalar accessors (throw on kind mismatch; Int widens to Float) ----
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;

  // --- map interface -------------------------------------------------------
  bool has(const std::string& key) const;
  const ConfigNode& at(const std::string& key) const;
  ConfigNode& operator[](const std::string& key);  // creates missing entries
  void erase(const std::string& key);
  const std::vector<std::pair<std::string, ConfigNode>>& items() const;
  std::vector<std::pair<std::string, ConfigNode>>& items();

  // --- list interface ------------------------------------------------------
  std::size_t size() const;
  const ConfigNode& at(std::size_t i) const;
  void push_back(ConfigNode v);

  // --- typed convenience getters -------------------------------------------
  template <typename T>
  T get(const std::string& key) const;
  template <typename T>
  T get_or(const std::string& key, T fallback) const {
    return has(key) ? get<T>(key) : fallback;
  }

  // Dotted-path lookup: "topology.inner_comm.port". Throws if missing.
  const ConfigNode& at_path(const std::string& dotted) const;
  bool has_path(const std::string& dotted) const;
  // Dotted-path set; creates intermediate maps.
  void set_path(const std::string& dotted, ConfigNode value);

  // Deep merge: values from `overlay` replace/extend this node (maps merge
  // recursively, everything else replaces). This is OmegaConf's merge rule.
  void merge_from(const ConfigNode& overlay);

  // Canonical YAML rendering (round-trips through the parser).
  std::string dump(int indent = 0) const;
  // Single-line flow rendering ("{k: v}" / "[a, b]"), used for containers
  // nested directly inside block-list items.
  std::string dump_flow() const;

  bool operator==(const ConfigNode& other) const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double float_ = 0.0;
  std::string string_;
  std::vector<std::pair<std::string, ConfigNode>> map_;
  std::vector<ConfigNode> list_;
};

template <>
inline bool ConfigNode::get<bool>(const std::string& key) const {
  return at(key).as_bool();
}
template <>
inline std::int64_t ConfigNode::get<std::int64_t>(const std::string& key) const {
  return at(key).as_int();
}
template <>
inline int ConfigNode::get<int>(const std::string& key) const {
  return static_cast<int>(at(key).as_int());
}
template <>
inline std::size_t ConfigNode::get<std::size_t>(const std::string& key) const {
  const auto v = at(key).as_int();
  OF_CHECK_MSG(v >= 0, "config key '" << key << "' must be non-negative, got " << v);
  return static_cast<std::size_t>(v);
}
template <>
inline double ConfigNode::get<double>(const std::string& key) const {
  return at(key).as_double();
}
template <>
inline float ConfigNode::get<float>(const std::string& key) const {
  return static_cast<float>(at(key).as_double());
}
template <>
inline std::string ConfigNode::get<std::string>(const std::string& key) const {
  return at(key).as_string();
}

}  // namespace of::config
