// Plugin registry — the `_target_:` instantiation mechanism.
//
// Modules register named factories (Algorithm, Compressor, PrivacyMechanism,
// …) and configs select them by target string. Target matching accepts both
// the bare registered name ("FedAvg") and the paper's fully qualified form
// ("src.omnifed.algorithm.FedAvg"): the final dotted component is used.
//
// Registration is explicit (each module exposes register_builtin_*()) rather
// than static-initializer magic: self-registering translation units get
// dropped by the linker when archived into static libraries.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "config/node.hpp"

namespace of::config {

inline std::string target_basename(const std::string& target) {
  const auto dot = target.find_last_of('.');
  return dot == std::string::npos ? target : target.substr(dot + 1);
}

template <typename Base, typename... Args>
class Registry {
 public:
  using Factory = std::function<std::unique_ptr<Base>(const ConfigNode&, Args...)>;

  void add(const std::string& name, Factory factory) {
    OF_CHECK_MSG(!factories_.count(name), "duplicate registration of '" << name << "'");
    factories_[name] = std::move(factory);
  }

  bool contains(const std::string& target) const {
    return factories_.count(target_basename(target)) > 0;
  }

  // Create from an explicit name.
  std::unique_ptr<Base> create(const std::string& target, const ConfigNode& cfg,
                               Args... args) const {
    const std::string name = target_basename(target);
    auto it = factories_.find(name);
    OF_CHECK_MSG(it != factories_.end(),
                 "no registered factory for '" << target << "' (known: " << known() << ")");
    return it->second(cfg, std::forward<Args>(args)...);
  }

  // Create from a config node carrying `_target_:`.
  std::unique_ptr<Base> create(const ConfigNode& cfg, Args... args) const {
    OF_CHECK_MSG(cfg.is_map() && cfg.has("_target_"),
                 "config node has no '_target_' key for factory instantiation");
    return create(cfg.at("_target_").as_string(), cfg, std::forward<Args>(args)...);
  }

  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [k, v] : factories_) out.push_back(k);
    return out;
  }

 private:
  std::string known() const {
    std::string s;
    for (const auto& [k, v] : factories_) {
      if (!s.empty()) s += ", ";
      s += k;
    }
    return s.empty() ? "<none>" : s;
  }

  std::map<std::string, Factory> factories_;
};

}  // namespace of::config
