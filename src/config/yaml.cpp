#include "config/yaml.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace of::config {
namespace {

struct Line {
  int indent = 0;
  std::string content;  // comment-stripped, right-trimmed
  int number = 0;       // 1-based source line for error messages
};

[[noreturn]] void fail(int line, const std::string& msg) {
  std::ostringstream os;
  os << "YAML parse error at line " << line << ": " << msg;
  throw std::runtime_error(os.str());
}

// Strip a trailing comment, respecting single/double quotes.
std::string strip_comment(const std::string& s) {
  bool in_single = false, in_double = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '\'' && !in_double) in_single = !in_single;
    else if (c == '"' && !in_single) in_double = !in_double;
    else if (c == '#' && !in_single && !in_double &&
             (i == 0 || s[i - 1] == ' ' || s[i - 1] == '\t'))
      return s.substr(0, i);
  }
  return s;
}

std::string rtrim(std::string s) {
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) s.pop_back();
  return s;
}

std::string trim(std::string s) {
  s = rtrim(std::move(s));
  std::size_t i = 0;
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  return s.substr(i);
}

std::vector<Line> tokenize(const std::string& text) {
  std::vector<Line> lines;
  std::istringstream is(text);
  std::string raw;
  int number = 0;
  while (std::getline(is, raw)) {
    ++number;
    std::string stripped = rtrim(strip_comment(raw));
    int indent = 0;
    std::size_t i = 0;
    while (i < stripped.size() && stripped[i] == ' ') {
      ++indent;
      ++i;
    }
    if (i < stripped.size() && stripped[i] == '\t')
      fail(number, "tab indentation is not supported");
    const std::string content = stripped.substr(i);
    if (content.empty()) continue;
    if (content == "---") continue;  // document marker
    lines.push_back({indent, content, number});
  }
  return lines;
}

ConfigNode parse_scalar_token(const std::string& tok, int line_no);
ConfigNode parse_flow_map(const std::string& s, std::size_t& pos, int line_no);
std::string unquote(const std::string& s, char q, int line_no);

// Parse a flow list "[a, b, [c, d]]". `pos` sits on '['.
ConfigNode parse_flow_list(const std::string& s, std::size_t& pos, int line_no) {
  OF_ASSERT(s[pos] == '[');
  ++pos;
  ConfigNode list = ConfigNode::list();
  std::string cur;
  auto flush = [&] {
    const std::string t = trim(cur);
    if (!t.empty()) list.push_back(parse_scalar_token(t, line_no));
    cur.clear();
  };
  bool in_single = false, in_double = false;
  while (pos < s.size()) {
    const char c = s[pos];
    if (c == '\'' && !in_double) { in_single = !in_single; cur.push_back(c); ++pos; }
    else if (c == '"' && !in_single) { in_double = !in_double; cur.push_back(c); ++pos; }
    else if (in_single || in_double) { cur.push_back(c); ++pos; }
    else if (c == '[') {
      ConfigNode inner = parse_flow_list(s, pos, line_no);
      // A nested flow list must be the whole element.
      if (!trim(cur).empty()) fail(line_no, "unexpected text before nested flow list");
      list.push_back(std::move(inner));
      cur.clear();
      // swallow to the following ',' or ']'
      while (pos < s.size() && s[pos] == ' ') ++pos;
      if (pos < s.size() && s[pos] == ',') ++pos;
      else if (pos < s.size() && s[pos] == ']') { ++pos; return list; }
    }
    else if (c == '{') {
      ConfigNode inner = parse_flow_map(s, pos, line_no);
      if (!trim(cur).empty()) fail(line_no, "unexpected text before nested flow map");
      list.push_back(std::move(inner));
      cur.clear();
      while (pos < s.size() && s[pos] == ' ') ++pos;
      if (pos < s.size() && s[pos] == ',') ++pos;
      else if (pos < s.size() && s[pos] == ']') { ++pos; return list; }
    }
    else if (c == ',') { flush(); ++pos; }
    else if (c == ']') { flush(); ++pos; return list; }
    else { cur.push_back(c); ++pos; }
  }
  fail(line_no, "unterminated flow list");
}

// Parse a flow map "{k: v, nested: {a: 1}, list: [1, 2]}". `pos` sits on '{'.
ConfigNode parse_flow_map(const std::string& s, std::size_t& pos, int line_no) {
  OF_ASSERT(s[pos] == '{');
  ++pos;
  ConfigNode map = ConfigNode::map();
  std::string key;
  std::string cur;
  bool have_key = false;
  bool in_single = false, in_double = false;
  auto check_dup = [&](const std::string& k) {
    if (map.has(k)) fail(line_no, "duplicate map key '" + k + "'");
  };
  auto flush_value = [&] {
    const std::string t = trim(cur);
    if (!have_key) {
      if (!t.empty()) fail(line_no, "flow-map entry without a key");
      return;
    }
    check_dup(key);
    map[key] = parse_scalar_token(t, line_no);
    have_key = false;
    cur.clear();
  };
  while (pos < s.size()) {
    const char c = s[pos];
    if (c == '\'' && !in_double) { in_single = !in_single; cur.push_back(c); ++pos; }
    else if (c == '"' && !in_single) { in_double = !in_double; cur.push_back(c); ++pos; }
    else if (in_single || in_double) { cur.push_back(c); ++pos; }
    else if (c == ':' && !have_key && (pos + 1 == s.size() || s[pos + 1] == ' ' ||
                                       s[pos + 1] == '{' || s[pos + 1] == '[')) {
      key = trim(cur);
      if (key.empty()) fail(line_no, "empty key in flow map");
      if (key.front() == '"' || key.front() == '\'') key = unquote(key, key.front(), line_no);
      have_key = true;
      cur.clear();
      ++pos;
    }
    else if (c == '{' && have_key && trim(cur).empty()) {
      check_dup(key);
      map[key] = parse_flow_map(s, pos, line_no);
      have_key = false;
      while (pos < s.size() && s[pos] == ' ') ++pos;
      if (pos < s.size() && s[pos] == ',') ++pos;
      else if (pos < s.size() && s[pos] == '}') { ++pos; return map; }
    }
    else if (c == '[' && have_key && trim(cur).empty()) {
      check_dup(key);
      map[key] = parse_flow_list(s, pos, line_no);
      have_key = false;
      while (pos < s.size() && s[pos] == ' ') ++pos;
      if (pos < s.size() && s[pos] == ',') ++pos;
      else if (pos < s.size() && s[pos] == '}') { ++pos; return map; }
    }
    else if (c == ',') { flush_value(); ++pos; }
    else if (c == '}') { flush_value(); ++pos; return map; }
    else { cur.push_back(c); ++pos; }
  }
  fail(line_no, "unterminated flow map");
}

std::string unquote(const std::string& s, char q, int line_no) {
  std::string out;
  for (std::size_t i = 1; i < s.size(); ++i) {
    const char c = s[i];
    if (c == q) {
      if (i + 1 != s.size()) fail(line_no, "trailing characters after closing quote");
      return out;
    }
    if (q == '"' && c == '\\' && i + 1 < s.size()) {
      const char n = s[++i];
      switch (n) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case '\\': out.push_back('\\'); break;
        case '"': out.push_back('"'); break;
        default: out.push_back(n);
      }
    } else {
      out.push_back(c);
    }
  }
  fail(line_no, "unterminated quoted string");
}

ConfigNode parse_scalar_token(const std::string& tok, int line_no) {
  if (tok.empty() || tok == "~" || tok == "null" || tok == "Null" || tok == "NULL")
    return ConfigNode::null();
  if (tok == "true" || tok == "True") return ConfigNode::boolean(true);
  if (tok == "false" || tok == "False") return ConfigNode::boolean(false);
  if (tok.front() == '"') return ConfigNode::string(unquote(tok, '"', line_no));
  if (tok.front() == '\'') return ConfigNode::string(unquote(tok, '\'', line_no));
  if (tok.front() == '[') {
    std::size_t pos = 0;
    ConfigNode list = parse_flow_list(tok, pos, line_no);
    if (trim(tok.substr(pos)).size() > 0) fail(line_no, "trailing text after flow list");
    return list;
  }
  if (tok.front() == '{') {
    std::size_t pos = 0;
    ConfigNode map = parse_flow_map(tok, pos, line_no);
    if (trim(tok.substr(pos)).size() > 0) fail(line_no, "trailing text after flow map");
    return map;
  }
  // Numeric?
  {
    char* end = nullptr;
    errno = 0;
    const long long iv = std::strtoll(tok.c_str(), &end, 10);
    if (errno == 0 && end == tok.c_str() + tok.size())
      return ConfigNode::integer(static_cast<std::int64_t>(iv));
  }
  {
    char* end = nullptr;
    errno = 0;
    const double dv = std::strtod(tok.c_str(), &end);
    if (errno == 0 && end == tok.c_str() + tok.size()) return ConfigNode::floating(dv);
  }
  return ConfigNode::string(tok);
}

// Split "key: rest" at the first unquoted, un-nested ": " (or trailing
// ':'). Colons inside flow containers or quotes do not count. Returns
// false if the line has no key separator.
bool split_key(const std::string& s, std::string& key, std::string& rest, int line_no) {
  bool in_single = false, in_double = false;
  int depth = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '\'' && !in_double) in_single = !in_single;
    else if (c == '"' && !in_single) in_double = !in_double;
    else if ((c == '{' || c == '[') && !in_single && !in_double) ++depth;
    else if ((c == '}' || c == ']') && !in_single && !in_double) --depth;
    else if (c == ':' && !in_single && !in_double && depth == 0) {
      if (i + 1 == s.size() || s[i + 1] == ' ') {
        key = trim(s.substr(0, i));
        rest = (i + 1 < s.size()) ? trim(s.substr(i + 1)) : "";
        if (key.empty()) fail(line_no, "empty map key");
        // Strip quotes on the key if present.
        if (!key.empty() && (key.front() == '"' || key.front() == '\''))
          key = unquote(key, key.front(), line_no);
        return true;
      }
    }
  }
  return false;
}

class Parser {
 public:
  explicit Parser(std::vector<Line> lines) : lines_(std::move(lines)) {}

  ConfigNode parse() {
    if (lines_.empty()) return ConfigNode::map();
    ConfigNode root = parse_block(lines_.front().indent);
    if (pos_ != lines_.size()) fail(lines_[pos_].number, "unexpected de-indent/content");
    return root;
  }

 private:
  std::vector<Line> lines_;
  std::size_t pos_ = 0;

  bool done() const { return pos_ >= lines_.size(); }
  const Line& cur() const { return lines_[pos_]; }

  ConfigNode parse_block(int indent) {
    OF_ASSERT(!done());
    if (cur().content.rfind("- ", 0) == 0 || cur().content == "-") return parse_list(indent);
    return parse_map(indent);
  }

  ConfigNode parse_map(int indent) {
    ConfigNode node = ConfigNode::map();
    while (!done() && cur().indent == indent) {
      const Line line = cur();
      if (line.content.rfind("- ", 0) == 0 || line.content == "-")
        fail(line.number, "list item in map context");
      std::string key, rest;
      if (!split_key(line.content, key, rest, line.number))
        fail(line.number, "expected 'key: value'");
      if (node.has(key)) fail(line.number, "duplicate map key '" + key + "'");
      ++pos_;
      if (!rest.empty()) {
        node[key] = parse_scalar_token(rest, line.number);
      } else if (!done() && cur().indent > indent) {
        node[key] = parse_block(cur().indent);
      } else {
        node[key] = ConfigNode::null();
      }
      if (!done() && cur().indent > indent)
        fail(cur().number, "unexpected indent after key '" + key + "'");
    }
    return node;
  }

  ConfigNode parse_list(int indent) {
    ConfigNode node = ConfigNode::list();
    while (!done() && cur().indent == indent &&
           (cur().content.rfind("- ", 0) == 0 || cur().content == "-")) {
      const Line line = cur();
      const std::string rest =
          line.content == "-" ? std::string() : trim(line.content.substr(2));
      ++pos_;
      if (rest.empty()) {
        if (!done() && cur().indent > indent) node.push_back(parse_block(cur().indent));
        else node.push_back(ConfigNode::null());
        continue;
      }
      std::string key, value;
      if (split_key(rest, key, value, line.number)) {
        // "- key: v" opens an inline map item; subsequent deeper lines are
        // more entries of that same map. Virtual indent = indent + 2.
        ConfigNode item = ConfigNode::map();
        item[key] = value.empty()
                        ? ((!done() && cur().indent > indent + 2) ? parse_block(cur().indent)
                                                                  : ConfigNode::null())
                        : parse_scalar_token(value, line.number);
        while (!done() && cur().indent == indent + 2 &&
               !(cur().content.rfind("- ", 0) == 0 || cur().content == "-")) {
          const Line l2 = cur();
          std::string k2, v2;
          if (!split_key(l2.content, k2, v2, l2.number))
            fail(l2.number, "expected 'key: value' in list-item map");
          if (item.has(k2)) fail(l2.number, "duplicate map key '" + k2 + "'");
          ++pos_;
          if (!v2.empty()) item[k2] = parse_scalar_token(v2, l2.number);
          else if (!done() && cur().indent > indent + 2) item[k2] = parse_block(cur().indent);
          else item[k2] = ConfigNode::null();
        }
        node.push_back(std::move(item));
      } else {
        node.push_back(parse_scalar_token(rest, line.number));
      }
    }
    return node;
  }
};

}  // namespace

ConfigNode parse_yaml(const std::string& text) { return Parser(tokenize(text)).parse(); }

ConfigNode load_yaml_file(const std::string& path) {
  std::ifstream in(path);
  OF_CHECK_MSG(in.good(), "cannot open config file '" << path << "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_yaml(ss.str());
}

ConfigNode parse_scalar(const std::string& text) { return parse_scalar_token(trim(text), 0); }

}  // namespace of::config
