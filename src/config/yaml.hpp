// From-scratch parser for the YAML subset OmniFed configs use (the Hydra
// configuration language of the paper's Fig. 2 / Fig. 4):
//   - indentation-scoped maps and lists ("- item")
//   - inline list items that open maps ("- key: value")
//   - scalars: null/~, true/false, ints, floats, bare and quoted strings
//   - flow lists: [1, 2, 3]
//   - '#' comments and blank lines
// Parse errors report line numbers. dump() (on ConfigNode) round-trips.
#pragma once

#include <string>

#include "config/node.hpp"

namespace of::config {

// Parse YAML text into a config tree. Throws std::runtime_error with a
// line-number message on malformed input.
ConfigNode parse_yaml(const std::string& text);

// Parse the file at `path`.
ConfigNode load_yaml_file(const std::string& path);

// Parse a single scalar/flow value as written in "key=value" CLI overrides.
ConfigNode parse_scalar(const std::string& text);

}  // namespace of::config
