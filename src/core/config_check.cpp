#include "core/config_check.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "core/payload.hpp"
#include "core/topology.hpp"
#include "exec/pool.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "refl/config_io.hpp"
#include "serve/serve.hpp"

namespace of::core {
namespace {

using config::ConfigNode;

void check_keys(const ConfigNode& node, const std::string& path,
                const std::vector<std::string>& allowed) {
  if (!node.is_map()) return;
  for (const auto& [key, child] : node.items()) {
    (void)child;
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end())
      refl::config_fail(refl::join_path(path, key.c_str()),
                        "unknown key (strict config; set config.strict: false to allow)");
  }
}

ConfigNode child_or_empty(const ConfigNode& node, const std::string& key) {
  return (node.is_map() && node.has(key)) ? node.at(key) : ConfigNode::map();
}

// inner_comm / outer_comm blocks (engine.cpp parse_backend/parse_link).
void check_comm(const ConfigNode& node, const std::string& path) {
  check_keys(node, path, {"_target_", "port", "link", "compression"});
  check_keys(child_or_empty(node, "link"), path + ".link",
             {"latency_us", "bandwidth_mbps", "mode"});
  // The codec block under `compression:` is validated by make_compressor.
}

}  // namespace

bool config_strict(const ConfigNode& cfg) {
  if (!cfg.is_map() || !cfg.has("config")) return true;
  return cfg.at("config").get_or<bool>("strict", true);
}

void check_config_keys(const ConfigNode& cfg) {
  check_keys(cfg, "",
             {"seed", "eval_every", "clients_per_round", "topology", "model",
              "datamodule", "algorithm", "compression", "privacy", "scheduling",
              "aggregation", "byzantine", "fault", "heterogeneity", "exec", "obs",
              "serve", "payload", "config"});

  check_keys(child_or_empty(cfg, "config"), "config", {"strict"});

  if (cfg.is_map() && cfg.has("model") && cfg.at("model").is_map())
    check_keys(cfg.at("model"), "model", {"name"});

  check_keys(child_or_empty(cfg, "datamodule"), "datamodule",
             {"preset", "train_per_class", "test_per_class", "label_noise",
              "batch_size", "partition", "alpha"});

  // Every knob any registered algorithm reads (src/algorithms/). The union is
  // deliberate: which subset applies depends on `_target_`, and a foreign
  // knob is a no-op there — only genuine typos are outside this list.
  check_keys(child_or_empty(cfg, "algorithm"), "algorithm",
             {"_target_",  "global_rounds", "local_epochs",      "lr",
              "momentum",  "weight_decay",  "lr_gamma",          "lr_milestones",
              "alpha",     "beta",          "mu",                "tau",
              "temperature", "lambda",      "h",                 "c_global",
              "c_local",   "inner_lr",      "inner_weight_decay", "outer_lr",
              "outer_momentum", "personal_lr", "w_global",       "w_start",
              "server_lr"});

  check_keys(child_or_empty(cfg, "scheduling"), "scheduling",
             {"mode", "alpha", "total_updates"});
  check_keys(child_or_empty(cfg, "aggregation"), "aggregation", {"rule", "trim"});
  check_keys(child_or_empty(cfg, "byzantine"), "byzantine", {"count", "kind"});
  check_keys(child_or_empty(cfg, "heterogeneity"), "heterogeneity",
             {"slowdowns", "max_slowdown"});

  // Reflected groups: allowlists come straight from the field descriptors.
  // (Their from_config parsers re-check recursively with value/range rules.)
  check_keys(child_or_empty(cfg, "exec"), "exec",
             refl::field_names<exec::ExecConfig>());
  check_keys(child_or_empty(cfg, "obs"), "obs", refl::field_names<obs::ObsConfig>());
  check_keys(child_or_empty(cfg, "fault"), "fault",
             refl::field_names<fault::FaultSpec>());
  check_keys(child_or_empty(cfg, "serve"), "serve",
             refl::field_names<serve::ServeConfig>());
  check_keys(child_or_empty(cfg, "payload"), "payload",
             refl::field_names<PayloadConfig>());

  const ConfigNode topo = child_or_empty(cfg, "topology");
  check_keys(topo, "topology",
             {"_target_", "num_clients", "num_nodes", "groups", "group_size",
              "combiner", "inner_comm", "outer_comm", "nodes", "edges"});
  check_keys(child_or_empty(topo, "combiner"), "topology.combiner",
             refl::field_names<CombinerPolicy>());
  check_comm(child_or_empty(topo, "inner_comm"), "topology.inner_comm");
  check_comm(child_or_empty(topo, "outer_comm"), "topology.outer_comm");
  if (topo.is_map() && topo.has("nodes")) {
    const auto& nodes = topo.at("nodes");
    for (std::size_t i = 0; i < nodes.size(); ++i)
      check_keys(nodes.at(i), "topology.nodes[" + std::to_string(i) + "]",
                 {"id", "role", "group"});
  }

  // compression / privacy blocks are validated against their reflected param
  // structs inside make_compressor / make_mechanism (codec-specific keys).
}

config::ConfigNode effective_config(const config::ConfigNode& cfg) {
  const bool strict = config_strict(cfg);
  ConfigNode out = cfg.is_map() ? cfg : ConfigNode::map();
  out["exec"] =
      refl::to_node(exec::ExecConfig::from_config(child_or_empty(cfg, "exec"), strict));
  out["obs"] =
      refl::to_node(obs::ObsConfig::from_config(child_or_empty(cfg, "obs"), strict));
  out["fault"] =
      refl::to_node(fault::FaultSpec::from_config(child_or_empty(cfg, "fault"), strict));
  out["serve"] = refl::to_node(
      serve::ServeConfig::from_config(child_or_empty(cfg, "serve"), strict));
  out["payload"] = refl::to_node(
      PayloadConfig::from_config(child_or_empty(cfg, "payload"), strict));
  const ConfigNode topo = child_or_empty(cfg, "topology");
  if (topo.is_map() && topo.has("combiner"))
    out["topology"]["combiner"] = refl::to_node(refl::from_node<CombinerPolicy>(
        topo.at("combiner"), "topology.combiner", {}, strict));
  return out;
}

std::string dump_effective_config(const config::ConfigNode& cfg) {
  return effective_config(cfg).dump();
}

}  // namespace of::core
