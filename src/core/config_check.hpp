// Strict-config validation (DESIGN.md §13): reject unknown / typo'd keys in
// the composed experiment config with a `path.to.key` error instead of
// silently ignoring them. Reflected groups (exec, obs, fault, …) derive
// their allowlists from the Reflect<T> field descriptors; the remaining
// groups carry hand-maintained lists matching what the Engine reads.
//
// Strict is the default. Opt out per run with:
//
//   config:
//     strict: false
#pragma once

#include "config/node.hpp"

namespace of::core {

// The `config: {strict: …}` toggle; true when absent.
bool config_strict(const config::ConfigNode& cfg);

// Walk the composed tree and throw std::runtime_error (path-aware message)
// on the first unknown key. Only validates key *names*; value types and
// ranges are checked by the typed from_config parsers.
void check_config_keys(const config::ConfigNode& cfg);

// The effective merged config: the composed tree with every reflected group
// (exec, obs, fault, topology.combiner) replaced by the refl Writer's dump
// of its parsed struct, so defaulted knobs appear explicitly. Backs the
// examples' `--dump-config`.
config::ConfigNode effective_config(const config::ConfigNode& cfg);

// effective_config() as YAML text (ConfigNode::dump round-trip format).
std::string dump_effective_config(const config::ConfigNode& cfg);

}  // namespace of::core
