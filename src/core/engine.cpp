#include "core/engine.hpp"

#include <chrono>
#include <cstdio>
#include <thread>

#include "common/check.hpp"
#include "core/config_check.hpp"
#include "data/partition.hpp"
#include "exec/pool.hpp"
#include "nn/zoo.hpp"
#include "obs/obs.hpp"
#include "obs/telemetry.hpp"

namespace of::core {
namespace {

std::optional<comm::LinkModel> parse_link(const config::ConfigNode& comm_cfg,
                                          comm::DelayMode& mode_out) {
  if (!comm_cfg.is_map() || !comm_cfg.has("link")) return std::nullopt;
  const auto& link = comm_cfg.at("link");
  comm::LinkModel m;
  m.latency_seconds = link.get_or<double>("latency_us", 0.0) * 1e-6;
  const double mbps = link.get_or<double>("bandwidth_mbps", 0.0);
  m.bandwidth_bytes_per_second = mbps > 0.0 ? mbps * 1e6 / 8.0 : 0.0;
  mode_out = link.get_or<std::string>("mode", "virtual") == "sleep"
                 ? comm::DelayMode::Sleep
                 : comm::DelayMode::Virtual;
  return m;
}

CommSpec::Backend parse_backend(const config::ConfigNode& comm_cfg,
                                const std::string& fallback_target) {
  const std::string target = config::target_basename(
      comm_cfg.is_map() ? comm_cfg.get_or<std::string>("_target_", fallback_target)
                        : fallback_target);
  if (target == "TorchDistCommunicator" || target == "InProcCommunicator")
    return CommSpec::Backend::InProc;
  if (target == "GrpcCommunicator" || target == "TcpCommunicator")
    return CommSpec::Backend::Tcp;
  if (target == "AMQPCommunicator" || target == "AmqpCommunicator" ||
      target == "MqttCommunicator")
    return CommSpec::Backend::Amqp;
  OF_CHECK_MSG(false, "unknown communicator target '" << target << "'");
}

config::ConfigNode node_or_empty(const config::ConfigNode& cfg, const std::string& key) {
  return (cfg.is_map() && cfg.has(key)) ? cfg.at(key) : config::ConfigNode::map();
}

// Fold the drained trace into the per-round records: the per-phase columns
// are the summed span durations across every node for that round.
void fold_phase_seconds(const std::vector<obs::TraceEvent>& events,
                        std::vector<RoundRecord>& rounds) {
  for (const auto& e : events) {
    if (e.dur_ns == 0) continue;
    if (e.round >= rounds.size()) continue;
    RoundRecord& rec = rounds[e.round];
    const double s = static_cast<double>(e.dur_ns) * 1e-9;
    switch (e.name) {
      case obs::Name::LocalTrain: rec.train_s += s; break;
      case obs::Name::Encode: rec.encode_s += s; break;
      case obs::Name::Send: rec.send_s += s; break;
      case obs::Name::Recv: rec.recv_s += s; break;
      case obs::Name::Decode: rec.decode_s += s; break;
      case obs::Name::Aggregate: rec.aggregate_s += s; break;
      case obs::Name::Broadcast: rec.broadcast_s += s; break;
      default: break;
    }
  }
}

}  // namespace

Engine::Engine(config::ConfigNode cfg) : cfg_(std::move(cfg)) {
  strict_ = config_strict(cfg_);
  if (strict_) check_config_keys(cfg_);
  topology_ = Topology::from_config(node_or_empty(cfg_, "topology"), strict_);
  topology_.validate();
}

Engine Engine::from_file(const std::string& path, const std::vector<std::string>& overrides) {
  return Engine(config::compose(path, overrides));
}

std::vector<NodeSetup> Engine::build_setups() {
  const auto seed = static_cast<std::uint64_t>(cfg_.get_or<std::int64_t>("seed", 42));

  // --- dataset -------------------------------------------------------------
  const config::ConfigNode dm = node_or_empty(cfg_, "datamodule");
  const std::string preset_name = dm.get_or<std::string>("preset", "toy");
  data::DatasetSpec spec = data::preset(preset_name);
  if (dm.has("train_per_class")) spec.train_per_class = dm.get<std::size_t>("train_per_class");
  if (dm.has("test_per_class")) spec.test_per_class = dm.get<std::size_t>("test_per_class");
  if (dm.has("label_noise")) spec.label_noise = dm.get<float>("label_noise");
  dataset_ = data::make_synthetic(spec, seed);
  const std::size_t batch_size = dm.get_or<std::size_t>("batch_size", 32);
  const std::string scheme = dm.get_or<std::string>("partition", "iid");
  const double part_param = dm.get_or<double>("alpha", scheme == "shards" ? 2.0 : 0.5);

  const auto trainer_ids = topology_.trainer_ids();
  const std::size_t num_trainers = trainer_ids.size();
  const auto parts =
      data::make_partition(scheme, dataset_.train, num_trainers, part_param, seed + 1);

  // --- model ----------------------------------------------------------------
  std::string model_name = "mlp_tiny";
  if (cfg_.has("model")) {
    const auto& m = cfg_.at("model");
    model_name = m.is_map() ? m.get_or<std::string>("name", "mlp_tiny") : m.as_string();
  }

  // --- algorithm --------------------------------------------------------------
  const config::ConfigNode algo_cfg = node_or_empty(cfg_, "algorithm");
  const std::string algo_target =
      algo_cfg.get_or<std::string>("_target_", "src.omnifed.algorithm.FedAvg");
  const auto global_rounds = algo_cfg.get_or<std::size_t>("global_rounds", 1);
  const auto local_epochs = algo_cfg.get_or<std::size_t>("local_epochs", 1);
  const float lr = algo_cfg.get_or<float>("lr", 0.05f);
  const float momentum = algo_cfg.get_or<float>("momentum", 0.9f);
  const float weight_decay = algo_cfg.get_or<float>("weight_decay", 1e-4f);
  const float lr_gamma = algo_cfg.get_or<float>("lr_gamma", 0.1f);
  std::vector<std::size_t> milestones;
  if (algo_cfg.has("lr_milestones")) {
    const auto& ms = algo_cfg.at("lr_milestones");
    for (std::size_t i = 0; i < ms.size(); ++i)
      milestones.push_back(static_cast<std::size_t>(ms.at(i).as_int()));
  }
  const auto eval_every = cfg_.get_or<std::size_t>("eval_every", 0);

  // --- plugins ----------------------------------------------------------------
  const config::ConfigNode topo_cfg = node_or_empty(cfg_, "topology");
  const config::ConfigNode inner_comm_cfg = node_or_empty(topo_cfg, "inner_comm");
  const config::ConfigNode outer_comm_cfg = node_or_empty(topo_cfg, "outer_comm");
  config::ConfigNode compression_cfg = node_or_empty(cfg_, "compression");
  if (!compression_cfg.has("_target_") && inner_comm_cfg.has("compression"))
    compression_cfg = inner_comm_cfg.at("compression");  // paper Fig. 4 placement
  const bool has_compression = compression_cfg.has("_target_");
  const config::ConfigNode outer_compression_cfg = node_or_empty(outer_comm_cfg, "compression");
  const bool has_outer_compression = outer_compression_cfg.has("_target_");
  const config::ConfigNode privacy_cfg = node_or_empty(cfg_, "privacy");
  const bool has_privacy =
      privacy_cfg.has("_target_") &&
      config::target_basename(privacy_cfg.at("_target_").as_string()) != "NoPrivacy";
  OF_CHECK_MSG(!(has_compression && has_privacy),
               "compression and privacy cannot stack on the same link (run them in "
               "separate experiments, as the paper does)");
  const auto payload_cfg =
      PayloadConfig::from_config(node_or_empty(cfg_, "payload"), strict_);

  // --- scheduling / serving tier / heterogeneity / participation ------------
  const config::ConfigNode sched_cfg = node_or_empty(cfg_, "scheduling");
  const bool async_mode = sched_cfg.get_or<std::string>("mode", "sync") == "async";
  serve::ServeConfig serve_cfg =
      serve::ServeConfig::from_config(node_or_empty(cfg_, "serve"), strict_);
  if (async_mode) {
    // `scheduling: {mode: async}` is the legacy spelling of the serving
    // tier's FedAsync point: full participation, unit buffer.
    OF_CHECK_MSG(!serve_cfg.enabled,
                 "scheduling: {mode: async} and an enabled serve: group conflict — "
                 "configure the serving tier through serve: alone");
    serve_cfg.enabled = true;
    serve_cfg.mode = serve::Mode::FedBuff;
    serve_cfg.fraction = 1.0;
    serve_cfg.buffer_size = 1;
    serve_cfg.alpha = sched_cfg.get_or<double>("alpha", 0.6);
    serve_cfg.total_updates = sched_cfg.get_or<std::size_t>("total_updates", 0);
  }
  const bool fedbuff = serve_cfg.enabled && serve_cfg.mode == serve::Mode::FedBuff;
  if (fedbuff) {
    OF_CHECK_MSG(topology_.kind == "centralized",
                 "the serving tier (serve: fedbuff / async scheduling) requires a "
                 "centralized topology");
    OF_CHECK_MSG(!has_privacy,
                 "the serving tier aggregates updates one at a time — sum-based "
                 "privacy mechanisms (SA/HE) and per-cohort DP do not apply");
  }
  const auto clients_per_round = cfg_.get_or<std::size_t>("clients_per_round", 0);
  OF_CHECK_MSG(!fedbuff || clients_per_round == 0,
               "clients_per_round is the lockstep participation knob — the serving "
               "tier samples with serve.fraction instead");
  if (clients_per_round > 0 && has_privacy) {
    const std::string ptarget =
        config::target_basename(privacy_cfg.at("_target_").as_string());
    OF_CHECK_MSG(ptarget == "DifferentialPrivacy",
                 "partial participation breaks fixed-cohort mechanisms (" << ptarget
                                                                          << ")");
  }
  const config::ConfigNode agg_cfg = node_or_empty(cfg_, "aggregation");
  const AggregationRule agg_rule =
      parse_aggregation_rule(agg_cfg.get_or<std::string>("rule", "mean"));
  const double agg_trim = agg_cfg.get_or<double>("trim", 0.1);
  OF_CHECK_MSG(agg_rule == AggregationRule::Mean || !has_privacy,
               "robust aggregation rules need individual updates and cannot compose "
               "with sum-only privacy mechanisms");
  OF_CHECK_MSG(agg_rule == AggregationRule::Mean || !fedbuff,
               "robust aggregation rules need the whole cohort at once — the "
               "serving tier folds updates into a streaming buffer");
  const config::ConfigNode byz_cfg = node_or_empty(cfg_, "byzantine");
  const auto byzantine_count = byz_cfg.get_or<std::size_t>("count", 0);
  const std::string byzantine_kind = byz_cfg.get_or<std::string>("kind", "sign_flip");

  // --- fault model -----------------------------------------------------------
  const auto fault_spec =
      fault::FaultSpec::from_config(node_or_empty(cfg_, "fault"), strict_);
  if (fault_spec.enabled) {
    OF_CHECK_MSG(topology_.kind == "centralized",
                 "fault tolerance (deadline-based partial aggregation) requires a "
                 "centralized topology");
    OF_CHECK_MSG(!fedbuff,
                 "fault tolerance (deadline cuts) applies to synchronous rounds "
                 "only — the serving tier already absorbs stragglers by design");
    if (has_privacy) {
      const std::string ptarget =
          config::target_basename(privacy_cfg.at("_target_").as_string());
      OF_CHECK_MSG(ptarget == "DifferentialPrivacy",
                   "partial aggregation breaks fixed-cohort privacy mechanisms ("
                       << ptarget << ")");
    }
    fault_spec.validate(topology_.size());
  }
  OF_CHECK_MSG(!fault_spec.churn.enabled || fedbuff,
               "fault.churn models population churn in the serving tier — enable "
               "serve: {mode: fedbuff} (or async scheduling)");
  comm::TcpFaultTolerance tcp_ft;
  if (fault_spec.enabled) {
    tcp_ft.enabled = true;
    tcp_ft.max_reconnect_attempts = fault_spec.reconnect.max_attempts;
    tcp_ft.backoff_seconds = fault_spec.reconnect.backoff_seconds;
    tcp_ft.backoff_max_seconds = fault_spec.reconnect.backoff_max_seconds;
  }

  const config::ConfigNode het_cfg = node_or_empty(cfg_, "heterogeneity");
  std::vector<double> slowdowns;
  if (het_cfg.has("slowdowns")) {
    const auto& list = het_cfg.at("slowdowns");
    for (std::size_t i = 0; i < list.size(); ++i)
      slowdowns.push_back(list.at(i).as_double());
    for (double s : slowdowns)
      OF_CHECK_MSG(s >= 1.0, "slowdown factors must be >= 1");
  } else if (het_cfg.has("max_slowdown")) {
    const double mx = het_cfg.at("max_slowdown").as_double();
    OF_CHECK_MSG(mx >= 1.0, "max_slowdown must be >= 1");
    tensor::Rng hrng(seed ^ 0x48E7ULL);
    for (std::size_t i = 0; i < num_trainers; ++i)
      slowdowns.push_back(hrng.uniform(1.0, mx));
  }

  // --- communicators ------------------------------------------------------------
  const auto inner_backend = parse_backend(inner_comm_cfg, "TorchDistCommunicator");
  const auto outer_backend = parse_backend(outer_comm_cfg, "GrpcCommunicator");
  comm::DelayMode inner_delay = comm::DelayMode::Virtual;
  comm::DelayMode outer_delay = comm::DelayMode::Virtual;
  const auto inner_link = parse_link(inner_comm_cfg, inner_delay);
  const auto outer_link = parse_link(outer_comm_cfg, outer_delay);
  const auto inner_port =
      static_cast<std::uint16_t>(inner_comm_cfg.get_or<int>("port", 50051));
  const auto outer_port =
      static_cast<std::uint16_t>(outer_comm_cfg.get_or<int>("port", 50151));

  if (topology_.kind == "ring")
    OF_CHECK_MSG(inner_backend != CommSpec::Backend::Tcp,
                 "ring topology requires an all-to-all communicator (TorchDist/AMQP), "
                 "not a client/server star");

  // Shared-infrastructure groups (InProc / AMQP): one per sub-cluster +
  // optionally the outer tier. TCP groups form their own connections inside
  // the node threads and need nothing here.
  groups_.clear();
  amqp_groups_.clear();
  std::vector<comm::InProcGroup*> group_for;       // per topology group
  std::vector<comm::AmqpGroup*> amqp_group_for;    // per topology group
  comm::InProcGroup* outer_group = nullptr;
  comm::AmqpGroup* outer_amqp_group = nullptr;
  auto make_cluster = [&](CommSpec::Backend backend, int size,
                          comm::InProcGroup*& inproc_out, comm::AmqpGroup*& amqp_out) {
    inproc_out = nullptr;
    amqp_out = nullptr;
    if (backend == CommSpec::Backend::InProc) {
      groups_.push_back(std::make_unique<comm::InProcGroup>(size));
      inproc_out = groups_.back().get();
    } else if (backend == CommSpec::Backend::Amqp) {
      amqp_groups_.push_back(std::make_unique<comm::AmqpGroup>(size));
      amqp_out = amqp_groups_.back().get();
    }
  };
  if (topology_.kind == "hierarchical") {
    for (int g = 0; g < topology_.num_groups; ++g) {
      const auto members = topology_.group_members(g);
      comm::InProcGroup* ip = nullptr;
      comm::AmqpGroup* aq = nullptr;
      make_cluster(inner_backend, static_cast<int>(members.size()), ip, aq);
      group_for.push_back(ip);
      amqp_group_for.push_back(aq);
    }
    make_cluster(outer_backend, topology_.num_groups, outer_group, outer_amqp_group);
  } else {
    comm::InProcGroup* ip = nullptr;
    comm::AmqpGroup* aq = nullptr;
    make_cluster(inner_backend, topology_.size(), ip, aq);
    group_for.push_back(ip);
    amqp_group_for.push_back(aq);
  }

  // Total samples for weighted aggregation scales.
  std::size_t total_samples = 0;
  for (const auto& p : parts) total_samples += p.size();

  // Survivor re-weighting for partial rounds: w_i = n_i / total, indexed by
  // cohort index (centralized: rank i+1).
  std::vector<double> client_weights;
  if (fault_spec.enabled && total_samples > 0)
    for (const auto& p : parts)
      client_weights.push_back(static_cast<double>(p.size()) /
                               static_cast<double>(total_samples));

  // Per-group sample totals (hierarchical weights).
  std::vector<std::size_t> group_samples(static_cast<std::size_t>(topology_.num_groups), 0);
  {
    std::size_t ti = 0;
    for (int id : trainer_ids) {
      const int g = topology_.nodes[static_cast<std::size_t>(id)].group;
      group_samples[static_cast<std::size_t>(g)] += parts[ti].size();
      ++ti;
    }
  }

  // --- assemble per-node setups ---------------------------------------------------
  std::vector<NodeSetup> setups;
  setups.reserve(static_cast<std::size_t>(topology_.size()));
  std::size_t trainer_index = 0;  // global trainer counter, aligned with parts
  for (const auto& tn : topology_.nodes) {
    NodeSetup s;
    s.node_id = tn.id;
    s.role = tn.role;
    s.group = tn.group;
    s.mode = async_mode ? "async"
                        : (topology_.kind == "custom" ? "centralized" : topology_.kind);
    s.global_rounds = global_rounds;
    s.local_epochs = local_epochs;
    s.eval_every = eval_every;
    s.serve = serve_cfg;
    s.wire_repr = payload_cfg.wire;
    s.clients_per_round = clients_per_round;
    s.participation_seed = seed ^ 0x5E1EC7ULL;
    s.aggregation_rule = agg_rule;
    s.aggregation_trim = agg_trim;
    s.fault = fault_spec;
    if (tn.role == NodeRole::Aggregator && fault_spec.enabled)
      s.client_weights = client_weights;
    s.seed = seed + 1000 + static_cast<std::uint64_t>(tn.id);
    s.model = nn::zoo::make_model(model_name, spec.dim, spec.classes, seed);
    s.algorithm = algorithms::make_algorithm(algo_target);
    s.algorithm_params = algo_cfg;
    s.test_set = &dataset_.test;

    // Cohort geometry.
    const auto members = topology_.group_members(tn.group);
    const std::size_t group_trainers =
        topology_.kind == "ring" ? members.size() : members.size() - 1;

    if (tn.role == NodeRole::Trainer) {
      const auto& my_part = parts[trainer_index];
      s.loader = std::make_unique<data::DataLoader>(dataset_.train, my_part, batch_size,
                                                    /*shuffle=*/true, s.seed + 7);
      s.optimizer = std::make_unique<nn::SGD>(s.model.parameters(), lr, momentum,
                                              weight_decay);
      if (!milestones.empty())
        s.scheduler = std::make_unique<nn::MultiStepLR>(*s.optimizer, milestones, lr_gamma);

      // Weighted-mean pre-scale (see payload.hpp).
      if (topology_.kind == "hierarchical") {
        const auto gs = group_samples[static_cast<std::size_t>(tn.group)];
        s.weight_scale = gs > 0 ? static_cast<double>(my_part.size()) *
                                      static_cast<double>(group_trainers) /
                                      static_cast<double>(gs)
                                : 1.0;
      } else {
        s.weight_scale = total_samples > 0
                             ? static_cast<double>(my_part.size()) *
                                   static_cast<double>(num_trainers) /
                                   static_cast<double>(total_samples)
                             : 1.0;
      }
      // Cohort index among this group's trainers.
      int ci = 0;
      {
        std::size_t tj = 0;
        for (int id : trainer_ids) {
          if (id == tn.id) break;
          if (topology_.nodes[static_cast<std::size_t>(id)].group == tn.group) ++ci;
          ++tj;
        }
      }
      s.cohort_index = ci;
      s.cohort_size = static_cast<int>(group_trainers);
      if (!slowdowns.empty())
        s.slowdown = slowdowns[trainer_index % slowdowns.size()];
      if (fedbuff) s.weight_scale = 1.0;  // staleness weights take over
      if (trainer_index < byzantine_count) {
        s.byzantine = true;
        s.byzantine_kind = byzantine_kind;
      }
      ++trainer_index;
    } else if (topology_.kind == "hierarchical") {
      // Leader's outer weight: group share of the global sample count.
      s.weight_scale = total_samples > 0
                           ? static_cast<double>(
                                 group_samples[static_cast<std::size_t>(tn.group)]) *
                                 static_cast<double>(topology_.num_groups) /
                                 static_cast<double>(total_samples)
                           : 1.0;
      // Streaming combiner scale (node.hpp): bridges the client-side
      // weight_scale pre-scaling to the root's divide-by-total-count mean —
      // gs·T/(K_g·total). At full participation the tree equals the flat
      // weighted mean exactly.
      const auto gs = group_samples[static_cast<std::size_t>(tn.group)];
      s.partial_scale =
          (gs > 0 && total_samples > 0 && group_trainers > 0)
              ? static_cast<double>(gs) * static_cast<double>(num_trainers) /
                    (static_cast<double>(group_trainers) *
                     static_cast<double>(total_samples))
              : 1.0;
      s.hier_deadline_seconds = topology_.combiner.deadline_seconds;
      s.hier_min_clients = topology_.combiner.min_clients;
    }

    // Plugins.
    if (has_compression) {
      config::ConfigNode c = compression_cfg;
      c["seed"] = config::ConfigNode::integer(static_cast<std::int64_t>(s.seed + 77));
      s.compressor = compression::make_compressor(c, strict_);
    }
    if (has_outer_compression && tn.role == NodeRole::Aggregator) {
      config::ConfigNode c = outer_compression_cfg;
      c["seed"] = config::ConfigNode::integer(static_cast<std::int64_t>(s.seed + 78));
      s.outer_compressor = compression::make_compressor(c, strict_);
    }
    if (has_privacy) {
      config::ConfigNode p = privacy_cfg;
      const std::string ptarget = config::target_basename(p.at("_target_").as_string());
      if (ptarget == "DifferentialPrivacy") {
        p["seed"] = config::ConfigNode::integer(
            static_cast<std::int64_t>(seed * 131 + static_cast<std::uint64_t>(tn.id)));
      } else if (ptarget == "HomomorphicEncryption") {
        p["seed"] = config::ConfigNode::integer(static_cast<std::int64_t>(seed));  // shared keys
        p["enc_seed"] = config::ConfigNode::integer(
            static_cast<std::int64_t>(seed * 313 + static_cast<std::uint64_t>(tn.id) + 1));
      } else if (ptarget == "SecureAggregation") {
        p["num_clients"] = config::ConfigNode::integer(
            tn.role == NodeRole::Trainer ? s.cohort_size
                                         : static_cast<int>(group_trainers));
      }
      s.privacy = privacy::make_mechanism(p, strict_);
    }

    // Communicator specs.
    if (topology_.kind == "hierarchical") {
      // Inner: rank = index within the group (leader first).
      int inner_rank = 0;
      for (std::size_t i = 0; i < members.size(); ++i)
        if (members[i] == tn.id) inner_rank = static_cast<int>(i);
      s.inner_spec.backend = inner_backend;
      s.inner_spec.group = group_for[static_cast<std::size_t>(tn.group)];
      s.inner_spec.amqp_group = amqp_group_for[static_cast<std::size_t>(tn.group)];
      s.inner_spec.rank = inner_rank;
      s.inner_spec.world = static_cast<int>(members.size());
      s.inner_spec.port = static_cast<std::uint16_t>(inner_port + tn.group);
      s.inner_spec.link = inner_link;
      s.inner_spec.delay_mode = inner_delay;
      if (tn.role == NodeRole::Aggregator) {
        s.outer_spec.backend = outer_backend;
        s.outer_spec.group = outer_group;
        s.outer_spec.amqp_group = outer_amqp_group;
        s.outer_spec.rank = tn.group;
        s.outer_spec.world = topology_.num_groups;
        s.outer_spec.port = outer_port;
        s.outer_spec.link = outer_link;
        s.outer_spec.delay_mode = outer_delay;
      }
    } else {
      s.inner_spec.backend = inner_backend;
      s.inner_spec.group = group_for[0];
      s.inner_spec.amqp_group = amqp_group_for[0];
      s.inner_spec.rank = tn.id;
      s.inner_spec.world = topology_.size();
      s.inner_spec.port = inner_port;
      s.inner_spec.link = inner_link;
      s.inner_spec.delay_mode = inner_delay;
      s.inner_spec.tcp_ft = tcp_ft;
      // Deterministic connect backoff: seed the retry jitter from the node's
      // splitmix64 chain so a rerun's connect schedule reproduces from the
      // run seed (tests/test_comm.cpp asserts identical schedules).
      s.inner_spec.tcp_ft.connect_backoff_seed =
          tensor::Rng(s.seed ^ 0xBACC0FFULL).next_u64();
    }

    setups.push_back(std::move(s));
  }
  return setups;
}

RunResult Engine::run() {
  OF_CHECK_MSG(!ran_, "Engine::run may only be called once per Engine");
  ran_ = true;
  auto setups = build_setups();

  // Execution pool: one process-global worker set shared by every node
  // thread, configured before any node spawns (configure is not
  // hot-swappable under load).
  const auto exec_cfg =
      exec::ExecConfig::from_config(node_or_empty(cfg_, "exec"), strict_);
  exec::Pool::global().configure(exec_cfg.threads, exec_cfg.grain);
  simd::configure(exec_cfg.simd);

  const auto obs_cfg = obs::ObsConfig::from_config(node_or_empty(cfg_, "obs"), strict_);
  // Registry instruments are process-global and always on; per-run values
  // are deltas against this snapshot.
  const auto registry_before = obs::Registry::global().snapshot();
  // Run-wide trace id, seed-derived (splitmix64) so reruns correlate.
  std::uint64_t tid =
      static_cast<std::uint64_t>(cfg_.get_or<std::int64_t>("seed", 42)) +
      0x9E3779B97F4A7C15ULL;
  tid = (tid ^ (tid >> 30)) * 0xBF58476D1CE4E5B9ULL;
  tid = (tid ^ (tid >> 27)) * 0x94D049BB133111EBULL;
  tid ^= tid >> 31;
  if (tid == 0) tid = 1;
  if (obs_cfg.enabled) {
    obs::TraceRecorder::global().reset(obs_cfg.ring_capacity);
    obs::TraceRecorder::global().set_enabled(true);
    obs::set_run_trace_id(tid);
    if (obs_cfg.telemetry) {
      obs::Fleet::global().reset(tid);
      for (auto& s : setups) {
        s.obs_telemetry = true;
        s.obs_clock_sync_every = obs_cfg.clock_sync_rounds;
        s.obs_wire_version = obs_cfg.telemetry_wire;
      }
    }
  }
  // Tier-two observability: both run with or without span tracing. The
  // profiler samples every thread of the process; the flight recorder
  // captures whatever the trace rings and profiler lanes hold at dump time.
  if (obs_cfg.profile.enabled) obs::Profiler::global().start(obs_cfg.profile);
  if (obs_cfg.flightrec.enabled)
    obs::FlightRecorder::global().arm(obs_cfg.flightrec,
                                      dump_effective_config(cfg_), tid);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<NodeReport> reports(setups.size());
  std::vector<std::exception_ptr> errors(setups.size());
  {
    std::vector<std::thread> threads;
    threads.reserve(setups.size());
    for (std::size_t i = 0; i < setups.size(); ++i) {
      threads.emplace_back([i, &setups, &reports, &errors] {
        // Label this thread's profiler lane before any sample can land.
        char lane_name[16];
        std::snprintf(lane_name, sizeof(lane_name), "node%d", setups[i].node_id);
        obs::Profiler::set_thread_name(lane_name);
        try {
          NodeRuntime runtime(std::move(setups[i]));
          reports[i] = runtime.run();
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  // Every producer thread is joined: tracing can stop and the rings are
  // safe to drain (the joins establish the happens-before the SPSC rings
  // rely on). Disable before the rethrow too, so a failed run does not
  // leave tracing on for the next Engine in this process.
  std::vector<obs::TraceEvent> trace_events;
  if (obs_cfg.enabled) {
    obs::TraceRecorder::global().set_enabled(false);
    trace_events = obs::TraceRecorder::global().drain();
  }
  // Same discipline for tier two: disarm before the rethrow so a failed
  // run leaves no timer or signal hooks behind. Captured samples stay
  // readable (for the collapsed-stack export below and late /profile
  // scrapes) until the next start().
  if (obs_cfg.profile.enabled) obs::Profiler::global().stop();
  if (obs_cfg.flightrec.enabled) obs::FlightRecorder::global().disarm();
  for (const auto& e : errors)
    if (e) std::rethrow_exception(e);

  RunResult result;
  result.total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (!reports[i].rounds.empty()) {
      result.rounds = reports[i].rounds;
      result.root_comm = reports[i].comm_inner;
      result.root_comm += reports[i].comm_outer;
      result.final_model_bytes = reports[i].final_model;
    }
    result.inner_comm += reports[i].comm_inner;
    result.outer_comm += reports[i].comm_outer;
    result.train_seconds += reports[i].train_seconds;
  }
  if (!result.rounds.empty()) {
    double sum = 0.0;
    for (const auto& r : result.rounds) sum += r.seconds;
    result.mean_round_seconds = sum / static_cast<double>(result.rounds.size());
  }
  result.final_accuracy = result.last_accuracy();
  result.algorithm = config::target_basename(node_or_empty(cfg_, "algorithm")
                                                 .get_or<std::string>("_target_", "FedAvg"));
  if (cfg_.has("model")) {
    const auto& m = cfg_.at("model");
    result.model = m.is_map() ? m.get_or<std::string>("name", "mlp_tiny") : m.as_string();
  } else {
    result.model = "mlp_tiny";
  }
  result.dataset = node_or_empty(cfg_, "datamodule").get_or<std::string>("preset", "toy");
  {
    nn::Model ref = nn::zoo::make_model(
        result.model, dataset_.train.dim(), dataset_.train.num_classes(),
        static_cast<std::uint64_t>(cfg_.get_or<std::int64_t>("seed", 42)));
    result.model_scalars = ref.num_scalars();
  }

  // Pool hit rate over this run only: delta of the global counters.
  {
    const auto registry_after = obs::Registry::global().snapshot();
    auto delta = [&](const char* key) -> std::int64_t {
      const auto it_after = registry_after.find(key);
      if (it_after == registry_after.end()) return 0;
      const auto it_before = registry_before.find(key);
      return it_after->second -
             (it_before != registry_before.end() ? it_before->second : 0);
    };
    const std::int64_t hits = delta("pool.hit");
    const std::int64_t misses = delta("pool.miss");
    if (hits + misses > 0)
      result.pool_hit_rate =
          static_cast<double>(hits) / static_cast<double>(hits + misses);
  }

  if (obs_cfg.enabled) {
    fold_phase_seconds(trace_events, result.rounds);
    if (!obs_cfg.trace_path.empty()) {
      // With the telemetry plane on, the coordinator knows each node's clock
      // offset — emit the merged fleet trace on the coordinator timeline.
      if (obs_cfg.telemetry)
        obs::write_file(obs_cfg.trace_path,
                        obs::to_chrome_trace_merged(trace_events,
                                                    obs::Fleet::global().clock_offsets()));
      else
        obs::write_file(obs_cfg.trace_path, obs::to_chrome_trace(trace_events));
      if (obs_cfg.split_trace_per_node)
        obs::write_per_node_traces(obs_cfg.trace_path, trace_events);
    }
    if (!obs_cfg.metrics_path.empty())
      obs::write_file(obs_cfg.metrics_path,
                      obs::to_prometheus_text(obs::Registry::global()));
    if (!obs_cfg.events_csv_path.empty())
      obs::write_file(obs_cfg.events_csv_path, obs::to_event_csv(trace_events));
  }
  if (obs_cfg.profile.enabled && !obs_cfg.profile.path.empty())
    obs::write_file(obs_cfg.profile.path, obs::Profiler::global().collapsed_text());
  return result;
}

}  // namespace of::core
