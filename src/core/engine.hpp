// Engine — the orchestrator (paper §3.3). Instantiated from a (Hydra-style)
// YAML config, it builds the topology, synthesizes and partitions the
// dataset, constructs per-node models/optimizers/algorithms/plugins, wires
// the communicators, spawns one thread per node (the Ray-actor analogue),
// runs the configured number of global rounds and assembles the metrics.
//
// Config schema (all sections optional unless noted; see configs/ for
// ready-made files mirroring the paper's Fig. 2):
//
//   seed: 42
//   topology:
//     _target_: src.omnifed.topology.CentralizedTopology   # Ring…/Hierarchical…
//     num_clients: 8            # ring: num_nodes; hierarchical: groups, group_size
//     inner_comm:
//       _target_: src.omnifed.communicator.TorchDistCommunicator  # or GrpcCommunicator
//       port: 50051             # TCP only
//       link: {latency_us: 50, bandwidth_mbps: 10000, mode: virtual}
//       compression: {_target_: …TopK, k: 1000x}        # paper Fig. 4 placement
//     outer_comm: {…}           # hierarchical only
//   model: resnet18_mini
//   datamodule:
//     preset: cifar10_like
//     partition: dirichlet      # iid | dirichlet | shards
//     alpha: 0.5                # dirichlet concentration / shards per client
//     batch_size: 32
//   algorithm:
//     _target_: src.omnifed.algorithm.FedAvg
//     global_rounds: 10
//     local_epochs: 1
//     lr: 0.05
//     momentum: 0.9
//     weight_decay: 1.0e-4
//     lr_milestones: [100, 150, 200]
//     lr_gamma: 0.1
//   compression: {…}            # alternative top-level placement
//   privacy:
//     _target_: src.omnifed.privacy.DifferentialPrivacy
//     epsilon: 1.0
//     delta: 1.0e-5
#pragma once

#include <string>
#include <vector>

#include "config/compose.hpp"
#include "core/metrics.hpp"
#include "core/node.hpp"

namespace of::core {

class Engine {
 public:
  explicit Engine(config::ConfigNode cfg);
  static Engine from_file(const std::string& path,
                          const std::vector<std::string>& overrides = {});

  // Execute the experiment. May be called once per Engine.
  RunResult run();

  const config::ConfigNode& cfg() const noexcept { return cfg_; }
  const Topology& topology() const noexcept { return topology_; }

 private:
  std::vector<NodeSetup> build_setups();

  config::ConfigNode cfg_;
  Topology topology_;
  bool strict_ = true;  // config: {strict: false} opts out (config_check.hpp)
  // Communicator infrastructure owned for the lifetime of the run.
  std::vector<std::unique_ptr<comm::InProcGroup>> groups_;
  std::vector<std::unique_ptr<comm::AmqpGroup>> amqp_groups_;
  data::TrainTest dataset_;
  bool ran_ = false;
};

}  // namespace of::core
