#include "core/frame_pool.hpp"

namespace of::core {

FramePool::Handle FramePool::acquire() {
  std::unique_ptr<tensor::Bytes> buf;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++acquired_;
    if (!free_bytes_.empty()) {
      buf = std::move(free_bytes_.back());
      free_bytes_.pop_back();
    } else {
      ++created_;
    }
  }
  if (!buf) buf = std::make_unique<tensor::Bytes>();
  buf->clear();  // keep capacity — this is the whole point of the pool
  return Handle(this, std::move(buf));
}

FramePool::FloatHandle FramePool::acquire_floats(std::size_t n) {
  std::unique_ptr<std::vector<float>> buf;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++acquired_;
    if (!free_floats_.empty()) {
      buf = std::move(free_floats_.back());
      free_floats_.pop_back();
    } else {
      ++created_;
    }
  }
  if (!buf) buf = std::make_unique<std::vector<float>>();
  buf->resize(n);
  return FloatHandle(this, std::move(buf));
}

std::size_t FramePool::created() const {
  std::lock_guard<std::mutex> lock(mu_);
  return created_;
}

std::size_t FramePool::acquired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acquired_;
}

void FramePool::put_back(std::unique_ptr<tensor::Bytes> b) {
  std::lock_guard<std::mutex> lock(mu_);
  free_bytes_.push_back(std::move(b));
}

void FramePool::put_back(std::unique_ptr<std::vector<float>> f) {
  std::lock_guard<std::mutex> lock(mu_);
  free_floats_.push_back(std::move(f));
}

}  // namespace of::core
