#include "core/frame_pool.hpp"

#include <cassert>
#include <cstdint>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace of::core {

namespace {

// Process-wide pool telemetry. Handle references are resolved once; each
// acquire afterwards is a single relaxed atomic add.
obs::Counter& pool_hits() {
  static obs::Counter& c = obs::Registry::global().counter("pool.hit");
  return c;
}
obs::Counter& pool_misses() {
  static obs::Counter& c = obs::Registry::global().counter("pool.miss");
  return c;
}
obs::Histogram& pool_frame_bytes() {
  static obs::Histogram& h = obs::Registry::global().histogram("pool.frame_bytes");
  return h;
}

}  // namespace

FramePool::Handle FramePool::acquire() {
  std::unique_ptr<tensor::Bytes> buf;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++acquired_;
    if (!free_bytes_.empty()) {
      buf = std::move(free_bytes_.back());
      free_bytes_.pop_back();
    } else {
      ++created_;
    }
  }
  if (buf) {
    pool_hits().inc();
    obs::instant(obs::Name::PoolHit, -1, 0, buf->capacity());
  } else {
    pool_misses().inc();
    obs::instant(obs::Name::PoolMiss, -1, 0);
    buf = std::make_unique<tensor::Bytes>();
  }
  buf->clear();  // keep capacity — this is the whole point of the pool
  // Frames allocate through AlignedAllocator (common/aligned.hpp): SIMD
  // loops over the frame body rely on a cache-line-aligned base.
  assert(buf->data() == nullptr ||
         reinterpret_cast<std::uintptr_t>(buf->data()) % kFrameAlign == 0);
  return Handle(this, std::move(buf));
}

FramePool::FloatHandle FramePool::acquire_floats(std::size_t n) {
  std::unique_ptr<std::vector<float>> buf;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++acquired_;
    if (!free_floats_.empty()) {
      buf = std::move(free_floats_.back());
      free_floats_.pop_back();
    } else {
      ++created_;
    }
  }
  if (buf) {
    pool_hits().inc();
    obs::instant(obs::Name::PoolHit, -1, 0, buf->capacity() * sizeof(float));
  } else {
    pool_misses().inc();
    obs::instant(obs::Name::PoolMiss, -1, 0);
    buf = std::make_unique<std::vector<float>>();
  }
  buf->resize(n);
  return FloatHandle(this, std::move(buf));
}

std::size_t FramePool::created() const {
  std::lock_guard<std::mutex> lock(mu_);
  return created_;
}

std::size_t FramePool::acquired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acquired_;
}

void FramePool::put_back(std::unique_ptr<tensor::Bytes> b) {
  pool_frame_bytes().observe(b->size());
  std::lock_guard<std::mutex> lock(mu_);
  free_bytes_.push_back(std::move(b));
}

void FramePool::put_back(std::unique_ptr<std::vector<float>> f) {
  std::lock_guard<std::mutex> lock(mu_);
  free_floats_.push_back(std::move(f));
}

}  // namespace of::core
