// Per-node arena of reusable wire-frame buffers.
//
// Every federated round moves `model_size`-sized frames: each client encodes
// one, the aggregator decodes many. Allocating (and faulting in) those
// buffers fresh each round dominated the allocation profile of the round
// loop, so the pool keeps retired buffers — both `Bytes` frames and float
// scratch vectors — on free lists and hands them out through RAII handles.
// After the first round the pipeline runs at steady state: a handle's
// `clear()`-but-keep-capacity reset means re-acquiring costs no allocator
// round trip.
//
// Thread safety: acquire/release are mutex-guarded, so producer threads
// (e.g. async clients) and the aggregator may share one pool. The buffer
// *contents* behind a handle are owned exclusively by the handle holder.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "tensor/serialize.hpp"

namespace of::core {

class FramePool {
 public:
  // RAII lease on a pooled buffer. Move-only; returns the buffer to the pool
  // on destruction. Dereference for the underlying container.
  template <typename Container>
  class Lease {
   public:
    Lease() = default;
    Lease(FramePool* pool, std::unique_ptr<Container> buf)
        : pool_(pool), buf_(std::move(buf)) {}
    Lease(Lease&& other) noexcept = default;
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = other.pool_;
        buf_ = std::move(other.buf_);
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    Container& operator*() const { return *buf_; }
    Container* operator->() const { return buf_.get(); }
    explicit operator bool() const noexcept { return buf_ != nullptr; }

   private:
    void release();
    FramePool* pool_ = nullptr;
    std::unique_ptr<Container> buf_;
  };

  using Handle = Lease<tensor::Bytes>;
  using FloatHandle = Lease<std::vector<float>>;

  FramePool() = default;
  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  // An empty (size 0) byte buffer; capacity from its previous life survives.
  Handle acquire();
  // A float scratch buffer resized to exactly `n` elements (zero-filled only
  // where the resize grows it — callers that accumulate must zero it).
  FloatHandle acquire_floats(std::size_t n);

  // Diagnostics: buffers created because the free list was empty, and leases
  // handed out. A steady-state round keeps `created()` flat.
  std::size_t created() const;
  std::size_t acquired() const;

 private:
  friend class Lease<tensor::Bytes>;
  friend class Lease<std::vector<float>>;
  void put_back(std::unique_ptr<tensor::Bytes> b);
  void put_back(std::unique_ptr<std::vector<float>> f);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<tensor::Bytes>> free_bytes_;
  std::vector<std::unique_ptr<std::vector<float>>> free_floats_;
  std::size_t created_ = 0;
  std::size_t acquired_ = 0;
};

template <typename Container>
void FramePool::Lease<Container>::release() {
  if (pool_ && buf_) pool_->put_back(std::move(buf_));
  pool_ = nullptr;
  buf_.reset();
}

}  // namespace of::core
