#include "core/metrics.hpp"

#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace of::core {

std::string RunResult::summary() const {
  std::ostringstream os;
  os << algorithm << " on " << model << '/' << dataset << ": rounds=" << rounds.size()
     << ", final_acc=" << (final_accuracy >= 0 ? final_accuracy * 100.0f : -1.0f) << '%'
     << ", total=" << total_seconds << "s, mean_round=" << mean_round_seconds << "s"
     << ", up=" << root_comm.bytes_received << "B, down=" << root_comm.bytes_sent << 'B';
  return os.str();
}

std::string RunResult::to_csv() const {
  // Columns are append-only: existing parsers index the original prefix, so
  // new (obs-derived) columns go strictly at the end.
  std::ostringstream os;
  os << "round,seconds,train_loss,accuracy,bytes_up,bytes_down,mean_staleness,"
        "participated,dropped,deadline_hit,reconnects,"
        "train_s,encode_s,send_s,recv_s,decode_s,aggregate_s,broadcast_s,"
        "pool_hit_rate\n";
  for (const auto& r : rounds) {
    os << r.round << ',' << r.seconds << ',' << r.train_loss << ',' << r.accuracy << ','
       << r.bytes_up << ',' << r.bytes_down << ',' << r.mean_staleness << ','
       << r.participated << ',' << r.dropped_ranks.size() << ','
       << (r.deadline_hit ? 1 : 0) << ',' << r.reconnects << ','
       << r.train_s << ',' << r.encode_s << ',' << r.send_s << ',' << r.recv_s << ','
       << r.decode_s << ',' << r.aggregate_s << ',' << r.broadcast_s << ','
       << pool_hit_rate << '\n';
  }
  return os.str();
}

std::string RunResult::to_metrics_csv() const {
  // Only fields that are pure functions of the run's inputs — no wall-clock
  // durations, no transport-dependent counters like reconnects. Two runs of
  // the same config must emit identical strings.
  std::ostringstream os;
  os << "round,train_loss,accuracy,bytes_up,bytes_down,participated,dropped\n";
  for (const auto& r : rounds) {
    os << r.round << ',' << r.train_loss << ',' << r.accuracy << ',' << r.bytes_up << ','
       << r.bytes_down << ',' << r.participated << ',' << r.dropped_ranks.size() << '\n';
  }
  return os.str();
}

void RunResult::write_csv(const std::string& path) const {
  std::ofstream out(path);
  OF_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out << to_csv();
  OF_CHECK_MSG(out.good(), "short write to '" << path << '\'');
}

}  // namespace of::core
