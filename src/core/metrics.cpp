#include "core/metrics.hpp"

#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace of::core {

std::string RunResult::summary() const {
  std::ostringstream os;
  os << algorithm << " on " << model << '/' << dataset << ": rounds=" << rounds.size()
     << ", final_acc=" << (final_accuracy >= 0 ? final_accuracy * 100.0f : -1.0f) << '%'
     << ", total=" << total_seconds << "s, mean_round=" << mean_round_seconds << "s"
     << ", up=" << root_comm.bytes_received << "B, down=" << root_comm.bytes_sent << 'B';
  return os.str();
}

std::string RunResult::to_csv() const {
  std::ostringstream os;
  os << "round,seconds,train_loss,accuracy,bytes_up,bytes_down,mean_staleness,"
        "participated,dropped,deadline_hit,reconnects\n";
  for (const auto& r : rounds) {
    os << r.round << ',' << r.seconds << ',' << r.train_loss << ',' << r.accuracy << ','
       << r.bytes_up << ',' << r.bytes_down << ',' << r.mean_staleness << ','
       << r.participated << ',' << r.dropped_ranks.size() << ','
       << (r.deadline_hit ? 1 : 0) << ',' << r.reconnects << '\n';
  }
  return os.str();
}

void RunResult::write_csv(const std::string& path) const {
  std::ofstream out(path);
  OF_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out << to_csv();
  OF_CHECK_MSG(out.good(), "short write to '" << path << '\'');
}

}  // namespace of::core
