#include "core/metrics.hpp"

#include <fstream>
#include <sstream>
#include <type_traits>

#include "common/check.hpp"

namespace of::core {
namespace {

// CSV surfaces generated from the Reflect<RoundRecord> descriptor (see
// metrics.hpp). `det_only` selects the deterministic-subset columns.
void csv_header(std::ostringstream& os, bool det_only) {
  bool first = true;
  refl::for_each_field<RoundRecord>([&](const auto& f) {
    if (det_only && !f.deterministic) return;
    if (!first) os << ',';
    first = false;
    os << f.export_name();
  });
}

void csv_row(std::ostringstream& os, const RoundRecord& r, bool det_only) {
  bool first = true;
  refl::for_each_field<RoundRecord>([&](const auto& f) {
    if (det_only && !f.deterministic) return;
    if (!first) os << ',';
    first = false;
    const auto& v = r.*(f.member);
    using FT = std::remove_cvref_t<decltype(v)>;
    if constexpr (refl::is_std_vector_v<FT>) {
      os << v.size();
    } else if constexpr (std::is_same_v<FT, bool>) {
      os << (v ? 1 : 0);
    } else {
      os << v;
    }
  });
}

}  // namespace

std::string RunResult::summary() const {
  std::ostringstream os;
  os << algorithm << " on " << model << '/' << dataset << ": rounds=" << rounds.size()
     << ", final_acc=" << (final_accuracy >= 0 ? final_accuracy * 100.0f : -1.0f) << '%'
     << ", total=" << total_seconds << "s, mean_round=" << mean_round_seconds << "s"
     << ", up=" << root_comm.bytes_received << "B, down=" << root_comm.bytes_sent << 'B';
  return os.str();
}

std::string RunResult::to_csv() const {
  // pool_hit_rate is run-level (not a RoundRecord field), so it rides after
  // the generated columns on every row.
  std::ostringstream os;
  csv_header(os, /*det_only=*/false);
  os << ",pool_hit_rate\n";
  for (const auto& r : rounds) {
    csv_row(os, r, /*det_only=*/false);
    os << ',' << pool_hit_rate << '\n';
  }
  return os.str();
}

std::string RunResult::to_metrics_csv() const {
  // Only `.det()` fields — pure functions of the run's inputs, no wall-clock
  // durations, no transport-dependent counters like reconnects. Two runs of
  // the same config must emit identical strings.
  std::ostringstream os;
  csv_header(os, /*det_only=*/true);
  os << '\n';
  for (const auto& r : rounds) {
    csv_row(os, r, /*det_only=*/true);
    os << '\n';
  }
  return os.str();
}

void RunResult::write_csv(const std::string& path) const {
  std::ofstream out(path);
  OF_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out << to_csv();
  OF_CHECK_MSG(out.good(), "short write to '" << path << '\'');
}

}  // namespace of::core
