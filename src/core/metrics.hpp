// Run metrics: per-round records assembled by the root aggregator plus
// whole-run totals. The report() helpers print the table formats the bench
// binaries use to regenerate the paper's tables/figures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "refl/refl.hpp"
#include "tensor/serialize.hpp"

namespace of::core {

struct RoundRecord {
  std::size_t round = 0;
  double seconds = 0.0;      // wall time of the round at the root
  double train_loss = 0.0;   // mean local training loss across trainers
  float accuracy = -1.0f;    // mean client test accuracy; -1 = not evaluated
  std::uint64_t bytes_up = 0;    // bytes received by the root this round
  std::uint64_t bytes_down = 0;  // bytes sent by the root this round
  double mean_staleness = 0.0;   // async scheduling only

  // Fault-tolerant rounds only (see src/fault/): which clients made the
  // deadline, who was cut, and the transport's recovery activity.
  std::size_t participated = 0;    // clients aggregated this round (0 = not tracked)
  std::vector<int> dropped_ranks;  // clients excluded by the round deadline
  bool deadline_hit = false;       // at least one straggler was outwaited
  std::uint64_t reconnects = 0;    // cumulative link rejoins observed by the root

  // Per-phase wall time summed across all nodes' spans for this round
  // (filled from the obs trace when `obs.enabled=true`; 0 otherwise).
  double train_s = 0.0;      // local_train spans
  double encode_s = 0.0;     // update encode spans
  double send_s = 0.0;       // node-level send spans
  double recv_s = 0.0;       // node-level recv spans
  double decode_s = 0.0;     // update decode spans
  double aggregate_s = 0.0;  // aggregation spans
  double broadcast_s = 0.0;  // model broadcast spans
};

struct RunResult {
  std::vector<RoundRecord> rounds;
  float final_accuracy = -1.0f;
  double total_seconds = 0.0;
  double mean_round_seconds = 0.0;
  comm::CommStats root_comm;   // root aggregator's comm totals
  comm::CommStats inner_comm;  // summed intra-group traffic, all nodes
  comm::CommStats outer_comm;  // summed cross-group traffic (hierarchical)
  double train_seconds = 0.0;  // summed local-training time, all trainers
  // FramePool hit rate over this run's acquires (from the obs registry
  // delta); -1 when the run made no pool acquisitions.
  double pool_hit_rate = -1.0;
  std::size_t model_scalars = 0;
  std::string algorithm;
  std::string model;
  std::string dataset;
  // Packed bytes of the final global model (the root aggregator's
  // state.global after the last round) — what determinism checks compare.
  tensor::Bytes final_model_bytes;

  // Last recorded accuracy (skips -1 sentinels).
  float last_accuracy() const noexcept {
    for (auto it = rounds.rbegin(); it != rounds.rend(); ++it)
      if (it->accuracy >= 0.0f) return it->accuracy;
    return -1.0f;
  }

  std::string summary() const;
  // Per-round metrics as CSV (header + one line per round).
  std::string to_csv() const;
  void write_csv(const std::string& path) const;
  // Deterministic columns only (no wall-clock fields): identical runs must
  // produce identical strings — the determinism property test compares them.
  std::string to_metrics_csv() const;
};

}  // namespace of::core

// One descriptor drives both CSV surfaces: to_csv() emits every exported
// field in declaration order (vector fields as their size, bools as 1/0),
// to_metrics_csv() only the `.det()` subset — fields that are pure functions
// of the run's inputs, safe for bitwise determinism comparison. Columns are
// append-only: existing parsers index the original prefix.
template <>
struct of::refl::Reflect<of::core::RoundRecord> {
  OF_REFL_FIELDS(field("round", &of::core::RoundRecord::round, 1).det(),
                 field("seconds", &of::core::RoundRecord::seconds, 2),
                 field("train_loss", &of::core::RoundRecord::train_loss, 3).det(),
                 field("accuracy", &of::core::RoundRecord::accuracy, 4).det(),
                 field("bytes_up", &of::core::RoundRecord::bytes_up, 5).det(),
                 field("bytes_down", &of::core::RoundRecord::bytes_down, 6).det(),
                 field("mean_staleness", &of::core::RoundRecord::mean_staleness, 7),
                 field("participated", &of::core::RoundRecord::participated, 8).det(),
                 field("dropped", &of::core::RoundRecord::dropped_ranks, 9).det(),
                 field("deadline_hit", &of::core::RoundRecord::deadline_hit, 10),
                 field("reconnects", &of::core::RoundRecord::reconnects, 11),
                 field("train_s", &of::core::RoundRecord::train_s, 12),
                 field("encode_s", &of::core::RoundRecord::encode_s, 13),
                 field("send_s", &of::core::RoundRecord::send_s, 14),
                 field("recv_s", &of::core::RoundRecord::recv_s, 15),
                 field("decode_s", &of::core::RoundRecord::decode_s, 16),
                 field("aggregate_s", &of::core::RoundRecord::aggregate_s, 17),
                 field("broadcast_s", &of::core::RoundRecord::broadcast_s, 18))
};
