// Run metrics: per-round records assembled by the root aggregator plus
// whole-run totals. The report() helpers print the table formats the bench
// binaries use to regenerate the paper's tables/figures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "tensor/serialize.hpp"

namespace of::core {

struct RoundRecord {
  std::size_t round = 0;
  double seconds = 0.0;      // wall time of the round at the root
  double train_loss = 0.0;   // mean local training loss across trainers
  float accuracy = -1.0f;    // mean client test accuracy; -1 = not evaluated
  std::uint64_t bytes_up = 0;    // bytes received by the root this round
  std::uint64_t bytes_down = 0;  // bytes sent by the root this round
  double mean_staleness = 0.0;   // async scheduling only

  // Fault-tolerant rounds only (see src/fault/): which clients made the
  // deadline, who was cut, and the transport's recovery activity.
  std::size_t participated = 0;    // clients aggregated this round (0 = not tracked)
  std::vector<int> dropped_ranks;  // clients excluded by the round deadline
  bool deadline_hit = false;       // at least one straggler was outwaited
  std::uint64_t reconnects = 0;    // cumulative link rejoins observed by the root

  // Per-phase wall time summed across all nodes' spans for this round
  // (filled from the obs trace when `obs.enabled=true`; 0 otherwise).
  double train_s = 0.0;      // local_train spans
  double encode_s = 0.0;     // update encode spans
  double send_s = 0.0;       // node-level send spans
  double recv_s = 0.0;       // node-level recv spans
  double decode_s = 0.0;     // update decode spans
  double aggregate_s = 0.0;  // aggregation spans
  double broadcast_s = 0.0;  // model broadcast spans
};

struct RunResult {
  std::vector<RoundRecord> rounds;
  float final_accuracy = -1.0f;
  double total_seconds = 0.0;
  double mean_round_seconds = 0.0;
  comm::CommStats root_comm;   // root aggregator's comm totals
  comm::CommStats inner_comm;  // summed intra-group traffic, all nodes
  comm::CommStats outer_comm;  // summed cross-group traffic (hierarchical)
  double train_seconds = 0.0;  // summed local-training time, all trainers
  // FramePool hit rate over this run's acquires (from the obs registry
  // delta); -1 when the run made no pool acquisitions.
  double pool_hit_rate = -1.0;
  std::size_t model_scalars = 0;
  std::string algorithm;
  std::string model;
  std::string dataset;
  // Packed bytes of the final global model (the root aggregator's
  // state.global after the last round) — what determinism checks compare.
  tensor::Bytes final_model_bytes;

  // Last recorded accuracy (skips -1 sentinels).
  float last_accuracy() const noexcept {
    for (auto it = rounds.rbegin(); it != rounds.rend(); ++it)
      if (it->accuracy >= 0.0f) return it->accuracy;
    return -1.0f;
  }

  std::string summary() const;
  // Per-round metrics as CSV (header + one line per round).
  std::string to_csv() const;
  void write_csv(const std::string& path) const;
  // Deterministic columns only (no wall-clock fields): identical runs must
  // produce identical strings — the determinism property test compares them.
  std::string to_metrics_csv() const;
};

}  // namespace of::core
