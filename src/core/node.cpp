#include "core/node.hpp"

#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>
#include <set>
#include <thread>

#include "comm/star.hpp"
#include "common/check.hpp"
#include "common/nonfinite.hpp"
#include "exec/pool.hpp"
#include "obs/flightrec.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "serve/buffer.hpp"
#include "serve/registry.hpp"
#include "serve/sampler.hpp"

namespace of::core {
namespace {

using obs::Name;
using obs::ScopedSpan;

using Clock = std::chrono::steady_clock;

obs::Histogram& async_staleness_hist() {
  static obs::Histogram& h = obs::Registry::global().histogram("async.staleness");
  return h;
}

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Aggregator side of the telemetry piggyback: strip the tail off an update
// frame (fixed v1 layout or variable-size v2 TLV — parse_tail reports the
// size) and feed it to the fleet registry. Frames without a telemetry tail
// (the aggregator's own empty gather placeholder) pass through as-is.
void strip_telemetry(tensor::Bytes& frame) {
  std::size_t tail = 0;
  const auto t = obs::TelemetrySummary::parse_tail(frame.data(), frame.size(), &tail);
  if (!t) return;
  frame.resize(frame.size() - tail);
  obs::Fleet::global().record(*t);
}

// Detach the thread-local phase sink on every exit path out of run().
struct PhaseSinkGuard {
  ~PhaseSinkGuard() { obs::set_phase_sink(nullptr); }
};

}  // namespace

OwnedComm OwnedComm::make(const CommSpec& spec) {
  OwnedComm out;
  comm::Communicator* base = nullptr;
  switch (spec.backend) {
    case CommSpec::Backend::InProc:
      OF_CHECK_MSG(spec.group != nullptr, "InProc spec without a group");
      base = &spec.group->comm(spec.rank);
      break;
    case CommSpec::Backend::Tcp:
      if (spec.rank == 0)
        out.tcp = comm::TcpCommunicator::make_server(spec.port, spec.world, spec.tcp_ft);
      else
        out.tcp = comm::TcpCommunicator::make_client(spec.host, spec.port, spec.rank,
                                                     spec.world, spec.tcp_ft);
      base = out.tcp.get();
      break;
    case CommSpec::Backend::Amqp:
      OF_CHECK_MSG(spec.amqp_group != nullptr, "Amqp spec without a group");
      base = &spec.amqp_group->comm(spec.rank);
      break;
    case CommSpec::Backend::None:
      OF_CHECK_MSG(false, "cannot build a communicator from an empty spec");
  }
  if (spec.link.has_value()) {
    out.modeled =
        std::make_unique<comm::ModeledLinkCommunicator>(*base, *spec.link, spec.delay_mode);
    out.use = out.modeled.get();
  } else {
    out.use = base;
  }
  return out;
}

NodeRuntime::NodeRuntime(NodeSetup setup) : s_(std::move(setup)), rng_(s_.seed) {
  ctx_.model = &s_.model;
  ctx_.optimizer = s_.optimizer.get();
  ctx_.scheduler = s_.scheduler.get();
  ctx_.loader = s_.loader.get();
  ctx_.client_id = s_.cohort_index;
  ctx_.num_clients = s_.cohort_size;
  ctx_.local_epochs = s_.local_epochs;
  ctx_.rng = &rng_;
  ctx_.params = s_.algorithm_params;
}

NodeReport NodeRuntime::run() {
  OwnedComm inner = OwnedComm::make(s_.inner_spec);
  tcp_inner_ = inner.tcp.get();
  // Telemetry rides the client→aggregator update frames, so it is only
  // active in the modes whose aggregator strips it back off.
  telem_on_ = s_.obs_telemetry && (s_.mode == "centralized" || s_.mode == "async");
  PhaseSinkGuard sink_guard;
  if (telem_on_ && s_.role == NodeRole::Trainer)
    obs::set_phase_sink(phase_digests_.data());
  NodeReport report;
  // Async mode is the serve loop's FedBuff special case (fraction 1,
  // buffer 1); the Engine maps the scheduling group onto s_.serve.
  OF_CHECK_MSG(s_.mode != "async" || (s_.serve.enabled && s_.serve.mode == serve::Mode::FedBuff),
               "node " << s_.node_id << ": async mode without a serve config");
  if (s_.serve.enabled && s_.serve.mode == serve::Mode::FedBuff) {
    report = s_.role == NodeRole::Aggregator ? run_serve_aggregator(*inner.use)
                                             : run_serve_trainer(*inner.use);
  } else if (s_.mode == "ring") {
    report = run_ring_node(*inner.use);
  } else if (s_.fault.enabled && s_.mode == "centralized") {
    report = s_.role == NodeRole::Trainer ? run_fault_trainer(*inner.use)
                                          : run_fault_aggregator(*inner.use);
  } else if (s_.role == NodeRole::Trainer) {
    report = run_trainer(*inner.use);
  } else if (s_.mode == "centralized") {
    report = run_central_aggregator(*inner.use);
  } else if (s_.mode == "hierarchical") {
    OwnedComm outer = OwnedComm::make(s_.outer_spec);
    report = run_hier_leader(*inner.use, *outer.use);
    report.comm_outer += outer.use->stats();
  } else {
    OF_CHECK_MSG(false, "node " << s_.node_id << ": unsupported mode '" << s_.mode << "'");
  }
  report.comm_inner += inner.use->stats();
  report.train_seconds = train_seconds_;
  return report;
}

bool NodeRuntime::selected_this_round(std::size_t round) const {
  if (s_.clients_per_round == 0 ||
      s_.clients_per_round >= static_cast<std::size_t>(s_.cohort_size))
    return true;
  // Same seed + round on every node → identical selection, no coordination.
  tensor::Rng rng(s_.participation_seed ^ (0x9E3779B97F4A7C15ULL * (round + 1)));
  std::vector<int> ids(static_cast<std::size_t>(s_.cohort_size));
  std::iota(ids.begin(), ids.end(), 0);
  for (std::size_t i = 0; i < s_.clients_per_round; ++i) {
    const std::size_t j = i + rng.next_below(ids.size() - i);
    std::swap(ids[i], ids[j]);
    if (ids[i] == s_.cohort_index) return true;
  }
  return false;
}

void NodeRuntime::simulate_slowdown(double train_seconds_elapsed) {
  if (s_.slowdown <= 1.0) return;
  // The simulated extra compute is train time from the fleet's point of
  // view: span it so phase digests (and critical-path attribution) see it.
  ScopedSpan span(Name::LocalTrain, s_.node_id, ctx_.round);
  std::this_thread::sleep_for(
      std::chrono::duration<double>((s_.slowdown - 1.0) * train_seconds_elapsed));
}

void NodeRuntime::maybe_clock_sync(std::size_t round) {
  if (!telem_on_ || tcp_inner_ == nullptr || tcp_inner_->rank() == 0) return;
  const std::size_t every = s_.obs_clock_sync_every;
  if (round != 0 && (every == 0 || round % every != 0)) return;
  // A short burst at the first round, then one refresh sample per sync
  // point; the estimator keeps the minimum-RTT sample, which carries the
  // least queueing distortion.
  const int samples = round == 0 ? 4 : 1;
  for (int i = 0; i < samples; ++i)
    if (const auto sample = tcp_inner_->ping_server()) offset_est_.add(*sample);
}

void NodeRuntime::append_telemetry(tensor::Bytes& frame, comm::Communicator& inner,
                                   std::size_t round) {
  if (!telem_on_) return;
  obs::TelemetrySummary t;
  t.trace_id = obs::run_trace_id();
  t.rank = static_cast<std::uint32_t>(inner.rank());
  t.round = static_cast<std::uint32_t>(round);
  // The innermost open span here is this client's Round span: the exemplar
  // the coordinator attaches to critical-path attribution (v2 wire only).
  t.round_span_id = obs::current_context().span_id;
  if (offset_est_.valid()) {
    t.clock_offset_ns = offset_est_.offset_ns();
    t.rtt_ns = offset_est_.rtt_ns();
  }
  const auto st = inner.stats();
  t.bytes_sent = st.bytes_sent - telem_prev_sent_;
  t.bytes_received = st.bytes_received - telem_prev_recv_;
  telem_prev_sent_ = st.bytes_sent;
  telem_prev_recv_ = st.bytes_received;
  t.pool_hits = pool_.acquired() - pool_.created();
  t.pool_misses = pool_.created();
  t.reconnects = st.reconnects;
  t.frames_dropped = st.frames_dropped;
  t.faults_injected = telem_faults_;
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    t.phases[i] = phase_digests_[i];
    phase_digests_[i] = obs::PhaseDigest{};
  }
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) == 0)
    t.peak_rss_kb = static_cast<std::uint64_t>(ru.ru_maxrss);
  if (s_.obs_wire_version >= 2)
    t.serialize_tlv_to(frame);
  else
    t.serialize_to(frame);
}

void NodeRuntime::train_one_round(const std::vector<tensor::Tensor>& global,
                                  std::size_t round, algorithms::TrainStats& stats_out,
                                  tensor::Bytes& frame_out) {
  auto& algo = *s_.algorithm;
  ctx_.round = round;
  if (round == 0) algo.on_train_start(ctx_);
  algo.apply_global(ctx_, global);
  if (!selected_this_round(round)) {
    stats_out = algorithms::TrainStats{};
    frame_out = encode_skip_update();
    return;
  }
  algo.on_round_start(ctx_);
  const auto t0 = Clock::now();
  algorithms::TrainStats stats;
  {
    ScopedSpan span(Name::LocalTrain, s_.node_id, round);
    stats = algo.local_train(ctx_);
  }
  stats_out = stats;
  const double elapsed = seconds_since(t0);
  train_seconds_ += elapsed;
  simulate_slowdown(elapsed);
  auto payload = algo.client_update(ctx_);
  algo.on_round_end(ctx_);
  if (s_.byzantine) {
    // Fault injection for robust-aggregation experiments.
    for (auto& t : payload) {
      if (s_.byzantine_kind == "noise") {
        for (std::size_t i = 0; i < t.numel(); ++i)
          t[i] += static_cast<float>(rng_.gaussian(0.0, 10.0));
      } else {  // sign_flip (scaled, the classic model-poisoning attack)
        t.scale_(-10.0f);
      }
    }
  }
  const PayloadPlugins plugins{s_.compressor.get(), s_.privacy.get()};
  if (s_.compressor)
    s_.compressor->set_stream(round, static_cast<std::uint64_t>(s_.cohort_index));
  ScopedSpan span(Name::Encode, s_.node_id, round);
  try {
    encode_update_into(payload, s_.weight_scale, plugins, s_.cohort_index,
                       s_.cohort_size, pool_, frame_out, s_.wire_repr);
  } catch (const NonFiniteUpdateError&) {
    // Numeric admission rejected the update (NaN/Inf coordinate). Send a
    // skip frame instead: the aggregator drops this client for the round
    // exactly like a non-participant, rather than letting one poisoned
    // coordinate spread through the aggregate.
    obs::Registry::global().counter("payload.nonfinite_rejected").inc();
    frame_out = encode_skip_update();
  }
  span.set_arg(frame_out.size());
}

tensor::Tensor NodeRuntime::metrics_tensor(const algorithms::TrainStats& stats,
                                           std::size_t round) {
  // [loss_sum, steps, acc_sum, acc_count]
  tensor::Tensor m({4});
  m[0] = static_cast<float>(stats.loss_sum);
  m[1] = static_cast<float>(stats.steps);
  const bool eval_now = (s_.eval_every > 0 && (round + 1) % s_.eval_every == 0) ||
                        round + 1 == s_.global_rounds;
  if (eval_now && s_.test_set != nullptr) {
    nn::Model* em = s_.algorithm->eval_model(ctx_);
    m[2] = algorithms::evaluate_accuracy(*em, *s_.test_set);
    m[3] = 1.0f;
  }
  return m;
}

NodeReport NodeRuntime::run_trainer(comm::Communicator& inner) {
  for (std::size_t round = 0; round < s_.global_rounds; ++round) {
    ScopedSpan round_span(Name::Round, s_.node_id, round);
    // Parent this round under the aggregator span that sent the broadcast
    // we are about to receive — the cross-node edge of the merged trace.
    round_span.link_remote_parent();
    maybe_clock_sync(round);
    tensor::Bytes gbytes;
    {
      ScopedSpan span(Name::Recv, s_.node_id, round);
      inner.broadcast_bytes(gbytes, 0);
      span.set_arg(gbytes.size());
    }
    std::vector<tensor::Tensor> global;
    {
      ScopedSpan span(Name::Decode, s_.node_id, round, gbytes.size());
      global = unpack_tensors(gbytes);
    }
    algorithms::TrainStats stats;
    train_one_round(global, round, stats, frame_buf_);
    append_telemetry(frame_buf_, inner, round);
    {
      ScopedSpan span(Name::Send, s_.node_id, round, frame_buf_.size());
      (void)inner.gather_bytes(frame_buf_, 0);
    }
    (void)inner.gather(metrics_tensor(stats, round), 0);
  }
  return NodeReport{};
}

NodeReport NodeRuntime::run_central_aggregator(comm::Communicator& inner) {
  NodeReport report;
  auto& algo = *s_.algorithm;
  algorithms::ServerState state;
  state.params = s_.algorithm_params;
  state.global = algo.initial_global(s_.model);

  for (std::size_t round = 0; round < s_.global_rounds; ++round) {
    ScopedSpan round_span(Name::Round, s_.node_id, round);
    const auto t0 = Clock::now();
    const auto bytes_sent_before = inner.stats().bytes_sent;
    const auto bytes_recv_before = inner.stats().bytes_received;

    tensor::Bytes gbytes = pack_tensors(state.global);
    {
      ScopedSpan span(Name::Broadcast, s_.node_id, round, gbytes.size());
      inner.broadcast_bytes(gbytes, 0);
    }
    std::vector<tensor::Bytes> frames;
    {
      ScopedSpan span(Name::Recv, s_.node_id, round);
      frames = inner.gather_bytes({}, 0);
    }
    frames.erase(frames.begin());  // drop our own empty placeholder
    if (telem_on_)
      for (auto& f : frames) strip_telemetry(f);
    const auto agg_t0 = Clock::now();
    ScopedSpan agg_span(Name::Aggregate, s_.node_id, round, frames.size());
    const auto mean =
        s_.aggregation_rule == AggregationRule::Mean
            ? mean_updates(frames, s_.compressor.get(), s_.privacy.get(), &pool_)
            : robust_combine(frames, s_.compressor.get(), s_.aggregation_rule,
                             s_.aggregation_trim, &pool_);
    state.round = round;
    state.global = algo.server_update(state, mean);
    agg_span.end();
    const double aggregate_s = seconds_since(agg_t0);

    const auto metrics = inner.gather(tensor::Tensor({4}), 0);
    RoundRecord rec;
    rec.round = round;
    rec.seconds = seconds_since(t0);
    double loss_sum = 0.0, steps = 0.0, acc_sum = 0.0, acc_n = 0.0;
    for (std::size_t p = 1; p < metrics.size(); ++p) {
      loss_sum += metrics[p][0];
      steps += metrics[p][1];
      acc_sum += metrics[p][2];
      acc_n += metrics[p][3];
    }
    rec.train_loss = steps > 0 ? loss_sum / steps : 0.0;
    rec.accuracy = acc_n > 0 ? static_cast<float>(acc_sum / acc_n) : -1.0f;
    rec.bytes_down = inner.stats().bytes_sent - bytes_sent_before;
    rec.bytes_up = inner.stats().bytes_received - bytes_recv_before;
    if (telem_on_) {
      obs::Fleet::RoundHealth h;
      h.round = static_cast<std::uint32_t>(round);
      h.participated = static_cast<std::uint32_t>(frames.size());
      h.expected = static_cast<std::uint32_t>(inner.world_size() - 1);
      h.bytes_up = rec.bytes_up;
      h.bytes_down = rec.bytes_down;
      h.seconds = rec.seconds;
      h.aggregate_seconds = aggregate_s;
      obs::Fleet::global().record_round(h);
    }
    report.rounds.push_back(rec);
  }
  report.final_model = pack_tensors(state.global);
  return report;
}

// --- fault-tolerant centralized rounds (src/fault/) ----------------------------
//
// One deadline governs each round, so the update and its metrics ride in a
// single combined frame: u64 update_len | update_frame | metrics_tensor.
// Otherwise a client could make the update cutoff but miss the metrics one,
// skewing the two participation sets against each other.

NodeReport NodeRuntime::run_fault_trainer(comm::Communicator& inner) {
  fault::FaultInjector injector(s_.fault, inner.rank(), s_.participation_seed);
  const comm::star::PartialGatherOptions opt{s_.fault.min_clients,
                                             s_.fault.round_deadline_seconds,
                                             s_.fault.quorum_timeout_seconds};
  for (std::size_t round = 0; round < s_.global_rounds; ++round) {
    ScopedSpan round_span(Name::Round, s_.node_id, round);
    round_span.link_remote_parent();
    maybe_clock_sync(round);
    tensor::Bytes gbytes;
    {
      ScopedSpan span(Name::Recv, s_.node_id, round);
      inner.broadcast_bytes(gbytes, 0);
      span.set_arg(gbytes.size());
    }
    const auto decision = injector.at_round(static_cast<int>(round));
    if (decision.crash) {  // device powers off mid-run
      if (obs::FlightRecorder::global().armed_for_fault())
        obs::FlightRecorder::global().dump("fault_crash");
      return NodeReport{};
    }
    if (decision.disconnect || decision.extra_delay_seconds > 0.0) ++telem_faults_;
    std::vector<tensor::Tensor> global;
    {
      ScopedSpan span(Name::Decode, s_.node_id, round, gbytes.size());
      global = unpack_tensors(gbytes);
    }
    algorithms::TrainStats stats;
    train_one_round(global, round, stats, frame_buf_);
    const tensor::Bytes& frame = frame_buf_;
    if (decision.extra_delay_seconds > 0.0) {
      // An injected straggler is indistinguishable from slow compute on the
      // wire; span the stall as train time so attribution names it `compute`
      // and the flight recorder captures it as this client's final span.
      ScopedSpan delay_span(Name::LocalTrain, s_.node_id, round);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(decision.extra_delay_seconds));
      delay_span.end();
      if (obs::FlightRecorder::global().armed_for_fault())
        obs::FlightRecorder::global().dump("fault_delay");
    }
    if (decision.disconnect) {
      if (tcp_inner_ != nullptr) {
        // Real link loss: the transport reconnects with backoff and replays
        // the queued frame; whether we make the deadline is up to the race.
        tcp_inner_->inject_disconnect(0);
      } else {
        // Backends without a severable link model the outage as an outage-
        // length stall — just past the deadline, so the round is missed.
        std::this_thread::sleep_for(
            std::chrono::duration<double>(s_.fault.round_deadline_seconds + 0.05));
      }
    }
    tensor::Bytes combined;
    tensor::append_pod<std::uint64_t>(combined, frame.size());
    combined.insert(combined.end(), frame.begin(), frame.end());
    const tensor::Bytes mbytes = tensor::serialize_tensor(metrics_tensor(stats, round));
    combined.insert(combined.end(), mbytes.begin(), mbytes.end());
    append_telemetry(combined, inner, round);
    {
      ScopedSpan span(Name::Send, s_.node_id, round, combined.size());
      (void)comm::star::gather_bytes_partial(inner, combined, opt);
    }
  }
  return NodeReport{};
}

NodeReport NodeRuntime::run_fault_aggregator(comm::Communicator& inner) {
  NodeReport report;
  auto& algo = *s_.algorithm;
  algorithms::ServerState state;
  state.params = s_.algorithm_params;
  state.global = algo.initial_global(s_.model);
  const comm::star::PartialGatherOptions opt{s_.fault.min_clients,
                                             s_.fault.round_deadline_seconds,
                                             s_.fault.quorum_timeout_seconds};

  for (std::size_t round = 0; round < s_.global_rounds; ++round) {
    ScopedSpan round_span(Name::Round, s_.node_id, round);
    const auto t0 = Clock::now();
    const auto bytes_sent_before = inner.stats().bytes_sent;
    const auto bytes_recv_before = inner.stats().bytes_received;

    tensor::Bytes gbytes = pack_tensors(state.global);
    {
      ScopedSpan span(Name::Broadcast, s_.node_id, round, gbytes.size());
      inner.broadcast_bytes(gbytes, 0);
    }
    ScopedSpan recv_span(Name::Recv, s_.node_id, round);
    const auto partial = comm::star::gather_bytes_partial(inner, {}, opt);
    recv_span.end();
    if (partial.deadline_hit) {
      obs::Registry::global().counter("fault.deadline_cuts").inc();
      obs::instant(Name::DeadlineCut, s_.node_id, round, partial.dropped.size());
      if (obs::FlightRecorder::global().armed_for_deadline_cut())
        obs::FlightRecorder::global().dump("deadline_cut");
    }

    const auto agg_t0 = Clock::now();
    ScopedSpan agg_span(Name::Aggregate, s_.node_id, round,
                        partial.participated.size());
    // Per-participant frame parsing is independent — split each combined
    // frame into (update, metrics) by index across the pool, then fold the
    // metric sums serially in participant order so the totals accumulate in
    // the same order for any thread count.
    const std::size_t np = partial.participated.size();
    std::vector<tensor::Bytes> frames(np);
    std::vector<tensor::Tensor> pmetrics(np);
    std::vector<obs::TelemetrySummary> telem(np);
    std::vector<char> telem_ok(np, 0);
    exec::Pool::global().parallel_for(np, 1, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t idx = lo; idx < hi; ++idx) {
        const int p = partial.participated[idx];
        const tensor::Bytes& combined = partial.frames[static_cast<std::size_t>(p)];
        std::size_t off = 0;
        const auto ulen = tensor::read_pod<std::uint64_t>(combined, off);
        std::size_t end = combined.size();
        if (telem_on_) {
          std::size_t tail = 0;
          if (const auto t =
                  obs::TelemetrySummary::parse_tail(combined.data(), end, &tail)) {
            telem[idx] = *t;
            telem_ok[idx] = 1;
            end -= tail;
          }
        }
        OF_CHECK_MSG(off + ulen <= end,
                     "fault-mode frame from rank " << p << " truncated");
        frames[idx].assign(combined.begin() + static_cast<std::ptrdiff_t>(off),
                           combined.begin() + static_cast<std::ptrdiff_t>(off + ulen));
        const tensor::Bytes mbytes(
            combined.begin() + static_cast<std::ptrdiff_t>(off + ulen),
            combined.begin() + static_cast<std::ptrdiff_t>(end));
        pmetrics[idx] = tensor::deserialize_tensor(mbytes);
      }
    });
    for (std::size_t idx = 0; idx < np; ++idx)
      if (telem_ok[idx]) obs::Fleet::global().record(telem[idx]);
    double loss_sum = 0.0, steps = 0.0, acc_sum = 0.0, acc_n = 0.0;
    double weight_sum = 0.0;
    int contributing = 0;
    for (std::size_t idx = 0; idx < np; ++idx) {
      const tensor::Tensor& m = pmetrics[idx];
      loss_sum += m[0];
      steps += m[1];
      acc_sum += m[2];
      acc_n += m[3];
      if (!is_skip_update(frames[idx])) {
        ++contributing;
        const int p = partial.participated[idx];
        const auto ci = static_cast<std::size_t>(p - 1);  // rank p ↔ cohort index p-1
        if (ci < s_.client_weights.size()) weight_sum += s_.client_weights[ci];
      }
    }

    if (contributing > 0) {
      auto mean = s_.aggregation_rule == AggregationRule::Mean
                      ? mean_updates(frames, s_.compressor.get(), s_.privacy.get(), &pool_)
                      : robust_combine(frames, s_.compressor.get(), s_.aggregation_rule,
                                       s_.aggregation_trim, &pool_);
      // Each update was pre-scaled by n_i·N/total; the uniform mean over the
      // k survivors therefore needs k / (N·Σ w_i) to become the exact
      // weighted mean over the surviving cohort (= 1 at full participation).
      if (s_.aggregation_rule == AggregationRule::Mean && !s_.client_weights.empty() &&
          weight_sum > 1e-12) {
        const double corr = static_cast<double>(contributing) /
                            (static_cast<double>(s_.cohort_size) * weight_sum);
        if (std::abs(corr - 1.0) > 1e-9)
          for (auto& t : mean) t.scale_(static_cast<float>(corr));
      }
      state.round = round;
      state.global = algo.server_update(state, mean);
    }  // an empty round (quorum of skips) leaves the global model untouched
    agg_span.end();
    const double aggregate_s = seconds_since(agg_t0);

    RoundRecord rec;
    rec.round = round;
    rec.seconds = seconds_since(t0);
    rec.train_loss = steps > 0 ? loss_sum / steps : 0.0;
    rec.accuracy = acc_n > 0 ? static_cast<float>(acc_sum / acc_n) : -1.0f;
    rec.bytes_down = inner.stats().bytes_sent - bytes_sent_before;
    rec.bytes_up = inner.stats().bytes_received - bytes_recv_before;
    rec.participated = partial.participated.size();
    rec.dropped_ranks = partial.dropped;
    rec.deadline_hit = partial.deadline_hit;
    rec.reconnects = inner.stats().reconnects;
    if (telem_on_) {
      obs::Fleet::RoundHealth h;
      h.round = static_cast<std::uint32_t>(round);
      h.participated = static_cast<std::uint32_t>(partial.participated.size());
      h.expected = static_cast<std::uint32_t>(inner.world_size() - 1);
      h.dropped = partial.dropped;
      h.deadline_hit = partial.deadline_hit;
      h.bytes_up = rec.bytes_up;
      h.bytes_down = rec.bytes_down;
      h.seconds = rec.seconds;
      h.aggregate_seconds = aggregate_s;
      obs::Fleet::global().record_round(h);
    }
    report.rounds.push_back(rec);
  }
  report.final_model = pack_tensors(state.global);
  return report;
}

NodeReport NodeRuntime::run_ring_node(comm::Communicator& inner) {
  NodeReport report;
  auto& algo = *s_.algorithm;
  // Decentralized: the "server" state is replicated on every node and
  // evolves deterministically from identical means.
  algorithms::ServerState state;
  state.params = s_.algorithm_params;
  state.global = algo.initial_global(s_.model);

  for (std::size_t round = 0; round < s_.global_rounds; ++round) {
    ScopedSpan round_span(Name::Round, s_.node_id, round);
    const auto t0 = Clock::now();
    algorithms::TrainStats stats;
    ctx_.round = round;
    if (round == 0) algo.on_train_start(ctx_);
    algo.apply_global(ctx_, state.global);
    algo.on_round_start(ctx_);
    const auto tt = Clock::now();
    {
      ScopedSpan span(Name::LocalTrain, s_.node_id, round);
      stats = algo.local_train(ctx_);
    }
    train_seconds_ += seconds_since(tt);
    auto payload = algo.client_update(ctx_);
    algo.on_round_end(ctx_);

    std::vector<tensor::Tensor> mean;
    if (s_.compressor) {
      // Sparse codecs exchange via all-gather (paper §3.4.2).
      const PayloadPlugins plugins{s_.compressor.get(), nullptr};
      s_.compressor->set_stream(round, static_cast<std::uint64_t>(s_.cohort_index));
      {
        ScopedSpan span(Name::Encode, s_.node_id, round);
        try {
          encode_update_into(payload, s_.weight_scale, plugins, s_.cohort_index,
                             s_.cohort_size, pool_, frame_buf_, s_.wire_repr);
        } catch (const NonFiniteUpdateError&) {
          obs::Registry::global().counter("payload.nonfinite_rejected").inc();
          frame_buf_ = encode_skip_update();
        }
        span.set_arg(frame_buf_.size());
      }
      ScopedSpan agg_span(Name::Aggregate, s_.node_id, round);
      const auto frames = inner.allgather_bytes(frame_buf_);
      mean = mean_updates(frames, s_.compressor.get(), nullptr, &pool_);
    } else {
      // Dense path: bandwidth-optimal ring all-reduce on the flat payload.
      ScopedSpan agg_span(Name::Aggregate, s_.node_id, round);
      std::vector<tensor::Tensor> scaled = payload;
      for (auto& t : scaled) t.scale_(static_cast<float>(s_.weight_scale));
      tensor::Tensor flat = tensor::flatten_all(scaled);
      inner.allreduce(flat, comm::ReduceOp::Mean);
      mean = payload;  // reuse shapes
      for (auto& t : mean) t.zero_();
      tensor::unflatten_into(flat, mean);
    }
    state.round = round;
    state.global = algo.server_update(state, mean);

    // Metrics: summed across the ring; rank 0 records.
    tensor::Tensor m = metrics_tensor(stats, round);
    inner.allreduce(m, comm::ReduceOp::Sum);
    if (inner.rank() == 0) {
      RoundRecord rec;
      rec.round = round;
      rec.seconds = seconds_since(t0);
      rec.train_loss = m[1] > 0 ? m[0] / m[1] : 0.0;
      rec.accuracy = m[3] > 0 ? m[2] / m[3] : -1.0f;
      rec.bytes_down = 0;
      rec.bytes_up = 0;
      report.rounds.push_back(rec);
    }
  }
  report.final_model = pack_tensors(state.global);
  return report;
}

// --- serving tier (src/serve/, DESIGN.md §14) ---------------------------------
//
// The coordinator serves a registered population instead of running
// lockstep rounds: fraction-fit sampling keeps ceil(fraction × alive)
// clients training concurrently, arriving updates fold into a bounded
// staleness buffer (the FedBuff shape; Nguyen et al. 2022) that drains into
// the global model every `buffer_size` accepted updates, and over-stale or
// overflow updates are answered with a retry-after control frame instead of
// silently folded. buffer_size = 1 with fraction = 1 reproduces the classic
// FedAsync rule w ← w + α/(1+s)·Δ — the old `scheduling: {mode: async}`
// group maps onto exactly that configuration. Frames:
//   kServeModel  server → client: u8 kind | body
//     kind 0 Invite: packed global tensors
//     kind 1 Retry:  u8 reason (1 = stale, 2 = full) | f32 retry_after_s
//     kind 2 Stop:   (empty)
//   kServeUpdate client → server: u8 kind | body
//     kind 0 Update: f32 loss_sum | f32 steps | payload frame [| telemetry]
//     kind 1 Join:   (empty)  re-registration after a churn departure
//     kind 2 Leave:  (empty)  voluntary churn departure
//     kind 3 Final:  f32 acc_sum | f32 acc_n
namespace {
constexpr int kServeModel = 105;
constexpr int kServeUpdate = 106;

constexpr std::uint8_t kDownInvite = 0;
constexpr std::uint8_t kDownRetry = 1;
constexpr std::uint8_t kDownStop = 2;
constexpr std::uint8_t kUpUpdate = 0;
constexpr std::uint8_t kUpJoin = 1;
constexpr std::uint8_t kUpLeave = 2;
constexpr std::uint8_t kUpFinal = 3;
constexpr std::uint8_t kRetryStale = 1;
constexpr std::uint8_t kRetryFull = 2;

// Detach the transport lifecycle observer on every exit path — the callback
// captures serve-loop locals that die with the stack frame.
struct LifecycleGuard {
  comm::TcpCommunicator* tcp;
  ~LifecycleGuard() {
    if (tcp) tcp->set_peer_lifecycle(nullptr);
  }
};
}  // namespace

NodeReport NodeRuntime::run_serve_aggregator(comm::Communicator& inner) {
  NodeReport report;
  auto& algo = *s_.algorithm;
  algorithms::ServerState state;
  state.params = s_.algorithm_params;
  state.global = algo.initial_global(s_.model);
  const int clients = inner.world_size() - 1;
  OF_CHECK_MSG(clients >= 1, "the serving tier needs at least one trainer");
  const std::size_t total = s_.serve.total_updates
                                ? s_.serve.total_updates
                                : s_.global_rounds * static_cast<std::size_t>(clients);

  serve::PopulationRegistry registry;
  serve::ClientSampler sampler(s_.participation_seed);
  serve::StalenessBuffer buffer(pool_, s_.compressor.get(), s_.serve.buffer_size,
                                s_.serve.max_staleness, s_.serve.alpha);

  // Server model version = buffer drains so far. Atomic because the
  // transport lifecycle callback below reads it from the event-loop thread.
  std::atomic<std::uint64_t> version{0};

  // Transport liveness feed: a dropped socket marks the client dead the
  // moment the event loop sees it, ahead of any protocol-level timeout; a
  // re-admission marks it alive again. Protocol join/leave frames drive the
  // same registry, so non-TCP backends (InProc/AMQP) churn correctly too.
  LifecycleGuard lifecycle{tcp_inner_};
  if (tcp_inner_)
    tcp_inner_->set_peer_lifecycle([&registry, &version](int rank, bool up) {
      if (up)
        registry.join(rank, version.load(std::memory_order_relaxed));
      else
        registry.leave(rank, version.load(std::memory_order_relaxed));
    });

  // OwnedComm::make blocks until every client connected, so the whole
  // transport world starts registered (idempotent against the feed above).
  for (int c = 1; c <= clients; ++c) registry.join(c, 0);

  std::size_t trace_round = 0;
  std::vector<std::uint64_t> invited_version(static_cast<std::size_t>(clients) + 1, 0);
  std::set<int> in_flight;  // invites outstanding (model sent, no reply yet)
  std::uint64_t resampled = 0;
  std::uint64_t pick_counter = 0;

  auto send_model = [&](int dst) {
    tensor::Bytes frame;
    tensor::append_pod<std::uint8_t>(frame, kDownInvite);
    const tensor::Bytes packed = pack_tensors(state.global);
    frame.insert(frame.end(), packed.begin(), packed.end());
    ScopedSpan span(Name::Send, s_.node_id, trace_round, frame.size());
    inner.send_bytes(dst, kServeModel, frame);
    invited_version[static_cast<std::size_t>(dst)] =
        version.load(std::memory_order_relaxed);
    in_flight.insert(dst);
  };

  std::vector<int> sample = sampler.sample(0, registry.alive(), s_.serve.fraction);

  // Keep the window's concurrency at target: idle sample members first,
  // then deterministic replacement picks for churned-away invitees.
  auto top_up = [&] {
    const auto accepted = static_cast<std::size_t>(buffer.accepted_total());
    if (accepted >= total) return;
    std::size_t target = serve::ClientSampler::target_count(registry.alive_count(),
                                                            s_.serve.fraction);
    // Never keep more clients training than updates still wanted.
    target = std::min(target, total - accepted);
    for (int r : sample) {
      if (in_flight.size() >= target) break;
      if (in_flight.count(r) == 0 && registry.is_alive(r)) send_model(r);
    }
    while (in_flight.size() < target) {
      const std::vector<int> exclude(in_flight.begin(), in_flight.end());
      const int pick = sampler.resample(version.load(std::memory_order_relaxed),
                                        pick_counter++, registry.alive(), exclude);
      if (pick < 0) break;
      send_model(pick);
      ++resampled;
    }
  };

  const auto run_t0 = Clock::now();
  auto group_t0 = Clock::now();
  double loss_sum = 0.0, steps_sum = 0.0;

  auto record_serve_health = [&] {
    if (!telem_on_) return;
    obs::Fleet::ServeHealth h;
    h.version = version.load(std::memory_order_relaxed);
    h.population = registry.population();
    h.alive = static_cast<std::uint32_t>(registry.alive_count());
    h.sampled = static_cast<std::uint32_t>(sample.size());
    h.buffered = static_cast<std::uint32_t>(buffer.size());
    h.buffer_size = static_cast<std::uint32_t>(buffer.capacity());
    h.accepted_total = buffer.accepted_total();
    h.rejected_stale_total = buffer.rejected_stale_total();
    h.rejected_full_total = buffer.rejected_full_total();
    h.resampled_total = resampled;
    h.joins_total = registry.joins_total();
    h.leaves_total = registry.leaves_total();
    h.mean_staleness = buffer.accepted_total() > 0
                           ? static_cast<double>(buffer.staleness_sum()) /
                                 static_cast<double>(buffer.accepted_total())
                           : 0.0;
    h.seconds = seconds_since(run_t0);
    obs::Fleet::global().record_serve(h);
  };

  top_up();
  record_serve_health();

  while (static_cast<std::size_t>(buffer.accepted_total()) < total) {
    ScopedSpan recv_span(Name::Recv, s_.node_id, trace_round);
    auto [src, frame] = inner.recv_bytes_any(kServeUpdate);
    recv_span.set_arg(frame.size());
    recv_span.end();
    if (telem_on_) strip_telemetry(frame);
    std::size_t off = 0;
    const auto kind = tensor::read_pod<std::uint8_t>(frame, off);
    const std::uint64_t v = version.load(std::memory_order_relaxed);
    if (kind == kUpLeave) {
      registry.leave(src, v);
      in_flight.erase(src);
      top_up();
      record_serve_health();
      continue;
    }
    if (kind == kUpJoin) {
      registry.join(src, v);
      top_up();
      record_serve_health();
      continue;
    }
    OF_CHECK_MSG(kind == kUpUpdate, "serve: unexpected up-frame kind "
                                        << static_cast<int>(kind) << " from rank "
                                        << src);
    registry.seen(src, v);
    in_flight.erase(src);
    const auto f_loss = tensor::read_pod<float>(frame, off);
    const auto f_steps = tensor::read_pod<float>(frame, off);
    const auto staleness =
        static_cast<std::size_t>(v - invited_version[static_cast<std::size_t>(src)]);
    obs::instant(Name::AsyncStaleness, s_.node_id, trace_round, staleness);
    async_staleness_hist().observe(staleness);
    const tensor::ConstByteSpan payload(frame.data() + off, frame.size() - off);
    const auto admission = buffer.offer(payload, staleness);
    if (admission == serve::StalenessBuffer::Admission::Accepted) {
      loss_sum += f_loss;
      steps_sum += f_steps;
    } else {
      // Backpressure (admission control): answer with a retry-after control
      // frame instead of silently folding or dropping the client's work.
      tensor::Bytes reply;
      tensor::append_pod<std::uint8_t>(reply, kDownRetry);
      tensor::append_pod<std::uint8_t>(
          reply, admission == serve::StalenessBuffer::Admission::RejectedStale
                     ? kRetryStale
                     : kRetryFull);
      tensor::append_pod<float>(reply, static_cast<float>(s_.serve.retry_seconds));
      inner.send_bytes(src, kServeModel, reply);
    }

    if (buffer.ready()) {
      ScopedSpan span(Name::Aggregate, s_.node_id, trace_round, buffer.size());
      const auto mean = buffer.drain();
      OF_CHECK_MSG(mean.size() == state.global.size(), "serve payload size drift");
      for (std::size_t i = 0; i < mean.size(); ++i)
        state.global[i].add_scaled_(mean[i], 1.0f);
      const std::uint64_t nv = version.fetch_add(1, std::memory_order_relaxed) + 1;
      // New aggregation window: a fresh invitation sample over the current
      // alive set.
      sample = sampler.sample(nv, registry.alive(), s_.serve.fraction);
      pick_counter = 0;
    }

    top_up();

    const auto accepted = static_cast<std::size_t>(buffer.accepted_total());
    // One RoundRecord per `clients` accepted updates — the old async loop's
    // cadence, so metrics CSVs stay comparable across modes.
    if (admission == serve::StalenessBuffer::Admission::Accepted &&
        (accepted % static_cast<std::size_t>(clients) == 0 || accepted == total)) {
      RoundRecord rec;
      rec.round = report.rounds.size();
      rec.seconds = seconds_since(group_t0);
      rec.train_loss = steps_sum > 0 ? loss_sum / steps_sum : 0.0;
      rec.accuracy = -1.0f;
      // Running mean over every accepted update so far, so each virtual
      // round reports staleness; the last record carries the run mean.
      rec.mean_staleness = static_cast<double>(buffer.staleness_sum()) /
                           static_cast<double>(accepted);
      if (telem_on_) {
        obs::Fleet::RoundHealth h;
        h.round = static_cast<std::uint32_t>(rec.round);
        h.participated = static_cast<std::uint32_t>(clients);
        h.expected = static_cast<std::uint32_t>(clients);
        h.seconds = rec.seconds;
        obs::Fleet::global().record_round(h);
      }
      report.rounds.push_back(rec);
      trace_round = report.rounds.size();
      loss_sum = steps_sum = 0.0;
      group_t0 = Clock::now();
    }
    record_serve_health();
  }

  // Stop every transport rank — in-flight stragglers and away churners all
  // see the queued Stop once their current step completes.
  for (int c = 1; c <= clients; ++c) {
    tensor::Bytes stop;
    tensor::append_pod<std::uint8_t>(stop, kDownStop);
    inner.send_bytes(c, kServeModel, stop);
  }

  // Collect each client's final test accuracy, discarding stray frames
  // (late updates, churn re-registrations) that raced the Stop.
  double acc_sum = 0.0, acc_n = 0.0;
  for (int got = 0; got < clients;) {
    auto [src, frame] = inner.recv_bytes_any(kServeUpdate);
    (void)src;
    if (telem_on_) strip_telemetry(frame);
    std::size_t off = 0;
    const auto kind = tensor::read_pod<std::uint8_t>(frame, off);
    if (kind != kUpFinal) continue;
    acc_sum += tensor::read_pod<float>(frame, off);
    acc_n += tensor::read_pod<float>(frame, off);
    ++got;
  }
  if (!report.rounds.empty() && acc_n > 0)
    report.rounds.back().accuracy = static_cast<float>(acc_sum / acc_n);
  record_serve_health();
  report.final_model = pack_tensors(state.global);
  return report;
}

NodeReport NodeRuntime::run_serve_trainer(comm::Communicator& inner) {
  auto& algo = *s_.algorithm;
  // Churn decisions replay deterministically from (run seed, rank):
  // participation_seed is the same run-derived value on every node, salted
  // per client inside ChurnProcess.
  fault::ChurnProcess churn(s_.fault.churn, inner.rank(), s_.participation_seed);
  std::size_t round = 0;
  algorithms::TrainStats last_stats;
  for (;;) {
    maybe_clock_sync(round);
    ScopedSpan recv_span(Name::Recv, s_.node_id, round);
    const tensor::Bytes frame = inner.recv_bytes(0, kServeModel);
    recv_span.set_arg(frame.size());
    recv_span.end();
    std::size_t off = 0;
    const auto kind = tensor::read_pod<std::uint8_t>(frame, off);
    if (kind == kDownStop) break;
    if (kind == kDownRetry) {
      // Our update was rejected (buffer full or over-stale): honour the
      // coordinator's pacing before blocking on the next invite.
      ++off;  // reason byte — coordinator-side telemetry, unused here
      const auto retry_after = tensor::read_pod<float>(frame, off);
      if (retry_after > 0.0f)
        std::this_thread::sleep_for(std::chrono::duration<double>(retry_after));
      continue;
    }
    OF_CHECK_MSG(kind == kDownInvite,
                 "serve: unexpected down-frame kind " << static_cast<int>(kind));
    if (churn.leave_now()) {
      // Churn departure: deregister, stay away, come back as a fresh
      // registration. The invite's model snapshot is discarded — the
      // coordinator resamples a replacement for this window.
      tensor::Bytes msg;
      tensor::append_pod<std::uint8_t>(msg, kUpLeave);
      inner.send_bytes(0, kServeUpdate, msg);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(churn.down_seconds()));
      msg.clear();
      tensor::append_pod<std::uint8_t>(msg, kUpJoin);
      inner.send_bytes(0, kServeUpdate, msg);
      continue;
    }
    const tensor::Bytes packed(frame.begin() + static_cast<std::ptrdiff_t>(off),
                               frame.end());
    ScopedSpan decode_span(Name::Decode, s_.node_id, round, packed.size());
    const auto global = unpack_tensors(packed);
    decode_span.end();

    ctx_.round = round;
    if (round == 0) algo.on_train_start(ctx_);
    algo.apply_global(ctx_, global);
    algo.on_round_start(ctx_);
    const auto t0 = Clock::now();
    {
      ScopedSpan span(Name::LocalTrain, s_.node_id, round);
      last_stats = algo.local_train(ctx_);
    }
    const double elapsed = seconds_since(t0);
    train_seconds_ += elapsed;
    simulate_slowdown(elapsed);
    algo.on_round_end(ctx_);

    // The wire always carries the delta against the snapshot we trained
    // from, whatever the algorithm's own payload convention is (the buffer
    // folds staleness-weighted deltas).
    std::vector<tensor::Tensor> payload;
    {
      std::vector<nn::Parameter*> shared;
      for (auto* p : ctx_.model->parameters())
        if (algo.shares_parameter(*p)) shared.push_back(p);
      OF_CHECK_MSG(shared.size() == global.size(), "serve payload/global mismatch");
      for (std::size_t i = 0; i < shared.size(); ++i) {
        tensor::Tensor d = shared[i]->value;
        d.sub_(global[i]);
        payload.push_back(std::move(d));
      }
    }
    const PayloadPlugins plugins{s_.compressor.get(), nullptr};
    if (s_.compressor)
      s_.compressor->set_stream(round, static_cast<std::uint64_t>(s_.cohort_index));
    {
      ScopedSpan span(Name::Encode, s_.node_id, round);
      try {
        encode_update_into(payload, s_.weight_scale, plugins, s_.cohort_index,
                           s_.cohort_size, pool_, frame_buf_, s_.wire_repr);
      } catch (const NonFiniteUpdateError&) {
        // The buffer's StreamingSum ignores the skip marker, so a rejected
        // update contributes nothing to the folded aggregate.
        obs::Registry::global().counter("payload.nonfinite_rejected").inc();
        frame_buf_ = encode_skip_update();
      }
      span.set_arg(frame_buf_.size());
    }
    // Up-frame: kind | loss_sum | steps | payload [| telemetry tail]. The
    // training metrics ride the header, outside the payload frame, so the
    // buffer can fold the payload without popping a metrics tensor back out.
    tensor::Bytes up;
    tensor::append_pod<std::uint8_t>(up, kUpUpdate);
    tensor::append_pod<float>(up, static_cast<float>(last_stats.loss_sum));
    tensor::append_pod<float>(up, static_cast<float>(last_stats.steps));
    up.insert(up.end(), frame_buf_.begin(), frame_buf_.end());
    append_telemetry(up, inner, round);
    {
      ScopedSpan span(Name::Send, s_.node_id, round, up.size());
      inner.send_bytes(0, kServeUpdate, up);
    }
    ++round;
  }
  // Final evaluation.
  tensor::Bytes fin;
  tensor::append_pod<std::uint8_t>(fin, kUpFinal);
  float acc = 0.0f, n = 0.0f;
  if (s_.test_set) {
    acc = algorithms::evaluate_accuracy(*algo.eval_model(ctx_), *s_.test_set);
    n = 1.0f;
  }
  tensor::append_pod<float>(fin, acc);
  tensor::append_pod<float>(fin, n);
  inner.send_bytes(0, kServeUpdate, fin);
  return NodeReport{};
}

NodeReport NodeRuntime::run_hier_leader(comm::Communicator& inner,
                                        comm::Communicator& outer) {
  NodeReport report;
  auto& algo = *s_.algorithm;
  const bool is_root = outer.rank() == 0;
  algorithms::ServerState state;
  state.params = s_.algorithm_params;
  if (is_root) state.global = algo.initial_global(s_.model);

  // Combiner tier (DESIGN.md §10): stream each arriving group update into a
  // partial-sum frame and forward only `partial_scale × sum` plus its count
  // upward, so aggregation state is O(model × combiners) instead of
  // O(clients × model). Privacy frames only mean anything in aggregate with
  // every masked body present, so those setups keep collect-then-mean.
  const bool streaming = s_.privacy == nullptr;
  StreamingSum group_sum(pool_, s_.compressor.get());
  StreamingSum root_sum(pool_, s_.outer_compressor.get());
  comm::star::PartialGatherOptions group_opt;
  if (s_.hier_deadline_seconds > 0) {
    group_opt.min_clients = std::min(s_.hier_min_clients, inner.world_size() - 1);
    group_opt.deadline_seconds = s_.hier_deadline_seconds;
    group_opt.quorum_timeout_seconds = 60.0;
  } else {
    // No combiner policy configured: wait for the whole group.
    group_opt.min_clients = inner.world_size() - 1;
    group_opt.deadline_seconds = 60.0;
    group_opt.quorum_timeout_seconds = 60.0;
  }
  comm::star::PartialGatherOptions outer_opt;  // combiners are never cut
  outer_opt.min_clients = outer.world_size() - 1;
  outer_opt.deadline_seconds = 60.0;
  outer_opt.quorum_timeout_seconds = 60.0;

  for (std::size_t round = 0; round < s_.global_rounds; ++round) {
    ScopedSpan round_span(Name::Round, s_.node_id, round);
    const auto t0 = Clock::now();
    // Global payload: root → leaders → group members.
    tensor::Bytes gbytes;
    if (is_root) gbytes = pack_tensors(state.global);
    {
      ScopedSpan span(Name::Broadcast, s_.node_id, round);
      outer.broadcast_bytes(gbytes, 0);
      inner.broadcast_bytes(gbytes, 0);
      span.set_arg(gbytes.size());
    }

    const PayloadPlugins outer_plugins{s_.outer_compressor.get(), nullptr};
    if (s_.outer_compressor)
      s_.outer_compressor->set_stream(round, static_cast<std::uint64_t>(outer.rank()));

    if (streaming) {
      // Fold each group update into the partial sum the moment it arrives
      // (trainers send through plain gather_bytes — same tag protocol).
      group_sum.reset();
      comm::star::StreamingGather sg;
      {
        ScopedSpan span(Name::Recv, s_.node_id, round);
        sg = comm::star::gather_bytes_streaming(
            inner, {},
            [&](int /*src*/, tensor::Bytes&& frame) { group_sum.add(frame); },
            group_opt);
      }
      {
        ScopedSpan span(Name::Encode, s_.node_id, round);
        group_sum.encode_partial_into(s_.partial_scale, s_.outer_compressor.get(),
                                      frame_buf_, s_.wire_repr);
        span.set_arg(frame_buf_.size());
      }
      if (s_.obs_telemetry) {
        obs::Fleet::CombinerHealth ch;
        ch.group = s_.group;
        ch.round = static_cast<std::uint32_t>(round);
        ch.participated = static_cast<std::uint32_t>(sg.participated.size());
        ch.expected = static_cast<std::uint32_t>(inner.world_size() - 1);
        ch.dropped = static_cast<std::uint32_t>(sg.dropped.size());
        ch.deadline_hit = sg.deadline_hit;
        ch.agg_peak_bytes = group_sum.peak_bytes();
        ch.seconds = seconds_since(t0);
        obs::Fleet::global().record_combiner(ch);
      }

      // Cross-facility tier: partials stream into the root's sum the same
      // way; the root folds in its own group's partial directly.
      ScopedSpan outer_span(Name::Send, s_.node_id, round, frame_buf_.size());
      if (is_root) root_sum.reset();
      if (is_root) root_sum.add_partial(frame_buf_);
      const auto og = comm::star::gather_bytes_streaming(
          outer, frame_buf_,
          [&](int /*src*/, tensor::Bytes&& frame) { root_sum.add_partial(frame); },
          outer_opt);
      (void)og;
      outer_span.end();
      if (is_root) {
        ScopedSpan span(Name::Aggregate, s_.node_id, round, root_sum.count());
        const auto mean = root_sum.finish_mean();
        state.round = round;
        state.global = algo.server_update(state, mean);
      }
    } else {
      // Collect the group's updates and pre-aggregate them.
      std::vector<tensor::Bytes> frames;
      {
        ScopedSpan span(Name::Recv, s_.node_id, round);
        frames = inner.gather_bytes({}, 0);
      }
      frames.erase(frames.begin());
      ScopedSpan group_agg_span(Name::Aggregate, s_.node_id, round, frames.size());
      const auto group_mean =
          mean_updates(frames, s_.compressor.get(), s_.privacy.get(), &pool_);
      group_agg_span.end();

      // Cross-facility tier: (optionally compressed) leader contribution.
      {
        ScopedSpan span(Name::Encode, s_.node_id, round);
        encode_update_into(group_mean, s_.weight_scale, outer_plugins, outer.rank(),
                           outer.world_size(), pool_, frame_buf_, s_.wire_repr);
        span.set_arg(frame_buf_.size());
      }
      ScopedSpan outer_span(Name::Send, s_.node_id, round, frame_buf_.size());
      auto outer_frames = outer.gather_bytes(frame_buf_, 0);
      outer_span.end();
      if (is_root) {
        ScopedSpan span(Name::Aggregate, s_.node_id, round, outer_frames.size());
        const auto mean =
            mean_updates(outer_frames, s_.outer_compressor.get(), nullptr, &pool_);
        state.round = round;
        state.global = algo.server_update(state, mean);
      }
    }

    // Metrics: group sum → outer gather → root records.
    tensor::Tensor m({4});
    const auto group_metrics = inner.gather(m, 0);
    tensor::Tensor group_sum({4});
    for (std::size_t p = 1; p < group_metrics.size(); ++p) group_sum.add_(group_metrics[p]);
    const auto all_metrics = outer.gather(group_sum, 0);
    if (is_root) {
      tensor::Tensor total({4});
      for (const auto& gm : all_metrics) total.add_(gm);
      RoundRecord rec;
      rec.round = round;
      rec.seconds = seconds_since(t0);
      rec.train_loss = total[1] > 0 ? total[0] / total[1] : 0.0;
      rec.accuracy = total[3] > 0 ? total[2] / total[3] : -1.0f;
      rec.bytes_up = outer.stats().bytes_received;
      rec.bytes_down = outer.stats().bytes_sent;
      report.rounds.push_back(rec);
    }
  }
  if (is_root) report.final_model = pack_tensors(state.global);
  return report;
}

}  // namespace of::core
