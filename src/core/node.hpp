// Node — a federation participant (paper §3.3). The Engine prepares one
// NodeSetup per topology node (model, data shard, algorithm instance,
// communicator spec, plugins); NodeRuntime then executes the round loop for
// the node's role on its own thread, exactly like the paper's Ray actors.
//
// Communicators are constructed *inside* the node thread (a TCP server
// blocks in accept until its clients connect), from a CommSpec.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>

#include "algorithms/algorithm.hpp"
#include "comm/amqp.hpp"
#include "comm/inproc.hpp"
#include "comm/modeled.hpp"
#include "comm/tcp.hpp"
#include "core/metrics.hpp"
#include "core/payload.hpp"
#include "core/topology.hpp"
#include "data/loader.hpp"
#include "fault/fault.hpp"
#include "obs/clocksync.hpp"
#include "obs/telemetry.hpp"
#include "serve/serve.hpp"

namespace of::core {

struct CommSpec {
  enum class Backend { None, InProc, Tcp, Amqp } backend = Backend::None;
  comm::InProcGroup* group = nullptr;      // InProc: shared group owned by the Engine
  comm::AmqpGroup* amqp_group = nullptr;   // Amqp: shared broker-backed group
  int rank = 0;
  int world = 1;
  std::uint16_t port = 0;             // Tcp
  std::string host = "127.0.0.1";     // Tcp clients
  std::optional<comm::LinkModel> link;  // wrap with a modeled WAN/LAN link
  comm::DelayMode delay_mode = comm::DelayMode::Virtual;
  comm::TcpFaultTolerance tcp_ft;       // Tcp: reconnect policy (fault runs)
};

// A communicator built from a spec, with its ownership chain.
struct OwnedComm {
  std::unique_ptr<comm::TcpCommunicator> tcp;
  std::unique_ptr<comm::ModeledLinkCommunicator> modeled;
  comm::Communicator* use = nullptr;  // innermost interface to talk through

  static OwnedComm make(const CommSpec& spec);
};

struct NodeSetup {
  int node_id = 0;
  NodeRole role = NodeRole::Trainer;
  int group = 0;
  std::string mode;  // "centralized" | "ring" | "hierarchical" | "async"
  std::size_t global_rounds = 1;
  std::size_t local_epochs = 1;
  std::size_t eval_every = 1;  // 0 = only after the last round

  // Serving tier (src/serve/): population registry + fraction-fit sampling
  // + bounded staleness buffer. FedBuff mode replaces the lockstep round
  // loops; the old `scheduling: {mode: async}` group maps onto it with
  // fraction = 1 and buffer_size = 1 (exactly FedAsync).
  serve::ServeConfig serve;

  // Simulated compute heterogeneity: this node trains `slowdown`× slower
  // than baseline (sleeps the difference after each local_train).
  double slowdown = 1.0;

  // Partial participation: sample this many trainers per round
  // (0 = everyone). Selection is derived from `participation_seed`,
  // identically on every node — no coordination traffic needed.
  std::size_t clients_per_round = 0;
  std::uint64_t participation_seed = 0;

  // Robust aggregation at the central server (byzantine tolerance).
  AggregationRule aggregation_rule = AggregationRule::Mean;
  double aggregation_trim = 0.1;
  // Fault injection: this trainer sends corrupted updates.
  bool byzantine = false;
  std::string byzantine_kind = "sign_flip";  // sign_flip | noise

  // Fault model (crash/disconnect/delay injections + deadline-based partial
  // aggregation; centralized sync mode only). See src/fault/.
  fault::FaultSpec fault;
  // Aggregator only: per-cohort-index sample weights w_i = n_i / total, used
  // to re-normalize a partial round's mean over the surviving cohort.
  std::vector<double> client_weights;

  nn::Model model;
  std::unique_ptr<nn::Optimizer> optimizer;
  std::unique_ptr<nn::LRScheduler> scheduler;
  std::unique_ptr<data::DataLoader> loader;      // trainers
  const data::InMemoryDataset* test_set = nullptr;
  double weight_scale = 1.0;  // pre-scaling making uniform means weighted
  int cohort_index = 0;       // index within the aggregation cohort
  int cohort_size = 1;

  // Hierarchical combiner tier (leaders only). A leader streams its group's
  // updates into a StreamingSum and forwards `partial_scale × sum` upward —
  // the scale bridges the per-client weight_scale pre-scaling to the root's
  // divide-by-total-count mean, so the tree reproduces the flat weighted
  // mean exactly at full participation. deadline 0 = wait for the whole
  // group; with a deadline, stragglers are cut once `hier_min_clients`
  // reported (privacy setups always fall back to collect-then-mean).
  double partial_scale = 1.0;
  double hier_deadline_seconds = 0.0;
  int hier_min_clients = 0;

  std::unique_ptr<algorithms::Algorithm> algorithm;
  config::ConfigNode algorithm_params;

  CommSpec inner_spec;
  CommSpec outer_spec;  // hierarchical leaders only

  std::unique_ptr<compression::Compressor> compressor;        // client→aggregator link
  std::unique_ptr<compression::Compressor> outer_compressor;  // leader→root link
  std::unique_ptr<privacy::PrivacyMechanism> privacy;

  // Wire repr for plain update frames (`payload: {wire: f16}` halves plain
  // traffic); Engine-set on every node so both link ends agree. Compressed
  // frames carry their codec's own int8/int16 representation.
  WireRepr wire_repr = WireRepr::F32;

  // Distributed telemetry plane (obs/, DESIGN.md §9): trainers piggyback a
  // per-round summary on each update frame (stripped server-side before
  // decode, so training state never sees it) and ping the coordinator clock
  // every `obs_clock_sync_every` rounds. Engine-set from the obs config on
  // every node, so both ends of a link agree on the framing. Active in
  // centralized and async modes.
  bool obs_telemetry = false;
  std::size_t obs_clock_sync_every = 0;
  // Wire format for the piggybacked summary: 2 = TLV (skip-unknown
  // forward compatible), 1 = frozen fixed layout. Readers accept both.
  int obs_wire_version = 2;

  std::uint64_t seed = 1;
};

struct NodeReport {
  std::vector<RoundRecord> rounds;  // filled by the root aggregator only
  comm::CommStats comm_inner;       // intra-group traffic totals
  comm::CommStats comm_outer;       // cross-group traffic (hierarchical leaders)
  double train_seconds = 0.0;       // time spent in local_train
  tensor::Bytes final_model;        // packed global model (aggregator roles only)
};

class NodeRuntime {
 public:
  explicit NodeRuntime(NodeSetup setup);
  NodeReport run();

 private:
  NodeReport run_trainer(comm::Communicator& inner);
  NodeReport run_central_aggregator(comm::Communicator& inner);
  // Fault-tolerant centralized round loops: clients evaluate the configured
  // fault injections each round; the server aggregates a deadline-gated
  // partial cohort and re-weights around the dropped clients.
  NodeReport run_fault_trainer(comm::Communicator& inner);
  NodeReport run_fault_aggregator(comm::Communicator& inner);
  NodeReport run_ring_node(comm::Communicator& inner);
  NodeReport run_hier_leader(comm::Communicator& inner, comm::Communicator& outer);
  // Serving tier (src/serve/, DESIGN.md §14): the coordinator samples a
  // fraction of the registered population each aggregation window, folds
  // staleness-weighted updates into a bounded buffer, and answers over-stale
  // or overflow updates with retry-after. Also runs classic async mode
  // (fraction 1, buffer 1 = FedAsync).
  NodeReport run_serve_aggregator(comm::Communicator& inner);
  NodeReport run_serve_trainer(comm::Communicator& inner);

  // Shared trainer-side round body; encodes the update into `frame_out`
  // (a reused buffer, so steady-state rounds do not allocate).
  void train_one_round(const std::vector<tensor::Tensor>& global, std::size_t round,
                       algorithms::TrainStats& stats_out, tensor::Bytes& frame_out);
  tensor::Tensor metrics_tensor(const algorithms::TrainStats& stats, std::size_t round);
  // Deterministic partial-participation schedule (same on every node).
  bool selected_this_round(std::size_t round) const;
  // Inject the configured compute slowdown for `train_seconds` of real work.
  void simulate_slowdown(double train_seconds_elapsed);
  // Telemetry plane (telem_on_ only): ping the coordinator clock if this
  // round is a sync point, and append this round's summary to an outgoing
  // update frame (resets the running phase digests).
  void maybe_clock_sync(std::size_t round);
  void append_telemetry(tensor::Bytes& frame, comm::Communicator& inner,
                        std::size_t round);

  NodeSetup s_;
  algorithms::TrainContext ctx_;
  tensor::Rng rng_;
  // Per-node buffer arena: encode scratch, flat accumulators and decode
  // buffers all recycle through here, so round loops run allocation-free
  // at steady state (DESIGN.md § Update pipeline & memory model).
  FramePool pool_;
  tensor::Bytes frame_buf_;  // this node's outgoing update frame, reused
  double train_seconds_ = 0.0;
  // Raw TCP transport under the inner communicator, when that is the
  // backend — the target of transport-level fault injections.
  comm::TcpCommunicator* tcp_inner_ = nullptr;

  // Telemetry plane state (see NodeSetup::obs_telemetry). Digests are fed
  // by ScopedSpan through the thread-local phase sink; byte counters hold
  // the previous round's comm totals so each summary carries round deltas.
  bool telem_on_ = false;
  std::array<obs::PhaseDigest, obs::kPhaseCount> phase_digests_{};
  obs::OffsetEstimator offset_est_;
  std::uint64_t telem_prev_sent_ = 0;
  std::uint64_t telem_prev_recv_ = 0;
  std::uint64_t telem_faults_ = 0;
};

}  // namespace of::core
