#include "core/payload.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "exec/pool.hpp"
#include "refl/tlv.hpp"
#include "tensor/serialize.hpp"

namespace of::core {
namespace {

using tensor::ConstFloatSpan;
using tensor::FloatSpan;

// Aggregations below this element count stay serial — the pool round-trip
// costs more than the arithmetic. Sharding over coordinates preserves the
// per-element accumulation order, so serial and parallel results are
// bitwise identical and the gate may consult the thread count.
constexpr std::size_t kAggParallelCutoff = 1 << 14;

bool agg_parallel(std::size_t total) {
  return total >= kAggParallelCutoff && exec::Pool::global().threads() > 1;
}

enum : std::uint8_t { kPlain = 0, kCompressed = 1, kPrivacy = 2, kSkip = 3 };

// Magic opening a v2 TLV partial header ("OFP2" little-endian).
constexpr std::uint32_t kPartialMagic = 0x3250464Fu;

// Mirror of the comm layer's 1 GiB frame cap: no manifest may describe an
// update larger than a maximal frame could carry, no matter what its dims
// claim. Keeps a tiny hostile frame from provoking a huge allocation.
constexpr std::size_t kMaxUpdateElems = (std::size_t{1} << 30) / sizeof(float);

void write_manifest(Bytes& out, const std::vector<Tensor>& payload) {
  tensor::append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(payload.size()));
  for (const auto& t : payload) {
    tensor::append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(t.ndim()));
    for (std::size_t d : t.shape()) tensor::append_pod<std::uint64_t>(out, d);
  }
}

std::vector<tensor::Shape> read_manifest(ConstByteSpan in, std::size_t& off) {
  const auto count = tensor::read_pod<std::uint32_t>(in, off);
  // Every manifest entry occupies at least its u32 ndim, so a hostile count
  // (e.g. 2^32-1 in a 10-byte frame) is rejected before the shapes vector
  // allocates.
  OF_CHECK_MSG(count <= (in.size() - off) / sizeof(std::uint32_t),
               "manifest tensor count " << count << " exceeds frame — corrupt frame?");
  std::vector<tensor::Shape> shapes(count);
  std::size_t total = 0;
  for (auto& shape : shapes) {
    const auto ndim = tensor::read_pod<std::uint32_t>(in, off);
    OF_CHECK_MSG(ndim <= 8, "implausible tensor rank in payload manifest");
    shape.resize(ndim);
    std::size_t numel = 1;
    for (auto& d : shape) {
      const auto dim = tensor::read_pod<std::uint64_t>(in, off);
      // Compressed/privacy bodies are smaller than numel·4, so dims cannot
      // be capped against the remaining bytes — cap the running element
      // count against the frame-size ceiling instead.
      OF_CHECK_MSG(dim <= kMaxUpdateElems && (dim == 0 || numel <= kMaxUpdateElems / dim),
                   "manifest dims exceed the 1 GiB frame cap — corrupt frame?");
      numel *= static_cast<std::size_t>(dim);
      d = static_cast<std::size_t>(dim);
    }
    OF_CHECK_MSG(total <= kMaxUpdateElems - numel,
                 "manifest total exceeds the 1 GiB frame cap — corrupt frame?");
    total += numel;
  }
  return shapes;
}

std::size_t manifest_numel(const std::vector<tensor::Shape>& shapes) {
  std::size_t total = 0;
  for (const auto& s : shapes) total += tensor::shape_numel(s);
  return total;
}

// Split a flat float buffer into the manifest's tensor-list structure — the
// single structure-materializing copy at the very end of the decode path.
std::vector<Tensor> split_flat(ConstFloatSpan flat, const std::vector<tensor::Shape>& shapes) {
  std::vector<Tensor> out;
  out.reserve(shapes.size());
  std::size_t off = 0;
  for (const auto& shape : shapes) {
    const std::size_t n = tensor::shape_numel(shape);
    OF_CHECK_MSG(off + n <= flat.size(), "flat payload shorter than manifest");
    Tensor t(shape);
    std::copy_n(flat.data() + off, n, t.data());
    off += n;
    out.push_back(std::move(t));
  }
  OF_CHECK_MSG(off == flat.size(), "flat payload longer than manifest");
  return out;
}

// Same split, straight from the (unaligned) byte body of a plain frame.
std::vector<Tensor> split_flat_bytes(ConstByteSpan body,
                                     const std::vector<tensor::Shape>& shapes) {
  std::vector<Tensor> out;
  out.reserve(shapes.size());
  std::size_t off = 0;
  for (const auto& shape : shapes) {
    const std::size_t n = tensor::shape_numel(shape);
    OF_CHECK_MSG(off + n * sizeof(float) <= body.size(), "flat payload shorter than manifest");
    Tensor t(shape);
    std::memcpy(t.data(), body.data() + off, n * sizeof(float));
    off += n * sizeof(float);
    out.push_back(std::move(t));
  }
  OF_CHECK_MSG(off == body.size(), "flat payload longer than manifest");
  return out;
}

// Scale-while-flatten into a contiguous scratch span (plugin paths need the
// flat update in one piece). The scale stays double until the final store.
void flatten_scaled(const std::vector<Tensor>& payload, double weight_scale, FloatSpan dst) {
  std::size_t pos = 0;
  for (const auto& t : payload) {
    const float* src = t.data();
    for (std::size_t i = 0; i < t.numel(); ++i)
      dst[pos++] = static_cast<float>(static_cast<double>(src[i]) * weight_scale);
  }
  OF_CHECK_MSG(pos == dst.size(), "flatten size mismatch");
}

// Decode the mode-specific body of a plain/compressed frame into `out`
// (size `total`), reading through the view at its nonzero offset.
void decode_body_into(ConstByteSpan frame, std::size_t off, std::uint8_t mode,
                      std::size_t total, compression::Compressor* decompressor,
                      FloatSpan out) {
  if (mode == kPlain) {
    OF_CHECK_MSG(frame.size() - off == total * sizeof(float),
                 "trailing bytes in plain payload");
    tensor::read_span(frame, off, out.data(), total);
    return;
  }
  if (mode == kCompressed) {
    OF_CHECK_MSG(decompressor != nullptr, "compressed payload but no codec configured");
    const auto original_numel =
        static_cast<std::size_t>(tensor::read_pod<std::uint64_t>(frame, off));
    const auto len = tensor::read_pod<std::uint64_t>(frame, off);
    OF_CHECK_MSG(off + len == frame.size(), "compressed payload length mismatch");
    OF_CHECK_MSG(original_numel == total, "compressed payload numel mismatch");
    const compression::CompressedView view(frame.subspan(off), original_numel);
    decompressor->decompress(view, out);
    return;
  }
  OF_CHECK_MSG(false, "decode_update cannot decode privacy frames individually");
}

// write_manifest for a shape list (StreamingSum has no tensors, only shapes).
void write_manifest_shapes(Bytes& out, const std::vector<tensor::Shape>& shapes) {
  tensor::append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(shapes.size()));
  for (const auto& s : shapes) {
    tensor::append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
    for (std::size_t d : s) tensor::append_pod<std::uint64_t>(out, d);
  }
}

}  // namespace

StreamingSum::StreamingSum(FramePool& pool, compression::Compressor* decompressor)
    : pool_(&pool), decompressor_(decompressor) {}

void StreamingSum::reset() {
  acc_ = FramePool::FloatHandle{};
  shapes_.clear();
  total_ = 0;
  count_ = 0;
  init_ = false;
}

void StreamingSum::ensure_shapes(const std::vector<tensor::Shape>& shapes,
                                 std::size_t total) {
  if (!init_) {
    shapes_ = shapes;
    total_ = total;
    acc_ = pool_->acquire_floats(total_);
    std::fill(acc_->begin(), acc_->end(), 0.0f);
    peak_bytes_ = std::max(peak_bytes_, total_ * sizeof(float));
    init_ = true;
    return;
  }
  OF_CHECK_MSG(shapes.size() == shapes_.size() && total == total_,
               "payload structure mismatch");
}

void StreamingSum::add_update_frame(ConstByteSpan frame, double weight) {
  std::size_t off = 0;
  const auto mode = tensor::read_pod<std::uint8_t>(frame, off);
  OF_CHECK_MSG(mode != kPrivacy,
               "privacy frames cannot stream into a partial sum — use the "
               "collect-then-mean path");
  const auto shapes = read_manifest(frame, off);
  const std::size_t total = manifest_numel(shapes);
  ensure_shapes(shapes, total);
  if (mode == kPlain) {
    OF_CHECK_MSG(frame.size() - off == total * sizeof(float),
                 "trailing bytes in plain payload");
    tensor::add_scaled_from_bytes(frame.subspan(off), weight, FloatSpan(*acc_));
    return;
  }
  FramePool::FloatHandle scratch = pool_->acquire_floats(total);
  decode_body_into(frame, off, mode, total, decompressor_, FloatSpan(*scratch));
  float* a = acc_->data();
  const float* s = scratch->data();
  const float w = static_cast<float>(weight);
  for (std::size_t i = 0; i < total; ++i) a[i] += s[i] * w;
  peak_bytes_ = std::max(peak_bytes_, 2 * total * sizeof(float));
}

void StreamingSum::add(ConstByteSpan frame, double weight) {
  if (is_skip_update(frame)) return;
  add_update_frame(frame, weight);
  ++count_;
}

void StreamingSum::add_partial(ConstByteSpan partial) {
  std::size_t off = 0;
  PartialHeader hdr;
  // v2 partials open with the "OFP2" magic; the v1 form is a bare u64
  // count, whose low word would only collide with the magic at an absurd
  // ~845M-client contribution count.
  if (partial.size() >= 8 &&
      tensor::read_pod<std::uint32_t>(partial, off) == kPartialMagic) {
    const auto hlen = tensor::read_pod<std::uint32_t>(partial, off);
    OF_CHECK_MSG(off + hlen <= partial.size(), "partial header truncated");
    OF_CHECK_MSG(refl::tlv::decode(hdr, partial.data() + off, hlen),
                 "partial header malformed");
    off += hlen;
  } else {
    off = 0;
    hdr.count = tensor::read_pod<std::uint64_t>(partial, off);
  }
  if (hdr.count == 0) return;  // empty combiner: its body is a skip marker
  add_update_frame(partial.subspan(off), 1.0);
  count_ += static_cast<std::size_t>(hdr.count);
}

void StreamingSum::encode_partial_into(double scale,
                                       compression::Compressor* compressor,
                                       Bytes& out) {
  out.clear();
  PartialHeader hdr;
  hdr.count = static_cast<std::uint64_t>(count_);
  refl::tlv::Bytes htlv;
  refl::tlv::encode(hdr, htlv);
  tensor::append_pod<std::uint32_t>(out, kPartialMagic);
  tensor::append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(htlv.size()));
  out.insert(out.end(), htlv.begin(), htlv.end());
  if (count_ == 0) {
    out.push_back(kSkip);
    return;
  }
  if (!compressor) {
    out.push_back(kPlain);
    write_manifest_shapes(out, shapes_);
    tensor::append_scaled_span(out, ConstFloatSpan(*acc_), scale);
    return;
  }
  out.push_back(kCompressed);
  write_manifest_shapes(out, shapes_);
  FramePool::FloatHandle flat = pool_->acquire_floats(total_);
  const float* a = acc_->data();
  for (std::size_t i = 0; i < total_; ++i)
    (*flat)[i] = static_cast<float>(static_cast<double>(a[i]) * scale);
  FramePool::Handle lent = pool_->acquire();
  compression::Compressed c;
  c.payload = std::move(*lent);
  compressor->compress(ConstFloatSpan(*flat), c);
  tensor::append_pod<std::uint64_t>(out, c.original_numel);
  tensor::append_pod<std::uint64_t>(out, c.payload.size());
  tensor::append_span(out, ConstByteSpan(c.payload));
  *lent = std::move(c.payload);
  peak_bytes_ = std::max(peak_bytes_, 2 * total_ * sizeof(float));
}

std::vector<Tensor> StreamingSum::finish_mean() {
  OF_CHECK_MSG(count_ > 0, "no client updates to aggregate (all skipped?)");
  const float inv = 1.0f / static_cast<float>(count_);
  for (float& v : *acc_) v *= inv;
  return split_flat(ConstFloatSpan(*acc_), shapes_);
}

Bytes pack_tensors(const std::vector<Tensor>& ts) { return tensor::serialize_tensors(ts); }

Bytes encode_skip_update() { return Bytes{kSkip}; }

bool is_skip_update(ConstByteSpan frame) {
  return frame.size() == 1 && frame[0] == kSkip;
}

std::vector<Tensor> unpack_tensors(const Bytes& b) { return tensor::deserialize_tensors(b); }

void encode_update_into(const std::vector<Tensor>& payload, double weight_scale,
                        const PayloadPlugins& plugins, int client_id, int num_clients,
                        FramePool& pool, Bytes& out) {
  OF_CHECK_MSG(!(plugins.compressor && plugins.privacy),
               "compression and privacy plugins cannot stack on the same link");
  out.clear();
  if (!plugins.privacy && !plugins.compressor) {
    // Plain: scale-while-flatten straight into the frame — no clone, no
    // intermediate flat tensor, no extra byte buffer.
    out.push_back(kPlain);
    write_manifest(out, payload);
    for (const auto& t : payload)
      tensor::append_scaled_span(out, t.span(), weight_scale);
    return;
  }

  // Plugin paths need the flat update in one contiguous piece: flatten into
  // pooled scratch, hand the plugin a view, append its body to the frame.
  std::size_t total = 0;
  for (const auto& t : payload) total += t.numel();
  FramePool::FloatHandle flat = pool.acquire_floats(total);
  flatten_scaled(payload, weight_scale, FloatSpan(*flat));

  if (plugins.privacy) {
    out.push_back(kPrivacy);
    write_manifest(out, payload);
    FramePool::Handle body = pool.acquire();
    plugins.privacy->protect(ConstFloatSpan(*flat), client_id, num_clients, *body);
    tensor::append_pod<std::uint64_t>(out, body->size());
    tensor::append_span(out, ConstByteSpan(*body));
    return;
  }

  out.push_back(kCompressed);
  write_manifest(out, payload);
  // Lend the codec a pooled buffer as its payload storage so repeated
  // compress calls reuse capacity, then hand it back.
  FramePool::Handle lent = pool.acquire();
  compression::Compressed c;
  c.payload = std::move(*lent);
  plugins.compressor->compress(ConstFloatSpan(*flat), c);
  tensor::append_pod<std::uint64_t>(out, c.original_numel);
  tensor::append_pod<std::uint64_t>(out, c.payload.size());
  tensor::append_span(out, ConstByteSpan(c.payload));
  *lent = std::move(c.payload);
}

Bytes encode_update(const std::vector<Tensor>& payload, double weight_scale,
                    const PayloadPlugins& plugins, int client_id, int num_clients) {
  FramePool pool;
  Bytes out;
  encode_update_into(payload, weight_scale, plugins, client_id, num_clients, pool, out);
  return out;
}

std::vector<Tensor> decode_update(ConstByteSpan frame,
                                  compression::Compressor* decompressor) {
  std::size_t off = 0;
  const auto mode = tensor::read_pod<std::uint8_t>(frame, off);
  const auto shapes = read_manifest(frame, off);
  const std::size_t total = manifest_numel(shapes);
  if (mode == kPlain) {
    OF_CHECK_MSG(frame.size() - off == total * sizeof(float),
                 "trailing bytes in plain payload");
    return split_flat_bytes(frame.subspan(off), shapes);
  }
  std::vector<float> flat(total);
  decode_body_into(frame, off, mode, total, decompressor, FloatSpan(flat));
  return split_flat(ConstFloatSpan(flat), shapes);
}

AggregationRule parse_aggregation_rule(const std::string& name) {
  if (name == "mean") return AggregationRule::Mean;
  if (name == "median") return AggregationRule::Median;
  if (name == "trimmed_mean") return AggregationRule::TrimmedMean;
  OF_CHECK_MSG(false, "unknown aggregation rule '" << name << "'");
}

std::vector<Tensor> robust_combine(const std::vector<Bytes>& raw_frames,
                                   compression::Compressor* decompressor,
                                   AggregationRule rule, double trim, FramePool* pool) {
  if (rule == AggregationRule::Mean)
    return mean_updates(raw_frames, decompressor, nullptr, pool);
  OF_CHECK_MSG(trim >= 0.0 && trim < 0.5, "trim fraction must be in [0, 0.5)");
  FramePool local_pool;
  FramePool& p = pool ? *pool : local_pool;

  // Decode every contribution into a pooled flat buffer; the tensor-list
  // structure is materialized exactly once, after the coordinate-wise pass.
  std::vector<tensor::Shape> shapes;
  std::size_t total = 0;
  std::vector<FramePool::FloatHandle> decoded;
  for (const auto& f : raw_frames) {
    if (is_skip_update(f)) continue;
    std::size_t off = 0;
    const auto mode = tensor::read_pod<std::uint8_t>(f, off);
    const auto frame_shapes = read_manifest(f, off);
    const std::size_t frame_total = manifest_numel(frame_shapes);
    if (decoded.empty()) {
      shapes = frame_shapes;
      total = frame_total;
    } else {
      OF_CHECK_MSG(frame_total == total, "payload structure mismatch");
    }
    FramePool::FloatHandle flat = p.acquire_floats(frame_total);
    decode_body_into(f, off, mode, frame_total, decompressor, FloatSpan(*flat));
    decoded.push_back(std::move(flat));
  }
  OF_CHECK_MSG(!decoded.empty(), "no client updates to aggregate (all skipped?)");

  const std::size_t k = decoded.size();
  const std::size_t cut = static_cast<std::size_t>(trim * static_cast<double>(k));
  FramePool::FloatHandle result = p.acquire_floats(total);
  // Coordinates are independent, so sharding them over the pool computes
  // exactly the serial values; each shard sorts into its own column scratch.
  const auto coords = [&](std::size_t lo, std::size_t hi) {
    std::vector<float> column(k);
    for (std::size_t i = lo; i < hi; ++i) {
      for (std::size_t c = 0; c < k; ++c) column[c] = (*decoded[c])[i];
      std::sort(column.begin(), column.end());
      if (rule == AggregationRule::Median) {
        (*result)[i] =
            (k % 2) ? column[k / 2] : 0.5f * (column[k / 2 - 1] + column[k / 2]);
      } else {  // trimmed mean
        double sum = 0.0;
        for (std::size_t c = cut; c < k - cut; ++c) sum += column[c];
        (*result)[i] = static_cast<float>(sum / static_cast<double>(k - 2 * cut));
      }
    }
  };
  if (agg_parallel(total)) {
    exec::Pool::global().parallel_for(total, 0, coords);
  } else {
    coords(0, total);
  }
  return split_flat(ConstFloatSpan(*result), shapes);
}

std::vector<Tensor> mean_updates(const std::vector<Bytes>& raw_frames,
                                 compression::Compressor* decompressor,
                                 privacy::PrivacyMechanism* privacy, FramePool* pool) {
  FramePool local_pool;
  FramePool& p = pool ? *pool : local_pool;

  // Drop skip markers (partial participation) before aggregating. Views
  // only — the frames stay where they arrived.
  std::vector<ConstByteSpan> frames;
  frames.reserve(raw_frames.size());
  for (const auto& f : raw_frames)
    if (!is_skip_update(f)) frames.push_back(f);
  OF_CHECK_MSG(!frames.empty(), "no client updates to aggregate (all skipped?)");

  // Peek the first frame's mode + manifest.
  std::size_t off0 = 0;
  const auto mode = tensor::read_pod<std::uint8_t>(frames[0], off0);
  const auto shapes = read_manifest(frames[0], off0);
  const std::size_t total = manifest_numel(shapes);
  const float inv_k = 1.0f / static_cast<float>(frames.size());

  if (mode == kPrivacy) {
    OF_CHECK_MSG(privacy != nullptr, "privacy payload but no mechanism configured");
    std::vector<ConstByteSpan> bodies;
    bodies.reserve(frames.size());
    for (const auto& f : frames) {
      std::size_t off = 0;
      const auto m = tensor::read_pod<std::uint8_t>(f, off);
      OF_CHECK_MSG(m == kPrivacy, "mixed payload modes in one aggregation");
      (void)read_manifest(f, off);
      const auto len = tensor::read_pod<std::uint64_t>(f, off);
      OF_CHECK_MSG(off + len == f.size(), "privacy payload length mismatch");
      bodies.push_back(f.subspan(off));
    }
    FramePool::FloatHandle sum = p.acquire_floats(total);
    privacy->aggregate_sum(bodies, FloatSpan(*sum));
    for (float& v : *sum) v *= inv_k;
    return split_flat(ConstFloatSpan(*sum), shapes);
  }

  // Plain / compressed: accumulate every frame's body into one pooled flat
  // accumulator, then split into the tensor-list structure once. Validate
  // every frame's manifest up front so both execution paths below start
  // from the same per-frame body offsets.
  std::vector<std::size_t> body_off(frames.size());
  for (std::size_t fi = 0; fi < frames.size(); ++fi) {
    const ConstByteSpan f = frames[fi];
    std::size_t off = 0;
    const auto m = tensor::read_pod<std::uint8_t>(f, off);
    OF_CHECK_MSG(m == mode, "mixed payload modes in one aggregation");
    const auto frame_shapes = read_manifest(f, off);
    OF_CHECK_MSG(frame_shapes.size() == shapes.size() &&
                     manifest_numel(frame_shapes) == total,
                 "payload structure mismatch");
    if (m == kPlain)
      OF_CHECK_MSG(f.size() - off == total * sizeof(float),
                   "trailing bytes in plain payload");
    body_off[fi] = off;
  }

  FramePool::FloatHandle acc = p.acquire_floats(total);
  std::fill(acc->begin(), acc->end(), 0.0f);

  if (mode == kPlain && agg_parallel(total)) {
    // Shard coordinates across the pool; each shard walks the frames in
    // arrival order, so every element sees the exact serial accumulation
    // order and the mean is bitwise identical to the serial path.
    exec::Pool::global().parallel_for(total, 0, [&](std::size_t lo, std::size_t hi) {
      FloatSpan dst = FloatSpan(*acc).subspan(lo, hi - lo);
      for (std::size_t fi = 0; fi < frames.size(); ++fi)
        tensor::add_scaled_from_bytes(
            frames[fi].subspan(body_off[fi] + lo * sizeof(float),
                               (hi - lo) * sizeof(float)),
            1.0, dst);
    });
  } else if (mode == kCompressed && agg_parallel(total)) {
    // Codecs may keep internal scratch, so decoding stays on this thread
    // (one pooled buffer per frame); only the elementwise accumulation is
    // sharded, again preserving the serial per-element frame order.
    std::vector<FramePool::FloatHandle> decoded;
    decoded.reserve(frames.size());
    for (std::size_t fi = 0; fi < frames.size(); ++fi) {
      FramePool::FloatHandle flat = p.acquire_floats(total);
      decode_body_into(frames[fi], body_off[fi], mode, total, decompressor,
                       FloatSpan(*flat));
      decoded.push_back(std::move(flat));
    }
    float* a = acc->data();
    exec::Pool::global().parallel_for(total, 0, [&](std::size_t lo, std::size_t hi) {
      for (const auto& d : decoded) {
        const float* s = d->data();
        for (std::size_t i = lo; i < hi; ++i) a[i] += s[i];
      }
    });
  } else {
    FramePool::FloatHandle scratch;  // compressed path only
    if (mode == kCompressed) scratch = p.acquire_floats(total);
    for (std::size_t fi = 0; fi < frames.size(); ++fi) {
      const ConstByteSpan f = frames[fi];
      if (mode == kPlain) {
        tensor::add_scaled_from_bytes(f.subspan(body_off[fi]), 1.0, FloatSpan(*acc));
      } else {
        decode_body_into(f, body_off[fi], mode, total, decompressor,
                         FloatSpan(*scratch));
        float* a = acc->data();
        const float* s = scratch->data();
        for (std::size_t i = 0; i < total; ++i) a[i] += s[i];
      }
    }
  }
  for (float& v : *acc) v *= inv_k;
  return split_flat(ConstFloatSpan(*acc), shapes);
}

}  // namespace of::core
