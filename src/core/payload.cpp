#include "core/payload.hpp"

#include <algorithm>
#include <cstring>
#include <iterator>

#include "common/check.hpp"
#include "common/nonfinite.hpp"
#include "exec/pool.hpp"
#include "refl/config_io.hpp"
#include "refl/tlv.hpp"
#include "simd/simd.hpp"
#include "tensor/serialize.hpp"

namespace of::core {
namespace {

using tensor::ConstFloatSpan;
using tensor::FloatSpan;

// Aggregations below this element count stay serial — the pool round-trip
// costs more than the arithmetic. Sharding over coordinates preserves the
// per-element accumulation order, so serial and parallel results are
// bitwise identical and the gate may consult the thread count.
constexpr std::size_t kAggParallelCutoff = 1 << 14;

bool agg_parallel(std::size_t total) {
  return total >= kAggParallelCutoff && exec::Pool::global().threads() > 1;
}

enum : std::uint8_t {
  kPlain = 0,
  kCompressed = 1,
  kPrivacy = 2,
  kSkip = 3,
  kPlainF16 = 4,  // plain body in the fp16 wire repr (2 bytes/elem)
};

// Plain-family frames carry raw (f32 or f16) coordinate data whose body is
// exactly total × elem bytes — the only modes the coordinate-sharded
// aggregation can slice without decoding.
bool plain_mode(std::uint8_t mode) { return mode == kPlain || mode == kPlainF16; }
std::size_t plain_elem_size(std::uint8_t mode) {
  return mode == kPlainF16 ? sizeof(std::uint16_t) : sizeof(float);
}

// acc += alpha * body[lo..hi) for a plain-family body view.
void accum_plain_bytes(std::uint8_t mode, ConstByteSpan body, double alpha,
                       FloatSpan acc) {
  if (mode == kPlainF16)
    tensor::add_scaled_from_f16_bytes(body, alpha, acc);
  else
    tensor::add_scaled_from_bytes(body, alpha, acc);
}

// Magic opening a v2 TLV partial header ("OFP2" little-endian).
constexpr std::uint32_t kPartialMagic = 0x3250464Fu;

// Mirror of the comm layer's 1 GiB frame cap: no manifest may describe an
// update larger than a maximal frame could carry, no matter what its dims
// claim. Keeps a tiny hostile frame from provoking a huge allocation.
constexpr std::size_t kMaxUpdateElems = (std::size_t{1} << 30) / sizeof(float);

void write_manifest(Bytes& out, const std::vector<Tensor>& payload) {
  tensor::append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(payload.size()));
  for (const auto& t : payload) {
    tensor::append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(t.ndim()));
    for (std::size_t d : t.shape()) tensor::append_pod<std::uint64_t>(out, d);
  }
}

std::vector<tensor::Shape> read_manifest(ConstByteSpan in, std::size_t& off) {
  const auto count = tensor::read_pod<std::uint32_t>(in, off);
  // Every manifest entry occupies at least its u32 ndim, so a hostile count
  // (e.g. 2^32-1 in a 10-byte frame) is rejected before the shapes vector
  // allocates.
  OF_CHECK_MSG(count <= (in.size() - off) / sizeof(std::uint32_t),
               "manifest tensor count " << count << " exceeds frame — corrupt frame?");
  std::vector<tensor::Shape> shapes(count);
  std::size_t total = 0;
  for (auto& shape : shapes) {
    const auto ndim = tensor::read_pod<std::uint32_t>(in, off);
    OF_CHECK_MSG(ndim <= 8, "implausible tensor rank in payload manifest");
    shape.resize(ndim);
    std::size_t numel = 1;
    for (auto& d : shape) {
      const auto dim = tensor::read_pod<std::uint64_t>(in, off);
      // Compressed/privacy bodies are smaller than numel·4, so dims cannot
      // be capped against the remaining bytes — cap the running element
      // count against the frame-size ceiling instead.
      OF_CHECK_MSG(dim <= kMaxUpdateElems && (dim == 0 || numel <= kMaxUpdateElems / dim),
                   "manifest dims exceed the 1 GiB frame cap — corrupt frame?");
      numel *= static_cast<std::size_t>(dim);
      d = static_cast<std::size_t>(dim);
    }
    OF_CHECK_MSG(total <= kMaxUpdateElems - numel,
                 "manifest total exceeds the 1 GiB frame cap — corrupt frame?");
    total += numel;
  }
  return shapes;
}

std::size_t manifest_numel(const std::vector<tensor::Shape>& shapes) {
  std::size_t total = 0;
  for (const auto& s : shapes) total += tensor::shape_numel(s);
  return total;
}

// Split a flat float buffer into the manifest's tensor-list structure — the
// single structure-materializing copy at the very end of the decode path.
std::vector<Tensor> split_flat(ConstFloatSpan flat, const std::vector<tensor::Shape>& shapes) {
  std::vector<Tensor> out;
  out.reserve(shapes.size());
  std::size_t off = 0;
  for (const auto& shape : shapes) {
    const std::size_t n = tensor::shape_numel(shape);
    OF_CHECK_MSG(off + n <= flat.size(), "flat payload shorter than manifest");
    Tensor t(shape);
    std::copy_n(flat.data() + off, n, t.data());
    off += n;
    out.push_back(std::move(t));
  }
  OF_CHECK_MSG(off == flat.size(), "flat payload longer than manifest");
  return out;
}

// Same split, straight from the (unaligned) byte body of a plain frame.
std::vector<Tensor> split_flat_bytes(ConstByteSpan body,
                                     const std::vector<tensor::Shape>& shapes) {
  std::vector<Tensor> out;
  out.reserve(shapes.size());
  std::size_t off = 0;
  for (const auto& shape : shapes) {
    const std::size_t n = tensor::shape_numel(shape);
    OF_CHECK_MSG(off + n * sizeof(float) <= body.size(), "flat payload shorter than manifest");
    Tensor t(shape);
    std::memcpy(t.data(), body.data() + off, n * sizeof(float));
    off += n * sizeof(float);
    out.push_back(std::move(t));
  }
  OF_CHECK_MSG(off == body.size(), "flat payload longer than manifest");
  return out;
}

// Scale-while-flatten into a contiguous scratch span (plugin paths need the
// flat update in one piece). The scale stays double until the final store.
// Returns true iff every source element was finite (the fused admission
// screen); callers reject the update when it comes back false.
bool flatten_scaled(const std::vector<Tensor>& payload, double weight_scale, FloatSpan dst) {
  std::size_t pos = 0;
  bool finite = true;
  for (const auto& t : payload) {
    finite &= simd::scale_store(dst.data() + pos, t.data(), weight_scale, t.numel());
    pos += t.numel();
  }
  OF_CHECK_MSG(pos == dst.size(), "flatten size mismatch");
  return finite;
}

// Locate the first non-finite coordinate (flatten order) and throw the
// structured per-client admission error. Cold path — only runs after a
// fused finite screen already said "reject".
[[noreturn]] void throw_nonfinite(const std::vector<Tensor>& payload, int client_id) {
  std::size_t base = 0;
  for (const auto& t : payload) {
    const std::size_t at = simd::find_nonfinite(t.data(), t.numel());
    if (at < t.numel()) throw NonFiniteUpdateError(base + at, client_id);
    base += t.numel();
  }
  throw NonFiniteUpdateError(base, client_id);  // unreachable in practice
}

// Decode the mode-specific body of a plain/compressed frame into `out`
// (size `total`), reading through the view at its nonzero offset.
void decode_body_into(ConstByteSpan frame, std::size_t off, std::uint8_t mode,
                      std::size_t total, compression::Compressor* decompressor,
                      FloatSpan out) {
  if (mode == kPlain) {
    OF_CHECK_MSG(frame.size() - off == total * sizeof(float),
                 "trailing bytes in plain payload");
    tensor::read_span(frame, off, out.data(), total);
    return;
  }
  if (mode == kPlainF16) {
    OF_CHECK_MSG(frame.size() - off == total * sizeof(std::uint16_t),
                 "trailing bytes in f16 payload");
    // The body sits at an odd frame offset (mode byte + manifest), so the
    // halves are staged through an aligned block before widening — a u16
    // load straight off the frame would be misaligned.
    const std::uint8_t* src = frame.data() + off;
    std::uint16_t block[256];
    for (std::size_t i = 0; i < total;) {
      const std::size_t chunk = std::min<std::size_t>(std::size(block), total - i);
      std::memcpy(block, src + i * sizeof(std::uint16_t), chunk * sizeof(std::uint16_t));
      simd::f16_to_f32(out.data() + i, block, chunk);
      i += chunk;
    }
    return;
  }
  if (mode == kCompressed) {
    OF_CHECK_MSG(decompressor != nullptr, "compressed payload but no codec configured");
    const auto original_numel =
        static_cast<std::size_t>(tensor::read_pod<std::uint64_t>(frame, off));
    const auto len = tensor::read_pod<std::uint64_t>(frame, off);
    OF_CHECK_MSG(off + len == frame.size(), "compressed payload length mismatch");
    OF_CHECK_MSG(original_numel == total, "compressed payload numel mismatch");
    const compression::CompressedView view(frame.subspan(off), original_numel);
    decompressor->decompress(view, out);
    return;
  }
  OF_CHECK_MSG(false, "decode_update cannot decode privacy frames individually");
}

// write_manifest for a shape list (StreamingSum has no tensors, only shapes).
void write_manifest_shapes(Bytes& out, const std::vector<tensor::Shape>& shapes) {
  tensor::append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(shapes.size()));
  for (const auto& s : shapes) {
    tensor::append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
    for (std::size_t d : s) tensor::append_pod<std::uint64_t>(out, d);
  }
}

}  // namespace

StreamingSum::StreamingSum(FramePool& pool, compression::Compressor* decompressor)
    : pool_(&pool), decompressor_(decompressor) {}

void StreamingSum::reset() {
  acc_ = FramePool::FloatHandle{};
  shapes_.clear();
  total_ = 0;
  count_ = 0;
  init_ = false;
}

void StreamingSum::ensure_shapes(const std::vector<tensor::Shape>& shapes,
                                 std::size_t total) {
  if (!init_) {
    shapes_ = shapes;
    total_ = total;
    acc_ = pool_->acquire_floats(total_);
    std::fill(acc_->begin(), acc_->end(), 0.0f);
    peak_bytes_ = std::max(peak_bytes_, total_ * sizeof(float));
    init_ = true;
    return;
  }
  OF_CHECK_MSG(shapes.size() == shapes_.size() && total == total_,
               "payload structure mismatch");
}

void StreamingSum::add_update_frame(ConstByteSpan frame, double weight) {
  std::size_t off = 0;
  const auto mode = tensor::read_pod<std::uint8_t>(frame, off);
  OF_CHECK_MSG(mode != kPrivacy,
               "privacy frames cannot stream into a partial sum — use the "
               "collect-then-mean path");
  const auto shapes = read_manifest(frame, off);
  const std::size_t total = manifest_numel(shapes);
  ensure_shapes(shapes, total);
  if (plain_mode(mode)) {
    OF_CHECK_MSG(frame.size() - off == total * plain_elem_size(mode),
                 "trailing bytes in plain payload");
    accum_plain_bytes(mode, frame.subspan(off), weight, FloatSpan(*acc_));
    return;
  }
  FramePool::FloatHandle scratch = pool_->acquire_floats(total);
  decode_body_into(frame, off, mode, total, decompressor_, FloatSpan(*scratch));
  simd::accum_weighted(acc_->data(), scratch->data(), static_cast<float>(weight), total);
  peak_bytes_ = std::max(peak_bytes_, 2 * total * sizeof(float));
}

void StreamingSum::add(ConstByteSpan frame, double weight) {
  if (is_skip_update(frame)) return;
  add_update_frame(frame, weight);
  ++count_;
}

void StreamingSum::add_partial(ConstByteSpan partial) {
  std::size_t off = 0;
  PartialHeader hdr;
  // v2 partials open with the "OFP2" magic; the v1 form is a bare u64
  // count, whose low word would only collide with the magic at an absurd
  // ~845M-client contribution count.
  if (partial.size() >= 8 &&
      tensor::read_pod<std::uint32_t>(partial, off) == kPartialMagic) {
    const auto hlen = tensor::read_pod<std::uint32_t>(partial, off);
    OF_CHECK_MSG(off + hlen <= partial.size(), "partial header truncated");
    OF_CHECK_MSG(refl::tlv::decode(hdr, partial.data() + off, hlen),
                 "partial header malformed");
    off += hlen;
  } else {
    off = 0;
    hdr.count = tensor::read_pod<std::uint64_t>(partial, off);
  }
  if (hdr.count == 0) return;  // empty combiner: its body is a skip marker
  add_update_frame(partial.subspan(off), 1.0);
  count_ += static_cast<std::size_t>(hdr.count);
}

void StreamingSum::encode_partial_into(double scale,
                                       compression::Compressor* compressor,
                                       Bytes& out, WireRepr repr) {
  out.clear();
  PartialHeader hdr;
  hdr.count = static_cast<std::uint64_t>(count_);
  hdr.repr = compressor ? WireRepr::F32 : repr;
  refl::tlv::Bytes htlv;
  refl::tlv::encode(hdr, htlv);
  tensor::append_pod<std::uint32_t>(out, kPartialMagic);
  tensor::append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(htlv.size()));
  out.insert(out.end(), htlv.begin(), htlv.end());
  if (count_ == 0) {
    out.push_back(kSkip);
    return;
  }
  if (!compressor) {
    // A combiner's sum of admitted (finite) updates can still overflow to
    // Inf; surface it here rather than forwarding a poisoned partial.
    out.push_back(repr == WireRepr::F16 ? kPlainF16 : kPlain);
    write_manifest_shapes(out, shapes_);
    const bool finite =
        repr == WireRepr::F16
            ? tensor::append_scaled_f16_span(out, ConstFloatSpan(*acc_), scale)
            : tensor::append_scaled_span(out, ConstFloatSpan(*acc_), scale);
    if (!finite)
      throw NonFiniteUpdateError(
          simd::find_nonfinite(acc_->data(), total_));
    return;
  }
  out.push_back(kCompressed);
  write_manifest_shapes(out, shapes_);
  FramePool::FloatHandle flat = pool_->acquire_floats(total_);
  if (!simd::scale_store(flat->data(), acc_->data(), scale, total_))
    throw NonFiniteUpdateError(simd::find_nonfinite(acc_->data(), total_));
  FramePool::Handle lent = pool_->acquire();
  compression::Compressed c;
  c.payload = std::move(*lent);
  compressor->compress(ConstFloatSpan(*flat), c);
  tensor::append_pod<std::uint64_t>(out, c.original_numel);
  tensor::append_pod<std::uint64_t>(out, c.payload.size());
  tensor::append_span(out, ConstByteSpan(c.payload));
  *lent = std::move(c.payload);
  peak_bytes_ = std::max(peak_bytes_, 2 * total_ * sizeof(float));
}

std::vector<Tensor> StreamingSum::finish_mean() {
  OF_CHECK_MSG(count_ > 0, "no client updates to aggregate (all skipped?)");
  const float inv = 1.0f / static_cast<float>(count_);
  simd::scale(acc_->data(), inv, total_);
  return split_flat(ConstFloatSpan(*acc_), shapes_);
}

PayloadConfig PayloadConfig::from_config(const config::ConfigNode& node, bool strict) {
  if (!node.is_map()) return PayloadConfig{};
  return refl::from_node<PayloadConfig>(node, "payload", {}, strict);
}

Bytes pack_tensors(const std::vector<Tensor>& ts) { return tensor::serialize_tensors(ts); }

Bytes encode_skip_update() { return Bytes{kSkip}; }

bool is_skip_update(ConstByteSpan frame) {
  return frame.size() == 1 && frame[0] == kSkip;
}

std::vector<Tensor> unpack_tensors(const Bytes& b) { return tensor::deserialize_tensors(b); }

void encode_update_into(const std::vector<Tensor>& payload, double weight_scale,
                        const PayloadPlugins& plugins, int client_id, int num_clients,
                        FramePool& pool, Bytes& out, WireRepr repr) {
  OF_CHECK_MSG(!(plugins.compressor && plugins.privacy),
               "compression and privacy plugins cannot stack on the same link");
  out.clear();
  if (!plugins.privacy && !plugins.compressor) {
    // Plain: scale-while-flatten straight into the frame — no clone, no
    // intermediate flat tensor, no extra byte buffer. The finite screen
    // rides the same store.
    const bool f16 = repr == WireRepr::F16;
    out.push_back(f16 ? kPlainF16 : kPlain);
    write_manifest(out, payload);
    bool finite = true;
    for (const auto& t : payload)
      finite &= f16 ? tensor::append_scaled_f16_span(out, t.span(), weight_scale)
                    : tensor::append_scaled_span(out, t.span(), weight_scale);
    if (!finite) throw_nonfinite(payload, client_id);
    return;
  }

  std::size_t total = 0;
  for (const auto& t : payload) total += t.numel();

  if (plugins.privacy) {
    // Privacy needs the flat update in one contiguous piece: flatten into
    // pooled scratch, hand the mechanism a view, append its body.
    FramePool::FloatHandle flat = pool.acquire_floats(total);
    if (!flatten_scaled(payload, weight_scale, FloatSpan(*flat)))
      throw_nonfinite(payload, client_id);
    out.push_back(kPrivacy);
    write_manifest(out, payload);
    FramePool::Handle body = pool.acquire();
    plugins.privacy->protect(ConstFloatSpan(*flat), client_id, num_clients, *body);
    tensor::append_pod<std::uint64_t>(out, body->size());
    tensor::append_span(out, ConstByteSpan(*body));
    return;
  }

  out.push_back(kCompressed);
  write_manifest(out, payload);
  // Lend the codec a pooled buffer as its payload storage so repeated
  // compress calls reuse capacity, then hand it back.
  FramePool::Handle lent = pool.acquire();
  compression::Compressed c;
  c.payload = std::move(*lent);
  bool fused = false;
  try {
    // Fused quantize-on-the-wire: codecs with a compress_scaled path (QSGD)
    // scale-while-flatten tile by tile — the O(model) intermediate float
    // frame below never materializes.
    fused = plugins.compressor->compress_scaled(payload, weight_scale, c);
  } catch (const NonFiniteUpdateError& e) {
    *lent = std::move(c.payload);  // hand the pooled buffer back
    throw NonFiniteUpdateError(e.coordinate(), client_id);
  }
  if (!fused) {
    FramePool::FloatHandle flat = pool.acquire_floats(total);
    if (!flatten_scaled(payload, weight_scale, FloatSpan(*flat))) {
      *lent = std::move(c.payload);
      throw_nonfinite(payload, client_id);
    }
    plugins.compressor->compress(ConstFloatSpan(*flat), c);
  }
  tensor::append_pod<std::uint64_t>(out, c.original_numel);
  tensor::append_pod<std::uint64_t>(out, c.payload.size());
  tensor::append_span(out, ConstByteSpan(c.payload));
  *lent = std::move(c.payload);
}

Bytes encode_update(const std::vector<Tensor>& payload, double weight_scale,
                    const PayloadPlugins& plugins, int client_id, int num_clients,
                    WireRepr repr) {
  FramePool pool;
  Bytes out;
  encode_update_into(payload, weight_scale, plugins, client_id, num_clients, pool, out,
                     repr);
  return out;
}

std::vector<Tensor> decode_update(ConstByteSpan frame,
                                  compression::Compressor* decompressor) {
  std::size_t off = 0;
  const auto mode = tensor::read_pod<std::uint8_t>(frame, off);
  const auto shapes = read_manifest(frame, off);
  const std::size_t total = manifest_numel(shapes);
  if (mode == kPlain) {
    OF_CHECK_MSG(frame.size() - off == total * sizeof(float),
                 "trailing bytes in plain payload");
    return split_flat_bytes(frame.subspan(off), shapes);
  }
  std::vector<float> flat(total);
  decode_body_into(frame, off, mode, total, decompressor, FloatSpan(flat));
  return split_flat(ConstFloatSpan(flat), shapes);
}

AggregationRule parse_aggregation_rule(const std::string& name) {
  if (name == "mean") return AggregationRule::Mean;
  if (name == "median") return AggregationRule::Median;
  if (name == "trimmed_mean") return AggregationRule::TrimmedMean;
  OF_CHECK_MSG(false, "unknown aggregation rule '" << name << "'");
}

std::vector<Tensor> robust_combine(const std::vector<Bytes>& raw_frames,
                                   compression::Compressor* decompressor,
                                   AggregationRule rule, double trim, FramePool* pool) {
  if (rule == AggregationRule::Mean)
    return mean_updates(raw_frames, decompressor, nullptr, pool);
  OF_CHECK_MSG(trim >= 0.0 && trim < 0.5, "trim fraction must be in [0, 0.5)");
  FramePool local_pool;
  FramePool& p = pool ? *pool : local_pool;

  // Decode every contribution into a pooled flat buffer; the tensor-list
  // structure is materialized exactly once, after the coordinate-wise pass.
  std::vector<tensor::Shape> shapes;
  std::size_t total = 0;
  std::vector<FramePool::FloatHandle> decoded;
  for (const auto& f : raw_frames) {
    if (is_skip_update(f)) continue;
    std::size_t off = 0;
    const auto mode = tensor::read_pod<std::uint8_t>(f, off);
    const auto frame_shapes = read_manifest(f, off);
    const std::size_t frame_total = manifest_numel(frame_shapes);
    if (decoded.empty()) {
      shapes = frame_shapes;
      total = frame_total;
    } else {
      OF_CHECK_MSG(frame_total == total, "payload structure mismatch");
    }
    FramePool::FloatHandle flat = p.acquire_floats(frame_total);
    decode_body_into(f, off, mode, frame_total, decompressor, FloatSpan(*flat));
    decoded.push_back(std::move(flat));
  }
  OF_CHECK_MSG(!decoded.empty(), "no client updates to aggregate (all skipped?)");

  const std::size_t k = decoded.size();
  const std::size_t cut = static_cast<std::size_t>(trim * static_cast<double>(k));
  FramePool::FloatHandle result = p.acquire_floats(total);
  // Coordinates are independent, so sharding them over the pool computes
  // exactly the serial values; each shard sorts into its own column scratch.
  const auto coords = [&](std::size_t lo, std::size_t hi) {
    std::vector<float> column(k);
    for (std::size_t i = lo; i < hi; ++i) {
      for (std::size_t c = 0; c < k; ++c) column[c] = (*decoded[c])[i];
      std::sort(column.begin(), column.end());
      if (rule == AggregationRule::Median) {
        (*result)[i] =
            (k % 2) ? column[k / 2] : 0.5f * (column[k / 2 - 1] + column[k / 2]);
      } else {  // trimmed mean
        double sum = 0.0;
        for (std::size_t c = cut; c < k - cut; ++c) sum += column[c];
        (*result)[i] = static_cast<float>(sum / static_cast<double>(k - 2 * cut));
      }
    }
  };
  if (agg_parallel(total)) {
    exec::Pool::global().parallel_for(total, 0, coords);
  } else {
    coords(0, total);
  }
  return split_flat(ConstFloatSpan(*result), shapes);
}

std::vector<Tensor> mean_updates(const std::vector<Bytes>& raw_frames,
                                 compression::Compressor* decompressor,
                                 privacy::PrivacyMechanism* privacy, FramePool* pool) {
  FramePool local_pool;
  FramePool& p = pool ? *pool : local_pool;

  // Drop skip markers (partial participation) before aggregating. Views
  // only — the frames stay where they arrived.
  std::vector<ConstByteSpan> frames;
  frames.reserve(raw_frames.size());
  for (const auto& f : raw_frames)
    if (!is_skip_update(f)) frames.push_back(f);
  OF_CHECK_MSG(!frames.empty(), "no client updates to aggregate (all skipped?)");

  // Peek the first frame's mode + manifest.
  std::size_t off0 = 0;
  const auto mode = tensor::read_pod<std::uint8_t>(frames[0], off0);
  const auto shapes = read_manifest(frames[0], off0);
  const std::size_t total = manifest_numel(shapes);
  const float inv_k = 1.0f / static_cast<float>(frames.size());

  if (mode == kPrivacy) {
    OF_CHECK_MSG(privacy != nullptr, "privacy payload but no mechanism configured");
    std::vector<ConstByteSpan> bodies;
    bodies.reserve(frames.size());
    for (const auto& f : frames) {
      std::size_t off = 0;
      const auto m = tensor::read_pod<std::uint8_t>(f, off);
      OF_CHECK_MSG(m == kPrivacy, "mixed payload modes in one aggregation");
      (void)read_manifest(f, off);
      const auto len = tensor::read_pod<std::uint64_t>(f, off);
      OF_CHECK_MSG(off + len == f.size(), "privacy payload length mismatch");
      bodies.push_back(f.subspan(off));
    }
    FramePool::FloatHandle sum = p.acquire_floats(total);
    privacy->aggregate_sum(bodies, FloatSpan(*sum));
    simd::scale(sum->data(), inv_k, total);
    return split_flat(ConstFloatSpan(*sum), shapes);
  }

  // Plain / compressed: accumulate every frame's body into one pooled flat
  // accumulator, then split into the tensor-list structure once. Validate
  // every frame's manifest up front so both execution paths below start
  // from the same per-frame body offsets.
  std::vector<std::size_t> body_off(frames.size());
  for (std::size_t fi = 0; fi < frames.size(); ++fi) {
    const ConstByteSpan f = frames[fi];
    std::size_t off = 0;
    const auto m = tensor::read_pod<std::uint8_t>(f, off);
    OF_CHECK_MSG(m == mode, "mixed payload modes in one aggregation");
    const auto frame_shapes = read_manifest(f, off);
    OF_CHECK_MSG(frame_shapes.size() == shapes.size() &&
                     manifest_numel(frame_shapes) == total,
                 "payload structure mismatch");
    if (plain_mode(m))
      OF_CHECK_MSG(f.size() - off == total * plain_elem_size(m),
                   "trailing bytes in plain payload");
    body_off[fi] = off;
  }

  FramePool::FloatHandle acc = p.acquire_floats(total);
  std::fill(acc->begin(), acc->end(), 0.0f);

  const std::size_t elem = plain_elem_size(mode);
  if (plain_mode(mode) && agg_parallel(total)) {
    // Shard coordinates across the pool; each shard walks the frames in
    // arrival order, so every element sees the exact serial accumulation
    // order and the mean is bitwise identical to the serial path.
    exec::Pool::global().parallel_for(total, 0, [&](std::size_t lo, std::size_t hi) {
      FloatSpan dst = FloatSpan(*acc).subspan(lo, hi - lo);
      for (std::size_t fi = 0; fi < frames.size(); ++fi)
        accum_plain_bytes(mode,
                          frames[fi].subspan(body_off[fi] + lo * elem,
                                             (hi - lo) * elem),
                          1.0, dst);
    });
  } else if (mode == kCompressed && agg_parallel(total)) {
    // Codecs may keep internal scratch, so decoding stays on this thread
    // (one pooled buffer per frame); only the elementwise accumulation is
    // sharded, again preserving the serial per-element frame order.
    std::vector<FramePool::FloatHandle> decoded;
    decoded.reserve(frames.size());
    for (std::size_t fi = 0; fi < frames.size(); ++fi) {
      FramePool::FloatHandle flat = p.acquire_floats(total);
      decode_body_into(frames[fi], body_off[fi], mode, total, decompressor,
                       FloatSpan(*flat));
      decoded.push_back(std::move(flat));
    }
    float* a = acc->data();
    exec::Pool::global().parallel_for(total, 0, [&](std::size_t lo, std::size_t hi) {
      for (const auto& d : decoded) simd::add(a + lo, d->data() + lo, hi - lo);
    });
  } else {
    FramePool::FloatHandle scratch;  // non-plain path only
    if (!plain_mode(mode)) scratch = p.acquire_floats(total);
    for (std::size_t fi = 0; fi < frames.size(); ++fi) {
      const ConstByteSpan f = frames[fi];
      if (plain_mode(mode)) {
        accum_plain_bytes(mode, f.subspan(body_off[fi]), 1.0, FloatSpan(*acc));
      } else {
        decode_body_into(f, body_off[fi], mode, total, decompressor,
                         FloatSpan(*scratch));
        simd::add(acc->data(), scratch->data(), total);
      }
    }
  }
  simd::scale(acc->data(), inv_k, total);
  return split_flat(ConstFloatSpan(*acc), shapes);
}

}  // namespace of::core
