#include "core/payload.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "tensor/serialize.hpp"

namespace of::core {
namespace {

enum : std::uint8_t { kPlain = 0, kCompressed = 1, kPrivacy = 2, kSkip = 3 };

void write_manifest(Bytes& out, const std::vector<Tensor>& payload) {
  tensor::append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(payload.size()));
  for (const auto& t : payload) {
    tensor::append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(t.ndim()));
    for (std::size_t d : t.shape()) tensor::append_pod<std::uint64_t>(out, d);
  }
}

std::vector<tensor::Shape> read_manifest(const Bytes& in, std::size_t& off) {
  const auto count = tensor::read_pod<std::uint32_t>(in, off);
  std::vector<tensor::Shape> shapes(count);
  for (auto& shape : shapes) {
    const auto ndim = tensor::read_pod<std::uint32_t>(in, off);
    OF_CHECK_MSG(ndim <= 8, "implausible tensor rank in payload manifest");
    shape.resize(ndim);
    for (auto& d : shape)
      d = static_cast<std::size_t>(tensor::read_pod<std::uint64_t>(in, off));
  }
  return shapes;
}

std::vector<Tensor> split_flat(const Tensor& flat, const std::vector<tensor::Shape>& shapes) {
  std::vector<Tensor> out;
  out.reserve(shapes.size());
  std::size_t off = 0;
  for (const auto& shape : shapes) {
    Tensor t(shape);
    OF_CHECK_MSG(off + t.numel() <= flat.numel(), "flat payload shorter than manifest");
    std::copy_n(flat.data() + off, t.numel(), t.data());
    off += t.numel();
    out.push_back(std::move(t));
  }
  OF_CHECK_MSG(off == flat.numel(), "flat payload longer than manifest");
  return out;
}

}  // namespace

Bytes pack_tensors(const std::vector<Tensor>& ts) { return tensor::serialize_tensors(ts); }

Bytes encode_skip_update() { return Bytes{kSkip}; }

bool is_skip_update(const Bytes& frame) {
  return frame.size() == 1 && frame[0] == kSkip;
}

std::vector<Tensor> unpack_tensors(const Bytes& b) { return tensor::deserialize_tensors(b); }

Bytes encode_update(const std::vector<Tensor>& payload, double weight_scale,
                    const PayloadPlugins& plugins, int client_id, int num_clients) {
  OF_CHECK_MSG(!(plugins.compressor && plugins.privacy),
               "compression and privacy plugins cannot stack on the same link");
  std::vector<Tensor> scaled = payload;
  if (weight_scale != 1.0)
    for (auto& t : scaled) t.scale_(static_cast<float>(weight_scale));

  Bytes out;
  if (plugins.privacy) {
    out.push_back(kPrivacy);
    write_manifest(out, scaled);
    const Tensor flat = tensor::flatten_all(scaled);
    const Bytes body = plugins.privacy->protect(flat, client_id, num_clients);
    tensor::append_pod<std::uint64_t>(out, body.size());
    out.insert(out.end(), body.begin(), body.end());
    return out;
  }
  if (plugins.compressor) {
    out.push_back(kCompressed);
    write_manifest(out, scaled);
    const Tensor flat = tensor::flatten_all(scaled);
    const compression::Compressed c = plugins.compressor->compress(flat);
    tensor::append_pod<std::uint64_t>(out, c.original_numel);
    tensor::append_pod<std::uint64_t>(out, c.payload.size());
    out.insert(out.end(), c.payload.begin(), c.payload.end());
    return out;
  }
  out.push_back(kPlain);
  write_manifest(out, scaled);
  for (const auto& t : scaled) tensor::append_span(out, t.data(), t.numel());
  return out;
}

std::vector<Tensor> decode_update(const Bytes& frame,
                                  compression::Compressor* decompressor) {
  std::size_t off = 0;
  const auto mode = tensor::read_pod<std::uint8_t>(frame, off);
  const auto shapes = read_manifest(frame, off);
  std::size_t total = 0;
  for (const auto& s : shapes) total += tensor::shape_numel(s);
  if (mode == kPlain) {
    Tensor flat({total});
    tensor::read_span(frame, off, flat.data(), total);
    OF_CHECK_MSG(off == frame.size(), "trailing bytes in plain payload");
    return split_flat(flat, shapes);
  }
  if (mode == kCompressed) {
    OF_CHECK_MSG(decompressor != nullptr, "compressed payload but no codec configured");
    compression::Compressed c;
    c.original_numel =
        static_cast<std::size_t>(tensor::read_pod<std::uint64_t>(frame, off));
    const auto len = tensor::read_pod<std::uint64_t>(frame, off);
    OF_CHECK_MSG(off + len == frame.size(), "compressed payload length mismatch");
    c.payload.assign(frame.begin() + static_cast<std::ptrdiff_t>(off), frame.end());
    OF_CHECK_MSG(c.original_numel == total, "compressed payload numel mismatch");
    return split_flat(decompressor->decompress(c), shapes);
  }
  OF_CHECK_MSG(false, "decode_update cannot decode privacy frames individually");
}

AggregationRule parse_aggregation_rule(const std::string& name) {
  if (name == "mean") return AggregationRule::Mean;
  if (name == "median") return AggregationRule::Median;
  if (name == "trimmed_mean") return AggregationRule::TrimmedMean;
  OF_CHECK_MSG(false, "unknown aggregation rule '" << name << "'");
}

std::vector<Tensor> robust_combine(const std::vector<Bytes>& raw_frames,
                                   compression::Compressor* decompressor,
                                   AggregationRule rule, double trim) {
  if (rule == AggregationRule::Mean)
    return mean_updates(raw_frames, decompressor, nullptr);
  OF_CHECK_MSG(trim >= 0.0 && trim < 0.5, "trim fraction must be in [0, 0.5)");
  std::vector<std::vector<Tensor>> decoded;
  for (const auto& f : raw_frames) {
    if (is_skip_update(f)) continue;
    decoded.push_back(decode_update(f, decompressor));
  }
  OF_CHECK_MSG(!decoded.empty(), "no client updates to aggregate (all skipped?)");
  const std::size_t k = decoded.size();
  std::vector<Tensor> out;
  out.reserve(decoded[0].size());
  std::vector<float> column(k);
  for (std::size_t t = 0; t < decoded[0].size(); ++t) {
    Tensor acc(decoded[0][t].shape());
    for (std::size_t i = 0; i < acc.numel(); ++i) {
      for (std::size_t c = 0; c < k; ++c) column[c] = decoded[c][t][i];
      std::sort(column.begin(), column.end());
      if (rule == AggregationRule::Median) {
        acc[i] = (k % 2) ? column[k / 2]
                         : 0.5f * (column[k / 2 - 1] + column[k / 2]);
      } else {  // trimmed mean
        const std::size_t cut = static_cast<std::size_t>(trim * static_cast<double>(k));
        double sum = 0.0;
        for (std::size_t c = cut; c < k - cut; ++c) sum += column[c];
        acc[i] = static_cast<float>(sum / static_cast<double>(k - 2 * cut));
      }
    }
    out.push_back(std::move(acc));
  }
  return out;
}

std::vector<Tensor> mean_updates(const std::vector<Bytes>& raw_frames,
                                 compression::Compressor* decompressor,
                                 privacy::PrivacyMechanism* privacy) {
  // Drop skip markers (partial participation) before aggregating.
  std::vector<Bytes> frames;
  frames.reserve(raw_frames.size());
  for (const auto& f : raw_frames)
    if (!is_skip_update(f)) frames.push_back(f);
  OF_CHECK_MSG(!frames.empty(), "no client updates to aggregate (all skipped?)");
  // Peek the first frame's mode + manifest.
  std::size_t off0 = 0;
  const auto mode = tensor::read_pod<std::uint8_t>(frames[0], off0);
  const auto shapes = read_manifest(frames[0], off0);
  std::size_t total = 0;
  for (const auto& s : shapes) total += tensor::shape_numel(s);
  const float inv_k = 1.0f / static_cast<float>(frames.size());

  if (mode == kPrivacy) {
    OF_CHECK_MSG(privacy != nullptr, "privacy payload but no mechanism configured");
    std::vector<Bytes> bodies;
    bodies.reserve(frames.size());
    for (const auto& f : frames) {
      std::size_t off = 0;
      const auto m = tensor::read_pod<std::uint8_t>(f, off);
      OF_CHECK_MSG(m == kPrivacy, "mixed payload modes in one aggregation");
      (void)read_manifest(f, off);
      const auto len = tensor::read_pod<std::uint64_t>(f, off);
      OF_CHECK_MSG(off + len == f.size(), "privacy payload length mismatch");
      bodies.emplace_back(f.begin() + static_cast<std::ptrdiff_t>(off), f.end());
    }
    Tensor sum = privacy->aggregate_sum(bodies, total);
    sum.scale_(inv_k);
    return split_flat(sum, shapes);
  }

  // Plain / compressed: decode each frame, average.
  std::vector<Tensor> acc;
  for (const auto& f : frames) {
    std::vector<Tensor> decoded = decode_update(f, decompressor);
    OF_CHECK_MSG(decoded.size() == shapes.size(), "payload structure mismatch");
    if (acc.empty()) {
      acc = std::move(decoded);
    } else {
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i].add_(decoded[i]);
    }
  }
  for (auto& t : acc) t.scale_(inv_k);
  return acc;
}

}  // namespace of::core
