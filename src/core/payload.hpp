// Payload codec: turns an algorithm's update (a list of tensors) into the
// wire frame and back, threading it through the optional compression and
// privacy plugins. The frame is self-describing:
//
//   u8 mode (0 plain | 1 compressed | 2 privacy | 3 skip | 4 plain-f16)
//   u32 ntensors | per tensor: u32 ndim, u64 dims[]      (shape manifest)
//   mode-specific body
//
// plain      — raw float data of the concatenated tensors
// plain-f16  — the same data in the fp16 wire representation (RTNE halves;
//              2 bytes/elem), selected by `payload: {wire: f16}`
// compressed — codec name + Compressed payload of the flat concat
//              (QSGD's int8/int16 codes — the fused quantize-on-the-wire
//              path produces them without an intermediate float frame)
// privacy    — PrivacyMechanism::protect() output of the flat concat
//
// The aggregator recovers the *weighted mean* of the client payloads: for
// plain/compressed it decodes each frame and averages; for privacy modes it
// can only form the sum (that is the point), then divides by the count.
//
// The hot paths are zero-copy: encode scales-while-flattening straight into
// a pooled frame buffer, and aggregation accumulates from frame *views*
// into one pooled flat accumulator, splitting into the tensor-list
// structure exactly once at the end (DESIGN.md § Update pipeline & memory
// model).
#pragma once

#include "compression/compressor.hpp"
#include "core/frame_pool.hpp"
#include "privacy/mechanism.hpp"
#include "refl/refl.hpp"
#include "tensor/tensor.hpp"

namespace of::core {

using tensor::Bytes;
using tensor::ConstByteSpan;
using tensor::Tensor;

struct PayloadPlugins {
  compression::Compressor* compressor = nullptr;   // client-side instance
  privacy::PrivacyMechanism* privacy = nullptr;    // shared mechanism
};

// Wire representation of *plain* float payloads. F16 halves plain-frame
// traffic (RTNE conversion on encode, exact widening on decode); compressed
// frames carry their codec's own representation (QSGD int8/int16) and
// ignore this knob. Decoders dispatch on the frame's mode byte, and partial
// frames additionally announce the repr as a TLV header field (tag 2) that
// pre-tag decoders skip — mixed-version fleets keep working as long as the
// sender only enables f16 when its receivers understand mode 4.
enum class WireRepr : std::uint8_t { F32 = 0, F16 = 1 };

// The `payload:` config group (configs/payload/{f32,f16}.yaml):
//   payload: {wire: f32|f16}
struct PayloadConfig {
  WireRepr wire = WireRepr::F32;

  static PayloadConfig from_config(const config::ConfigNode& node, bool strict = true);
};

// Client side: encode `payload`, pre-scaled by `weight_scale` so that the
// aggregator's uniform mean equals the intended weighted mean. The scale is
// applied in double during the flatten (narrowing it to float first loses
// the low bits of per-client sample weights). Clears and rewrites `out`
// (typically a pooled frame, so capacity persists across rounds); `pool`
// provides the flat/body scratch buffers the plugin paths need.
//
// Numeric admission: a NaN/Inf coordinate anywhere in `payload` throws
// of::NonFiniteUpdateError carrying the flat coordinate and `client_id` —
// callers turn it into a skip frame so the aggregator drops this client
// like any other non-contributor instead of letting one poisoned value
// spread through the aggregate. The screen is fused into the flatten store
// (simd::scale_store), so it costs no extra pass.
void encode_update_into(const std::vector<Tensor>& payload, double weight_scale,
                        const PayloadPlugins& plugins, int client_id, int num_clients,
                        FramePool& pool, Bytes& out, WireRepr repr = WireRepr::F32);

// Owning convenience for tests and cold paths.
Bytes encode_update(const std::vector<Tensor>& payload, double weight_scale,
                    const PayloadPlugins& plugins, int client_id, int num_clients,
                    WireRepr repr = WireRepr::F32);

// A tiny marker frame from a client that sits this round out (partial
// participation). mean_updates skips such frames and divides by the number
// of actual contributions.
Bytes encode_skip_update();
bool is_skip_update(ConstByteSpan frame);

// Aggregator side: decode frames (all clients, same plugin config) and
// return their uniform mean in the original tensor-list structure.
// `decompressor` is the aggregator-side codec instance (stateless decode).
// With a pool, the flat accumulator and decode scratch come from it and the
// aggregation runs allocation-free at steady state.
std::vector<Tensor> mean_updates(const std::vector<Bytes>& frames,
                                 compression::Compressor* decompressor,
                                 privacy::PrivacyMechanism* privacy,
                                 FramePool* pool = nullptr);

// Decode a single plain/compressed frame (used by relays and tests). Reads
// through the view in place — compressed bodies are decoded at their offset
// inside the frame, never copied out first.
std::vector<Tensor> decode_update(ConstByteSpan frame,
                                  compression::Compressor* decompressor);

// Robust aggregation rules over individual client updates (coordinate-wise).
// Unlike the mean, these see each contribution, so they exclude privacy
// frames (which are only meaningful in aggregate). `trim` is the fraction
// clipped from EACH tail for the trimmed mean.
enum class AggregationRule { Mean, Median, TrimmedMean };
AggregationRule parse_aggregation_rule(const std::string& name);
std::vector<Tensor> robust_combine(const std::vector<Bytes>& frames,
                                   compression::Compressor* decompressor,
                                   AggregationRule rule, double trim = 0.1,
                                   FramePool* pool = nullptr);

// Header of a combiner partial frame (the metadata ahead of the summed
// update body). v2 frames carry it as TLV behind an "OFP2" magic so new
// header fields are skipped by older decoders; v1 frames are a bare
// u64 count (still accepted). Tags are wire ABI — append only.
struct PartialHeader {
  std::uint64_t count = 0;  // client contributions folded into the body
  // Wire repr of a *plain* body (mode 0/4); compressed bodies keep F32 here
  // and self-describe via their codec. Pre-tag decoders skip this TLV field
  // (tag 2) and dispatch on the body's mode byte alone.
  WireRepr repr = WireRepr::F32;
};

// Streaming partial-sum accumulator — the combiner tier's aggregation state
// (DESIGN.md §10). Frames are folded into one pooled flat accumulator as
// they arrive, so a combiner holds O(model) bytes no matter how many clients
// feed it; only the partial sum (plus its contribution count) is forwarded
// upward. Privacy frames are rejected: secure aggregation needs every masked
// body at once, so hierarchical setups with privacy fall back to
// collect-then-mean.
class StreamingSum {
 public:
  explicit StreamingSum(FramePool& pool,
                        compression::Compressor* decompressor = nullptr);

  // Forget all contributions (pooled capacity persists; peak_bytes does too).
  void reset();
  // Fold in one client update frame (plain/compressed; skip markers are
  // ignored and do not count as contributions), scaled by `weight` — the
  // serve tier's staleness weight α/(1+s). The default 1.0 is the exact
  // unweighted fold (multiplying by 1.0 is an IEEE identity).
  void add(ConstByteSpan frame, double weight = 1.0);
  // Fold in a downstream combiner's partial produced by encode_partial_into.
  void add_partial(ConstByteSpan partial);
  // Emit `scale × sum` plus the header as a partial frame:
  //   u32 "OFP2" | u32 header_len | TLV(PartialHeader) | update frame
  // (skip marker body when count == 0). add_partial also accepts the v1
  // form `u64 count | update frame`. With repr == F16 (and no compressor)
  // the body is a plain-f16 frame, announced via the header's repr field.
  void encode_partial_into(double scale, compression::Compressor* compressor,
                           Bytes& out, WireRepr repr = WireRepr::F32);
  // sum / count in the original tensor-list structure. Consumes the
  // accumulator (it then holds the mean); reset() before reuse.
  std::vector<Tensor> finish_mean();

  std::size_t count() const noexcept { return count_; }
  // Peak bytes of live aggregation state (accumulator + decode scratch) —
  // the quantity the O(model × combiners) bound is stated over.
  std::size_t peak_bytes() const noexcept { return peak_bytes_; }

 private:
  void ensure_shapes(const std::vector<tensor::Shape>& shapes, std::size_t total);
  void add_update_frame(ConstByteSpan frame, double weight);

  FramePool* pool_;
  compression::Compressor* decompressor_;
  FramePool::FloatHandle acc_;
  std::vector<tensor::Shape> shapes_;
  std::size_t total_ = 0;
  std::size_t count_ = 0;
  std::size_t peak_bytes_ = 0;
  bool init_ = false;
};

// Pack/unpack a tensor list without plugins (global-payload broadcast).
Bytes pack_tensors(const std::vector<Tensor>& ts);
std::vector<Tensor> unpack_tensors(const Bytes& b);

}  // namespace of::core

template <>
struct of::refl::EnumNames<of::core::WireRepr> {
  static constexpr std::pair<of::core::WireRepr, const char*> names[] = {
      {of::core::WireRepr::F32, "f32"},
      {of::core::WireRepr::F16, "f16"},
  };
};

template <>
struct of::refl::Reflect<of::core::PartialHeader> {
  OF_REFL_FIELDS(field("count", &of::core::PartialHeader::count, 1),
                 field("repr", &of::core::PartialHeader::repr, 2))
};

template <>
struct of::refl::Reflect<of::core::PayloadConfig> {
  OF_REFL_FIELDS(field("wire", &of::core::PayloadConfig::wire, 1))
};
