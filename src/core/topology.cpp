#include "core/topology.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "config/registry.hpp"
#include "refl/config_io.hpp"

namespace of::core {

std::string to_string(NodeRole role) {
  switch (role) {
    case NodeRole::Trainer: return "trainer";
    case NodeRole::Aggregator: return "aggregator";
    case NodeRole::Relay: return "relay";
  }
  return "?";
}

int Topology::num_trainers() const {
  int n = 0;
  for (const auto& node : nodes)
    if (node.role == NodeRole::Trainer) ++n;
  return n;
}

std::vector<int> Topology::trainer_ids() const {
  std::vector<int> out;
  for (const auto& node : nodes)
    if (node.role == NodeRole::Trainer) out.push_back(node.id);
  return out;
}

std::vector<int> Topology::group_members(int group) const {
  std::vector<int> out;
  for (const auto& node : nodes)
    if (node.group == group) out.push_back(node.id);
  return out;
}

int Topology::group_leader(int group) const {
  for (const auto& node : nodes)
    if (node.group == group && node.role == NodeRole::Aggregator) return node.id;
  return -1;
}

bool Topology::has_edge(int a, int b) const {
  for (const auto& [x, y] : edges)
    if ((x == a && y == b) || (x == b && y == a)) return true;
  return false;
}

void Topology::validate() const {
  OF_CHECK_MSG(!nodes.empty(), "topology has no nodes");
  for (int i = 0; i < size(); ++i)
    OF_CHECK_MSG(nodes[static_cast<std::size_t>(i)].id == i,
                 "node ids must be contiguous from 0");
  for (const auto& [a, b] : edges) {
    OF_CHECK_MSG(a >= 0 && a < size() && b >= 0 && b < size() && a != b,
                 "edge (" << a << ", " << b << ") out of range");
  }
  OF_CHECK_MSG(num_trainers() >= 1, "topology needs at least one trainer");
  // Exactly zero or one aggregator per group — a second one would fight
  // over the group's rank-0 role.
  for (int g = 0; g < num_groups; ++g) {
    int aggs = 0;
    for (const auto& n : nodes)
      if (n.group == g && n.role == NodeRole::Aggregator) ++aggs;
    OF_CHECK_MSG(aggs <= 1, "group " << g << " has " << aggs << " aggregators");
  }
  for (const auto& n : nodes)
    OF_CHECK_MSG(n.role != NodeRole::Relay,
                 "relay nodes are declared by the paper but not yet executable; "
                 "model the relay as an aggregator of a hierarchical group instead");
}

Topology Topology::centralized(int num_clients) {
  OF_CHECK_MSG(num_clients >= 1, "need at least one client");
  Topology t;
  t.kind = "centralized";
  t.nodes.push_back({0, NodeRole::Aggregator, 0});
  for (int i = 1; i <= num_clients; ++i) {
    t.nodes.push_back({i, NodeRole::Trainer, 0});
    t.edges.emplace_back(0, i);
  }
  return t;
}

Topology Topology::ring(int num_nodes) {
  OF_CHECK_MSG(num_nodes >= 2, "a ring needs at least two nodes");
  Topology t;
  t.kind = "ring";
  for (int i = 0; i < num_nodes; ++i) {
    t.nodes.push_back({i, NodeRole::Trainer, 0});
    t.edges.emplace_back(i, (i + 1) % num_nodes);
  }
  return t;
}

Topology Topology::hierarchical(int groups, int trainers_per_group) {
  OF_CHECK_MSG(groups >= 1 && trainers_per_group >= 1, "bad hierarchical shape");
  Topology t;
  t.kind = "hierarchical";
  t.num_groups = groups;
  int id = 0;
  std::vector<int> leaders;
  for (int g = 0; g < groups; ++g) {
    const int leader = id++;
    t.nodes.push_back({leader, NodeRole::Aggregator, g});
    leaders.push_back(leader);
    for (int k = 0; k < trainers_per_group; ++k) {
      const int trainer = id++;
      t.nodes.push_back({trainer, NodeRole::Trainer, g});
      t.edges.emplace_back(leader, trainer);
    }
  }
  // Outer tier: leaders in a star rooted at the first leader.
  for (std::size_t i = 1; i < leaders.size(); ++i)
    t.edges.emplace_back(leaders[0], leaders[i]);
  return t;
}

Topology Topology::from_config(const config::ConfigNode& cfg, bool strict) {
  const std::string target =
      config::target_basename(cfg.get_or<std::string>("_target_", "CentralizedTopology"));
  if (target == "CentralizedTopology")
    return centralized(cfg.get_or<int>("num_clients", 4));
  if (target == "RingTopology" || target == "DecentralizedTopology")
    return ring(cfg.get_or<int>("num_nodes", cfg.get_or<int>("num_clients", 4)));
  if (target == "HierarchicalTopology") {
    Topology t = hierarchical(cfg.get_or<int>("groups", 2), cfg.get_or<int>("group_size", 2));
    if (cfg.has("combiner"))
      t.combiner =
          refl::from_node<CombinerPolicy>(cfg.at("combiner"), "topology.combiner", {}, strict);
    return t;
  }
  if (target == "CustomTopology") {
    Topology t;
    t.kind = "custom";
    const auto& nodes = cfg.at("nodes");
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const auto& n = nodes.at(i);
      TopoNode tn;
      tn.id = n.get_or<int>("id", static_cast<int>(i));
      const std::string role = n.get_or<std::string>("role", "trainer");
      tn.role = role == "aggregator" ? NodeRole::Aggregator
                : role == "relay"    ? NodeRole::Relay
                                     : NodeRole::Trainer;
      tn.group = n.get_or<int>("group", 0);
      t.nodes.push_back(tn);
      t.num_groups = std::max(t.num_groups, tn.group + 1);
    }
    if (cfg.has("edges")) {
      const auto& edges = cfg.at("edges");
      for (std::size_t i = 0; i < edges.size(); ++i) {
        const auto& e = edges.at(i);
        OF_CHECK_MSG(e.is_list() && e.size() == 2, "edge must be a [a, b] pair");
        t.edges.emplace_back(static_cast<int>(e.at(std::size_t{0}).as_int()),
                             static_cast<int>(e.at(std::size_t{1}).as_int()));
      }
    }
    t.validate();
    return t;
  }
  OF_CHECK_MSG(false, "unknown topology target '" << target << "'");
}

}  // namespace of::core
