// Topology — the node graph and coordination pattern (paper §3.3, Fig. 1).
//
// A topology is a list of roles plus an edge set. Built-in templates:
//   centralized   — one aggregator, N trainers, star edges
//   ring          — N trainers on a cycle (decentralized)
//   hierarchical  — G groups, each with a leader (aggregator) and
//                   group_size trainers; leaders form the outer tier
//   custom        — explicit nodes/edges from config (graph form)
#pragma once

#include <string>
#include <vector>

#include "config/node.hpp"
#include "refl/refl.hpp"

namespace of::core {

enum class NodeRole { Trainer, Aggregator, Relay };

std::string to_string(NodeRole role);

struct TopoNode {
  int id = 0;
  NodeRole role = NodeRole::Trainer;
  int group = 0;  // sub-cluster index (hierarchical); 0 otherwise
};

// Combiner policy (hierarchical only): each group leader streams client
// updates into a partial sum and cuts stragglers at the deadline, provided
// at least `min_clients` reported. 0 deadline = wait for the whole group
// (no cut) — the pre-combiner behavior. The `topology.combiner:` map.
struct CombinerPolicy {
  double deadline_seconds = 0.0;
  int min_clients = 0;
};

struct Topology {
  std::string kind;  // "centralized" | "ring" | "hierarchical" | "custom"
  std::vector<TopoNode> nodes;
  std::vector<std::pair<int, int>> edges;  // undirected
  int num_groups = 1;

  CombinerPolicy combiner;

  int size() const noexcept { return static_cast<int>(nodes.size()); }
  int num_trainers() const;
  std::vector<int> trainer_ids() const;
  std::vector<int> group_members(int group) const;
  int group_leader(int group) const;  // aggregator of a group; -1 if none
  bool has_edge(int a, int b) const;
  // Sanity: ids contiguous, edges in range, roles consistent with kind.
  void validate() const;

  static Topology centralized(int num_clients);
  static Topology ring(int num_nodes);
  static Topology hierarchical(int groups, int trainers_per_group);
  // Parse from a config node of one of the shapes:
  //   {_target_: …CentralizedTopology, num_clients: 8}
  //   {_target_: …RingTopology, num_nodes: 8}
  //   {_target_: …HierarchicalTopology, groups: 2, group_size: 4}
  //   {_target_: …CustomTopology, nodes: [...], edges: [[0,1], ...]}
  static Topology from_config(const config::ConfigNode& cfg, bool strict = true);
};

}  // namespace of::core

template <>
struct of::refl::Reflect<of::core::CombinerPolicy> {
  OF_REFL_FIELDS(
      field("deadline_seconds", &of::core::CombinerPolicy::deadline_seconds, 1).ge(0.0),
      field("min_clients", &of::core::CombinerPolicy::min_clients, 2).ge(0))
};
