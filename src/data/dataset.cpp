#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace of::data {

InMemoryDataset::InMemoryDataset(Tensor x, std::vector<std::size_t> y, std::size_t num_classes)
    : x_(std::move(x)), y_(std::move(y)), num_classes_(num_classes) {
  OF_CHECK_MSG(x_.ndim() == 2, "dataset features must be 2-D, got " << x_.shape_string());
  OF_CHECK_MSG(x_.size(0) == y_.size(),
               "feature rows " << x_.size(0) << " vs labels " << y_.size());
  for (std::size_t label : y_)
    OF_CHECK_MSG(label < num_classes_, "label " << label << " >= classes " << num_classes_);
}

Batch InMemoryDataset::gather(const std::vector<std::size_t>& indices) const {
  Batch b;
  b.x = Tensor({indices.size(), dim()});
  b.y.reserve(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t idx = indices[i];
    OF_CHECK_MSG(idx < size(), "gather index " << idx << " out of range");
    std::copy_n(x_.data() + idx * dim(), dim(), b.x.data() + i * dim());
    b.y.push_back(y_[idx]);
  }
  return b;
}

Batch InMemoryDataset::all() const {
  Batch b;
  b.x = x_;
  b.y = y_;
  return b;
}

DatasetSpec preset(const std::string& name) {
  // Sizes are tuned for single-CPU federated runs: large enough that
  // non-IID partitioning over 8–16 clients leaves meaningful shards,
  // small enough that a full Table-1 sweep finishes in minutes.
  if (name == "cifar10_like")
    return {.name = name, .classes = 10, .dim = 64, .train_per_class = 200,
            .test_per_class = 50, .separation = 6.0f, .label_noise = 0.0f};
  if (name == "cifar100_like")
    return {.name = name, .classes = 100, .dim = 64, .train_per_class = 50,
            .test_per_class = 10, .separation = 5.6f, .label_noise = 0.0f};
  if (name == "caltech101_like")
    return {.name = name, .classes = 101, .dim = 64, .train_per_class = 40,
            .test_per_class = 8, .separation = 5.8f, .label_noise = 0.0f};
  if (name == "caltech256_like")
    return {.name = name, .classes = 257, .dim = 64, .train_per_class = 24,
            .test_per_class = 4, .separation = 5.4f, .label_noise = 0.0f};
  if (name == "toy")
    return {.name = name, .classes = 4, .dim = 16, .train_per_class = 50,
            .test_per_class = 20, .separation = 4.0f, .label_noise = 0.0f};
  OF_CHECK_MSG(false, "unknown dataset preset '" << name << "'");
}

std::vector<std::string> preset_names() {
  return {"cifar10_like", "cifar100_like", "caltech101_like", "caltech256_like", "toy"};
}

namespace {

InMemoryDataset synth_split(const DatasetSpec& spec, const Tensor& means,
                            std::size_t per_class, float label_noise, Rng& rng) {
  const std::size_t n = spec.classes * per_class;
  Tensor x({n, spec.dim});
  std::vector<std::size_t> y(n);
  std::size_t row = 0;
  for (std::size_t c = 0; c < spec.classes; ++c) {
    for (std::size_t s = 0; s < per_class; ++s, ++row) {
      for (std::size_t d = 0; d < spec.dim; ++d)
        x(row, d) = means(c, d) + static_cast<float>(rng.gaussian());
      std::size_t label = c;
      if (label_noise > 0.0f && rng.bernoulli(label_noise))
        label = rng.next_below(spec.classes);
      y[row] = label;
    }
  }
  return InMemoryDataset(std::move(x), std::move(y), spec.classes);
}

}  // namespace

TrainTest make_synthetic(const DatasetSpec& spec, std::uint64_t seed) {
  OF_CHECK_MSG(spec.classes >= 2, "need at least 2 classes");
  OF_CHECK_MSG(spec.dim >= 1, "need at least 1 feature dim");
  Rng rng(seed ^ 0xA5A5A5A5DEADBEEFULL);
  // Class means on a Gaussian cloud with per-coordinate stddev chosen so
  // the expected distance between two means is ≈ `separation`, independent
  // of the feature dimension (‖m_i−m_j‖ ≈ σ·sqrt(2·dim)).
  const float sigma = spec.separation / std::sqrt(2.0f * static_cast<float>(spec.dim));
  Tensor means = Tensor::randn({spec.classes, spec.dim}, rng, 0.0f, sigma);
  TrainTest tt;
  tt.train = synth_split(spec, means, spec.train_per_class, spec.label_noise, rng);
  tt.test = synth_split(spec, means, spec.test_per_class, 0.0f, rng);
  return tt;
}

}  // namespace of::data
