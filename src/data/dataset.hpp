// Datasets for OmniFed-C++. The paper evaluates on CIFAR10/CIFAR100/
// Caltech101/Caltech256; this repo substitutes deterministic synthetic
// Gaussian-mixture classification tasks with matching class counts and an
// increasing-difficulty ordering (see DESIGN.md §1). Real image corpora
// cannot ship inside this repo, and their role in the evaluation is only
// "four tasks of different class counts / difficulty".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace of::data {

using tensor::Rng;
using tensor::Tensor;

struct Batch {
  Tensor x;                    // (batch, dim)
  std::vector<std::size_t> y;  // labels
  std::size_t size() const noexcept { return y.size(); }
};

// Materialized dataset: features matrix + labels.
class InMemoryDataset {
 public:
  InMemoryDataset() = default;
  InMemoryDataset(Tensor x, std::vector<std::size_t> y, std::size_t num_classes);

  std::size_t size() const noexcept { return y_.size(); }
  std::size_t dim() const { return x_.size(1); }
  std::size_t num_classes() const noexcept { return num_classes_; }
  const Tensor& x() const noexcept { return x_; }
  const std::vector<std::size_t>& labels() const noexcept { return y_; }
  std::size_t label(std::size_t i) const { return y_.at(i); }

  // Materialize the rows at `indices` as one batch.
  Batch gather(const std::vector<std::size_t>& indices) const;
  // The whole dataset as a single batch (used for test evaluation).
  Batch all() const;

 private:
  Tensor x_;
  std::vector<std::size_t> y_;
  std::size_t num_classes_ = 0;
};

// Parameters of a synthetic Gaussian-mixture classification task.
struct DatasetSpec {
  std::string name;
  std::size_t classes = 10;
  std::size_t dim = 64;
  std::size_t train_per_class = 100;
  std::size_t test_per_class = 25;
  // Distance scale between class means; lower = harder task.
  float separation = 3.0f;
  float label_noise = 0.0f;  // fraction of flipped training labels
};

struct TrainTest {
  InMemoryDataset train;
  InMemoryDataset test;
};

// Named presets standing in for the paper's four datasets.
// cifar10_like (10 classes, easy) → caltech256_like (257 classes, hard).
DatasetSpec preset(const std::string& name);
std::vector<std::string> preset_names();

// Deterministic synthesis: same spec + seed → identical dataset.
TrainTest make_synthetic(const DatasetSpec& spec, std::uint64_t seed);

}  // namespace of::data
