#include "data/loader.hpp"

#include <numeric>

#include "common/check.hpp"

namespace of::data {

DataLoader::DataLoader(const InMemoryDataset& dataset, std::vector<std::size_t> indices,
                       std::size_t batch_size, bool shuffle, std::uint64_t seed)
    : dataset_(&dataset),
      indices_(std::move(indices)),
      batch_size_(batch_size),
      shuffle_(shuffle),
      rng_(seed) {
  OF_CHECK_MSG(batch_size_ >= 1, "batch size must be >= 1");
  OF_CHECK_MSG(!indices_.empty(), "DataLoader over empty index set");
  for (std::size_t i : indices_)
    OF_CHECK_MSG(i < dataset.size(), "loader index " << i << " out of range");
  if (shuffle_) reshuffle();
}

DataLoader::DataLoader(const InMemoryDataset& dataset, std::size_t batch_size, bool shuffle,
                       std::uint64_t seed)
    : DataLoader(dataset,
                 [&] {
                   std::vector<std::size_t> all(dataset.size());
                   std::iota(all.begin(), all.end(), 0);
                   return all;
                 }(),
                 batch_size, shuffle, seed) {}

std::size_t DataLoader::num_batches() const noexcept {
  return (indices_.size() + batch_size_ - 1) / batch_size_;
}

Batch DataLoader::batch(std::size_t i) const {
  OF_CHECK_MSG(i < num_batches(), "batch index " << i << " out of range");
  const std::size_t begin = i * batch_size_;
  const std::size_t end = std::min(begin + batch_size_, indices_.size());
  return dataset_->gather(
      std::vector<std::size_t>(indices_.begin() + begin, indices_.begin() + end));
}

void DataLoader::reshuffle() {
  if (!shuffle_) return;
  for (std::size_t i = indices_.size(); i > 1; --i)
    std::swap(indices_[i - 1], indices_[rng_.next_below(i)]);
}

}  // namespace of::data
