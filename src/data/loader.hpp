// Mini-batch loader over a client's index subset of a shared dataset.
// Shuffles per epoch with its own RNG stream so federated runs stay
// reproducible per (seed, client).
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"

namespace of::data {

class DataLoader {
 public:
  DataLoader(const InMemoryDataset& dataset, std::vector<std::size_t> indices,
             std::size_t batch_size, bool shuffle, std::uint64_t seed);

  // Loader over the full dataset.
  DataLoader(const InMemoryDataset& dataset, std::size_t batch_size, bool shuffle,
             std::uint64_t seed);

  std::size_t size() const noexcept { return indices_.size(); }
  std::size_t batch_size() const noexcept { return batch_size_; }
  std::size_t num_batches() const noexcept;

  // Materialize batch `i` of the current epoch ordering.
  Batch batch(std::size_t i) const;
  // Re-shuffle for the next epoch (no-op when shuffle=false).
  void reshuffle();

 private:
  const InMemoryDataset* dataset_;
  std::vector<std::size_t> indices_;
  std::size_t batch_size_;
  bool shuffle_;
  Rng rng_;
};

}  // namespace of::data
