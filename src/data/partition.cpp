#include "data/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace of::data {
namespace {

void shuffle_indices(std::vector<std::size_t>& idx, Rng& rng) {
  for (std::size_t i = idx.size(); i > 1; --i)
    std::swap(idx[i - 1], idx[rng.next_below(i)]);
}

// Draw from Gamma(alpha, 1) via Marsaglia–Tsang (alpha>=1) with the
// standard alpha<1 boost; enough fidelity for Dirichlet splitting.
double gamma_sample(double alpha, Rng& rng) {
  if (alpha < 1.0) {
    const double u = std::max(rng.next_double(), 1e-12);
    return gamma_sample(alpha + 1.0, rng) * std::pow(u, 1.0 / alpha);
  }
  const double d = alpha - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = rng.gaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.next_double();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(std::max(u, 1e-300)) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v;
  }
}

std::vector<double> dirichlet_sample(double alpha, std::size_t k, Rng& rng) {
  std::vector<double> p(k);
  double sum = 0.0;
  for (auto& v : p) {
    v = gamma_sample(alpha, rng);
    sum += v;
  }
  if (sum <= 0.0) {  // pathological underflow: fall back to uniform
    std::fill(p.begin(), p.end(), 1.0 / static_cast<double>(k));
    return p;
  }
  for (auto& v : p) v /= sum;
  return p;
}

}  // namespace

PartitionIndices iid_partition(std::size_t dataset_size, std::size_t num_clients,
                               std::uint64_t seed) {
  OF_CHECK_MSG(num_clients >= 1, "need at least one client");
  OF_CHECK_MSG(dataset_size >= num_clients,
               "dataset of " << dataset_size << " cannot cover " << num_clients << " clients");
  std::vector<std::size_t> idx(dataset_size);
  std::iota(idx.begin(), idx.end(), 0);
  Rng rng(seed);
  shuffle_indices(idx, rng);
  PartitionIndices parts(num_clients);
  for (std::size_t i = 0; i < dataset_size; ++i) parts[i % num_clients].push_back(idx[i]);
  return parts;
}

PartitionIndices dirichlet_partition(const std::vector<std::size_t>& labels,
                                     std::size_t num_classes, std::size_t num_clients,
                                     double alpha, std::uint64_t seed) {
  OF_CHECK_MSG(num_clients >= 1, "need at least one client");
  OF_CHECK_MSG(alpha > 0.0, "Dirichlet alpha must be positive, got " << alpha);
  Rng rng(seed);
  // Bucket sample indices per class.
  std::vector<std::vector<std::size_t>> by_class(num_classes);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    OF_CHECK_MSG(labels[i] < num_classes, "label out of range");
    by_class[labels[i]].push_back(i);
  }
  PartitionIndices parts(num_clients);
  for (auto& cls : by_class) {
    shuffle_indices(cls, rng);
    const auto p = dirichlet_sample(alpha, num_clients, rng);
    // Cumulative split of this class across clients.
    std::size_t start = 0;
    double cum = 0.0;
    for (std::size_t k = 0; k < num_clients; ++k) {
      cum += p[k];
      const std::size_t end = (k + 1 == num_clients)
                                  ? cls.size()
                                  : static_cast<std::size_t>(std::round(
                                        cum * static_cast<double>(cls.size())));
      for (std::size_t i = start; i < std::min(end, cls.size()); ++i)
        parts[k].push_back(cls[i]);
      start = std::min(end, cls.size());
    }
  }
  // Guarantee every client has at least one sample (steal from the largest).
  for (auto& part : parts) {
    if (!part.empty()) continue;
    auto largest = std::max_element(
        parts.begin(), parts.end(),
        [](const auto& a, const auto& b) { return a.size() < b.size(); });
    OF_CHECK_MSG(largest->size() > 1, "not enough data to cover all clients");
    part.push_back(largest->back());
    largest->pop_back();
  }
  return parts;
}

PartitionIndices shard_partition(const std::vector<std::size_t>& labels,
                                 std::size_t num_clients, std::size_t shards_per_client,
                                 std::uint64_t seed) {
  OF_CHECK_MSG(num_clients >= 1 && shards_per_client >= 1, "bad shard arguments");
  const std::size_t num_shards = num_clients * shards_per_client;
  OF_CHECK_MSG(labels.size() >= num_shards,
               "dataset too small for " << num_shards << " shards");
  // Sort indices by label, slice into contiguous shards, deal at random.
  std::vector<std::size_t> idx(labels.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) { return labels[a] < labels[b]; });
  std::vector<std::size_t> shard_order(num_shards);
  std::iota(shard_order.begin(), shard_order.end(), 0);
  Rng rng(seed);
  shuffle_indices(shard_order, rng);
  const std::size_t shard_size = labels.size() / num_shards;
  PartitionIndices parts(num_clients);
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::size_t client = s / shards_per_client;
    const std::size_t shard = shard_order[s];
    const std::size_t begin = shard * shard_size;
    const std::size_t end = (shard + 1 == num_shards) ? labels.size() : begin + shard_size;
    for (std::size_t i = begin; i < end; ++i) parts[client].push_back(idx[i]);
  }
  return parts;
}

PartitionIndices make_partition(const std::string& scheme, const InMemoryDataset& ds,
                                std::size_t num_clients, double param, std::uint64_t seed) {
  if (scheme == "iid") return iid_partition(ds.size(), num_clients, seed);
  if (scheme == "dirichlet")
    return dirichlet_partition(ds.labels(), ds.num_classes(), num_clients, param, seed);
  if (scheme == "shards")
    return shard_partition(ds.labels(), num_clients,
                           std::max<std::size_t>(1, static_cast<std::size_t>(param)), seed);
  OF_CHECK_MSG(false, "unknown partition scheme '" << scheme << "'");
}

}  // namespace of::data
