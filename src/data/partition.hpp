// Client data partitioners. FL evaluations hinge on *how* data is split
// across clients; the paper trains over skewed, unbalanced client islands.
// We provide the three standard schemes:
//   iid        — uniform random split
//   dirichlet  — per-class proportions drawn from Dir(alpha); alpha→0 is
//                extreme label skew, alpha→inf approaches IID
//   shards     — sort-by-label, deal contiguous shards (McMahan et al.'s
//                pathological non-IID split)
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"

namespace of::data {

using PartitionIndices = std::vector<std::vector<std::size_t>>;

PartitionIndices iid_partition(std::size_t dataset_size, std::size_t num_clients,
                               std::uint64_t seed);

PartitionIndices dirichlet_partition(const std::vector<std::size_t>& labels,
                                     std::size_t num_classes, std::size_t num_clients,
                                     double alpha, std::uint64_t seed);

PartitionIndices shard_partition(const std::vector<std::size_t>& labels,
                                 std::size_t num_clients, std::size_t shards_per_client,
                                 std::uint64_t seed);

// Convenience dispatcher for config-driven selection:
// scheme ∈ {"iid", "dirichlet", "shards"}.
PartitionIndices make_partition(const std::string& scheme, const InMemoryDataset& ds,
                                std::size_t num_clients, double param, std::uint64_t seed);

}  // namespace of::data
