#include "exec/pool.hpp"

#include <algorithm>
#include <chrono>

#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "refl/config_io.hpp"

namespace of::exec {
namespace {

// Set while a thread is executing chunks (worker or participating caller):
// any parallel region entered from such a thread runs inline, both to avoid
// deadlocking the fixed worker set and to keep the chunk tree identical.
thread_local bool t_in_region = false;

obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g = obs::Registry::global().gauge("exec.queue_depth");
  return g;
}

obs::Counter& jobs_counter() {
  static obs::Counter& c = obs::Registry::global().counter("exec.jobs");
  return c;
}

obs::Histogram& job_latency_hist() {
  static obs::Histogram& h = obs::Registry::global().histogram("exec.job_ns");
  return h;
}

}  // namespace

ExecConfig ExecConfig::from_config(const config::ConfigNode& node, bool strict) {
  if (!node.is_map()) return ExecConfig{};
  ExecConfig c = refl::from_node<ExecConfig>(node, "exec", {}, strict);
  if (c.grain == 0) c.grain = 1;
  return c;
}

Pool& Pool::global() {
  static Pool pool;
  return pool;
}

Pool::~Pool() { stop_workers(); }

bool Pool::in_parallel_region() noexcept { return t_in_region; }

void Pool::configure(std::size_t threads, std::size_t grain) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  stop_workers();
  threads_ = threads;
  grain_ = grain == 0 ? 1 : grain;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = false;
    queue_.clear();
  }
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

void Pool::stop_workers() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

void Pool::worker_loop() {
  obs::Profiler::set_thread_name("exec-worker");
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      job = queue_.front();
      if (job->next.load(std::memory_order_relaxed) >= job->chunks) {
        // Exhausted job still parked at the front: retire it and re-check.
        queue_.pop_front();
        continue;
      }
    }
    execute(*job);
  }
}

void Pool::execute(Job& job) {
  t_in_region = true;
  for (;;) {
    const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.chunks) break;
    if (!job.failed.load(std::memory_order_relaxed)) {
      try {
        (*job.fn)(c, c * job.grain, std::min(job.n, (c + 1) * job.grain));
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.mu);
        if (!job.error) job.error = std::current_exception();
        job.failed.store(true, std::memory_order_relaxed);
      }
    }
    // acq_rel: each finisher publishes its chunk's writes; the final value
    // read with acquire in run_chunks sees them all through the RMW chain.
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.chunks) {
      std::lock_guard<std::mutex> lock(job.mu);
      job.cv.notify_all();
    }
  }
  t_in_region = false;
}

void Pool::run_chunks(std::size_t n, std::size_t grain, const ChunkFn& fn) {
  if (n == 0) return;
  const std::size_t g = effective_grain(grain);
  const std::size_t chunks = (n + g - 1) / g;
  // Serial pool, nested region, or a single chunk: run inline. The chunk
  // boundaries are the same ones the parallel path would use.
  if (workers_.empty() || t_in_region || chunks == 1) {
    const bool was_in_region = t_in_region;
    t_in_region = true;
    for (std::size_t c = 0; c < chunks; ++c) fn(c, c * g, std::min(n, (c + 1) * g));
    t_in_region = was_in_region;
    return;
  }

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  job->grain = g;
  job->chunks = chunks;

  jobs_counter().inc();
  queue_depth_gauge().add(1);
  obs::ScopedSpan span(obs::Name::ExecJob, -1, 0, chunks);
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(job);
  }
  cv_.notify_all();

  execute(*job);  // the caller claims chunks alongside the workers
  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->cv.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) == job->chunks;
    });
  }
  queue_depth_gauge().sub(1);
  job_latency_hist().observe(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace of::exec
