// of::exec — deterministic multi-threaded execution (DESIGN.md §8).
//
// A fixed-worker, work-stealing-free thread pool with one invariant above
// all others: the decomposition of a loop into chunks depends only on the
// iteration count and the grain size, never on the thread count or on
// runtime timing. parallel_for writes disjoint ranges, so its output is
// bytewise identical to the serial loop; parallel_reduce stores one partial
// per chunk and combines them in fixed chunk order, so its result is
// bitwise identical for threads=1 and threads=N. That invariant is what
// lets the determinism property tests pin down the bugfix satellites at any
// thread count.
//
// Execution model: the process owns one Pool (Pool::global()), configured
// from the `exec:` config group by the Engine before node threads start.
// `threads` counts total concurrency — the pool spawns threads-1 workers
// and the calling thread claims chunks alongside them, so threads=1 means
// zero workers and pure inline execution. Calls from inside a pool region
// (nested parallelism, or a worker's own chunk function) run inline, which
// both avoids deadlock and keeps the chunk tree identical.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "config/node.hpp"
#include "refl/refl.hpp"
#include "simd/simd.hpp"

namespace of::exec {

// The `exec:` config group (configs/exec/{serial,parallel}.yaml):
//   exec: {threads: N, grain: M, simd: auto|off}
// threads=0 asks for one thread per hardware core. `simd` selects the
// of::simd kernel table (auto binds AVX2 when the CPU has it; results are
// bitwise identical either way — see simd/simd.hpp).
struct ExecConfig {
  std::size_t threads = 1;
  std::size_t grain = 4096;
  simd::Mode simd = simd::Mode::Auto;

  static ExecConfig from_config(const config::ConfigNode& node, bool strict = true);
};

class Pool {
 public:
  // The process-wide pool every parallel kernel submits to.
  static Pool& global();

  Pool() = default;
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;
  ~Pool();

  // (Re)build the worker set: threads-1 workers + the participating caller.
  // threads=0 → hardware concurrency. Joins any previous workers first;
  // call only while no parallel region is in flight (the Engine configures
  // before spawning its node threads).
  void configure(std::size_t threads, std::size_t grain = 4096);

  std::size_t threads() const noexcept { return threads_; }
  std::size_t grain() const noexcept { return grain_; }

  using ChunkFn = std::function<void(std::size_t chunk, std::size_t begin, std::size_t end)>;
  using RangeFn = std::function<void(std::size_t begin, std::size_t end)>;

  // Core primitive: run fn(chunk, begin, end) for every chunk of [0, n).
  // Chunks = ceil(n / grain) (grain 0 → the pool default), claimed by the
  // caller and the workers via an atomic counter; which thread runs a chunk
  // is unspecified, *what* each chunk covers is not. The first exception
  // thrown by any chunk is rethrown to the caller after the region drains
  // (remaining chunks are skipped). grain is clamped to >= 1.
  void run_chunks(std::size_t n, std::size_t grain, const ChunkFn& fn);

  // parallel_for: disjoint-write loops. Bytewise identical to the serial
  // loop for any thread count.
  void parallel_for(std::size_t n, std::size_t grain, const RangeFn& fn) {
    run_chunks(n, grain, [&fn](std::size_t, std::size_t b, std::size_t e) { fn(b, e); });
  }
  void parallel_for(std::size_t n, const RangeFn& fn) { parallel_for(n, 0, fn); }

  // Deterministic chunked reduction: one partial per chunk, combined in
  // ascending chunk order. The chunk tree depends only on (n, grain), so
  // the result is bitwise identical for threads=1 and threads=N — callers
  // that need cross-thread-count determinism must use a fixed grain and go
  // through this even when the pool is serial.
  template <typename T, typename PartialFn, typename CombineFn>
  T parallel_reduce(std::size_t n, std::size_t grain, T init, PartialFn&& partial,
                    CombineFn&& combine) {
    const std::size_t g = effective_grain(grain);
    const std::size_t chunks = n == 0 ? 0 : (n + g - 1) / g;
    std::vector<T> partials(chunks, init);
    run_chunks(n, g, [&](std::size_t c, std::size_t b, std::size_t e) {
      partials[c] = partial(b, e);
    });
    T acc = init;
    for (const T& p : partials) acc = combine(acc, p);
    return acc;
  }

  // True while the calling thread is inside a pool region (worker chunk or
  // nested call); such callers execute further regions inline.
  static bool in_parallel_region() noexcept;

 private:
  struct Job {
    const ChunkFn* fn = nullptr;
    std::size_t n = 0;
    std::size_t grain = 1;
    std::size_t chunks = 0;
    std::atomic<std::size_t> next{0};  // next chunk to claim
    std::atomic<std::size_t> done{0};  // chunks finished
    std::atomic<bool> failed{false};
    std::exception_ptr error;  // first exception, guarded by mu
    std::mutex mu;
    std::condition_variable cv;
  };

  std::size_t effective_grain(std::size_t grain) const noexcept {
    const std::size_t g = grain == 0 ? grain_ : grain;
    return g == 0 ? 1 : g;
  }

  void worker_loop();
  void execute(Job& job);
  void stop_workers();

  std::size_t threads_ = 1;
  std::size_t grain_ = 4096;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace of::exec

// threads=0 means "one per hardware core", grain 0 is clamped to 1 by
// from_config, so both accept 0.
template <>
struct of::refl::Reflect<of::exec::ExecConfig> {
  OF_REFL_FIELDS(field("threads", &of::exec::ExecConfig::threads, 1),
                 field("grain", &of::exec::ExecConfig::grain, 2),
                 field("simd", &of::exec::ExecConfig::simd, 3))
};
