#include "fault/fault.hpp"

#include "common/check.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "refl/config_io.hpp"

namespace of::fault {

const char* to_string(FaultKind k) { return refl::enum_to_string(k); }

FaultKind fault_kind_from_string(const std::string& s) {
  FaultKind k = FaultKind::Crash;
  OF_CHECK_MSG(refl::enum_from_string(s, k),
               "unknown fault kind '" << s << "' (" << refl::enum_choices<FaultKind>() << ")");
  return k;
}

FaultSpec FaultSpec::from_config(const config::ConfigNode& node, bool strict) {
  if (node.is_null()) return FaultSpec{};
  OF_CHECK_MSG(node.is_map(), "fault config must be a map");
  FaultSpec spec = refl::from_node<FaultSpec>(node, "fault", {}, strict);
  // Per-field bounds live in the descriptor; only the cross-field
  // constraints remain hand-written.
  OF_CHECK_MSG(spec.quorum_timeout_seconds >= spec.round_deadline_seconds,
               "fault.quorum_timeout_seconds must be >= round_deadline_seconds");
  OF_CHECK_MSG(spec.reconnect.backoff_max_seconds >= spec.reconnect.backoff_seconds,
               "fault.reconnect backoff must satisfy 0 <= backoff <= backoff_max");
  OF_CHECK_MSG(!spec.churn.enabled || spec.churn.leave_probability > 0.0,
               "fault.churn.enabled without a leave_probability never churns — "
               "set leave_probability > 0 or disable churn");
  return spec;
}

void FaultSpec::validate(int world_size) const {
  if (!enabled) return;
  OF_CHECK_MSG(world_size >= 2, "fault tolerance needs at least one client");
  OF_CHECK_MSG(min_clients < world_size,
               "fault.min_clients=" << min_clients << " cannot exceed the " << world_size - 1
                                    << " clients in the federation");
  for (const auto& inj : injections)
    OF_CHECK_MSG(inj.client == -1 || (inj.client >= 1 && inj.client < world_size),
                 "fault injection targets rank " << inj.client
                                                 << ", valid clients are 1.."
                                                 << world_size - 1);
}

FaultInjector::FaultInjector(FaultSpec spec, int client_rank, std::uint64_t seed)
    : spec_(std::move(spec)),
      client_(client_rank),
      // Decorrelate per-client streams while keeping them reproducible.
      rng_(seed ^ (0xFA17ull * static_cast<std::uint64_t>(client_rank + 1))) {}

FaultInjector::Decision FaultInjector::at_round(int round) {
  Decision d;
  if (!spec_.enabled) return d;
  for (const auto& inj : spec_.injections) {
    if (inj.client != -1 && inj.client != client_) continue;
    if (inj.round != -1 && inj.round != round) continue;
    // Draw even when probability is 1.0 so editing a probability elsewhere
    // in the list does not shift this injection's stream.
    if (!rng_.bernoulli(inj.probability)) continue;
    switch (inj.kind) {
      case FaultKind::Crash: d.crash = true; break;
      case FaultKind::Disconnect: d.disconnect = true; break;
      case FaultKind::Delay: d.extra_delay_seconds += inj.delay_seconds; break;
    }
  }
  if (d.crash) {
    obs::Registry::global().counter("fault.crashes").inc();
    obs::instant(obs::Name::FaultCrash, client_, static_cast<std::size_t>(round));
  }
  if (d.disconnect) {
    obs::Registry::global().counter("fault.disconnects").inc();
    obs::instant(obs::Name::FaultDisconnect, client_, static_cast<std::size_t>(round));
  }
  if (d.extra_delay_seconds > 0.0) {
    obs::Registry::global().counter("fault.delays").inc();
    obs::instant(obs::Name::FaultDelay, client_, static_cast<std::size_t>(round),
                 static_cast<std::uint64_t>(d.extra_delay_seconds * 1e9));
  }
  return d;
}

ChurnProcess::ChurnProcess(ChurnSpec spec, int client_rank, std::uint64_t seed)
    : spec_(spec),
      // Decorrelate per-client streams (distinct salt from FaultInjector so
      // churn and injection decisions never share a draw sequence).
      rng_(seed ^ (0xC4BEull * static_cast<std::uint64_t>(client_rank + 1))) {}

bool ChurnProcess::leave_now() {
  if (!spec_.enabled) return false;
  // Draw before the cap check so editing max_leaves does not shift the
  // random stream of later invites.
  const bool leave = rng_.bernoulli(spec_.leave_probability);
  if (!leave) return false;
  if (spec_.max_leaves >= 0 &&
      leaves_ >= static_cast<std::uint64_t>(spec_.max_leaves))
    return false;
  ++leaves_;
  obs::Registry::global().counter("serve.churn.leaves").inc();
  return true;
}

}  // namespace of::fault
