#include "fault/fault.hpp"

#include "common/check.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace of::fault {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::Crash: return "crash";
    case FaultKind::Disconnect: return "disconnect";
    case FaultKind::Delay: return "delay";
  }
  return "?";
}

FaultKind fault_kind_from_string(const std::string& s) {
  if (s == "crash") return FaultKind::Crash;
  if (s == "disconnect") return FaultKind::Disconnect;
  if (s == "delay") return FaultKind::Delay;
  OF_CHECK_MSG(false, "unknown fault kind '" << s << "' (crash|disconnect|delay)");
}

FaultSpec FaultSpec::from_config(const config::ConfigNode& node) {
  FaultSpec spec;
  if (node.is_null()) return spec;
  OF_CHECK_MSG(node.is_map(), "fault config must be a map");
  spec.enabled = node.get_or<bool>("enabled", false);
  spec.min_clients = node.get_or<int>("min_clients", spec.min_clients);
  spec.round_deadline_seconds =
      node.get_or<double>("round_deadline_seconds", spec.round_deadline_seconds);
  spec.quorum_timeout_seconds =
      node.get_or<double>("quorum_timeout_seconds", spec.quorum_timeout_seconds);
  if (node.has("reconnect")) {
    const auto& rc = node.at("reconnect");
    OF_CHECK_MSG(rc.is_map(), "fault.reconnect must be a map");
    spec.reconnect_max_attempts =
        rc.get_or<int>("max_attempts", spec.reconnect_max_attempts);
    spec.reconnect_backoff_seconds =
        rc.get_or<double>("backoff_seconds", spec.reconnect_backoff_seconds);
    spec.reconnect_backoff_max_seconds =
        rc.get_or<double>("backoff_max_seconds", spec.reconnect_backoff_max_seconds);
  }
  if (node.has("injections")) {
    const auto& list = node.at("injections");
    OF_CHECK_MSG(list.is_list() || list.is_null(), "fault.injections must be a list");
    for (std::size_t i = 0; list.is_list() && i < list.size(); ++i) {
      const auto& item = list.at(i);
      OF_CHECK_MSG(item.is_map(), "fault.injections[" << i << "] must be a map");
      Injection inj;
      inj.kind = fault_kind_from_string(item.get_or<std::string>("kind", "crash"));
      inj.client = item.get_or<int>("client", -1);
      inj.round = item.get_or<int>("round", -1);
      inj.probability = item.get_or<double>("probability", 1.0);
      inj.delay_seconds = item.get_or<double>("delay_seconds", 0.0);
      OF_CHECK_MSG(inj.probability >= 0.0 && inj.probability <= 1.0,
                   "fault.injections[" << i << "].probability must be in [0, 1]");
      OF_CHECK_MSG(inj.delay_seconds >= 0.0,
                   "fault.injections[" << i << "].delay_seconds must be >= 0");
      spec.injections.push_back(inj);
    }
  }
  OF_CHECK_MSG(spec.min_clients >= 0, "fault.min_clients must be >= 0");
  OF_CHECK_MSG(spec.round_deadline_seconds > 0.0,
               "fault.round_deadline_seconds must be > 0");
  OF_CHECK_MSG(spec.quorum_timeout_seconds >= spec.round_deadline_seconds,
               "fault.quorum_timeout_seconds must be >= round_deadline_seconds");
  OF_CHECK_MSG(spec.reconnect_max_attempts >= 0,
               "fault.reconnect.max_attempts must be >= 0");
  OF_CHECK_MSG(spec.reconnect_backoff_seconds >= 0.0 &&
                   spec.reconnect_backoff_max_seconds >= spec.reconnect_backoff_seconds,
               "fault.reconnect backoff must satisfy 0 <= backoff <= backoff_max");
  return spec;
}

void FaultSpec::validate(int world_size) const {
  if (!enabled) return;
  OF_CHECK_MSG(world_size >= 2, "fault tolerance needs at least one client");
  OF_CHECK_MSG(min_clients < world_size,
               "fault.min_clients=" << min_clients << " cannot exceed the " << world_size - 1
                                    << " clients in the federation");
  for (const auto& inj : injections)
    OF_CHECK_MSG(inj.client == -1 || (inj.client >= 1 && inj.client < world_size),
                 "fault injection targets rank " << inj.client
                                                 << ", valid clients are 1.."
                                                 << world_size - 1);
}

FaultInjector::FaultInjector(FaultSpec spec, int client_rank, std::uint64_t seed)
    : spec_(std::move(spec)),
      client_(client_rank),
      // Decorrelate per-client streams while keeping them reproducible.
      rng_(seed ^ (0xFA17ull * static_cast<std::uint64_t>(client_rank + 1))) {}

FaultInjector::Decision FaultInjector::at_round(int round) {
  Decision d;
  if (!spec_.enabled) return d;
  for (const auto& inj : spec_.injections) {
    if (inj.client != -1 && inj.client != client_) continue;
    if (inj.round != -1 && inj.round != round) continue;
    // Draw even when probability is 1.0 so editing a probability elsewhere
    // in the list does not shift this injection's stream.
    if (!rng_.bernoulli(inj.probability)) continue;
    switch (inj.kind) {
      case FaultKind::Crash: d.crash = true; break;
      case FaultKind::Disconnect: d.disconnect = true; break;
      case FaultKind::Delay: d.extra_delay_seconds += inj.delay_seconds; break;
    }
  }
  if (d.crash) {
    obs::Registry::global().counter("fault.crashes").inc();
    obs::instant(obs::Name::FaultCrash, client_, static_cast<std::size_t>(round));
  }
  if (d.disconnect) {
    obs::Registry::global().counter("fault.disconnects").inc();
    obs::instant(obs::Name::FaultDisconnect, client_, static_cast<std::size_t>(round));
  }
  if (d.extra_delay_seconds > 0.0) {
    obs::Registry::global().counter("fault.delays").inc();
    obs::instant(obs::Name::FaultDelay, client_, static_cast<std::size_t>(round),
                 static_cast<std::uint64_t>(d.extra_delay_seconds * 1e9));
  }
  return d;
}

}  // namespace of::fault
