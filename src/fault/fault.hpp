// of::fault — fault model for federated runs (config group `fault/`).
//
// Edge federations lose clients: devices power off mid-round (crash), drop
// off the network and come back (disconnect), or straggle behind a slow
// uplink (delay). This module gives those failure modes a declarative,
// reproducible form — a FaultSpec parsed from the `fault:` config group —
// and splits the response between two layers:
//
//   transport  — TcpCommunicator reconnect with capped exponential backoff
//                (reconnect.* knobs),
//   algorithm  — the server runs each round against a deadline and
//                aggregates a quorum-gated partial cohort
//                (min_clients / round_deadline_seconds), re-weighting
//                around the dropped clients.
//
// The FaultInjector turns the spec into per-round decisions on the client
// side, driven by the run's own seeded Rng so a faulty run is exactly
// repeatable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "config/node.hpp"
#include "refl/refl.hpp"
#include "tensor/rng.hpp"

namespace of::fault {

enum class FaultKind {
  Crash,       // client exits mid-run and never returns
  Disconnect,  // transient link loss; the transport reconnects with backoff
  Delay,       // straggler: client stalls before reporting
};

const char* to_string(FaultKind k);
FaultKind fault_kind_from_string(const std::string& s);

// One declarative failure: "client 2 crashes at round 1", "any client has a
// 10% chance of a 0.2 s delay spike every round".
struct Injection {
  FaultKind kind = FaultKind::Crash;
  int client = -1;              // target client rank; -1 = any client
  int round = -1;               // target round; -1 = every round
  double probability = 1.0;     // chance the fault fires when it matches
  double delay_seconds = 0.0;   // Delay only: how long the straggler stalls
};

// Transport-side reconnect policy (TCP), the `fault.reconnect:` map.
struct ReconnectPolicy {
  int max_attempts = 8;
  double backoff_seconds = 0.05;
  double backoff_max_seconds = 2.0;
};

// Churn: join/leave processes over the serving population (`fault.churn:`,
// serve fedbuff mode only — the classic lockstep loops have no notion of a
// client deregistering). On each coordinator invite a churning client
// leaves with `leave_probability`, stays away `down_seconds`, then
// re-registers — a fresh identity in the population registry, exactly the
// connect/train/vanish/re-register cycle of a device fleet.
struct ChurnSpec {
  bool enabled = false;
  double leave_probability = 0.0;  // per invite
  double down_seconds = 0.05;      // time away before re-registering
  int max_leaves = -1;             // per-client cap; -1 = unbounded
};

struct FaultSpec {
  bool enabled = false;

  // Server-side partial aggregation.
  int min_clients = 1;                   // quorum: proceed past deadline with >= this many
  double round_deadline_seconds = 5.0;   // soft per-round cutoff
  double quorum_timeout_seconds = 60.0;  // hard cutoff waiting for the quorum itself

  ReconnectPolicy reconnect;

  ChurnSpec churn;

  std::vector<Injection> injections;

  // Parse the `fault:` config group; a null/missing node yields a disabled
  // spec. Throws on unknown fault kinds or out-of-range values.
  static FaultSpec from_config(const config::ConfigNode& node, bool strict = true);

  // Sanity checks that need the topology (quorum must fit the cohort).
  void validate(int world_size) const;
};

// Per-client decision engine: replays the spec as concrete per-round
// decisions, deterministically derived from (seed, client rank) so a faulty
// run reproduces bit-for-bit.
class FaultInjector {
 public:
  struct Decision {
    bool crash = false;
    bool disconnect = false;
    double extra_delay_seconds = 0.0;
  };

  FaultInjector(FaultSpec spec, int client_rank, std::uint64_t seed);

  // Evaluate all matching injections for `round`. Call once per round, in
  // round order, to keep the random stream aligned.
  Decision at_round(int round);

  const FaultSpec& spec() const noexcept { return spec_; }

 private:
  FaultSpec spec_;
  int client_;
  tensor::Rng rng_;
};

// Per-client join/leave process: replays the churn spec as concrete
// per-invite decisions, deterministically derived from (seed, client rank)
// so a churning run reproduces bit-for-bit.
class ChurnProcess {
 public:
  ChurnProcess(ChurnSpec spec, int client_rank, std::uint64_t seed);

  // Decide whether this invite churns the client away. Call once per
  // invite, in invite order, to keep the random stream aligned.
  bool leave_now();

  double down_seconds() const noexcept { return spec_.down_seconds; }
  std::uint64_t leaves() const noexcept { return leaves_; }

 private:
  ChurnSpec spec_;
  tensor::Rng rng_;
  std::uint64_t leaves_ = 0;
};

}  // namespace of::fault

template <>
struct of::refl::EnumNames<of::fault::FaultKind> {
  static constexpr std::pair<of::fault::FaultKind, const char*> names[] = {
      {of::fault::FaultKind::Crash, "crash"},
      {of::fault::FaultKind::Disconnect, "disconnect"},
      {of::fault::FaultKind::Delay, "delay"},
  };
};

template <>
struct of::refl::Reflect<of::fault::Injection> {
  OF_REFL_FIELDS(
      field("kind", &of::fault::Injection::kind, 1),
      field("client", &of::fault::Injection::client, 2),
      field("round", &of::fault::Injection::round, 3),
      field("probability", &of::fault::Injection::probability, 4).ge(0.0).le(1.0),
      field("delay_seconds", &of::fault::Injection::delay_seconds, 5).ge(0.0))
};

template <>
struct of::refl::Reflect<of::fault::ReconnectPolicy> {
  OF_REFL_FIELDS(
      field("max_attempts", &of::fault::ReconnectPolicy::max_attempts, 1).ge(0),
      field("backoff_seconds", &of::fault::ReconnectPolicy::backoff_seconds, 2).ge(0.0),
      field("backoff_max_seconds", &of::fault::ReconnectPolicy::backoff_max_seconds, 3).ge(0.0))
};

template <>
struct of::refl::Reflect<of::fault::ChurnSpec> {
  OF_REFL_FIELDS(
      field("enabled", &of::fault::ChurnSpec::enabled, 1),
      field("leave_probability", &of::fault::ChurnSpec::leave_probability, 2).ge(0.0).le(1.0),
      field("down_seconds", &of::fault::ChurnSpec::down_seconds, 3).ge(0.0),
      field("max_leaves", &of::fault::ChurnSpec::max_leaves, 4).ge(-1))
};

template <>
struct of::refl::Reflect<of::fault::FaultSpec> {
  OF_REFL_FIELDS(
      field("enabled", &of::fault::FaultSpec::enabled, 1),
      field("min_clients", &of::fault::FaultSpec::min_clients, 2).ge(0),
      field("round_deadline_seconds", &of::fault::FaultSpec::round_deadline_seconds, 3).gt(0.0),
      field("quorum_timeout_seconds", &of::fault::FaultSpec::quorum_timeout_seconds, 4).gt(0.0),
      field("reconnect", &of::fault::FaultSpec::reconnect, 5),
      field("injections", &of::fault::FaultSpec::injections, 6),
      field("churn", &of::fault::FaultSpec::churn, 7))
};
