#include "nn/checkpoint.hpp"

#include <fstream>

#include "common/check.hpp"

namespace of::nn {
namespace {

constexpr std::uint32_t kMagic = 0x0FC4EC42u;  // "OF ChECk"
constexpr std::uint32_t kVersion = 1;

void append_string(Bytes& out, const std::string& s) {
  tensor::append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

std::string read_string(const Bytes& in, std::size_t& off) {
  const auto len = tensor::read_pod<std::uint32_t>(in, off);
  OF_CHECK_MSG(off + len <= in.size(), "checkpoint string truncated");
  std::string s(in.begin() + static_cast<std::ptrdiff_t>(off),
                in.begin() + static_cast<std::ptrdiff_t>(off + len));
  off += len;
  return s;
}

}  // namespace

Bytes save_checkpoint(Model& model) {
  Bytes out;
  tensor::append_pod<std::uint32_t>(out, kMagic);
  tensor::append_pod<std::uint32_t>(out, kVersion);
  const auto& params = model.parameters();
  tensor::append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(params.size()));
  for (const auto* p : params) {
    append_string(out, p->name);
    tensor::serialize_tensor(p->value, out);
  }
  const auto& buffers = model.buffers();
  tensor::append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(buffers.size()));
  for (const auto* b : buffers) tensor::serialize_tensor(*b, out);
  return out;
}

void load_checkpoint(Model& model, const Bytes& blob) {
  std::size_t off = 0;
  OF_CHECK_MSG(tensor::read_pod<std::uint32_t>(blob, off) == kMagic,
               "not an OmniFed checkpoint");
  OF_CHECK_MSG(tensor::read_pod<std::uint32_t>(blob, off) == kVersion,
               "unsupported checkpoint version");
  const auto param_count = tensor::read_pod<std::uint32_t>(blob, off);
  const auto& params = model.parameters();
  OF_CHECK_MSG(param_count == params.size(),
               "checkpoint has " << param_count << " parameters, model has "
                                 << params.size());
  for (auto* p : params) {
    const std::string name = read_string(blob, off);
    OF_CHECK_MSG(name == p->name, "checkpoint parameter '" << name
                                                           << "' does not match model's '"
                                                           << p->name << '\'');
    tensor::Tensor value = tensor::deserialize_tensor(blob, off);
    OF_CHECK_MSG(value.same_shape(p->value), "checkpoint shape mismatch for " << name);
    p->value = std::move(value);
  }
  const auto buffer_count = tensor::read_pod<std::uint32_t>(blob, off);
  const auto& buffers = model.buffers();
  OF_CHECK_MSG(buffer_count == buffers.size(), "checkpoint buffer count mismatch");
  for (auto* b : buffers) {
    tensor::Tensor value = tensor::deserialize_tensor(blob, off);
    OF_CHECK_MSG(value.same_shape(*b), "checkpoint buffer shape mismatch");
    *b = std::move(value);
  }
  OF_CHECK_MSG(off == blob.size(), "trailing bytes after checkpoint");
}

void save_checkpoint_file(Model& model, const std::string& path) {
  const Bytes blob = save_checkpoint(model);
  std::ofstream out(path, std::ios::binary);
  OF_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
  OF_CHECK_MSG(out.good(), "short write to '" << path << '\'');
}

void load_checkpoint_file(Model& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  OF_CHECK_MSG(in.good(), "cannot open checkpoint '" << path << '\'');
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  Bytes blob(size);
  in.read(reinterpret_cast<char*>(blob.data()), static_cast<std::streamsize>(size));
  OF_CHECK_MSG(in.good(), "short read from '" << path << '\'');
  load_checkpoint(model, blob);
}

}  // namespace of::nn
