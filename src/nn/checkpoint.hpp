// Model checkpointing: serialize parameters + buffers (BatchNorm running
// stats) to a self-describing byte blob or file, and restore them into a
// same-architecture model. Used for warm starts, cross-process hand-off,
// and the engine-level experiment hand-off a production FL deployment
// needs between rounds of operation.
#pragma once

#include <string>

#include "nn/model.hpp"
#include "tensor/serialize.hpp"

namespace of::nn {

using tensor::Bytes;

// Serialize parameter values and buffers (not gradients, not optimizer
// state). The blob embeds names and shapes; load verifies both.
Bytes save_checkpoint(Model& model);
void load_checkpoint(Model& model, const Bytes& blob);

void save_checkpoint_file(Model& model, const std::string& path);
void load_checkpoint_file(Model& model, const std::string& path);

}  // namespace of::nn
