#include "nn/conv.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "exec/pool.hpp"
#include "simd/simd.hpp"

namespace of::nn {

// --- Conv2d -----------------------------------------------------------------

Conv2d::Conv2d(ImageGeom in, std::size_t out_channels, std::size_t kernel,
               std::size_t padding, Rng& rng, std::string label)
    : in_(in),
      kernel_(kernel),
      padding_(padding),
      weight_(label + ".weight",
              Tensor::randn({out_channels, in.channels * kernel * kernel}, rng, 0.0f,
                            std::sqrt(2.0f / static_cast<float>(in.channels * kernel *
                                                                kernel)))),
      bias_(label + ".bias", Tensor::zeros({out_channels})) {
  OF_CHECK_MSG(kernel_ >= 1 && kernel_ <= in_.height + 2 * padding_ &&
                   kernel_ <= in_.width + 2 * padding_,
               "kernel does not fit the padded input");
  out_.channels = out_channels;
  out_.height = in_.height + 2 * padding_ - kernel_ + 1;
  out_.width = in_.width + 2 * padding_ - kernel_ + 1;
}

float Conv2d::in_at(const Tensor& x, std::size_t b, std::size_t c, std::ptrdiff_t i,
                    std::ptrdiff_t j) const {
  if (i < 0 || j < 0 || i >= static_cast<std::ptrdiff_t>(in_.height) ||
      j >= static_cast<std::ptrdiff_t>(in_.width))
    return 0.0f;  // zero padding
  return x(b, (c * in_.height + static_cast<std::size_t>(i)) * in_.width +
                  static_cast<std::size_t>(j));
}

Tensor Conv2d::forward(const Tensor& x) {
  OF_CHECK_MSG(x.ndim() == 2 && x.size(1) == in_.features(),
               "Conv2d: input " << x.shape_string() << " vs expected features "
                                << in_.features());
  cached_input_ = x;
  const std::size_t batch = x.size(0);
  Tensor y({batch, out_.features()});
  const float* xd = x.data();
  float* yd = y.data();
  const std::size_t in_feat = in_.features();
  const std::size_t out_feat = out_.features();
  const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(padding_);
  // Tap-major formulation: initialize each output plane to the bias, then
  // one axpy per (ic, ki, kj) kernel tap over every valid output row
  // segment. Each output element receives its taps in the same
  // lexicographic (ic, ki, kj) order as the former per-pixel gather loop,
  // and zero-padding taps contribute nothing, so the per-element sum is the
  // same for any SIMD/thread configuration.
  const auto sample_range = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t b = lo; b < hi; ++b) {
      const float* xs = xd + b * in_feat;
      float* ys = yd + b * out_feat;
      for (std::size_t oc = 0; oc < out_.channels; ++oc) {
        float* yplane = ys + oc * out_.height * out_.width;
        std::fill_n(yplane, out_.height * out_.width, bias_.value[oc]);
        for (std::size_t ic = 0; ic < in_.channels; ++ic) {
          const float* xplane = xs + ic * in_.height * in_.width;
          for (std::size_t ki = 0; ki < kernel_; ++ki) {
            for (std::size_t kj = 0; kj < kernel_; ++kj) {
              const float w = weight_.value(oc, (ic * kernel_ + ki) * kernel_ + kj);
              // Output columns whose input column oj + kj - pad is in range.
              const std::ptrdiff_t cj = static_cast<std::ptrdiff_t>(kj) - pad;
              const std::size_t oj_lo = cj < 0 ? static_cast<std::size_t>(-cj) : 0;
              const std::ptrdiff_t oj_hi =
                  std::min<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(out_.width),
                                           static_cast<std::ptrdiff_t>(in_.width) - cj);
              if (oj_hi <= static_cast<std::ptrdiff_t>(oj_lo)) continue;
              const std::size_t len = static_cast<std::size_t>(oj_hi) - oj_lo;
              for (std::size_t oi = 0; oi < out_.height; ++oi) {
                const std::ptrdiff_t ii =
                    static_cast<std::ptrdiff_t>(oi + ki) - pad;
                if (ii < 0 || ii >= static_cast<std::ptrdiff_t>(in_.height)) continue;
                simd::axpy(yplane + oi * out_.width + oj_lo,
                           xplane + static_cast<std::size_t>(ii) * in_.width +
                               static_cast<std::size_t>(
                                   static_cast<std::ptrdiff_t>(oj_lo) + cj),
                           w, len);
              }
            }
          }
        }
      }
    }
  };
  // Each sample writes its own output row — disjoint, so parallel execution
  // produces the same bytes as the serial loop for any thread count.
  if (batch > 1 && exec::Pool::global().threads() > 1) {
    exec::Pool::global().parallel_for(batch, 1, sample_range);
  } else {
    sample_range(0, batch);
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const std::size_t batch = grad_out.size(0);
  Tensor dx({batch, in_.features()});
  // Weight/bias grads are shared across samples, so each chunk accumulates
  // into a private partial buffer and the partials are folded in chunk
  // order afterwards. The chunking depends only on the batch size — when
  // the pool is serial the chunks run inline in the same order — so the
  // result is bitwise identical for any thread count. dx rows are disjoint
  // per sample and written directly.
  const std::size_t grain = (batch + 7) / 8;
  const std::size_t chunks = batch == 0 ? 0 : (batch + grain - 1) / grain;
  const std::size_t wcols = in_.channels * kernel_ * kernel_;
  std::vector<std::vector<float>> dw(chunks), db(chunks);
  exec::Pool::global().run_chunks(
      batch, grain, [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
        dw[chunk].assign(out_.channels * wcols, 0.0f);
        db[chunk].assign(out_.channels, 0.0f);
        float* wg = dw[chunk].data();
        float* bg = db[chunk].data();
        for (std::size_t b = lo; b < hi; ++b) {
          for (std::size_t oc = 0; oc < out_.channels; ++oc) {
            for (std::size_t oi = 0; oi < out_.height; ++oi) {
              for (std::size_t oj = 0; oj < out_.width; ++oj) {
                const float g = grad_out(b, (oc * out_.height + oi) * out_.width + oj);
                if (g == 0.0f) continue;
                bg[oc] += g;
                for (std::size_t ic = 0; ic < in_.channels; ++ic) {
                  for (std::size_t ki = 0; ki < kernel_; ++ki) {
                    for (std::size_t kj = 0; kj < kernel_; ++kj) {
                      const std::ptrdiff_t ii = static_cast<std::ptrdiff_t>(oi + ki) -
                                                static_cast<std::ptrdiff_t>(padding_);
                      const std::ptrdiff_t jj = static_cast<std::ptrdiff_t>(oj + kj) -
                                                static_cast<std::ptrdiff_t>(padding_);
                      const float xin = in_at(cached_input_, b, ic, ii, jj);
                      wg[oc * wcols + (ic * kernel_ + ki) * kernel_ + kj] += g * xin;
                      if (ii >= 0 && jj >= 0 &&
                          ii < static_cast<std::ptrdiff_t>(in_.height) &&
                          jj < static_cast<std::ptrdiff_t>(in_.width)) {
                        dx(b, (ic * in_.height + static_cast<std::size_t>(ii)) * in_.width +
                                  static_cast<std::size_t>(jj)) +=
                            g * weight_.value(oc, (ic * kernel_ + ki) * kernel_ + kj);
                      }
                    }
                  }
                }
              }
            }
          }
        }
      });
  for (std::size_t c = 0; c < chunks; ++c) {
    for (std::size_t i = 0; i < dw[c].size(); ++i) weight_.grad.data()[i] += dw[c][i];
    for (std::size_t i = 0; i < db[c].size(); ++i) bias_.grad[i] += db[c][i];
  }
  return dx;
}

void Conv2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

// --- MaxPool2d ---------------------------------------------------------------

MaxPool2d::MaxPool2d(ImageGeom in) : in_(in) {
  OF_CHECK_MSG(in.height >= 2 && in.width >= 2, "input too small to pool");
  out_.channels = in.channels;
  out_.height = in.height / 2;
  out_.width = in.width / 2;
}

Tensor MaxPool2d::forward(const Tensor& x) {
  OF_CHECK_MSG(x.ndim() == 2 && x.size(1) == in_.features(),
               "MaxPool2d: input " << x.shape_string() << " vs expected features "
                                   << in_.features());
  const std::size_t batch = x.size(0);
  cached_batch_ = batch;
  Tensor y({batch, out_.features()});
  argmax_.assign(batch * out_.features(), 0);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < in_.channels; ++c) {
      for (std::size_t oi = 0; oi < out_.height; ++oi) {
        for (std::size_t oj = 0; oj < out_.width; ++oj) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t di = 0; di < 2; ++di) {
            for (std::size_t dj = 0; dj < 2; ++dj) {
              const std::size_t idx =
                  (c * in_.height + 2 * oi + di) * in_.width + 2 * oj + dj;
              if (x(b, idx) > best) {
                best = x(b, idx);
                best_idx = idx;
              }
            }
          }
          const std::size_t out_idx = (c * out_.height + oi) * out_.width + oj;
          y(b, out_idx) = best;
          argmax_[b * out_.features() + out_idx] = best_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  Tensor dx({cached_batch_, in_.features()});
  for (std::size_t b = 0; b < cached_batch_; ++b)
    for (std::size_t o = 0; o < out_.features(); ++o)
      dx(b, argmax_[b * out_.features() + o]) += grad_out(b, o);
  return dx;
}

// --- LayerNorm -----------------------------------------------------------------

LayerNorm::LayerNorm(std::size_t features, float eps, std::string label)
    : features_(features),
      eps_(eps),
      gamma_(label + ".gamma", Tensor::ones({features})),
      beta_(label + ".beta", Tensor::zeros({features})) {}

Tensor LayerNorm::forward(const Tensor& x) {
  OF_CHECK_MSG(x.ndim() == 2 && x.size(1) == features_,
               "LayerNorm: input " << x.shape_string() << " vs features " << features_);
  const std::size_t batch = x.size(0);
  Tensor y(x.shape());
  cached_xhat_ = Tensor(x.shape());
  cached_inv_std_.assign(batch, 0.0f);
  for (std::size_t b = 0; b < batch; ++b) {
    double mean = 0.0;
    for (std::size_t j = 0; j < features_; ++j) mean += x(b, j);
    mean /= static_cast<double>(features_);
    double var = 0.0;
    for (std::size_t j = 0; j < features_; ++j) {
      const double d = x(b, j) - mean;
      var += d * d;
    }
    var /= static_cast<double>(features_);
    const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
    cached_inv_std_[b] = inv_std;
    for (std::size_t j = 0; j < features_; ++j) {
      const float xh = (x(b, j) - static_cast<float>(mean)) * inv_std;
      cached_xhat_(b, j) = xh;
      y(b, j) = gamma_.value[j] * xh + beta_.value[j];
    }
  }
  return y;
}

Tensor LayerNorm::backward(const Tensor& grad_out) {
  const std::size_t batch = grad_out.size(0);
  Tensor dx(grad_out.shape());
  const float n = static_cast<float>(features_);
  for (std::size_t b = 0; b < batch; ++b) {
    float sum_dy_g = 0.0f, sum_dy_g_xh = 0.0f;
    for (std::size_t j = 0; j < features_; ++j) {
      const float dyg = grad_out(b, j) * gamma_.value[j];
      sum_dy_g += dyg;
      sum_dy_g_xh += dyg * cached_xhat_(b, j);
      gamma_.grad[j] += grad_out(b, j) * cached_xhat_(b, j);
      beta_.grad[j] += grad_out(b, j);
    }
    for (std::size_t j = 0; j < features_; ++j) {
      const float dyg = grad_out(b, j) * gamma_.value[j];
      dx(b, j) = cached_inv_std_[b] / n *
                 (n * dyg - sum_dy_g - cached_xhat_(b, j) * sum_dy_g_xh);
    }
  }
  return dx;
}

void LayerNorm::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

}  // namespace of::nn
