// Convolutional and normalization layers. Activations stay 2-D
// (batch, features); each layer carries its own (C, H, W) geometry and
// interprets the feature axis as flattened NCHW — so Conv stacks compose
// with the Linear/BatchNorm machinery and the zoo without a tensor-rank
// overhaul. Naive direct convolution: correctness-first (gradient-checked),
// used by the `cnn_mini` zoo model for tests and examples.
#pragma once

#include "nn/module.hpp"

namespace of::nn {

struct ImageGeom {
  std::size_t channels = 1;
  std::size_t height = 1;
  std::size_t width = 1;
  std::size_t features() const noexcept { return channels * height * width; }
};

// 2-D convolution, square kernel, stride 1, symmetric zero padding.
class Conv2d final : public Module {
 public:
  Conv2d(ImageGeom in, std::size_t out_channels, std::size_t kernel, std::size_t padding,
         Rng& rng, std::string label = "conv");

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  std::string name() const override { return "Conv2d"; }

  ImageGeom out_geom() const noexcept { return out_; }

 private:
  ImageGeom in_;
  ImageGeom out_;
  std::size_t kernel_;
  std::size_t padding_;
  Parameter weight_;  // (out_c, in_c * k * k) row-major filter bank
  Parameter bias_;    // (out_c)
  Tensor cached_input_;

  float in_at(const Tensor& x, std::size_t b, std::size_t c, std::ptrdiff_t i,
              std::ptrdiff_t j) const;
};

// 2×2 max pooling, stride 2 (floor semantics on odd sizes).
class MaxPool2d final : public Module {
 public:
  explicit MaxPool2d(ImageGeom in);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "MaxPool2d"; }

  ImageGeom out_geom() const noexcept { return out_; }

 private:
  ImageGeom in_;
  ImageGeom out_;
  std::vector<std::size_t> argmax_;  // flat input index per output element
  std::size_t cached_batch_ = 0;
};

// Layer normalization over the feature axis with affine gamma/beta.
class LayerNorm final : public Module {
 public:
  LayerNorm(std::size_t features, float eps = 1e-5f, std::string label = "ln");

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  std::string name() const override { return "LayerNorm"; }

 private:
  std::size_t features_;
  float eps_;
  Parameter gamma_;
  Parameter beta_;
  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;  // per row
};

}  // namespace of::nn
