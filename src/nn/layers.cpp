#include "nn/layers.hpp"

#include <cmath>

namespace of::nn {

// --- Linear ------------------------------------------------------------------

Linear::Linear(std::size_t in, std::size_t out, Rng& rng, std::string label)
    : weight_(label + ".weight",
              Tensor::randn({in, out}, rng, 0.0f,
                            std::sqrt(2.0f / static_cast<float>(in)))),  // Kaiming
      bias_(label + ".bias", Tensor::zeros({out})) {}

Tensor Linear::forward(const Tensor& x) {
  OF_CHECK_MSG(x.ndim() == 2 && x.size(1) == weight_.value.size(0),
               "Linear: input " << x.shape_string() << " incompatible with weight "
                                << weight_.value.shape_string());
  cached_input_ = x;
  Tensor y = x.matmul(weight_.value);
  const std::size_t batch = y.size(0), out = y.size(1);
  for (std::size_t b = 0; b < batch; ++b)
    for (std::size_t j = 0; j < out; ++j) y(b, j) += bias_.value[j];
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  // dW = xᵀ·dy ; db = Σ_batch dy ; dx = dy·Wᵀ
  weight_.grad.add_(cached_input_.transpose2d().matmul(grad_out));
  const std::size_t batch = grad_out.size(0), out = grad_out.size(1);
  for (std::size_t b = 0; b < batch; ++b)
    for (std::size_t j = 0; j < out; ++j) bias_.grad[j] += grad_out(b, j);
  return grad_out.matmul(weight_.value.transpose2d());
}

void Linear::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

// --- ReLU --------------------------------------------------------------------

Tensor ReLU::forward(const Tensor& x) {
  cached_input_ = x;
  Tensor y = x;
  for (auto& v : y.vec())
    if (v < 0.0f) v = 0.0f;
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.numel(); ++i)
    if (cached_input_[i] <= 0.0f) g[i] = 0.0f;
  return g;
}

// --- Tanh --------------------------------------------------------------------

Tensor Tanh::forward(const Tensor& x) {
  Tensor y = x;
  for (auto& v : y.vec()) v = std::tanh(v);
  cached_output_ = y;
  return y;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.numel(); ++i) {
    const float t = cached_output_[i];
    g[i] *= (1.0f - t * t);
  }
  return g;
}

// --- HardSwish ---------------------------------------------------------------

Tensor HardSwish::forward(const Tensor& x) {
  cached_input_ = x;
  Tensor y = x;
  for (auto& v : y.vec()) {
    if (v <= -3.0f) v = 0.0f;
    else if (v < 3.0f) v = v * (v + 3.0f) / 6.0f;
    // else identity
  }
  return y;
}

Tensor HardSwish::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.numel(); ++i) {
    const float v = cached_input_[i];
    float d;
    if (v <= -3.0f) d = 0.0f;
    else if (v < 3.0f) d = (2.0f * v + 3.0f) / 6.0f;
    else d = 1.0f;
    g[i] *= d;
  }
  return g;
}

// --- BatchNorm1d ---------------------------------------------------------------

BatchNorm1d::BatchNorm1d(std::size_t features, float momentum, float eps, std::string label)
    : features_(features),
      momentum_(momentum),
      eps_(eps),
      gamma_(label + ".gamma", Tensor::ones({features})),
      beta_(label + ".beta", Tensor::zeros({features})),
      running_mean_(Tensor::zeros({features})),
      running_var_(Tensor::ones({features})) {
  gamma_.is_batchnorm = beta_.is_batchnorm = true;
}

Tensor BatchNorm1d::forward(const Tensor& x) {
  OF_CHECK_MSG(x.ndim() == 2 && x.size(1) == features_,
               "BatchNorm1d: input " << x.shape_string() << " vs features " << features_);
  const std::size_t batch = x.size(0);
  Tensor y(x.shape());
  cached_xhat_ = Tensor(x.shape());
  cached_inv_std_ = Tensor({features_});

  if (training_ && batch > 1) {
    for (std::size_t j = 0; j < features_; ++j) {
      double mean = 0.0;
      for (std::size_t b = 0; b < batch; ++b) mean += x(b, j);
      mean /= static_cast<double>(batch);
      double var = 0.0;
      for (std::size_t b = 0; b < batch; ++b) {
        const double d = x(b, j) - mean;
        var += d * d;
      }
      var /= static_cast<double>(batch);
      const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
      cached_inv_std_[j] = inv_std;
      for (std::size_t b = 0; b < batch; ++b) {
        const float xh = (x(b, j) - static_cast<float>(mean)) * inv_std;
        cached_xhat_(b, j) = xh;
        y(b, j) = gamma_.value[j] * xh + beta_.value[j];
      }
      // The EMA tracks the *unbiased* variance (n/(n-1) correction), while
      // normalization above uses the biased batch variance — same convention
      // as torch.nn.BatchNorm1d, so eval-mode outputs match training stats.
      const double unbiased_var =
          var * static_cast<double>(batch) / static_cast<double>(batch - 1);
      running_mean_[j] =
          (1.0f - momentum_) * running_mean_[j] + momentum_ * static_cast<float>(mean);
      running_var_[j] =
          (1.0f - momentum_) * running_var_[j] + momentum_ * static_cast<float>(unbiased_var);
    }
  } else {
    for (std::size_t j = 0; j < features_; ++j) {
      const float inv_std = 1.0f / std::sqrt(running_var_[j] + eps_);
      cached_inv_std_[j] = inv_std;
      for (std::size_t b = 0; b < batch; ++b) {
        const float xh = (x(b, j) - running_mean_[j]) * inv_std;
        cached_xhat_(b, j) = xh;
        y(b, j) = gamma_.value[j] * xh + beta_.value[j];
      }
    }
  }
  return y;
}

Tensor BatchNorm1d::backward(const Tensor& grad_out) {
  const std::size_t batch = grad_out.size(0);
  Tensor dx(grad_out.shape());
  const float n = static_cast<float>(batch);
  for (std::size_t j = 0; j < features_; ++j) {
    float dgamma = 0.0f, dbeta = 0.0f;
    for (std::size_t b = 0; b < batch; ++b) {
      dgamma += grad_out(b, j) * cached_xhat_(b, j);
      dbeta += grad_out(b, j);
    }
    gamma_.grad[j] += dgamma;
    beta_.grad[j] += dbeta;
    const float g = gamma_.value[j] * cached_inv_std_[j];
    if (training_ && batch > 1) {
      // Full batch-norm backward: dx = g/n * (n·dy − Σdy − x̂·Σ(dy·x̂))
      for (std::size_t b = 0; b < batch; ++b) {
        dx(b, j) = g / n * (n * grad_out(b, j) - dbeta - cached_xhat_(b, j) * dgamma);
      }
    } else {
      for (std::size_t b = 0; b < batch; ++b) dx(b, j) = g * grad_out(b, j);
    }
  }
  return dx;
}

void BatchNorm1d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

void BatchNorm1d::collect_buffers(std::vector<Tensor*>& out) {
  out.push_back(&running_mean_);
  out.push_back(&running_var_);
}

// --- Dropout -------------------------------------------------------------------

Dropout::Dropout(float p, std::uint64_t seed) : p_(p), rng_(seed) {
  OF_CHECK_MSG(p >= 0.0f && p < 1.0f, "dropout probability must be in [0,1), got " << p);
}

Tensor Dropout::forward(const Tensor& x) {
  if (!training_ || p_ == 0.0f) {
    mask_ = Tensor();
    return x;
  }
  mask_ = Tensor(x.shape());
  Tensor y = x;
  const float keep_scale = 1.0f / (1.0f - p_);
  for (std::size_t i = 0; i < y.numel(); ++i) {
    const float m = rng_.bernoulli(p_) ? 0.0f : keep_scale;
    mask_[i] = m;
    y[i] *= m;
  }
  return y;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (mask_.empty()) return grad_out;
  Tensor g = grad_out;
  g.mul_(mask_);
  return g;
}

// --- ResidualBlock ---------------------------------------------------------------

ResidualBlock::ResidualBlock(std::size_t dim, Rng& rng, std::string label) {
  body_.emplace<Linear>(dim, dim, rng, label + ".fc1");
  body_.emplace<BatchNorm1d>(dim, 0.1f, 1e-5f, label + ".bn1");
  body_.emplace<ReLU>();
  body_.emplace<Linear>(dim, dim, rng, label + ".fc2");
  body_.emplace<BatchNorm1d>(dim, 0.1f, 1e-5f, label + ".bn2");
}

Tensor ResidualBlock::forward(const Tensor& x) {
  Tensor pre = body_.forward(x);
  pre.add_(x);
  cached_pre_relu_ = pre;
  for (auto& v : pre.vec())
    if (v < 0.0f) v = 0.0f;
  return pre;
}

Tensor ResidualBlock::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.numel(); ++i)
    if (cached_pre_relu_[i] <= 0.0f) g[i] = 0.0f;
  Tensor g_body = body_.backward(g);
  g_body.add_(g);  // skip-connection gradient
  return g_body;
}

void ResidualBlock::collect_parameters(std::vector<Parameter*>& out) {
  body_.collect_parameters(out);
}

void ResidualBlock::collect_buffers(std::vector<Tensor*>& out) {
  body_.collect_buffers(out);
}

void ResidualBlock::set_training(bool training) {
  Module::set_training(training);
  body_.set_training(training);
}

}  // namespace of::nn
