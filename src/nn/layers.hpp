// Concrete layers: Linear, activations, BatchNorm1d, Dropout, residual MLP
// block. Each implements the exact backward formula for its forward pass.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/module.hpp"

namespace of::nn {

// Fully connected layer: y = x·W + b, W of shape (in, out).
class Linear final : public Module {
 public:
  Linear(std::size_t in, std::size_t out, Rng& rng, std::string label = "linear");

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  std::string name() const override { return "Linear"; }

  Parameter& weight() noexcept { return weight_; }
  Parameter& bias() noexcept { return bias_; }
  // Mark this layer as a classification head (FedPer keeps it local).
  void mark_head() noexcept { weight_.is_head = bias_.is_head = true; }

 private:
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
};

class ReLU final : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
};

class Tanh final : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "Tanh"; }

 private:
  Tensor cached_output_;
};

// HardSwish: x * relu6(x + 3) / 6 — MobileNetV3's activation.
class HardSwish final : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "HardSwish"; }

 private:
  Tensor cached_input_;
};

// 1-D batch normalization over the feature dimension.
// Training mode normalizes by batch statistics and updates running
// estimates; eval mode uses the running estimates. The affine gamma/beta
// are tagged `is_batchnorm` so FedBN can keep them local.
class BatchNorm1d final : public Module {
 public:
  BatchNorm1d(std::size_t features, float momentum = 0.1f, float eps = 1e-5f,
              std::string label = "bn");

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_buffers(std::vector<Tensor*>& out) override;
  std::string name() const override { return "BatchNorm1d"; }

  const Tensor& running_mean() const noexcept { return running_mean_; }
  const Tensor& running_var() const noexcept { return running_var_; }

 private:
  std::size_t features_;
  float momentum_;
  float eps_;
  Parameter gamma_;
  Parameter beta_;
  Tensor running_mean_;
  Tensor running_var_;
  // Caches for backward.
  Tensor cached_xhat_;
  Tensor cached_inv_std_;  // per-feature 1/sqrt(var+eps)
};

// Inverted dropout: scales by 1/(1-p) at train time so eval is identity.
// Owns its RNG (seeded at construction) so the layer's lifetime is
// self-contained and runs stay reproducible.
class Dropout final : public Module {
 public:
  Dropout(float p, std::uint64_t seed);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "Dropout"; }

 private:
  float p_;
  Rng rng_;
  Tensor mask_;
};

// Residual MLP block: y = ReLU(x + F(x)) where
// F = Linear → BN → ReLU → Linear → BN. Width-preserving, so the skip is
// the identity. This is the architectural signature the "resnet18_mini"
// zoo model uses in place of conv residual blocks.
class ResidualBlock final : public Module {
 public:
  ResidualBlock(std::size_t dim, Rng& rng, std::string label = "res");

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_buffers(std::vector<Tensor*>& out) override;
  void set_training(bool training) override;
  std::string name() const override { return "ResidualBlock"; }

 private:
  Sequential body_;
  Tensor cached_pre_relu_;
};

}  // namespace of::nn
