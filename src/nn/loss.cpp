#include "nn/loss.hpp"

#include <cmath>

#include "common/check.hpp"

namespace of::nn {

Tensor softmax(const Tensor& logits) {
  OF_CHECK_MSG(logits.ndim() == 2, "softmax expects (batch, classes), got "
                                       << logits.shape_string());
  const std::size_t batch = logits.size(0), classes = logits.size(1);
  Tensor out(logits.shape());
  for (std::size_t b = 0; b < batch; ++b) {
    float mx = logits(b, 0);
    for (std::size_t c = 1; c < classes; ++c) mx = std::max(mx, logits(b, c));
    double denom = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      const float e = std::exp(logits(b, c) - mx);
      out(b, c) = e;
      denom += e;
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::size_t c = 0; c < classes; ++c) out(b, c) *= inv;
  }
  return out;
}

LossGrad softmax_cross_entropy(const Tensor& logits, const std::vector<std::size_t>& labels) {
  const std::size_t batch = logits.size(0), classes = logits.size(1);
  OF_CHECK_MSG(labels.size() == batch,
               "labels size " << labels.size() << " vs batch " << batch);
  Tensor probs = softmax(logits);
  double loss = 0.0;
  for (std::size_t b = 0; b < batch; ++b) {
    OF_CHECK_MSG(labels[b] < classes, "label " << labels[b] << " >= classes " << classes);
    loss -= std::log(std::max(probs(b, labels[b]), 1e-12f));
  }
  LossGrad lg;
  lg.loss = static_cast<float>(loss / static_cast<double>(batch));
  lg.grad = std::move(probs);
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    lg.grad(b, labels[b]) -= 1.0f;
    for (std::size_t c = 0; c < classes; ++c) lg.grad(b, c) *= inv_batch;
  }
  return lg;
}

LossGrad mse_loss(const Tensor& pred, const Tensor& target) {
  OF_CHECK_MSG(pred.same_shape(target), "mse_loss shape mismatch");
  LossGrad lg;
  lg.grad = pred - target;
  lg.loss = lg.grad.l2_norm_squared() / static_cast<float>(pred.numel());
  lg.grad.scale_(2.0f / static_cast<float>(pred.numel()));
  return lg;
}

float accuracy(const Tensor& logits, const std::vector<std::size_t>& labels) {
  const auto preds = logits.argmax_rows();
  OF_CHECK_MSG(preds.size() == labels.size(), "accuracy: batch mismatch");
  if (preds.empty()) return 0.0f;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i)
    if (preds[i] == labels[i]) ++correct;
  return static_cast<float>(correct) / static_cast<float>(preds.size());
}

}  // namespace of::nn
