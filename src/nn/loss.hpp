// Loss functions and classification metrics. Losses return both the scalar
// loss and dL/dlogits so callers drive Module::backward directly.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace of::nn {

using tensor::Tensor;

struct LossGrad {
  float loss = 0.0f;
  Tensor grad;  // same shape as the network output
};

// Row-wise softmax of a (batch, classes) logits tensor.
Tensor softmax(const Tensor& logits);

// Mean cross-entropy over the batch with fused softmax backward:
// grad = (softmax(logits) - onehot(labels)) / batch.
LossGrad softmax_cross_entropy(const Tensor& logits, const std::vector<std::size_t>& labels);

// Mean squared error: loss = mean((pred-target)^2), grad = 2(pred-target)/n.
LossGrad mse_loss(const Tensor& pred, const Tensor& target);

// Fraction of rows whose argmax equals the label.
float accuracy(const Tensor& logits, const std::vector<std::size_t>& labels);

}  // namespace of::nn
