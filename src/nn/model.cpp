#include "nn/model.hpp"

namespace of::nn {

Model::Model(std::unique_ptr<Sequential> body, std::size_t feature_boundary)
    : body_(std::move(body)), feature_boundary_(feature_boundary) {
  OF_CHECK_MSG(feature_boundary_ <= body_->size(),
               "feature boundary " << feature_boundary_ << " beyond module count "
                                   << body_->size());
}

void Model::build_caches() {
  if (caches_built_) return;
  params_cache_.clear();
  body_->collect_parameters(params_cache_);
  buffers_cache_.clear();
  body_->collect_buffers(buffers_cache_);
  caches_built_ = true;
}

Tensor Model::forward(const Tensor& x) {
  OF_CHECK_MSG(valid(), "forward on empty Model");
  return body_->forward(x);
}

Tensor Model::backward(const Tensor& grad_out) { return body_->backward(grad_out); }

Tensor Model::features(const Tensor& x) {
  OF_CHECK_MSG(valid(), "features on empty Model");
  Tensor h = x;
  for (std::size_t i = 0; i < feature_boundary_; ++i) h = body_->at(i).forward(h);
  return h;
}

Tensor Model::features_backward(const Tensor& grad_features) {
  Tensor g = grad_features;
  for (std::size_t i = feature_boundary_; i-- > 0;) g = body_->at(i).backward(g);
  return g;
}

const std::vector<Parameter*>& Model::parameters() {
  build_caches();
  return params_cache_;
}

std::vector<Tensor> Model::parameter_values() {
  std::vector<Tensor> out;
  out.reserve(parameters().size());
  for (auto* p : parameters()) out.push_back(p->value);
  return out;
}

void Model::set_parameter_values(const std::vector<Tensor>& values) {
  auto& ps = parameters();
  OF_CHECK_MSG(values.size() == ps.size(),
               "parameter count mismatch: " << values.size() << " vs " << ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    OF_CHECK_MSG(values[i].same_shape(ps[i]->value),
                 "parameter " << ps[i]->name << " shape mismatch");
    ps[i]->value = values[i];
  }
}

const std::vector<Tensor*>& Model::buffers() {
  build_caches();
  return buffers_cache_;
}

void Model::zero_grad() {
  for (auto* p : parameters()) p->grad.zero_();
}

std::size_t Model::num_scalars() {
  std::size_t n = 0;
  for (auto* p : parameters()) n += p->value.numel();
  return n;
}

Tensor Model::flat_parameters() {
  std::vector<Tensor> vals;
  vals.reserve(parameters().size());
  for (auto* p : parameters()) vals.push_back(p->value);
  return tensor::flatten_all(vals);
}

void Model::set_flat_parameters(const Tensor& flat) {
  std::size_t off = 0;
  for (auto* p : parameters()) {
    OF_CHECK_MSG(off + p->value.numel() <= flat.numel(), "flat parameter vector too short");
    std::copy_n(flat.data() + off, p->value.numel(), p->value.data());
    off += p->value.numel();
  }
  OF_CHECK_MSG(off == flat.numel(), "flat parameter vector too long");
}

Tensor Model::flat_gradients() {
  std::vector<Tensor> grads;
  grads.reserve(parameters().size());
  for (auto* p : parameters()) grads.push_back(p->grad);
  return tensor::flatten_all(grads);
}

void Model::set_flat_gradients(const Tensor& flat) {
  std::size_t off = 0;
  for (auto* p : parameters()) {
    OF_CHECK_MSG(off + p->grad.numel() <= flat.numel(), "flat gradient vector too short");
    std::copy_n(flat.data() + off, p->grad.numel(), p->grad.data());
    off += p->grad.numel();
  }
  OF_CHECK_MSG(off == flat.numel(), "flat gradient vector too long");
}

void Model::set_training(bool training) { body_->set_training(training); }

Model Model::clone() const {
  OF_CHECK_MSG(maker_ != nullptr, "Model::clone requires a maker (set by the zoo factory)");
  Model copy = maker_();
  // const_cast is safe: parameter_values()/buffers() only build caches.
  auto& self = const_cast<Model&>(*this);
  copy.set_parameter_values(self.parameter_values());
  const auto& src_bufs = self.buffers();
  const auto& dst_bufs = copy.buffers();
  OF_CHECK(src_bufs.size() == dst_bufs.size());
  for (std::size_t i = 0; i < src_bufs.size(); ++i) *dst_bufs[i] = *src_bufs[i];
  return copy;
}

}  // namespace of::nn
