// Model: a Sequential body plus the bookkeeping FL algorithms need —
// flat parameter-vector views, a feature/head split (for FedPer & Moon),
// BatchNorm buffer access (for FedBN), and cloning (for Moon/Ditto, which
// keep frozen copies of previous/global models).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/module.hpp"

namespace of::nn {

class Model {
 public:
  Model() = default;
  // `feature_boundary` is the index of the first head module in `body`;
  // modules [0, feature_boundary) form the feature extractor.
  Model(std::unique_ptr<Sequential> body, std::size_t feature_boundary);

  Model(Model&&) noexcept = default;
  Model& operator=(Model&&) noexcept = default;

  bool valid() const noexcept { return body_ != nullptr; }

  // --- forward/backward -------------------------------------------------
  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& grad_out);
  // Forward through the feature extractor only (modules before the head).
  Tensor features(const Tensor& x);
  // Backward through the feature extractor only; pairs with features().
  Tensor features_backward(const Tensor& grad_features);

  // --- parameters ---------------------------------------------------------
  const std::vector<Parameter*>& parameters();
  std::vector<Tensor> parameter_values();
  void set_parameter_values(const std::vector<Tensor>& values);
  // Non-parameter state (BatchNorm running statistics).
  const std::vector<Tensor*>& buffers();
  void zero_grad();
  std::size_t num_scalars();  // total trainable scalar count

  // Flat views over the whole parameter list — the unit that crosses the
  // wire in every communicator/compressor/privacy path.
  Tensor flat_parameters();
  void set_flat_parameters(const Tensor& flat);
  Tensor flat_gradients();
  void set_flat_gradients(const Tensor& flat);

  void set_training(bool training);

  // Architecture-preserving deep copy (parameters + buffers).
  Model clone() const;
  void set_maker(std::function<Model()> maker) { maker_ = std::move(maker); }

 private:
  std::unique_ptr<Sequential> body_;
  std::size_t feature_boundary_ = 0;
  std::vector<Parameter*> params_cache_;
  std::vector<Tensor*> buffers_cache_;
  bool caches_built_ = false;
  std::function<Model()> maker_;

  void build_caches();
};

// Factory signature used by the config Registry and by algorithms that
// need blank architecture copies.
using ModelFactory = std::function<Model(std::uint64_t seed)>;

}  // namespace of::nn
