// Neural-network module abstraction — the libtorch stand-in for OmniFed-C++.
//
// Modules own Parameters (value + grad), cache whatever the backward pass
// needs during forward, and propagate gradients by hand-derived formulas.
// Inputs/activations are 2-D tensors of shape (batch, features).
//
// Parameters carry role tags (`is_batchnorm`, `is_head`) so that
// parameter-filtering FL algorithms (FedBN keeps BatchNorm local, FedPer
// keeps the classification head local) can select what crosses the wire
// without knowing the architecture.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace of::nn {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;
  bool is_batchnorm = false;  // BatchNorm affine weight/bias (FedBN filter)
  bool is_head = false;       // classification-head parameter (FedPer filter)

  explicit Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}
};

class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  virtual ~Module() = default;

  // Forward pass; must cache activations needed by backward.
  virtual Tensor forward(const Tensor& x) = 0;
  // Backward pass; accumulates into parameter .grad and returns dL/dx.
  virtual Tensor backward(const Tensor& grad_out) = 0;
  // Register owned parameters (in a stable, deterministic order).
  virtual void collect_parameters(std::vector<Parameter*>& out) { (void)out; }
  // Register non-trainable state tensors (BatchNorm running statistics).
  virtual void collect_buffers(std::vector<Tensor*>& out) { (void)out; }
  // Train/eval mode switch (BatchNorm, Dropout).
  virtual void set_training(bool training) { training_ = training; }
  bool training() const noexcept { return training_; }
  virtual std::string name() const = 0;

 protected:
  bool training_ = true;
};

// Ordered container of modules; forward/backward chain through them.
class Sequential final : public Module {
 public:
  Sequential() = default;
  explicit Sequential(std::vector<std::unique_ptr<Module>> mods) : mods_(std::move(mods)) {}

  template <typename M, typename... Args>
  M& emplace(Args&&... args) {
    auto m = std::make_unique<M>(std::forward<Args>(args)...);
    M& ref = *m;
    mods_.push_back(std::move(m));
    return ref;
  }
  void push(std::unique_ptr<Module> m) { mods_.push_back(std::move(m)); }

  std::size_t size() const noexcept { return mods_.size(); }
  Module& at(std::size_t i) { return *mods_.at(i); }

  Tensor forward(const Tensor& x) override {
    Tensor h = x;
    for (auto& m : mods_) h = m->forward(h);
    return h;
  }

  Tensor backward(const Tensor& grad_out) override {
    Tensor g = grad_out;
    for (auto it = mods_.rbegin(); it != mods_.rend(); ++it) g = (*it)->backward(g);
    return g;
  }

  void collect_parameters(std::vector<Parameter*>& out) override {
    for (auto& m : mods_) m->collect_parameters(out);
  }

  void collect_buffers(std::vector<Tensor*>& out) override {
    for (auto& m : mods_) m->collect_buffers(out);
  }

  void set_training(bool training) override {
    Module::set_training(training);
    for (auto& m : mods_) m->set_training(training);
  }

  std::string name() const override { return "Sequential"; }

 private:
  std::vector<std::unique_ptr<Module>> mods_;
};

}  // namespace of::nn
