#include "nn/optimizer.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace of::nn {

Optimizer::Optimizer(std::vector<Parameter*> params, float lr)
    : params_(std::move(params)), lr_(lr) {
  OF_CHECK_MSG(!params_.empty(), "optimizer created with no parameters");
  OF_CHECK_MSG(lr > 0.0f, "learning rate must be positive, got " << lr);
}

void Optimizer::zero_grad() {
  for (auto* p : params_) p->grad.zero_();
}

SGD::SGD(std::vector<Parameter*> params, float lr, float momentum, float weight_decay,
         bool nesterov)
    : Optimizer(std::move(params), lr),
      momentum_(momentum),
      weight_decay_(weight_decay),
      nesterov_(nesterov) {
  velocity_.reserve(params_.size());
  for (auto* p : params_) velocity_.emplace_back(p->value.shape());
}

void SGD::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    Tensor& v = velocity_[i];
    float* g = p.grad.data();
    float* w = p.value.data();
    float* vel = v.data();
    const std::size_t n = p.value.numel();
    for (std::size_t j = 0; j < n; ++j) {
      float grad = g[j] + weight_decay_ * w[j];
      if (momentum_ != 0.0f) {
        vel[j] = momentum_ * vel[j] + grad;
        grad = nesterov_ ? grad + momentum_ * vel[j] : vel[j];
      }
      w[j] -= lr_ * grad;
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1, float beta2, float eps,
           float weight_decay, bool decoupled)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay),
      decoupled_(decoupled) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (auto* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    float* g = p.grad.data();
    float* w = p.value.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const std::size_t n = p.value.numel();
    for (std::size_t j = 0; j < n; ++j) {
      float grad = g[j];
      if (!decoupled_) grad += weight_decay_ * w[j];  // classic L2
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad * grad;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      if (decoupled_) w[j] -= lr_ * weight_decay_ * w[j];  // AdamW decay
      w[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

MultiStepLR::MultiStepLR(Optimizer& opt, std::vector<std::size_t> milestones, float gamma)
    : LRScheduler(opt), milestones_(std::move(milestones)), gamma_(gamma) {
  std::sort(milestones_.begin(), milestones_.end());
}

void MultiStepLR::on_epoch(std::size_t epoch) {
  // LR = base * gamma^(number of milestones passed).
  std::size_t passed = 0;
  for (std::size_t m : milestones_)
    if (epoch >= m) ++passed;
  opt_->set_lr(base_lr_ * std::pow(gamma_, static_cast<float>(passed)));
}

StepLR::StepLR(Optimizer& opt, std::size_t step_size, float gamma)
    : LRScheduler(opt), step_size_(step_size), gamma_(gamma) {
  OF_CHECK_MSG(step_size_ > 0, "StepLR step_size must be > 0");
}

void StepLR::on_epoch(std::size_t epoch) {
  opt_->set_lr(base_lr_ * std::pow(gamma_, static_cast<float>(epoch / step_size_)));
}

}  // namespace of::nn
