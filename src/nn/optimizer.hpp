// Optimizers (SGD/momentum, Adam, AdamW) and learning-rate schedulers.
// These mirror the torch.optim configurations the paper's experiments use:
// SGD with momentum + weight decay + multi-step LR decay for the vision
// models, AdamW as DiLoCo's inner optimizer.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/module.hpp"

namespace of::nn {

class Optimizer {
 public:
  Optimizer(std::vector<Parameter*> params, float lr);
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  virtual void step() = 0;
  void zero_grad();

  float lr() const noexcept { return lr_; }
  void set_lr(float lr) noexcept { lr_ = lr; }
  const std::vector<Parameter*>& params() const noexcept { return params_; }

 protected:
  std::vector<Parameter*> params_;
  float lr_;
};

// SGD with (optionally Nesterov) momentum and L2 weight decay.
class SGD final : public Optimizer {
 public:
  SGD(std::vector<Parameter*> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f, bool nesterov = false);
  void step() override;

  // Expose momentum buffers: DGC's momentum-correction compressor and the
  // Scaffold reset path need them.
  std::vector<Tensor>& momentum_buffers() noexcept { return velocity_; }

 private:
  float momentum_;
  float weight_decay_;
  bool nesterov_;
  std::vector<Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, float lr, float beta1 = 0.9f, float beta2 = 0.999f,
       float eps = 1e-8f, float weight_decay = 0.0f, bool decoupled = false);
  void step() override;

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  bool decoupled_;  // true = AdamW-style decoupled decay
  std::size_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

// AdamW = Adam with decoupled weight decay (Loshchilov & Hutter).
class AdamW final : public Adam {
 public:
  AdamW(std::vector<Parameter*> params, float lr, float beta1 = 0.9f, float beta2 = 0.999f,
        float eps = 1e-8f, float weight_decay = 0.01f)
      : Adam(std::move(params), lr, beta1, beta2, eps, weight_decay, /*decoupled=*/true) {}
};

// --- LR schedulers ------------------------------------------------------------

class LRScheduler {
 public:
  explicit LRScheduler(Optimizer& opt) : opt_(&opt), base_lr_(opt.lr()) {}
  virtual ~LRScheduler() = default;
  // Called once per completed epoch with the 0-based epoch index.
  virtual void on_epoch(std::size_t epoch) = 0;

 protected:
  Optimizer* opt_;
  float base_lr_;
};

// Multiply LR by `gamma` at each milestone epoch (paper's decay schedule,
// e.g. ×0.1 at epochs 100/150/200 for ResNet18-CIFAR10).
class MultiStepLR final : public LRScheduler {
 public:
  MultiStepLR(Optimizer& opt, std::vector<std::size_t> milestones, float gamma);
  void on_epoch(std::size_t epoch) override;

 private:
  std::vector<std::size_t> milestones_;
  float gamma_;
};

// Multiply LR by `gamma` every `step_size` epochs (MobileNetV3's schedule).
class StepLR final : public LRScheduler {
 public:
  StepLR(Optimizer& opt, std::size_t step_size, float gamma);
  void on_epoch(std::size_t epoch) override;

 private:
  std::size_t step_size_;
  float gamma_;
};

}  // namespace of::nn
