#include "nn/zoo.hpp"

#include <memory>

#include "common/check.hpp"
#include "nn/conv.hpp"
#include "nn/layers.hpp"

namespace of::nn::zoo {
namespace {

// resnet18_mini: stem Linear+BN+ReLU, two width-preserving residual blocks,
// linear head. ~31k scalars at input_dim=64, classes=10.
Model build_resnet18_mini(std::size_t in, std::size_t classes, Rng& rng) {
  constexpr std::size_t width = 80;
  auto body = std::make_unique<Sequential>();
  body->emplace<Linear>(in, width, rng, "stem.fc");
  body->emplace<BatchNorm1d>(width, 0.1f, 1e-5f, "stem.bn");
  body->emplace<ReLU>();
  body->emplace<ResidualBlock>(width, rng, "block1");
  body->emplace<ResidualBlock>(width, rng, "block2");
  const std::size_t boundary = body->size();
  auto& head = body->emplace<Linear>(width, classes, rng, "head.fc");
  head.mark_head();
  return Model(std::move(body), boundary);
}

// vgg11_mini: plain wide MLP — the biggest parameter count in the zoo,
// mirroring VGG11 being the heaviest model in the paper's Table 3b.
Model build_vgg11_mini(std::size_t in, std::size_t classes, Rng& rng) {
  auto body = std::make_unique<Sequential>();
  body->emplace<Linear>(in, 256, rng, "fc1");
  body->emplace<ReLU>();
  body->emplace<Linear>(256, 256, rng, "fc2");
  body->emplace<ReLU>();
  body->emplace<Linear>(256, 256, rng, "fc3");
  body->emplace<ReLU>();
  body->emplace<Linear>(256, 128, rng, "fc4");
  body->emplace<ReLU>();
  const std::size_t boundary = body->size();
  auto& head = body->emplace<Linear>(128, classes, rng, "head.fc");
  head.mark_head();
  return Model(std::move(body), boundary);
}

// alexnet_mini: two wide layers with dropout, mid-sized.
Model build_alexnet_mini(std::size_t in, std::size_t classes, Rng& rng) {
  auto body = std::make_unique<Sequential>();
  body->emplace<Linear>(in, 192, rng, "fc1");
  body->emplace<ReLU>();
  body->emplace<Dropout>(0.25f, rng.next_u64());
  body->emplace<Linear>(192, 160, rng, "fc2");
  body->emplace<ReLU>();
  body->emplace<Dropout>(0.25f, rng.next_u64());
  body->emplace<Linear>(160, 128, rng, "fc3");
  body->emplace<ReLU>();
  const std::size_t boundary = body->size();
  auto& head = body->emplace<Linear>(128, classes, rng, "head.fc");
  head.mark_head();
  return Model(std::move(body), boundary);
}

// mobilenetv3_mini: narrow bottleneck stack with BN and HardSwish,
// the smallest parameter count.
Model build_mobilenetv3_mini(std::size_t in, std::size_t classes, Rng& rng) {
  auto body = std::make_unique<Sequential>();
  body->emplace<Linear>(in, 48, rng, "stem.fc");
  body->emplace<BatchNorm1d>(48, 0.1f, 1e-5f, "stem.bn");
  body->emplace<HardSwish>();
  body->emplace<Linear>(48, 64, rng, "bneck1.fc");
  body->emplace<BatchNorm1d>(64, 0.1f, 1e-5f, "bneck1.bn");
  body->emplace<HardSwish>();
  body->emplace<Linear>(64, 48, rng, "bneck2.fc");
  body->emplace<BatchNorm1d>(48, 0.1f, 1e-5f, "bneck2.bn");
  body->emplace<HardSwish>();
  const std::size_t boundary = body->size();
  auto& head = body->emplace<Linear>(48, classes, rng, "head.fc");
  head.mark_head();
  return Model(std::move(body), boundary);
}

// cnn_mini: a genuinely convolutional stack (the paper's models are CNNs).
// Interprets the input as a 1×H×W image with H = W = sqrt(dim). Slower per
// sample than the MLP stand-ins — used by tests/examples, not the
// wall-clock benches.
Model build_cnn_mini(std::size_t in, std::size_t classes, Rng& rng) {
  const auto side = static_cast<std::size_t>(std::llround(std::sqrt(
      static_cast<double>(in))));
  OF_CHECK_MSG(side * side == in && side >= 4,
               "cnn_mini needs a square input dimension >= 16, got " << in);
  ImageGeom g{1, side, side};
  auto body = std::make_unique<Sequential>();
  auto& c1 = body->emplace<Conv2d>(g, 8, 3, 1, rng, "conv1");
  body->emplace<ReLU>();
  auto& p1 = body->emplace<MaxPool2d>(c1.out_geom());
  auto& c2 = body->emplace<Conv2d>(p1.out_geom(), 16, 3, 1, rng, "conv2");
  body->emplace<ReLU>();
  auto& p2 = body->emplace<MaxPool2d>(c2.out_geom());
  const std::size_t flat = p2.out_geom().features();
  body->emplace<LayerNorm>(flat, 1e-5f, "ln");
  const std::size_t boundary = body->size();
  auto& head = body->emplace<Linear>(flat, classes, rng, "head.fc");
  head.mark_head();
  return Model(std::move(body), boundary);
}

// Tiny MLP for unit tests and the quickstart example.
Model build_mlp_tiny(std::size_t in, std::size_t classes, Rng& rng) {
  auto body = std::make_unique<Sequential>();
  body->emplace<Linear>(in, 32, rng, "fc1");
  body->emplace<ReLU>();
  const std::size_t boundary = body->size();
  auto& head = body->emplace<Linear>(32, classes, rng, "head.fc");
  head.mark_head();
  return Model(std::move(body), boundary);
}

}  // namespace

Model make_model(const std::string& name, std::size_t input_dim, std::size_t num_classes,
                 std::uint64_t seed) {
  Rng rng(seed);
  Model m;
  if (name == "resnet18_mini") m = build_resnet18_mini(input_dim, num_classes, rng);
  else if (name == "vgg11_mini") m = build_vgg11_mini(input_dim, num_classes, rng);
  else if (name == "alexnet_mini") m = build_alexnet_mini(input_dim, num_classes, rng);
  else if (name == "mobilenetv3_mini") m = build_mobilenetv3_mini(input_dim, num_classes, rng);
  else if (name == "mlp_tiny") m = build_mlp_tiny(input_dim, num_classes, rng);
  else if (name == "cnn_mini") m = build_cnn_mini(input_dim, num_classes, rng);
  else OF_CHECK_MSG(false, "unknown zoo model '" << name << "'");
  m.set_maker([name, input_dim, num_classes, seed] {
    return make_model(name, input_dim, num_classes, seed);
  });
  return m;
}

std::vector<std::string> model_names() {
  return {"resnet18_mini", "vgg11_mini",      "alexnet_mini",
          "mobilenetv3_mini", "mlp_tiny", "cnn_mini"};
}

ModelFactory make_factory(std::string name, std::size_t input_dim, std::size_t num_classes) {
  return [name = std::move(name), input_dim, num_classes](std::uint64_t seed) {
    return make_model(name, input_dim, num_classes, seed);
  };
}

}  // namespace of::nn::zoo
