// Model zoo: miniature stand-ins for the paper's four evaluation
// architectures (ResNet18, VGG11, AlexNet, MobileNetV3). See DESIGN.md §1
// for the substitution rationale. Each preserves the architectural feature
// the FL algorithms key on:
//   resnet18_mini    — residual blocks + BatchNorm (FedBN has BN params to keep)
//   vgg11_mini       — wide plain MLP, the largest parameter count
//   alexnet_mini     — wide MLP with Dropout, second-largest
//   mobilenetv3_mini — narrow bottleneck MLP with BN + HardSwish, smallest
// Parameter-count ordering (VGG > Alex > Res > Mob) matches the ordering
// the paper's Table 3b privacy-overhead measurements imply.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/model.hpp"

namespace of::nn::zoo {

// Construct a model by zoo name. `input_dim` is the feature dimension of
// the (synthetic) dataset, `num_classes` the label count. The same seed
// produces bit-identical initial weights — FL requires all participants to
// start from a common model.
Model make_model(const std::string& name, std::size_t input_dim, std::size_t num_classes,
                 std::uint64_t seed);

// All registered zoo names.
std::vector<std::string> model_names();

// A ready-made ModelFactory for the Engine/Registry.
ModelFactory make_factory(std::string name, std::size_t input_dim, std::size_t num_classes);

}  // namespace of::nn::zoo
