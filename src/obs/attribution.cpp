#include "obs/attribution.hpp"

#include <algorithm>

namespace of::obs {

const char* to_string(Cause c) {
  switch (c) {
    case Cause::Compute: return "compute";
    case Cause::Serialize: return "serialize";
    case Cause::Send: return "send";
    case Cause::QueueWait: return "queue_wait";
    case Cause::Aggregate: return "aggregate";
  }
  return "?";
}

namespace {

// Phase digest indices (context.hpp): 0 train, 1 encode, 2 send, 3 recv,
// 4 decode.
std::uint64_t busy_ns(const PhaseDigest (&p)[kPhaseCount]) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kPhaseCount; ++i) total += p[i].total_ns;
  return total;
}

}  // namespace

void Attribution::observe_client(std::uint32_t rank, std::uint32_t round,
                                 const PhaseDigest (&phases)[kPhaseCount],
                                 std::uint64_t round_span_id) {
  ClientRound cr;
  for (std::size_t i = 0; i < kPhaseCount; ++i) cr.phases[i] = phases[i];
  cr.span_id = round_span_id;

  pending_[round][static_cast<int>(rank)] = cr;
  latest_by_client_[static_cast<int>(rank)] = cr;
  // Bound the join window: drop rounds the coordinator will never ask for.
  while (pending_.size() > kJoinWindowRounds) pending_.erase(pending_.begin());

  LatencyHist& h = hists_[static_cast<int>(rank)];
  const std::uint64_t busy = busy_ns(phases);
  std::size_t w = 0;
  for (std::uint64_t v = busy; v != 0; v >>= 1) ++w;
  ++h.buckets[w];
  ++h.count;
  h.sum_ns += busy;
  if (round_span_id != 0) h.last_span = round_span_id;
}

std::optional<CriticalPath> Attribution::on_round(std::uint32_t round,
                                                  double round_seconds,
                                                  double aggregate_seconds) {
  // Exact join when the round's summaries arrived; otherwise fall back to
  // each client's latest row (async/serve tiers report client-local round
  // counters that need not align with the coordinator's).
  const std::map<int, ClientRound>* rows = nullptr;
  const auto it = pending_.find(round);
  if (it != pending_.end() && !it->second.empty()) rows = &it->second;
  else if (!latest_by_client_.empty()) rows = &latest_by_client_;
  if (rows == nullptr) return std::nullopt;

  int worst_rank = -1;
  std::uint64_t worst_busy = 0;
  const ClientRound* worst = nullptr;
  for (const auto& [rank, cr] : *rows) {
    const std::uint64_t busy = busy_ns(cr.phases);
    if (worst == nullptr || busy > worst_busy) {
      worst_rank = rank;
      worst_busy = busy;
      worst = &cr;
    }
  }

  CriticalPath cp;
  cp.round = round;
  cp.round_seconds = round_seconds;
  cp.aggregate_seconds = aggregate_seconds;

  // The bottleneck client's time, bucketed by cause.
  const double train_s = static_cast<double>(worst->phases[0].total_ns) / 1e9;
  const double ser_s = static_cast<double>(worst->phases[1].total_ns +
                                           worst->phases[4].total_ns) / 1e9;
  const double send_s = static_cast<double>(worst->phases[2].total_ns) / 1e9;
  const double wait_s = static_cast<double>(worst->phases[3].total_ns) / 1e9;
  const std::pair<Cause, double> buckets[] = {
      {Cause::Compute, train_s},
      {Cause::Serialize, ser_s},
      {Cause::Send, send_s},
      {Cause::QueueWait, wait_s},
      {Cause::Aggregate, aggregate_seconds},
  };
  const auto* winner = &buckets[0];
  for (const auto& b : buckets)
    if (b.second > winner->second) winner = &b;
  cp.cause = winner->first;
  cp.cause_seconds = winner->second;
  cp.client = cp.cause == Cause::Aggregate ? -1 : worst_rank;
  cp.client_seconds = static_cast<double>(worst_busy) / 1e9;
  cp.exemplar_span = cp.cause == Cause::Aggregate ? 0 : worst->span_id;

  pending_.erase(round);  // joined; free the stash
  latest_ = cp;
  history_.push_back(cp);
  while (history_.size() > kHistoryRounds) history_.pop_front();
  return cp;
}

void Attribution::reset() {
  pending_.clear();
  latest_by_client_.clear();
  hists_.clear();
  latest_.reset();
  history_.clear();
}

}  // namespace of::obs
