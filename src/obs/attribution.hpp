// of::obs round critical-path attribution (DESIGN.md §16) — joins the
// telemetry piggyback (per-client phase digests, clock-synced) with the
// coordinator's own round health to name, per round, the bottleneck client
// and the bottleneck phase.
//
// Model: a synchronous round's wall time is dominated by
//
//   max over clients( recv + decode + train + encode + send ) + aggregate
//
// so the bottleneck client is the one with the largest busy total for the
// round, and the cause is whichever bucket of that client's time — or the
// coordinator's aggregate span — is largest:
//
//   compute    = train            serialize = encode + decode
//   send       = send             queue_wait = recv (waiting on broadcast /
//                                              gather queues)
//   aggregate  = coordinator-side aggregation (client = -1)
//
// The engine is a plain value type owned by Fleet and mutated only under
// Fleet's mutex; it keeps a bounded per-round join window, a per-client
// round-latency histogram (log2 buckets, same shape as obs::Histogram) and
// the latest CriticalPath verdicts for /metrics, /fleet and /fleet.json.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "obs/context.hpp"
#include "refl/refl.hpp"

namespace of::obs {

enum class Cause : std::uint8_t {
  Compute,
  Serialize,
  Send,
  QueueWait,
  Aggregate,
};

const char* to_string(Cause c);

// One round's verdict. Exported as the `of_fleet_critical_path_*` families
// straight from this descriptor (telemetry.cpp prom_families), as a JSON
// object in /fleet.json, and as a health row on /fleet.
struct CriticalPath {
  std::uint32_t round = 0;
  // Bottleneck client's rank; -1 when the coordinator's aggregate phase
  // dominates.
  std::int32_t client = -1;
  Cause cause = Cause::Compute;
  double cause_seconds = 0.0;   // time in the winning bucket
  double client_seconds = 0.0;  // bottleneck client's total busy time
  double round_seconds = 0.0;   // coordinator wall time for the round
  double aggregate_seconds = 0.0;
  // Exemplar: the bottleneck client's round span id (v2 telemetry wire),
  // linking the verdict to the exact span in the merged trace. 0 = unknown.
  std::uint64_t exemplar_span = 0;
};

class Attribution {
 public:
  // Per-client per-round observation, fed from each stripped telemetry
  // summary (Fleet::record).
  void observe_client(std::uint32_t rank, std::uint32_t round,
                      const PhaseDigest (&phases)[kPhaseCount],
                      std::uint64_t round_span_id);

  // Coordinator-side round completion: join against the stashed client
  // rows for `round` (falling back to each client's latest row when the
  // exact round was never reported — async/serve tiers) and compute the
  // verdict. Returns nullopt when no client data exists at all.
  std::optional<CriticalPath> on_round(std::uint32_t round, double round_seconds,
                                       double aggregate_seconds);

  void reset();

  std::optional<CriticalPath> latest() const { return latest_; }
  const std::deque<CriticalPath>& history() const { return history_; }

  // Per-client round-latency histogram: log2 buckets over busy-time ns
  // (bucket i counts rounds with bit_width(busy_ns) == i — the same layout
  // as obs::Histogram, plain integers because Fleet's mutex already
  // serializes access).
  struct LatencyHist {
    static constexpr std::size_t kBuckets = 65;
    std::uint64_t buckets[kBuckets] = {};
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;
    std::uint64_t last_span = 0;  // exemplar: the client's latest round span
  };
  const std::map<int, LatencyHist>& client_hists() const { return hists_; }

  static constexpr std::size_t kJoinWindowRounds = 16;
  static constexpr std::size_t kHistoryRounds = 64;

 private:
  struct ClientRound {
    PhaseDigest phases[kPhaseCount];
    std::uint64_t span_id = 0;
  };

  std::map<std::uint32_t, std::map<int, ClientRound>> pending_;
  std::map<int, ClientRound> latest_by_client_;
  std::map<int, LatencyHist> hists_;
  std::optional<CriticalPath> latest_;
  std::deque<CriticalPath> history_;
};

}  // namespace of::obs

template <>
struct of::refl::EnumNames<of::obs::Cause> {
  static constexpr std::pair<of::obs::Cause, const char*> names[] = {
      {of::obs::Cause::Compute, "compute"},
      {of::obs::Cause::Serialize, "serialize"},
      {of::obs::Cause::Send, "send"},
      {of::obs::Cause::QueueWait, "queue_wait"},
      {of::obs::Cause::Aggregate, "aggregate"},
  };
};

// Exporter schema for the of_fleet_critical_path_* families. `cause` is an
// enum: skipped by the Prometheus family renderer (non-arithmetic) and
// rendered as its name string in JSON; the numeric twin `cause_index`
// would be redundant — the exposition carries the cause as a label on
// of_fleet_critical_path_info instead (telemetry.cpp).
template <>
struct of::refl::Reflect<of::obs::CriticalPath> {
  using S = of::obs::CriticalPath;
  OF_REFL_FIELDS(
      field("round", &S::round, 1),
      field("client", &S::client, 2),
      field("cause", &S::cause, 3),
      field("cause_seconds", &S::cause_seconds, 4),
      field("client_seconds", &S::client_seconds, 5),
      field("round_seconds", &S::round_seconds, 6),
      field("aggregate_seconds", &S::aggregate_seconds, 7),
      field("exemplar_span", &S::exemplar_span, 8).skip_export())
};
