// of::obs clock alignment — NTP-style offset estimation between a client's
// steady clock and the coordinator's (DESIGN.md §9).
//
// Each ping yields one sample: the client stamps t0, the coordinator
// answers with its own timestamp s, the client stamps t1 on receipt.
// Assuming the network delay is symmetric, the coordinator read its clock
// at the client-time midpoint (t0 + t1) / 2, so
//
//     offset = (t0 + t1) / 2 − s        (client clock − server clock)
//
// Asymmetric queuing skews the estimate by at most half the round-trip
// jitter, so the estimator keeps the sample with the smallest RTT — the
// one that spent the least time in queues (min-RTT filter, the classic
// NTP/PTP trick). Offsets feed the trace merge: subtracting a node's
// offset from its event timestamps lands them on the coordinator timeline.
#pragma once

#include <cstdint>

namespace of::obs {

// One ping/pong measurement, all in nanoseconds. t0/t1 are client steady
// clock (TraceRecorder::now_ns timebase); server_ns is the coordinator's.
struct ClockSample {
  std::int64_t t0_ns = 0;      // client: just before the ping left
  std::int64_t server_ns = 0;  // coordinator: when it answered
  std::int64_t t1_ns = 0;      // client: when the pong arrived
};

class OffsetEstimator {
 public:
  // Feed one sample; kept only if its RTT beats the best so far. Samples
  // with negative RTT (reordered or bogus) are dropped.
  void add(const ClockSample& s) noexcept {
    const std::int64_t rtt = s.t1_ns - s.t0_ns;
    if (rtt < 0) return;
    if (!valid_ || rtt < best_rtt_ns_) {
      valid_ = true;
      best_rtt_ns_ = rtt;
      // Average first to keep the midpoint exact in integer math.
      offset_ns_ = (s.t0_ns / 2 + s.t1_ns / 2 + (s.t0_ns % 2 + s.t1_ns % 2) / 2) - s.server_ns;
    }
  }

  bool valid() const noexcept { return valid_; }
  // Client clock minus coordinator clock, from the min-RTT sample.
  std::int64_t offset_ns() const noexcept { return offset_ns_; }
  std::int64_t rtt_ns() const noexcept { return best_rtt_ns_; }

 private:
  bool valid_ = false;
  std::int64_t best_rtt_ns_ = 0;
  std::int64_t offset_ns_ = 0;
};

}  // namespace of::obs
