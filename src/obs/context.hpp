// of::obs trace context — the per-thread state that turns isolated spans
// into a causally linked distributed trace (DESIGN.md §9).
//
// Every run gets one 64-bit trace id; every armed ScopedSpan gets a span id
// unique within the process (`lane << 32 | seq`, never zero). Spans form an
// intra-thread parent chain through a thread-local stack; cross-node edges
// are carried by TraceContext — the comm layer stamps current_context()
// into each outgoing frame header and calls adopt_remote_context() on
// receipt, so a client round span can name the server span that triggered
// it as its parent (ScopedSpan::link_remote_parent()).
//
// This header holds only plain data and thread-local state; the span API
// that consumes it lives in trace.hpp. Nothing here allocates, and the
// whole mechanism is inert (all-zero contexts) while tracing is disabled.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "refl/refl.hpp"

namespace of::obs {

// What travels in a comm frame header: enough to attach the receiver's
// spans to the sender's. All-zero means "no context" (tracing disabled or
// a sender that predates the field).
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint32_t round = 0;
};

// Per-phase running digest a client piggybacks to the coordinator: how many
// spans of this phase ran, their total and max duration. Cheap enough to
// update inline in ScopedSpan::end() on the enabled path.
struct PhaseDigest {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
};

// The five round-loop phases a telemetry summary digests (subset of Name).
inline constexpr std::size_t kPhaseCount = 5;
const char* phase_label(std::size_t i);  // "train", "encode", "send", "recv", "decode"

}  // namespace of::obs

template <>
struct of::refl::Reflect<of::obs::PhaseDigest> {
  OF_REFL_FIELDS(field("count", &of::obs::PhaseDigest::count, 1),
                 field("total_ns", &of::obs::PhaseDigest::total_ns, 2),
                 field("max_ns", &of::obs::PhaseDigest::max_ns, 3))
};

namespace of::obs {

namespace detail {

// Lane counter for span-id allocation: each recording thread claims one
// 32-bit lane, then counts sequentially within it. Ids are unique within
// the process and never zero.
inline std::atomic<std::uint32_t> g_span_lanes{0};

struct ThreadTraceState {
  std::uint64_t current_span = 0;  // innermost open span on this thread
  std::uint64_t remote_span = 0;   // last adopted cross-node parent
  std::uint64_t remote_trace = 0;
  std::uint32_t current_round = 0;
  std::uint64_t next_seq = 0;
  std::uint32_t lane = 0;                   // claimed lazily on first span
  PhaseDigest* phase_sink = nullptr;        // array[kPhaseCount] or nullptr
};

inline ThreadTraceState& tls() noexcept {
  thread_local ThreadTraceState st;
  return st;
}

inline std::uint64_t new_span_id(ThreadTraceState& st) noexcept {
  if (st.lane == 0)
    st.lane = g_span_lanes.fetch_add(1, std::memory_order_relaxed) + 1;
  return (static_cast<std::uint64_t>(st.lane) << 32) | ++st.next_seq;
}

inline std::atomic<std::uint64_t> g_run_trace_id{0};

}  // namespace detail

// The run-wide trace id, set by the Engine before node threads start.
inline void set_run_trace_id(std::uint64_t id) noexcept {
  detail::g_run_trace_id.store(id, std::memory_order_relaxed);
}
inline std::uint64_t run_trace_id() noexcept {
  return detail::g_run_trace_id.load(std::memory_order_relaxed);
}

// Remember a received frame's context as the pending cross-node parent for
// this thread. A zero span id (no context) is ignored.
inline void adopt_remote_context(const TraceContext& ctx) noexcept {
  if (ctx.span_id == 0) return;
  auto& st = detail::tls();
  st.remote_span = ctx.span_id;
  st.remote_trace = ctx.trace_id;
}

// Point this thread's span digests at `sink` (an array of kPhaseCount
// slots), or detach with nullptr. The digests are only touched on the
// enabled tracing path; training state never reads them.
inline void set_phase_sink(PhaseDigest* sink) noexcept {
  detail::tls().phase_sink = sink;
}

}  // namespace of::obs
