#include "obs/export.hpp"

#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace of::obs {
namespace {

// Nanosecond ticks as fixed-point microseconds ("12.345") — deterministic,
// locale-independent formatting for the golden tests.
void append_us(std::ostringstream& os, std::uint64_t ns) {
  os << ns / 1000 << '.';
  const auto frac = ns % 1000;
  os << static_cast<char>('0' + frac / 100) << static_cast<char>('0' + frac / 10 % 10)
     << static_cast<char>('0' + frac % 10);
}

std::string prom_name(const std::string& name) {
  std::string out = "of_";
  for (char c : name) out += (c == '.' || c == '-') ? '_' : c;
  return out;
}

}  // namespace

std::string to_chrome_trace(const std::vector<TraceEvent>& events) {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << to_string(e.name) << "\",\"cat\":\"" << category(e.name)
       << "\",\"ph\":\"" << (e.dur_ns > 0 ? 'X' : 'i') << "\",\"ts\":";
    append_us(os, e.ts_ns);
    if (e.dur_ns > 0) {
      os << ",\"dur\":";
      append_us(os, e.dur_ns);
    } else {
      os << ",\"s\":\"t\"";  // instant scope: thread
    }
    os << ",\"pid\":0,\"tid\":" << e.tid << ",\"args\":{\"node\":" << e.node
       << ",\"round\":" << e.round << ",\"arg\":" << e.arg << "}}";
  }
  os << "\n]\n";
  return os.str();
}

std::string to_prometheus_text(const Registry& registry) {
  std::ostringstream os;
  for (const std::string& name : registry.counter_names()) {
    const Counter* c = registry.find_counter(name);
    const std::string pn = prom_name(name);
    os << "# TYPE " << pn << " counter\n" << pn << ' ' << c->value() << '\n';
  }
  for (const std::string& name : registry.gauge_names()) {
    const Gauge* g = registry.find_gauge(name);
    const std::string pn = prom_name(name);
    os << "# TYPE " << pn << " gauge\n" << pn << ' ' << g->value() << '\n';
  }
  for (const std::string& name : registry.histogram_names()) {
    const Histogram* h = registry.find_histogram(name);
    const std::string pn = prom_name(name);
    os << "# TYPE " << pn << " histogram\n";
    // Cumulative buckets, emitted up to the last non-empty one.
    std::size_t last = 0;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i)
      if (h->bucket_count(i) > 0) last = i;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i <= last; ++i) {
      cum += h->bucket_count(i);
      os << pn << "_bucket{le=\"" << Histogram::bucket_bound(i) << "\"} " << cum << '\n';
    }
    os << pn << "_bucket{le=\"+Inf\"} " << h->count() << '\n'
       << pn << "_sum " << h->sum() << '\n'
       << pn << "_count " << h->count() << '\n';
  }
  return os.str();
}

std::string to_event_csv(const std::vector<TraceEvent>& events) {
  std::ostringstream os;
  os << "ts_ns,dur_ns,tid,node,round,category,name,arg\n";
  for (const TraceEvent& e : events) {
    os << e.ts_ns << ',' << e.dur_ns << ',' << e.tid << ',' << e.node << ',' << e.round
       << ',' << category(e.name) << ',' << to_string(e.name) << ',' << e.arg << '\n';
  }
  return os.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  OF_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out << content;
  out.flush();
  OF_CHECK_MSG(out.good(), "short write to '" << path << '\'');
}

}  // namespace of::obs
