#include "obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "common/check.hpp"

namespace of::obs {
namespace {

// Nanosecond ticks as fixed-point microseconds ("12.345") — deterministic,
// locale-independent formatting for the golden tests.
void append_us(std::ostringstream& os, std::uint64_t ns) {
  os << ns / 1000 << '.';
  const auto frac = ns % 1000;
  os << static_cast<char>('0' + frac / 100) << static_cast<char>('0' + frac / 10 % 10)
     << static_cast<char>('0' + frac % 10);
}

// Signed variant for offset-corrected timestamps, which can land before the
// coordinator epoch (a client clock running ahead).
void append_us_signed(std::ostringstream& os, std::int64_t ns) {
  if (ns < 0) {
    os << '-';
    ns = -ns;
  }
  append_us(os, static_cast<std::uint64_t>(ns));
}

std::string prom_name(const std::string& name) {
  std::string out = "of_";
  for (char c : name) out += (c == '.' || c == '-') ? '_' : c;
  return out;
}

// Chrome pid used for events that are not node-scoped (node == -1) in the
// merged fleet trace.
constexpr int kSharedPid = 9999;

void append_event_json(std::ostringstream& os, const TraceEvent& e, int pid,
                       std::int64_t ts_ns, bool truncated) {
  os << "\n{\"name\":\"" << to_string(e.name) << "\",\"cat\":\"" << category(e.name)
     << "\",\"ph\":\"" << (e.dur_ns > 0 ? 'X' : 'i') << "\",\"ts\":";
  append_us_signed(os, ts_ns);
  if (e.dur_ns > 0) {
    os << ",\"dur\":";
    append_us(os, e.dur_ns);
  } else {
    os << ",\"s\":\"t\"";  // instant scope: thread
  }
  os << ",\"pid\":" << pid << ",\"tid\":" << e.tid << ",\"args\":{\"node\":" << e.node
     << ",\"round\":" << e.round << ",\"arg\":" << e.arg;
  if (e.span_id != 0) os << ",\"id\":" << e.span_id;
  if (e.parent_span != 0) os << ",\"parent\":" << e.parent_span;
  if (truncated) os << ",\"truncated\":1";
  os << "}}";
}

}  // namespace

std::string to_chrome_trace(const std::vector<TraceEvent>& events) {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    append_event_json(os, e, 0, static_cast<std::int64_t>(e.ts_ns), false);
  }
  os << "\n]\n";
  return os.str();
}

std::string to_chrome_trace_merged(const std::vector<TraceEvent>& events,
                                   const std::map<int, std::int64_t>& offsets_ns) {
  const auto offset_of = [&](int node) -> std::int64_t {
    const auto it = offsets_ns.find(node);
    return it == offsets_ns.end() ? 0 : it->second;
  };
  const auto pid_of = [](int node) { return node >= 0 ? node : kSharedPid; };

  // Per-(node, round) bookkeeping over node-category span events: did a
  // round span close, and what window did the phases cover?
  struct Group {
    bool has_round = false;
    bool any_phase = false;
    std::uint64_t min_ts = ~0ull;
    std::uint64_t max_end = 0;
    std::uint32_t tid = 0;
  };
  std::map<std::pair<int, std::uint32_t>, Group> groups;
  std::set<int> pids;
  for (const TraceEvent& e : events) {
    pids.insert(pid_of(e.node));
    if (e.node < 0 || std::strcmp(category(e.name), "node") != 0) continue;
    Group& g = groups[{e.node, e.round}];
    if (e.name == Name::Round) {
      g.has_round = true;
      continue;
    }
    if (e.dur_ns == 0) continue;
    if (!g.any_phase) g.tid = e.tid;
    g.any_phase = true;
    g.min_ts = std::min(g.min_ts, e.ts_ns);
    g.max_end = std::max(g.max_end, e.ts_ns + e.dur_ns);
  }

  struct Item {
    TraceEvent e;
    bool truncated = false;
  };
  std::vector<Item> items;
  items.reserve(events.size() + groups.size());
  for (const TraceEvent& e : events) items.push_back({e, false});
  for (const auto& [key, g] : groups) {
    if (g.has_round || !g.any_phase) continue;
    // A round that recorded phases but never closed its enclosing span —
    // deadline-cut straggler, crash, or ring overflow. Synthesize the
    // envelope so the viewer still nests its phases.
    TraceEvent r;
    r.name = Name::Round;
    r.node = key.first;
    r.round = key.second;
    r.tid = g.tid;
    r.ts_ns = g.min_ts;
    r.dur_ns = std::max<std::uint64_t>(1, g.max_end - g.min_ts);
    items.push_back({r, true});
  }

  const auto corrected = [&](const TraceEvent& e) {
    return static_cast<std::int64_t>(e.ts_ns) - offset_of(e.node);
  };
  std::stable_sort(items.begin(), items.end(), [&](const Item& a, const Item& b) {
    return corrected(a.e) < corrected(b.e);
  });

  std::ostringstream os;
  os << "[";
  bool first = true;
  for (int pid : pids) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"args\":{\"name\":\"";
    if (pid == kSharedPid)
      os << "shared";
    else
      os << "node " << pid;
    os << "\"}}";
  }
  for (const Item& it : items) {
    if (!first) os << ",";
    first = false;
    append_event_json(os, it.e, pid_of(it.e.node), corrected(it.e), it.truncated);
  }
  os << "\n]\n";
  return os.str();
}

void write_per_node_traces(const std::string& base,
                           const std::vector<TraceEvent>& events) {
  std::map<int, std::vector<TraceEvent>> by_node;
  for (const TraceEvent& e : events) by_node[e.node].push_back(e);
  for (const auto& [node, node_events] : by_node) {
    std::ostringstream path;
    path << base;
    if (node >= 0)
      path << ".rank" << node << ".json";
    else
      path << ".shared.json";
    write_file(path.str(), to_chrome_trace(node_events));
  }
}

std::string to_prometheus_text(const Registry& registry) {
  std::ostringstream os;
  for (const std::string& name : registry.counter_names()) {
    const Counter* c = registry.find_counter(name);
    const std::string pn = prom_name(name);
    os << "# TYPE " << pn << " counter\n" << pn << ' ' << c->value() << '\n';
  }
  for (const std::string& name : registry.gauge_names()) {
    const Gauge* g = registry.find_gauge(name);
    const std::string pn = prom_name(name);
    os << "# TYPE " << pn << " gauge\n" << pn << ' ' << g->value() << '\n';
  }
  for (const std::string& name : registry.histogram_names()) {
    const Histogram* h = registry.find_histogram(name);
    const std::string pn = prom_name(name);
    os << "# TYPE " << pn << " histogram\n";
    // Cumulative buckets, emitted up to the last non-empty one.
    std::size_t last = 0;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i)
      if (h->bucket_count(i) > 0) last = i;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i <= last; ++i) {
      cum += h->bucket_count(i);
      os << pn << "_bucket{le=\"" << Histogram::bucket_bound(i) << "\"} " << cum << '\n';
    }
    os << pn << "_bucket{le=\"+Inf\"} " << h->count() << '\n'
       << pn << "_sum " << h->sum() << '\n'
       << pn << "_count " << h->count() << '\n';
  }
  return os.str();
}

std::string to_event_csv(const std::vector<TraceEvent>& events) {
  std::ostringstream os;
  os << "ts_ns,dur_ns,tid,node,round,category,name,arg\n";
  for (const TraceEvent& e : events) {
    os << e.ts_ns << ',' << e.dur_ns << ',' << e.tid << ',' << e.node << ',' << e.round
       << ',' << category(e.name) << ',' << to_string(e.name) << ',' << e.arg << '\n';
  }
  return os.str();
}

std::uint64_t percentile_sorted(const std::vector<std::uint64_t>& sorted, int pct) {
  if (sorted.empty()) return 0;
  const std::size_t idx =
      (static_cast<std::size_t>(pct) * (sorted.size() - 1) + 50) / 100;
  return sorted[std::min(idx, sorted.size() - 1)];
}

std::uint64_t percentile_log2(const std::uint64_t* buckets, std::size_t n_buckets,
                              int pct) {
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < n_buckets; ++i) count += buckets[i];
  if (count == 0) return 0;
  // Nearest rank: the ceil(pct/100 × count)-th observation, 1-based.
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, (count * static_cast<std::uint64_t>(pct) + 99) / 100);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < n_buckets; ++i) {
    seen += buckets[i];
    if (seen >= rank)
      return i >= 64 ? ~0ull : (1ull << i) - 1;  // bucket's inclusive bound
  }
  return n_buckets >= 64 ? ~0ull : (1ull << n_buckets) - 1;
}

std::string prom_escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prom_double(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os << v;
  return os.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  OF_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out << content;
  out.flush();
  OF_CHECK_MSG(out.good(), "short write to '" << path << '\'');
}

}  // namespace of::obs
