// of::obs exporters — turn drained trace events and registry metrics into
// the three interchange formats the `obs/` config group selects:
//
//   Chrome trace-event JSON  — open in Perfetto (ui.perfetto.dev) or
//                              chrome://tracing; spans nest per thread.
//   Prometheus text exposition — scrape-format dump of every counter,
//                              gauge and histogram in the registry.
//   CSV                      — one row per event, for ad-hoc analysis.
//
// Exporters are pure functions of their inputs (deterministic output for
// deterministic inputs — golden-tested in tests/test_obs.cpp) and run only
// after a drain, never on the record path.
#pragma once

#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace of::obs {

// Chrome trace-event JSON (the "JSON array format"): complete events
// (ph "X") for spans, instant events (ph "i") for dur == 0. Timestamps are
// microseconds with nanosecond precision; tid is the recording ring id.
std::string to_chrome_trace(const std::vector<TraceEvent>& events);

// Prometheus text exposition format, version 0.0.4. Instrument names are
// prefixed "of_" and dots become underscores ("tcp.reconnects" →
// "of_tcp_reconnects"). Histograms emit cumulative le-labelled buckets.
std::string to_prometheus_text(const Registry& registry);

// One CSV row per event: ts_ns,dur_ns,tid,node,round,category,name,arg.
std::string to_event_csv(const std::vector<TraceEvent>& events);

// Write `content` to `path`; throws (OF_CHECK) on I/O failure.
void write_file(const std::string& path, const std::string& content);

}  // namespace of::obs
