// of::obs exporters — turn drained trace events and registry metrics into
// the three interchange formats the `obs/` config group selects:
//
//   Chrome trace-event JSON  — open in Perfetto (ui.perfetto.dev) or
//                              chrome://tracing; spans nest per thread.
//   Prometheus text exposition — scrape-format dump of every counter,
//                              gauge and histogram in the registry.
//   CSV                      — one row per event, for ad-hoc analysis.
//
// Exporters are pure functions of their inputs (deterministic output for
// deterministic inputs — golden-tested in tests/test_obs.cpp) and run only
// after a drain, never on the record path.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace of::obs {

// Chrome trace-event JSON (the "JSON array format"): complete events
// (ph "X") for spans, instant events (ph "i") for dur == 0. Timestamps are
// microseconds with nanosecond precision; tid is the recording ring id.
// Span/parent ids are emitted as args only when nonzero.
std::string to_chrome_trace(const std::vector<TraceEvent>& events);

// Fleet-merged Chrome trace: one Chrome `pid` per federation node (shared,
// non-node-scoped events land on pid 9999), each node's timestamps shifted
// by its clock offset (`offsets_ns[node]`, client − coordinator, from the
// ping handshake) onto the coordinator timeline. Rounds that have phase
// spans but never closed a round span — a client cut by the fault deadline
// mid-round, or a ring overflow — get a synthesized enclosing round span
// tagged args.truncated=1 so every round stays well-formed in the viewer.
std::string to_chrome_trace_merged(const std::vector<TraceEvent>& events,
                                   const std::map<int, std::int64_t>& offsets_ns);

// Write one single-node Chrome trace per federation node next to `base`:
// "<base>.rank<N>.json" (and "<base>.shared.json" for node −1 events), so
// multi-node runs don't clobber a single output file.
void write_per_node_traces(const std::string& base,
                           const std::vector<TraceEvent>& events);

// Prometheus text exposition format, version 0.0.4. Instrument names are
// prefixed "of_" and dots become underscores ("tcp.reconnects" →
// "of_tcp_reconnects"). Histograms emit cumulative le-labelled buckets.
std::string to_prometheus_text(const Registry& registry);

// One CSV row per event: ts_ns,dur_ns,tid,node,round,category,name,arg.
std::string to_event_csv(const std::vector<TraceEvent>& events);

// Nearest-rank percentile over an ascending sample vector; pct in [0,100].
// The single shared implementation behind every percentile the plane
// renders (health page, attribution rows) — returns 0 on an empty input.
std::uint64_t percentile_sorted(const std::vector<std::uint64_t>& sorted, int pct);

// Nearest-rank percentile over log2 bucket counts (obs::Histogram layout:
// bucket i counts observations v with bit_width(v) == i). Returns the
// inclusive upper bound of the bucket holding the pct-th observation —
// the histogram-backed twin of percentile_sorted, ~2× resolution.
std::uint64_t percentile_log2(const std::uint64_t* buckets, std::size_t n_buckets,
                              int pct);

// Prometheus label-value escaping (text exposition 0.0.4): backslash,
// double-quote and newline become \\, \" and \n.
std::string prom_escape_label(const std::string& value);

// Format a sample value for exposition; non-finite values (NaN/Inf — e.g. a
// hit rate over zero acquires) are emitted as 0 per our "never emit NaN"
// rule rather than poisoning the scrape.
std::string prom_double(double v);

// Write `content` to `path`; throws (OF_CHECK) on I/O failure.
void write_file(const std::string& path, const std::string& content);

}  // namespace of::obs
