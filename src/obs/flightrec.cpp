#include "obs/flightrec.hpp"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <string.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>

#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "refl/json.hpp"

namespace of::obs {

namespace {

// The four "the process is about to die" signals worth a post-mortem.
constexpr int kCrashSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE};
struct sigaction g_prev_action[sizeof(kCrashSignals) / sizeof(kCrashSignals[0])];

const char* reason_for_signal(int sig) {
  switch (sig) {
    case SIGSEGV: return "sigsegv";
    case SIGABRT: return "sigabrt";
    case SIGBUS: return "sigbus";
    case SIGFPE: return "sigfpe";
  }
  return "signal";
}

// SIGNAL-SAFE BEGIN (checked by tests/check_signal_safety.sh)
//
// Byte-appenders over the pre-allocated dump buffer. Contract: no
// allocation, no locks, no stdio; plain pointer arithmetic only. Output is
// silently truncated at the buffer bound — the buffer is sized at arm()
// for the configured event/sample budgets, so truncation means the budget
// math drifted, not data loss by design.
struct Sink {
  char* buf;
  std::size_t cap;
  std::size_t len;
};

void put_ch(Sink& s, char c) {
  if (s.len < s.cap) s.buf[s.len++] = c;
}

void put_raw(Sink& s, const char* p, std::size_t n) {
  const std::size_t take = s.len < s.cap ? std::min(n, s.cap - s.len) : 0;
  for (std::size_t i = 0; i < take; ++i) s.buf[s.len + i] = p[i];
  s.len += take;
}

void put_cstr(Sink& s, const char* p) {
  while (*p != 0) put_ch(s, *p++);
}

void put_u64(Sink& s, std::uint64_t v) {
  char tmp[20];
  int n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0) put_ch(s, tmp[--n]);
}

void put_i64(Sink& s, std::int64_t v) {
  if (v < 0) {
    put_ch(s, '-');
    put_u64(s, static_cast<std::uint64_t>(-(v + 1)) + 1);
  } else {
    put_u64(s, static_cast<std::uint64_t>(v));
  }
}

void put_hex(Sink& s, std::uint64_t v) {
  put_cstr(s, "0x");
  char tmp[16];
  int n = 0;
  do {
    const int d = static_cast<int>(v & 0xF);
    tmp[n++] = static_cast<char>(d < 10 ? '0' + d : 'a' + (d - 10));
    v >>= 4;
  } while (v != 0);
  while (n > 0) put_ch(s, tmp[--n]);
}

std::uint64_t wall_ns_now() {
  struct timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

// write(2) the whole buffer, resuming on EINTR / short writes.
void write_all(int fd, const char* p, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, p + off, n - off);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(w);
  }
}

}  // namespace

void FlightRecorder::dump_signal_safe(const char* reason, int sig) {
  if (!armed_.load(std::memory_order_relaxed)) return;
  if (in_dump_.exchange(true, std::memory_order_acq_rel)) return;  // re-entry

  // Compose "<prefix>-<reason>.json" into the fixed path buffer.
  Sink path{path_buf_, sizeof(path_buf_) - 1, 0};
  put_cstr(path, path_prefix_);
  put_ch(path, '-');
  put_cstr(path, reason);
  put_cstr(path, ".json");
  path_buf_[path.len] = 0;

  Sink s{buf_.get(), buf_cap_, 0};
  put_cstr(s, "{\"reason\":\"");
  put_cstr(s, reason);
  put_cstr(s, "\",\"signal\":");
  put_i64(s, sig);
  put_cstr(s, ",\"trace_id\":\"");
  put_hex(s, trace_id_);
  put_cstr(s, "\",\"dump_wall_ns\":");
  put_u64(s, wall_ns_now());

  // Last-N trace events across the published rings, oldest-first per ring.
  put_cstr(s, ",\"events\":[");
  std::size_t events_left = cfg_.max_events;
  bool first = true;
  TraceRecorder::global().visit_recent_unsafe(
      cfg_.max_events, [&](const TraceEvent& e) {
        if (events_left == 0) return;
        --events_left;
        if (!first) put_ch(s, ',');
        first = false;
        put_cstr(s, "{\"ts_ns\":");
        put_u64(s, e.ts_ns);
        put_cstr(s, ",\"dur_ns\":");
        put_u64(s, e.dur_ns);
        put_cstr(s, ",\"name\":\"");
        put_cstr(s, to_string(e.name));
        put_cstr(s, "\",\"cat\":\"");
        put_cstr(s, category(e.name));
        put_cstr(s, "\",\"node\":");
        put_i64(s, e.node);
        put_cstr(s, ",\"round\":");
        put_u64(s, e.round);
        put_cstr(s, ",\"tid\":");
        put_u64(s, e.tid);
        put_cstr(s, ",\"arg\":");
        put_u64(s, e.arg);
        put_cstr(s, ",\"span\":\"");
        put_hex(s, e.span_id);
        put_cstr(s, "\",\"parent\":\"");
        put_hex(s, e.parent_span);
        put_cstr(s, "\"}");
      });

  // Most recent profiler samples, raw pcs (symbolization is not
  // async-signal-safe; post-mortem tooling resolves them offline).
  put_cstr(s, "],\"profile\":[");
  first = true;
  Profiler::global().visit_recent_unsafe(
      cfg_.max_samples, [&](const ProfileSample& ps) {
        if (!first) put_ch(s, ',');
        first = false;
        put_cstr(s, "{\"ts_ns\":");
        put_u64(s, ps.ts_ns);
        put_cstr(s, ",\"lane\":");
        put_u64(s, ps.lane);
        put_cstr(s, ",\"frames\":[");
        const std::uint32_t depth =
            ps.depth < Profiler::kMaxFrames
                ? ps.depth
                : static_cast<std::uint32_t>(Profiler::kMaxFrames);
        for (std::uint32_t i = 0; i < depth; ++i) {
          if (i != 0) put_ch(s, ',');
          put_ch(s, '"');
          put_hex(s, reinterpret_cast<std::uint64_t>(ps.frames[i]));
          put_ch(s, '"');
        }
        put_cstr(s, "]}");
      });

  put_cstr(s, "],\"config\":");
  put_raw(s, config_json_.get(), config_json_len_);
  put_cstr(s, "}\n");

  const int fd = ::open(path_buf_, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    write_all(fd, s.buf, s.len);
    ::close(fd);
  }
  Sink note{nullptr, 0, 0};
  char note_buf[320];
  note.buf = note_buf;
  note.cap = sizeof(note_buf);
  put_cstr(note, "of::obs flight recorder: wrote ");
  put_cstr(note, path_buf_);
  put_ch(note, '\n');
  write_all(STDERR_FILENO, note.buf, note.len);

  dumps_.fetch_add(1, std::memory_order_relaxed);
  in_dump_.store(false, std::memory_order_release);
}

void FlightRecorder::crash_handler(int sig) {
  FlightRecorder& fr = global();
  fr.dump_signal_safe(reason_for_signal(sig), sig);
  // Put the original disposition back and re-raise: the process dies (or
  // core-dumps) exactly as it would have without the recorder.
  for (std::size_t i = 0; i < sizeof(kCrashSignals) / sizeof(kCrashSignals[0]); ++i)
    if (kCrashSignals[i] == sig) sigaction(sig, &g_prev_action[i], nullptr);
  raise(sig);
}
// SIGNAL-SAFE END

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder fr;
  return fr;
}

void FlightRecorder::arm(const FlightRecConfig& cfg,
                         const std::string& effective_config_yaml,
                         std::uint64_t trace_id) {
  disarm();
  cfg_ = cfg;
  trace_id_ = trace_id;

  // Pre-escape the config into a JSON string literal the handler can copy.
  std::string escaped;
  refl::json::append_escaped(effective_config_yaml, escaped);
  config_json_len_ = escaped.size();
  config_json_ = std::make_unique<char[]>(config_json_len_ + 1);
  memcpy(config_json_.get(), escaped.data(), config_json_len_);

  strncpy(path_prefix_, cfg.path_prefix.c_str(), sizeof(path_prefix_) - 1);
  path_prefix_[sizeof(path_prefix_) - 1] = 0;

  // Size the dump buffer for the configured budgets: ~256 bytes per trace
  // event row, ~(frames × 20 + 64) per profile sample, plus the config
  // blob and envelope slack.
  buf_cap_ = cfg.max_events * 256 +
             cfg.max_samples * (Profiler::kMaxFrames * 20 + 64) +
             config_json_len_ + 4096;
  buf_ = std::make_unique<char[]>(buf_cap_);

  if (cfg.on_signal) {
    struct sigaction sa;
    memset(&sa, 0, sizeof(sa));
    sa.sa_handler = &FlightRecorder::crash_handler;
    sa.sa_flags = SA_RESTART;
    sigemptyset(&sa.sa_mask);
    for (std::size_t i = 0; i < sizeof(kCrashSignals) / sizeof(kCrashSignals[0]); ++i)
      sigaction(kCrashSignals[i], &sa, &g_prev_action[i]);
    handlers_installed_ = true;
  }
  armed_.store(true, std::memory_order_release);
}

void FlightRecorder::disarm() {
  armed_.store(false, std::memory_order_relaxed);
  if (handlers_installed_) {
    for (std::size_t i = 0; i < sizeof(kCrashSignals) / sizeof(kCrashSignals[0]); ++i)
      sigaction(kCrashSignals[i], &g_prev_action[i], nullptr);
    handlers_installed_ = false;
  }
}

std::string FlightRecorder::dump(const char* reason) {
  if (!armed()) return "";
  dump_signal_safe(reason, 0);
  return path_buf_;
}

}  // namespace of::obs
