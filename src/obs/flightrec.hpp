// of::obs flight recorder — post-mortem capture for crashed or cut runs
// (DESIGN.md §16).
//
// Armed by the Engine when `obs.flightrec.enabled` is set. On SIGSEGV /
// SIGABRT / SIGBUS / SIGFPE (and, by config, on fault injections and
// deadline cuts) it dumps a bounded JSON file containing the last-N trace
// ring events, the most recent profiler samples, and the effective
// reflected config, then re-raises the signal so the process still dies
// with the original disposition.
//
// Everything the dump needs — output buffer, file path, the pre-escaped
// config blob — is allocated and formatted at arm() time; the dump path
// itself is async-signal-safe: open(2)/write(2)/close(2), hand-rolled
// number formatting into the pre-allocated buffer, and the lock-free
// visit_recent_unsafe walkers of TraceRecorder and Profiler. That contract
// is linted by tests/check_signal_safety.sh over the marked region in
// flightrec.cpp.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "refl/refl.hpp"

namespace of::obs {

class Counter;

// The `obs.flightrec` config group (configs/obs/profile.yaml).
struct FlightRecConfig {
  bool enabled = false;
  // Dump file prefix: dumps land at "<path_prefix>-<reason>.json".
  std::string path_prefix = "flightrec";
  std::size_t max_events = 2048;   // newest trace events kept in a dump
  std::size_t max_samples = 256;   // newest profile samples kept in a dump
  bool on_signal = true;        // install SIGSEGV/SIGABRT/SIGBUS/SIGFPE hooks
  bool on_deadline_cut = true;  // dump when a round is cut at the deadline
  bool on_fault = false;        // dump on injected crash faults (noisy)
};

class FlightRecorder {
 public:
  static FlightRecorder& global();

  // Pre-allocate the dump buffer, pre-escape `effective_config_yaml`,
  // remember the run trace id, and (if cfg.on_signal) install the crash
  // handlers. Re-arming replaces the previous session.
  void arm(const FlightRecConfig& cfg, const std::string& effective_config_yaml,
           std::uint64_t trace_id);
  // Restore previous signal dispositions; captured state stays readable.
  void disarm();

  bool armed() const noexcept { return armed_.load(std::memory_order_relaxed); }
  // Gate checks for the two programmatic triggers, cheap enough for the
  // round loop (one relaxed load each).
  bool armed_for_deadline_cut() const noexcept {
    return armed() && cfg_.on_deadline_cut;
  }
  bool armed_for_fault() const noexcept { return armed() && cfg_.on_fault; }

  // Programmatic dump (deadline cut, injected fault, tests). Returns the
  // path written, or "" when not armed. Reason must be a short token
  // ([a-z0-9_], it lands in the filename).
  std::string dump(const char* reason);

  std::uint64_t dumps_total() const noexcept {
    return dumps_.load(std::memory_order_relaxed);
  }

 private:
  FlightRecorder() = default;
  static void crash_handler(int sig);
  // The async-signal-safe core shared by crash_handler and dump().
  void dump_signal_safe(const char* reason, int sig);

  FlightRecConfig cfg_;
  std::atomic<bool> armed_{false};
  std::atomic<bool> in_dump_{false};
  std::atomic<std::uint64_t> dumps_{0};
  std::uint64_t trace_id_ = 0;
  // Pre-escaped JSON string literal (quotes included) of the effective
  // config, rendered at arm() so the handler only copies bytes.
  std::unique_ptr<char[]> config_json_;
  std::size_t config_json_len_ = 0;
  // The dump is formatted into this pre-allocated buffer.
  std::unique_ptr<char[]> buf_;
  std::size_t buf_cap_ = 0;
  char path_prefix_[192] = {0};
  char path_buf_[256] = {0};  // last dump's full path
  bool handlers_installed_ = false;
};

}  // namespace of::obs

template <>
struct of::refl::Reflect<of::obs::FlightRecConfig> {
  using S = of::obs::FlightRecConfig;
  OF_REFL_FIELDS(
      field("enabled", &S::enabled, 1),
      field("path_prefix", &S::path_prefix, 2),
      field("max_events", &S::max_events, 3).ge(1),
      field("max_samples", &S::max_samples, 4).ge(1),
      field("on_signal", &S::on_signal, 5),
      field("on_deadline_cut", &S::on_deadline_cut, 6),
      field("on_fault", &S::on_fault, 7))
};
