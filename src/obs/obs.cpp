#include "obs/obs.hpp"

#include "common/check.hpp"
#include "refl/config_io.hpp"

namespace of::obs {

ObsConfig ObsConfig::from_config(const config::ConfigNode& node, bool strict) {
  if (node.is_null()) return ObsConfig{};
  OF_CHECK_MSG(node.is_map(), "obs config must be a map");
  return refl::from_node<ObsConfig>(node, "obs", {}, strict);
}

}  // namespace of::obs
