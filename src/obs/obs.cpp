#include "obs/obs.hpp"

#include "common/check.hpp"

namespace of::obs {

ObsConfig ObsConfig::from_config(const config::ConfigNode& node) {
  ObsConfig cfg;
  if (node.is_null()) return cfg;
  OF_CHECK_MSG(node.is_map(), "obs config must be a map");
  cfg.enabled = node.get_or<bool>("enabled", false);
  const auto cap = node.get_or<std::int64_t>(
      "ring_capacity", static_cast<std::int64_t>(cfg.ring_capacity));
  OF_CHECK_MSG(cap > 0, "obs.ring_capacity must be > 0");
  cfg.ring_capacity = static_cast<std::size_t>(cap);
  cfg.trace_path = node.get_or<std::string>("trace_path", "");
  cfg.metrics_path = node.get_or<std::string>("metrics_path", "");
  cfg.events_csv_path = node.get_or<std::string>("events_csv_path", "");
  cfg.telemetry = node.get_or<bool>("telemetry", false);
  const auto sync = node.get_or<std::int64_t>(
      "clock_sync_rounds", static_cast<std::int64_t>(cfg.clock_sync_rounds));
  OF_CHECK_MSG(sync >= 0, "obs.clock_sync_rounds must be >= 0");
  cfg.clock_sync_rounds = static_cast<std::size_t>(sync);
  cfg.split_trace_per_node = node.get_or<bool>("split_trace_per_node", false);
  return cfg;
}

}  // namespace of::obs
