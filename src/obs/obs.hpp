// of::obs — always-on observability for the federated round loop.
//
//   trace.hpp     TraceRecorder: per-thread SPSC rings of span/instant
//                 events, lock-free on the record path, drained at join
//   registry.hpp  Registry: named counters/gauges/histograms (always on)
//   export.hpp    Chrome-trace JSON, Prometheus text, event CSV
//
// Selected by the `obs/` config group (configs/obs/{off,trace,full}.yaml)
// parsed here into an ObsConfig; the Engine enables tracing for the run,
// drains after joining the node threads, folds per-phase seconds into the
// RoundRecords, and writes whichever export paths are configured.
#pragma once

#include <cstddef>
#include <string>

#include "config/node.hpp"
#include "obs/export.hpp"
#include "obs/flightrec.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "refl/refl.hpp"

namespace of::obs {

struct ObsConfig {
  // Master switch for tracing. Registry instruments are always on (a
  // relaxed atomic add each), so `enabled: false` costs one relaxed load
  // per would-be span — measured in bench/bench_obs_overhead.
  bool enabled = false;
  std::size_t ring_capacity = TraceRecorder::kDefaultRingCapacity;

  // Export destinations; empty = skip that exporter.
  std::string trace_path;       // merged Chrome trace-event JSON (Perfetto)
  std::string metrics_path;     // Prometheus text exposition
  std::string events_csv_path;  // raw per-event CSV

  // Distributed telemetry plane (DESIGN.md §9). `telemetry` turns on the
  // client→coordinator piggyback channel (per-round summaries appended to
  // update frames, stripped before decode) and the fleet registry behind
  // the scrape endpoint; requires `enabled`. `clock_sync_rounds` re-pings
  // the coordinator every K rounds to refresh the per-client clock offset
  // (TCP only; 0 disables re-pings, the connect-time burst still runs).
  bool telemetry = false;
  std::size_t clock_sync_rounds = 8;
  // Additionally write one per-node trace "<trace_path>.rank<N>.json"
  // besides the merged file.
  bool split_trace_per_node = false;
  // Telemetry tail wire format: 2 = TLV (versioned, skip-unknown forward
  // compatible, DESIGN.md §13), 1 = the fixed 216-byte legacy layout.
  // Readers accept both regardless of this setting.
  int telemetry_wire = 2;

  // Tier-two observability (DESIGN.md §16): the SIGPROF sampling profiler
  // and the crash/deadline flight recorder. Nested reflected groups so
  // `obs.profile.hz: 97` etc. strict-validate like every other key.
  ProfileConfig profile;
  FlightRecConfig flightrec;

  // Parse the `obs:` config group; a null/missing node yields the disabled
  // default.
  static ObsConfig from_config(const config::ConfigNode& node, bool strict = true);
};

}  // namespace of::obs

template <>
struct of::refl::Reflect<of::obs::ObsConfig> {
  OF_REFL_FIELDS(
      field("enabled", &of::obs::ObsConfig::enabled, 1),
      field("ring_capacity", &of::obs::ObsConfig::ring_capacity, 2).ge(1),
      field("trace_path", &of::obs::ObsConfig::trace_path, 3),
      field("metrics_path", &of::obs::ObsConfig::metrics_path, 4),
      field("events_csv_path", &of::obs::ObsConfig::events_csv_path, 5),
      field("telemetry", &of::obs::ObsConfig::telemetry, 6),
      field("clock_sync_rounds", &of::obs::ObsConfig::clock_sync_rounds, 7),
      field("split_trace_per_node", &of::obs::ObsConfig::split_trace_per_node, 8),
      field("telemetry_wire", &of::obs::ObsConfig::telemetry_wire, 9).ge(1).le(2),
      field("profile", &of::obs::ObsConfig::profile, 10).skip_export(),
      field("flightrec", &of::obs::ObsConfig::flightrec, 11).skip_export())
};
