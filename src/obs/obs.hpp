// of::obs — always-on observability for the federated round loop.
//
//   trace.hpp     TraceRecorder: per-thread SPSC rings of span/instant
//                 events, lock-free on the record path, drained at join
//   registry.hpp  Registry: named counters/gauges/histograms (always on)
//   export.hpp    Chrome-trace JSON, Prometheus text, event CSV
//
// Selected by the `obs/` config group (configs/obs/{off,trace,full}.yaml)
// parsed here into an ObsConfig; the Engine enables tracing for the run,
// drains after joining the node threads, folds per-phase seconds into the
// RoundRecords, and writes whichever export paths are configured.
#pragma once

#include <cstddef>
#include <string>

#include "config/node.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace of::obs {

struct ObsConfig {
  // Master switch for tracing. Registry instruments are always on (a
  // relaxed atomic add each), so `enabled: false` costs one relaxed load
  // per would-be span — measured in bench/bench_obs_overhead.
  bool enabled = false;
  std::size_t ring_capacity = TraceRecorder::kDefaultRingCapacity;

  // Export destinations; empty = skip that exporter.
  std::string trace_path;       // merged Chrome trace-event JSON (Perfetto)
  std::string metrics_path;     // Prometheus text exposition
  std::string events_csv_path;  // raw per-event CSV

  // Distributed telemetry plane (DESIGN.md §9). `telemetry` turns on the
  // client→coordinator piggyback channel (per-round summaries appended to
  // update frames, stripped before decode) and the fleet registry behind
  // the scrape endpoint; requires `enabled`. `clock_sync_rounds` re-pings
  // the coordinator every K rounds to refresh the per-client clock offset
  // (TCP only; 0 disables re-pings, the connect-time burst still runs).
  bool telemetry = false;
  std::size_t clock_sync_rounds = 8;
  // Additionally write one per-node trace "<trace_path>.rank<N>.json"
  // besides the merged file.
  bool split_trace_per_node = false;

  // Parse the `obs:` config group; a null/missing node yields the disabled
  // default.
  static ObsConfig from_config(const config::ConfigNode& node);
};

}  // namespace of::obs
