#include "obs/profiler.hpp"

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <string.h>
#include <sys/time.h>
#include <time.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace of::obs {

namespace {

// Lane handle for the calling thread. The generation tag detects start()
// re-arms so a lane index from a previous profiling session is never
// reused against fresh storage. Plain ints: async-signal-safe to read and
// write from the handler.
struct TlLane {
  int lane = -1;
  std::uint64_t generation = 0;
};
thread_local TlLane t_lane;
// Label registered by set_thread_name before (or after) a lane exists.
thread_local char t_name[16] = {0};

std::atomic<std::uint64_t> g_generation{1};

std::uint64_t monotonic_ns() noexcept {
  // clock_gettime is async-signal-safe (POSIX.1-2008).
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

struct sigaction g_prev_sigprof;

}  // namespace

Profiler& Profiler::global() {
  static Profiler p;
  return p;
}

// SIGNAL-SAFE BEGIN (checked by tests/check_signal_safety.sh)
//
// Runs under SIGPROF at the configured rate on whichever thread the kernel
// picked. Contract: no allocation, no locks, no stdio, no C++ runtime
// entry points that may allocate. Only pre-allocated Lanes storage, plain
// thread-locals, relaxed/release atomics, clock_gettime and backtrace
// (primed at start(), see there).
void Profiler::sigprof_handler(int) {
  Profiler& p = global();
  if (!p.enabled_.load(std::memory_order_relaxed)) return;
  Lanes* ls = p.lanes_.load(std::memory_order_acquire);
  if (ls == nullptr) return;

  const std::uint64_t gen = g_generation.load(std::memory_order_relaxed);
  int lane = t_lane.generation == gen ? t_lane.lane : -1;
  if (lane < 0) {
    const std::uint32_t claimed =
        p.lane_count_.fetch_add(1, std::memory_order_acq_rel);
    if (claimed >= kMaxLanes) {
      // Out of lanes: remember that (lane == kMaxLanes sentinel) so this
      // thread does not burn a fresh claim on every signal.
      t_lane.lane = static_cast<int>(kMaxLanes);
      t_lane.generation = gen;
      p.dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    lane = static_cast<int>(claimed);
    t_lane.lane = lane;
    t_lane.generation = gen;
    Lane& l = ls->lanes[lane];
    if (t_name[0] != 0) {
      for (std::size_t i = 0; i < sizeof(l.name); ++i) l.name[i] = t_name[i];
    }
  }
  if (lane >= static_cast<int>(kMaxLanes)) {
    p.dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  Lane& l = ls->lanes[lane];
  const std::uint64_t w = l.widx.load(std::memory_order_relaxed);
  Slot& slot = ls->slots[static_cast<std::size_t>(lane) * ls->ring_capacity +
                         (w % ls->ring_capacity)];
  // Seqlock: odd while writing, back to even (2*(w+1)) when published.
  slot.seq.store(2 * w + 1, std::memory_order_release);
  slot.sample.ts_ns = monotonic_ns();
  slot.sample.lane = static_cast<std::uint32_t>(lane);
  const int depth = backtrace(slot.sample.frames,
                              static_cast<int>(p.max_frames_));
  slot.sample.depth = depth > 0 ? static_cast<std::uint32_t>(depth) : 0;
  slot.seq.store(2 * (w + 1), std::memory_order_release);
  l.widx.store(w + 1, std::memory_order_release);
  p.samples_.fetch_add(1, std::memory_order_relaxed);
}
// SIGNAL-SAFE END

void Profiler::start(const ProfileConfig& cfg) {
  if (!cfg.enabled) return;
  stop();  // idempotence: disarm any previous session first

  max_frames_ = std::min<std::size_t>(std::max<std::size_t>(cfg.max_frames, 1),
                                      kMaxFrames);
  // Fresh storage; the old block (if any) is freed here, while no handler
  // is installed.
  storage_ = std::make_unique<Lanes>(std::max<std::size_t>(cfg.ring_capacity, 16));
  lane_count_.store(0, std::memory_order_relaxed);
  samples_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  g_generation.fetch_add(1, std::memory_order_relaxed);
  lanes_.store(storage_.get(), std::memory_order_release);

  // Prime the unwinder outside the handler: the first backtrace() call
  // dlopen()s libgcc, which allocates — do that here, never under SIGPROF
  // (the standard glibc/gperftools discipline).
  void* prime[4];
  (void)backtrace(prime, 4);

  struct sigaction sa;
  memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &Profiler::sigprof_handler;
  sa.sa_flags = SA_RESTART;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGPROF, &sa, &g_prev_sigprof);
  handler_installed_ = true;

  enabled_.store(true, std::memory_order_relaxed);

  const long usec = std::max(1000000L / std::max(cfg.hz, 1), 1L);
  struct itimerval tv;
  tv.it_interval.tv_sec = usec / 1000000;
  tv.it_interval.tv_usec = usec % 1000000;
  tv.it_value = tv.it_interval;
  setitimer(ITIMER_PROF, &tv, nullptr);
  timer_armed_ = true;
}

void Profiler::stop() {
  if (timer_armed_) {
    struct itimerval off;
    memset(&off, 0, sizeof(off));
    setitimer(ITIMER_PROF, &off, nullptr);
    timer_armed_ = false;
  }
  enabled_.store(false, std::memory_order_relaxed);
  if (handler_installed_) {
    sigaction(SIGPROF, &g_prev_sigprof, nullptr);
    handler_installed_ = false;
  }
  // storage_ stays alive (samples remain readable) until the next start().
}

void Profiler::set_thread_name(const char* name) {
  strncpy(t_name, name == nullptr ? "" : name, sizeof(t_name) - 1);
  t_name[sizeof(t_name) - 1] = 0;
  // If this thread already holds a lane in the live session, relabel it.
  Profiler& p = global();
  Lanes* ls = p.lanes_.load(std::memory_order_acquire);
  if (ls != nullptr && t_lane.lane >= 0 &&
      t_lane.lane < static_cast<int>(kMaxLanes) &&
      t_lane.generation == g_generation.load(std::memory_order_relaxed)) {
    memcpy(ls->lanes[t_lane.lane].name, t_name, sizeof(t_name));
  }
}

std::vector<ProfileSample> Profiler::snapshot() const {
  std::vector<ProfileSample> out;
  const Lanes* ls = lanes_.load(std::memory_order_acquire);
  if (ls == nullptr) return out;
  const std::size_t nlanes =
      std::min<std::size_t>(lane_count_.load(std::memory_order_acquire), kMaxLanes);
  for (std::size_t li = 0; li < nlanes; ++li) {
    const Lane& lane = ls->lanes[li];
    const std::uint64_t w = lane.widx.load(std::memory_order_acquire);
    const std::uint64_t cap = ls->ring_capacity;
    const std::uint64_t first = w > cap ? w - cap : 0;
    for (std::uint64_t i = first; i < w; ++i) {
      const Slot& s = ls->slots[li * cap + (i % cap)];
      const std::uint64_t seq1 = s.seq.load(std::memory_order_acquire);
      if (seq1 & 1) continue;  // being written right now
      ProfileSample copy = s.sample;
      const std::uint64_t seq2 = s.seq.load(std::memory_order_acquire);
      if (seq1 != seq2) continue;  // overwritten mid-copy
      if (copy.depth > kMaxFrames) continue;  // torn header
      out.push_back(copy);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ProfileSample& a, const ProfileSample& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

std::string Profiler::lane_name(std::size_t i) const {
  const Lanes* ls = lanes_.load(std::memory_order_acquire);
  if (ls != nullptr && i < kMaxLanes && ls->lanes[i].name[0] != 0) {
    char buf[17] = {0};
    memcpy(buf, ls->lanes[i].name, 16);
    return buf;
  }
  return "lane" + std::to_string(i);
}

std::string Profiler::symbolize_pc(void* pc) {
  Dl_info info;
  if (dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      std::string s(demangled);
      free(demangled);
      // Collapsed-stack separators are ';' and ' '; scrub them from the
      // (possibly templated) symbol so the format stays parseable.
      for (char& c : s)
        if (c == ';' || c == ' ') c = '_';
      return s;
    }
    return info.dli_sname;
  }
  if (dladdr(pc, &info) != 0 && info.dli_fname != nullptr && info.dli_fbase != nullptr) {
    const char* base = strrchr(info.dli_fname, '/');
    std::ostringstream os;
    os << (base ? base + 1 : info.dli_fname) << "+0x" << std::hex
       << (reinterpret_cast<std::uintptr_t>(pc) -
           reinterpret_cast<std::uintptr_t>(info.dli_fbase));
    return os.str();
  }
  std::ostringstream os;
  os << "0x" << std::hex << reinterpret_cast<std::uintptr_t>(pc);
  return os.str();
}

std::string Profiler::collapse(const std::vector<ProfileSample>& samples,
                               const std::vector<std::string>& lane_names,
                               const Symbolizer& symbolize) {
  // Symbolize each distinct pc once; stacks fold root→leaf.
  std::map<void*, std::string> symcache;
  auto sym = [&](void* pc) -> const std::string& {
    auto it = symcache.find(pc);
    if (it == symcache.end()) it = symcache.emplace(pc, symbolize(pc)).first;
    return it->second;
  };
  std::map<std::string, std::uint64_t> folded;
  for (const ProfileSample& s : samples) {
    std::string line = s.lane < lane_names.size()
                           ? lane_names[s.lane]
                           : "lane" + std::to_string(s.lane);
    const std::uint32_t depth = std::min<std::uint32_t>(s.depth, kMaxFrames);
    for (std::uint32_t i = depth; i > 0; --i) {  // frames[0] = leaf → emit last
      line += ';';
      line += sym(s.frames[i - 1]);
    }
    ++folded[line];
  }
  std::string out;
  for (const auto& [stack, count] : folded) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::string Profiler::collapsed_text() const {
  const Lanes* ls = lanes_.load(std::memory_order_acquire);
  if (ls == nullptr) return "";
  std::vector<std::string> names;
  const std::size_t nlanes =
      std::min<std::size_t>(lane_count_.load(std::memory_order_acquire), kMaxLanes);
  names.reserve(nlanes);
  for (std::size_t i = 0; i < nlanes; ++i) names.push_back(lane_name(i));
  return collapse(snapshot(), names, &Profiler::symbolize_pc);
}

}  // namespace of::obs
