// of::obs sampling profiler — SIGPROF-driven stack sampling into per-thread
// lock-free rings, the "tier two" companion to TraceRecorder (DESIGN.md §16).
//
// Discipline mirrors trace.hpp: all memory is allocated on the control path
// (start()), the signal handler touches only pre-allocated slots plus one
// thread-local int, and the disabled path is a single relaxed atomic load
// (benched in bench_obs_overhead, budget ≤ 10 ns / 0 allocs). Each sample
// slot carries a per-slot seqlock so live readers (/profile scrapes, the
// flight recorder) can skip torn writes without ever blocking the handler.
//
// Samples are raw program counters; symbolization (dladdr + demangle) runs
// only on the export path, never under the signal. The export format is
// collapsed stacks ("root;frame;leaf count"), directly consumable by
// flamegraph.pl / speedscope / inferno.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "config/node.hpp"
#include "refl/refl.hpp"

namespace of::obs {

// The `obs.profile` config group (configs/obs/profile.yaml).
struct ProfileConfig {
  bool enabled = false;
  // Sampling frequency. 97 (prime) by default so the sampler cannot phase-
  // lock with millisecond-periodic work.
  int hz = 97;
  std::size_t max_frames = 24;     // capped at Profiler::kMaxFrames
  std::size_t ring_capacity = 2048;  // samples kept per thread (newest-N)
  std::string path;  // collapsed-stack output file; empty = no file export
};

// One captured stack. frames[0] is the innermost (leaf) pc.
struct ProfileSample {
  std::uint64_t ts_ns = 0;
  std::uint32_t lane = 0;   // profiler lane (≈ thread) that took it
  std::uint32_t depth = 0;
  void* frames[/*kMaxFrames*/ 32];
};

class Profiler {
 public:
  static constexpr std::size_t kMaxFrames = 32;
  static constexpr std::size_t kMaxLanes = 64;  // concurrent sampled threads

  static Profiler& global();

  // The disabled fast path: one relaxed atomic load (the "potential sample
  // point" cost everywhere outside the signal handler).
  bool enabled() const noexcept { return enabled_.load(std::memory_order_relaxed); }

  // Allocate lanes, prime the libgcc unwinder, install the SIGPROF handler
  // and arm ITIMER_PROF at cfg.hz. Idempotent per run; not re-entrant with
  // itself. No-op when cfg.enabled is false.
  void start(const ProfileConfig& cfg);
  // Disarm the timer, restore the previous SIGPROF disposition, keep the
  // captured samples readable until the next start().
  void stop();

  // Label the calling thread's samples ("node3", "epoll-loop", …). Cheap
  // (one TLS strncpy); safe to call whether or not the profiler is running,
  // so instrumented threads call it unconditionally.
  static void set_thread_name(const char* name);

  // Consistent copies of the surviving samples (newest-N per lane, torn
  // slots skipped). Safe while sampling is live.
  std::vector<ProfileSample> snapshot() const;

  std::uint64_t samples_total() const noexcept {
    return samples_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped_total() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  // Collapsed-stack (folded) text: one "lane_name;outer;…;leaf count" line
  // per unique stack, sorted, flamegraph.pl-compatible. The symbolizer maps
  // a pc to a frame name; the default (symbolize_pc) uses dladdr and
  // demangles; tests inject a deterministic one.
  using Symbolizer = std::function<std::string(void*)>;
  static std::string collapse(const std::vector<ProfileSample>& samples,
                              const std::vector<std::string>& lane_names,
                              const Symbolizer& symbolize);
  // dladdr + __cxa_demangle; falls back to "module+0x<off>" then "0x<pc>".
  static std::string symbolize_pc(void* pc);

  // snapshot() + collapse() with the live lane names and the default
  // symbolizer — what the /profile scrape route and --profile file export
  // serve. Empty string when the profiler never started.
  std::string collapsed_text() const;

  // Name of lane i as registered via set_thread_name ("lane<i>" default).
  std::string lane_name(std::size_t i) const;

  // Visit recent raw samples lock-free, newest-first per lane, at most
  // `max_total` across lanes. Async-signal-safe (no allocation, no locks):
  // the flight recorder calls this from a crash handler. fn receives slots
  // that may be torn only if the seqlock check races a concurrent crash —
  // acceptable for post-mortem output.
  template <class Fn>
  void visit_recent_unsafe(std::size_t max_total, Fn&& fn) const {
    const Lanes* ls = lanes_.load(std::memory_order_acquire);
    if (ls == nullptr) return;
    std::size_t emitted = 0;
    const std::size_t nlanes =
        std::min<std::size_t>(lane_count_.load(std::memory_order_acquire), kMaxLanes);
    for (std::size_t li = 0; li < nlanes && emitted < max_total; ++li) {
      const Lane& lane = ls->lanes[li];
      const std::uint64_t w = lane.widx.load(std::memory_order_acquire);
      const std::uint64_t cap = ls->ring_capacity;
      const std::uint64_t first = w > cap ? w - cap : 0;
      for (std::uint64_t i = w; i > first && emitted < max_total; --i) {
        const Slot& s = ls->slots[li * cap + ((i - 1) % cap)];
        const std::uint64_t seq1 = s.seq.load(std::memory_order_acquire);
        if (seq1 & 1) continue;  // mid-write
        fn(s.sample);
        ++emitted;
      }
    }
  }

  std::size_t ring_capacity() const noexcept {
    const Lanes* ls = lanes_.load(std::memory_order_acquire);
    return ls ? ls->ring_capacity : 0;
  }

 private:
  Profiler() = default;

  // One sample slot, seqlock-published: odd seq = write in progress.
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    ProfileSample sample;
  };

  // One thread's sample ring + label. Fixed-size name so the claim path
  // (which can run inside the handler) is a plain byte copy.
  struct Lane {
    std::atomic<std::uint64_t> widx{0};
    char name[16] = {0};
  };

  // All sampling storage, allocated as one block on start() and published
  // with a release store so the handler sees fully constructed memory.
  struct Lanes {
    explicit Lanes(std::size_t cap)
        : ring_capacity(cap), slots(new Slot[kMaxLanes * cap]) {}
    std::size_t ring_capacity;
    std::unique_ptr<Slot[]> slots;  // lane-major: [lane * cap + idx]
    Lane lanes[kMaxLanes];
  };

  static void sigprof_handler(int);

  std::atomic<bool> enabled_{false};
  std::atomic<Lanes*> lanes_{nullptr};
  std::atomic<std::uint32_t> lane_count_{0};
  std::atomic<std::uint64_t> samples_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::size_t max_frames_ = 24;
  bool timer_armed_ = false;
  bool handler_installed_ = false;
  std::unique_ptr<Lanes> storage_;  // owner of what lanes_ points at
};

}  // namespace of::obs

template <>
struct of::refl::Reflect<of::obs::ProfileConfig> {
  using S = of::obs::ProfileConfig;
  OF_REFL_FIELDS(
      field("enabled", &S::enabled, 1),
      field("hz", &S::hz, 2).ge(1).le(1000),
      field("max_frames", &S::max_frames, 3).ge(1).le(32),
      field("ring_capacity", &S::ring_capacity, 4).ge(16),
      field("path", &S::path, 5))
};
