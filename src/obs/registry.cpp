#include "obs/registry.hpp"

namespace of::obs {

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::map<std::string, std::int64_t> Registry::snapshot() const {
  std::map<std::string, std::int64_t> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_)
    out[name] = static_cast<std::int64_t>(c->value());
  for (const auto& [name, g] : gauges_) out[name] = g->value();
  return out;
}

std::vector<std::string> Registry::counter_names() const {
  std::vector<std::string> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) out.push_back(name);
  return out;
}

std::vector<std::string> Registry::gauge_names() const {
  std::vector<std::string> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, g] : gauges_) out.push_back(name);
  return out;
}

std::vector<std::string> Registry::histogram_names() const {
  std::vector<std::string> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, h] : histograms_) out.push_back(name);
  return out;
}

const Counter* Registry::find_counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

}  // namespace of::obs
