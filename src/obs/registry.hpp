// of::obs metric registry — named counters, gauges, and log-bucketed
// histograms with a cheap handle API:
//
//   obs::Counter& c = obs::Registry::global().counter("tcp.reconnects");
//   c.inc();   // one relaxed atomic add, forever after
//
// Handles are looked up once (mutex + map) and then held by reference —
// instruments live for the registry's lifetime and never move. Instruments
// are always on: they cost one relaxed atomic op per update, so unlike
// tracing they need no enable flag. The registry is process-global (the
// Prometheus convention); callers that need per-run deltas snapshot() before
// and after (Engine does this for the CSV pool-hit-rate column).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace of::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n) noexcept { v_.fetch_sub(n, std::memory_order_relaxed); }
  std::int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Log-bucketed histogram: bucket i counts observations v with
// bit_width(v) == i, i.e. upper bounds 0, 1, 3, 7, …, 2^k-1 — fixed memory,
// one relaxed add per observe, ~2× relative resolution. Good enough for the
// latency/size/staleness distributions the round loop produces.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // bit_width(uint64) ∈ [0, 64]

  void observe(std::uint64_t v) noexcept {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  static std::size_t bucket_index(std::uint64_t v) noexcept {
    std::size_t w = 0;
    while (v != 0) {
      ++w;
      v >>= 1;
    }
    return w;
  }
  // Inclusive upper bound of bucket i: 2^i - 1 (bucket 0 holds only v=0).
  static std::uint64_t bucket_bound(std::size_t i) noexcept {
    return i >= 64 ? ~0ull : (1ull << i) - 1;
  }

  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

class Registry {
 public:
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Find-or-create by name. The returned reference is stable for the
  // registry's lifetime; cache it where the update path is hot.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Point-in-time values of all counters and gauges (histograms are
  // exported, not snapshotted). Names are unique across instrument kinds.
  std::map<std::string, std::int64_t> snapshot() const;

  // Sorted instrument names, per kind (export + test introspection).
  std::vector<std::string> counter_names() const;
  std::vector<std::string> gauge_names() const;
  std::vector<std::string> histogram_names() const;

  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

 private:
  mutable std::mutex mu_;
  // node-based maps: values never move once created.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace of::obs
