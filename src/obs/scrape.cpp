#include "obs/scrape.hpp"

#include <sstream>

#include "obs/export.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/telemetry.hpp"

namespace of::obs {

HttpResponse handle_scrape(const std::string& path) {
  HttpResponse r;
  if (path == "/metrics") {
    r.body = to_prometheus_text(Registry::global()) + Fleet::global().prometheus_text();
    return r;
  }
  if (path == "/" || path == "/fleet") {
    r.content_type = "text/plain; charset=utf-8";
    r.body = Fleet::global().health_text();
    return r;
  }
  if (path == "/fleet.json") {
    r.content_type = "application/json";
    r.body = Fleet::global().json_text() + "\n";
    return r;
  }
  if (path == "/fleet.csv") {
    r.content_type = "text/csv; charset=utf-8";
    r.body = Fleet::global().csv_text();
    return r;
  }
  if (path == "/profile") {
    // Collapsed stacks (flamegraph.pl folded format); 404 until the
    // profiler has run so tooling can distinguish "off" from "idle".
    if (Profiler::global().ring_capacity() == 0) {
      r.status = 404;
      r.content_type = "text/plain; charset=utf-8";
      r.body = "profiler disabled (set obs.profile.enabled)\n";
      return r;
    }
    r.content_type = "text/plain; charset=utf-8";
    r.body = Profiler::global().collapsed_text();
    return r;
  }
  r.status = 404;
  r.content_type = "text/plain; charset=utf-8";
  r.body = "not found\n";
  return r;
}

std::string render_http(const HttpResponse& r) {
  std::ostringstream os;
  os << "HTTP/1.1 " << r.status << ' ' << (r.status == 200 ? "OK" : "Not Found")
     << "\r\nContent-Type: " << r.content_type
     << "\r\nContent-Length: " << r.body.size() << "\r\nConnection: close\r\n\r\n"
     << r.body;
  return os.str();
}

}  // namespace of::obs
