// of::obs scrape endpoint — read-only HTTP views served off the
// coordinator's existing TCP listener (DESIGN.md §9).
//
// The transport layer detects a plain-text "GET " where a frame header
// would be and hands the request path here; this module only renders. Two
// routes:
//
//   /metrics — Prometheus 0.0.4 text: the process-wide Registry plus the
//              per-node of_fleet_* series.
//   /fleet   — (also "/") the one-page human health summary.
//
// Security: the endpoint is unauthenticated, read-only, and bound to
// whatever interface the coordinator listens on (loopback by default).
// Anyone who can reach the port can read run telemetry — see the DESIGN.md
// caveats before exposing it beyond a trusted network.
#pragma once

#include <string>

namespace of::obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::string body;
};

// Render the response for one GET path ("/metrics", "/fleet", "/", else 404).
HttpResponse handle_scrape(const std::string& path);

// Serialize a full HTTP/1.1 response (status line, headers, body) ready to
// write to the socket. Connection: close — one request per connection.
std::string render_http(const HttpResponse& r);

}  // namespace of::obs
