#include "obs/telemetry.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <type_traits>

#include "obs/export.hpp"
#include "refl/json.hpp"
#include "refl/tlv.hpp"

namespace of::obs {
namespace {

constexpr std::uint32_t kTelemetryMagic = 0x4F46544Cu;  // "OFTL"
constexpr std::uint16_t kTelemetryVersion = 1;
// v2 trailer: [TLV payload][u32 payload_len][u16 version][u16 rsvd][u32 magic],
// parsed from the frame end like v1.
constexpr std::uint32_t kTlvTailMagic = 0x3254464Fu;  // "OFT2"
constexpr std::uint16_t kTlvVersion = 2;
constexpr std::size_t kTlvTrailerBytes = 12;

void put_u16(AlignedBytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
void put_u32(AlignedBytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_u64(AlignedBytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_i64(AlignedBytes& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

std::uint16_t get_u16(const std::uint8_t*& p) {
  std::uint16_t v = static_cast<std::uint16_t>(p[0] | (p[1] << 8));
  p += 2;
  return v;
}
std::uint32_t get_u32(const std::uint8_t*& p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  p += 4;
  return v;
}
std::uint64_t get_u64(const std::uint8_t*& p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  p += 8;
  return v;
}
std::int64_t get_i64(const std::uint8_t*& p) {
  return static_cast<std::int64_t>(get_u64(p));
}

// One Prometheus sample value: bools as 0/1, doubles through prom_double,
// vectors as their size, integers verbatim.
template <class V>
void prom_value(std::ostream& os, const V& v) {
  if constexpr (std::is_same_v<V, bool>) {
    os << (v ? 1 : 0);
  } else if constexpr (std::is_floating_point_v<V>) {
    os << prom_double(static_cast<double>(v));
  } else if constexpr (refl::is_std_vector_v<V>) {
    os << v.size();
  } else {
    os << v;
  }
}

// Render every exported field of T as one `# TYPE` family: rows are
// (label value, struct) pairs; label_key == nullptr emits unlabeled
// singleton samples. The family name is prefix + export_name(), so the
// descriptor is the only name table.
template <refl::Reflected T>
void prom_families(std::ostream& os, const char* prefix, const char* label_key,
                   const std::vector<std::pair<int, const T*>>& rows) {
  refl::for_each_field<T>([&](const auto& f) {
    using FT = typename std::decay_t<decltype(f)>::Type;
    if constexpr (std::is_arithmetic_v<FT> || refl::is_std_vector_v<FT>) {
      if (f.exported != refl::Export::Gauge && f.exported != refl::Export::Counter)
        return;
      os << "# TYPE " << prefix << f.export_name()
         << (f.exported == refl::Export::Counter ? " counter\n" : " gauge\n");
      for (const auto& [label, row] : rows) {
        os << prefix << f.export_name();
        if (label_key) os << '{' << label_key << "=\"" << label << "\"}";
        os << ' ';
        prom_value(os, row->*(f.member));
        os << '\n';
      }
    }
  });
}

}  // namespace

void TelemetrySummary::serialize_to(AlignedBytes& out) const {
  const std::size_t before = out.size();
  put_u32(out, kTelemetryMagic);
  put_u16(out, kTelemetryVersion);
  put_u16(out, 0);  // reserved
  put_u64(out, trace_id);
  put_u32(out, rank);
  put_u32(out, round);
  put_i64(out, clock_offset_ns);
  put_i64(out, rtt_ns);
  put_u64(out, bytes_sent);
  put_u64(out, bytes_received);
  put_u64(out, pool_hits);
  put_u64(out, pool_misses);
  put_u64(out, reconnects);
  put_u64(out, frames_dropped);
  put_u64(out, faults_injected);
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    put_u64(out, phases[i].count);
    put_u64(out, phases[i].total_ns);
    put_u64(out, phases[i].max_ns);
  }
  (void)before;
  static_assert(TelemetrySummary::kWireBytes == 216, "wire layout drifted");
}

void TelemetrySummary::serialize_tlv_to(AlignedBytes& out) const {
  refl::tlv::Bytes payload;
  refl::tlv::encode(*this, payload);
  out.insert(out.end(), payload.begin(), payload.end());
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u16(out, kTlvVersion);
  put_u16(out, 0);  // reserved
  put_u32(out, kTlvTailMagic);
}

std::optional<TelemetrySummary> TelemetrySummary::parse_tail(
    const std::uint8_t* data, std::size_t len, std::size_t* tail_bytes) {
  // v2: fixed trailer at the very end, TLV payload just before it.
  if (len >= kTlvTrailerBytes) {
    const std::uint8_t* p = data + (len - kTlvTrailerBytes);
    const std::uint32_t payload_len = get_u32(p);
    const std::uint16_t version = get_u16(p);
    get_u16(p);  // reserved
    if (get_u32(p) == kTlvTailMagic && version == kTlvVersion &&
        len - kTlvTrailerBytes >= payload_len) {
      TelemetrySummary s;
      if (!refl::tlv::decode(s, data + (len - kTlvTrailerBytes - payload_len),
                             payload_len))
        return std::nullopt;
      if (tail_bytes) *tail_bytes = kTlvTrailerBytes + payload_len;
      return s;
    }
  }
  // v1 fallback: the frozen 216-byte fixed layout.
  if (len < kWireBytes) return std::nullopt;
  const std::uint8_t* p = data + (len - kWireBytes);
  if (get_u32(p) != kTelemetryMagic) return std::nullopt;
  if (get_u16(p) != kTelemetryVersion) return std::nullopt;
  get_u16(p);  // reserved
  TelemetrySummary s;
  s.trace_id = get_u64(p);
  s.rank = get_u32(p);
  s.round = get_u32(p);
  s.clock_offset_ns = get_i64(p);
  s.rtt_ns = get_i64(p);
  s.bytes_sent = get_u64(p);
  s.bytes_received = get_u64(p);
  s.pool_hits = get_u64(p);
  s.pool_misses = get_u64(p);
  s.reconnects = get_u64(p);
  s.frames_dropped = get_u64(p);
  s.faults_injected = get_u64(p);
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    s.phases[i].count = get_u64(p);
    s.phases[i].total_ns = get_u64(p);
    s.phases[i].max_ns = get_u64(p);
  }
  if (tail_bytes) *tail_bytes = kWireBytes;
  return s;
}

Fleet& Fleet::global() {
  static Fleet fleet;
  return fleet;
}

void Fleet::reset(std::uint64_t trace_id) {
  std::lock_guard<std::mutex> lock(mu_);
  trace_id_ = trace_id;
  nodes_.clear();
  last_round_.reset();
  combiners_.clear();
  serve_.reset();
  attribution_.reset();
  for (auto& h : phase_hist_)
    for (auto& b : h) b = 0;
}

void Fleet::record(const TelemetrySummary& s) {
  std::lock_guard<std::mutex> lock(mu_);
  NodeState& n = nodes_[static_cast<int>(s.rank)];
  n.last = s;
  ++n.updates;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    n.cum_phases[i].count += s.phases[i].count;
    n.cum_phases[i].total_ns += s.phases[i].total_ns;
    n.cum_phases[i].max_ns = std::max(n.cum_phases[i].max_ns, s.phases[i].max_ns);
    // Histogram-backed /fleet percentiles: one observation per phase per
    // reported round (the log2 bucket of the phase's total ns).
    if (s.phases[i].count > 0) {
      std::size_t w = 0;
      for (std::uint64_t v = s.phases[i].total_ns; v != 0; v >>= 1) ++w;
      ++phase_hist_[i][w];
    }
  }
  attribution_.observe_client(s.rank, s.round, s.phases, s.round_span_id);
}

void Fleet::record_round(const RoundHealth& h) {
  std::lock_guard<std::mutex> lock(mu_);
  last_round_ = h;
  attribution_.on_round(h.round, h.seconds, h.aggregate_seconds);
}

void Fleet::record_combiner(const CombinerHealth& h) {
  std::lock_guard<std::mutex> lock(mu_);
  combiners_[h.group] = h;
}

void Fleet::record_serve(const ServeHealth& h) {
  std::lock_guard<std::mutex> lock(mu_);
  serve_ = h;
}

std::optional<Fleet::ServeHealth> Fleet::serve() const {
  std::lock_guard<std::mutex> lock(mu_);
  return serve_;
}

std::vector<Fleet::CombinerHealth> Fleet::combiners() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CombinerHealth> out;
  out.reserve(combiners_.size());
  for (const auto& [g, h] : combiners_) out.push_back(h);
  return out;
}

std::uint64_t Fleet::trace_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_id_;
}

std::vector<TelemetrySummary> Fleet::latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TelemetrySummary> out;
  out.reserve(nodes_.size());
  for (const auto& [rank, n] : nodes_) out.push_back(n.last);
  return out;
}

std::optional<CriticalPath> Fleet::critical_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return attribution_.latest();
}

std::map<int, Attribution::LatencyHist> Fleet::client_hists() const {
  std::lock_guard<std::mutex> lock(mu_);
  return attribution_.client_hists();
}

std::map<int, std::int64_t> Fleet::clock_offsets() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<int, std::int64_t> out;
  for (const auto& [rank, n] : nodes_)
    if (n.last.rtt_ns > 0) out[rank] = n.last.clock_offset_ns;
  return out;
}

std::string Fleet::prometheus_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  {
    std::ostringstream id;
    id << "0x" << std::hex << trace_id_;
    os << "# TYPE of_fleet_info gauge\n"
       << "of_fleet_info{trace_id=\"" << prom_escape_label(id.str()) << "\"} 1\n";
  }
  os << "# TYPE of_fleet_nodes gauge\nof_fleet_nodes " << nodes_.size() << '\n';

  // Per-node families, straight from the TelemetrySummary descriptor.
  std::vector<std::pair<int, const TelemetrySummary*>> rows;
  rows.reserve(nodes_.size());
  for (const auto& [rank, n] : nodes_) rows.emplace_back(rank, &n.last);
  prom_families(os, "of_fleet_", "node", rows);

  // Derived series the descriptor cannot express (ratios, coordinator-side
  // accumulations) stay hand-written.
  // Hit rate over zero acquires is 0, not NaN (prom_double also guards).
  os << "# TYPE of_fleet_pool_hit_rate gauge\n";
  for (const auto& [rank, n] : nodes_) {
    const std::uint64_t total = n.last.pool_hits + n.last.pool_misses;
    const double rate =
        total == 0 ? 0.0
                   : static_cast<double>(n.last.pool_hits) / static_cast<double>(total);
    os << "of_fleet_pool_hit_rate{node=\"" << rank << "\"} " << prom_double(rate)
       << '\n';
  }
  os << "# TYPE of_fleet_updates_total counter\n";
  for (const auto& [rank, n] : nodes_)
    os << "of_fleet_updates_total{node=\"" << rank << "\"} " << n.updates << '\n';

  os << "# TYPE of_fleet_phase_seconds_total counter\n";
  for (const auto& [rank, n] : nodes_)
    for (std::size_t i = 0; i < kPhaseCount; ++i)
      os << "of_fleet_phase_seconds_total{node=\"" << rank << "\",phase=\""
         << prom_escape_label(phase_label(i)) << "\"} "
         << prom_double(static_cast<double>(n.cum_phases[i].total_ns) / 1e9) << '\n';

  if (last_round_)
    prom_families<RoundHealth>(os, "of_fleet_", nullptr, {{0, &*last_round_}});

  // Attribution verdict: numeric fields from the CriticalPath descriptor,
  // the cause itself as a label on the derived _info series.
  if (const auto cp = attribution_.latest()) {
    prom_families<CriticalPath>(os, "of_fleet_critical_path_", nullptr, {{0, &*cp}});
    os << "# TYPE of_fleet_critical_path_info gauge\n"
       << "of_fleet_critical_path_info{cause=\"" << to_string(cp->cause)
       << "\",client=\"" << cp->client << "\"} 1\n";
  }

  // Per-client round-latency histograms (attribution engine): bucket
  // bounds in seconds, cumulative up to the last non-empty bucket.
  if (!attribution_.client_hists().empty()) {
    os << "# TYPE of_fleet_client_round_seconds histogram\n";
    for (const auto& [rank, h] : attribution_.client_hists()) {
      std::size_t last = 0;
      for (std::size_t i = 0; i < Attribution::LatencyHist::kBuckets; ++i)
        if (h.buckets[i] > 0) last = i;
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i <= last; ++i) {
        cum += h.buckets[i];
        const std::uint64_t bound_ns = i >= 64 ? ~0ull : (1ull << i) - 1;
        os << "of_fleet_client_round_seconds_bucket{node=\"" << rank << "\",le=\""
           << prom_double(static_cast<double>(bound_ns) / 1e9) << "\"} " << cum
           << '\n';
      }
      os << "of_fleet_client_round_seconds_bucket{node=\"" << rank
         << "\",le=\"+Inf\"} " << h.count << '\n'
         << "of_fleet_client_round_seconds_sum{node=\"" << rank << "\"} "
         << prom_double(static_cast<double>(h.sum_ns) / 1e9) << '\n'
         << "of_fleet_client_round_seconds_count{node=\"" << rank << "\"} "
         << h.count << '\n';
    }
  }

  if (!combiners_.empty()) {
    std::vector<std::pair<int, const CombinerHealth*>> crows;
    crows.reserve(combiners_.size());
    for (const auto& [g, h] : combiners_) crows.emplace_back(g, &h);
    prom_families(os, "of_fleet_combiner_", "group", crows);
  }

  if (serve_)
    prom_families<ServeHealth>(os, "of_fleet_serve_", nullptr, {{0, &*serve_}});
  return os.str();
}

std::string Fleet::json_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"trace_id\":";
  {
    std::ostringstream id;
    id << "0x" << std::hex << trace_id_;
    refl::json::append_escaped(id.str(), out);
  }
  out += ",\"nodes\":[";
  bool first = true;
  for (const auto& [rank, n] : nodes_) {
    (void)rank;
    if (!first) out += ',';
    first = false;
    std::string obj = refl::json::to_json(n.last);
    obj.pop_back();  // reopen the object for the derived keys
    const std::uint64_t total = n.last.pool_hits + n.last.pool_misses;
    const double rate =
        total == 0 ? 0.0
                   : static_cast<double>(n.last.pool_hits) / static_cast<double>(total);
    obj += ",\"pool_hit_rate\":";
    refl::json::append_double(rate, obj);
    obj += ",\"updates_total\":" + std::to_string(n.updates);
    obj += ",\"phase_seconds_total\":{";
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      if (i) obj += ',';
      refl::json::append_escaped(phase_label(i), obj);
      obj += ':';
      refl::json::append_double(static_cast<double>(n.cum_phases[i].total_ns) / 1e9,
                                obj);
    }
    obj += "}}";
    out += obj;
  }
  out += "],\"last_round\":";
  out += last_round_ ? refl::json::to_json(*last_round_) : std::string("null");
  out += ",\"critical_path\":";
  if (const auto cp = attribution_.latest()) {
    std::string obj = refl::json::to_json(*cp);
    obj.pop_back();  // reopen: the exemplar span renders as a hex string
    std::ostringstream span;
    span << "0x" << std::hex << cp->exemplar_span;
    obj += ",\"exemplar_span\":";
    refl::json::append_escaped(span.str(), obj);
    obj += '}';
    out += obj;
  } else {
    out += "null";
  }
  // Per-client latency digest: count / total / shared nearest-rank
  // percentiles over the log2 histogram, plus the exemplar span id.
  out += ",\"clients_latency\":{";
  {
    bool cfirst = true;
    for (const auto& [rank, h] : attribution_.client_hists()) {
      if (!cfirst) out += ',';
      cfirst = false;
      refl::json::append_escaped(std::to_string(rank), out);
      out += ":{\"rounds\":" + std::to_string(h.count);
      out += ",\"total_seconds\":";
      refl::json::append_double(static_cast<double>(h.sum_ns) / 1e9, out);
      out += ",\"p50_seconds\":";
      refl::json::append_double(
          static_cast<double>(percentile_log2(
              h.buckets, Attribution::LatencyHist::kBuckets, 50)) / 1e9,
          out);
      out += ",\"p95_seconds\":";
      refl::json::append_double(
          static_cast<double>(percentile_log2(
              h.buckets, Attribution::LatencyHist::kBuckets, 95)) / 1e9,
          out);
      std::ostringstream span;
      span << "0x" << std::hex << h.last_span;
      out += ",\"exemplar_span\":";
      refl::json::append_escaped(span.str(), out);
      out += '}';
    }
  }
  out += '}';
  out += ",\"combiners\":[";
  first = true;
  for (const auto& [g, h] : combiners_) {
    (void)g;
    if (!first) out += ',';
    first = false;
    out += refl::json::to_json(h);
  }
  out += "],\"serve\":";
  out += serve_ ? refl::json::to_json(*serve_) : std::string("null");
  out += '}';
  return out;
}

std::string Fleet::csv_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  bool first = true;
  refl::for_each_field<TelemetrySummary>([&](const auto& f) {
    using FT = typename std::decay_t<decltype(f)>::Type;
    if constexpr (std::is_arithmetic_v<FT>) {
      if (f.exported == refl::Export::Skip) return;
      os << (first ? "" : ",") << f.export_name();
      first = false;
    }
  });
  os << '\n';
  for (const auto& [rank, n] : nodes_) {
    (void)rank;
    first = true;
    refl::for_each_field<TelemetrySummary>([&](const auto& f) {
      using FT = typename std::decay_t<decltype(f)>::Type;
      if constexpr (std::is_arithmetic_v<FT>) {
        if (f.exported == refl::Export::Skip) return;
        if (!first) os << ',';
        first = false;
        prom_value(os, n.last.*(f.member));
      }
    });
    os << '\n';
  }
  return os.str();
}

std::string Fleet::health_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "OmniFed fleet health — trace 0x" << std::hex << trace_id_ << std::dec
     << ", " << nodes_.size() << " reporting node(s)\n";

  if (last_round_) {
    const RoundHealth& h = *last_round_;
    os << "round " << h.round << ": participated " << h.participated << '/'
       << h.expected << ", dropped [";
    for (std::size_t i = 0; i < h.dropped.size(); ++i)
      os << (i ? " " : "") << h.dropped[i];
    os << "], deadline_hit " << (h.deadline_hit ? "yes" : "no") << ", bytes up "
       << h.bytes_up << " / down " << h.bytes_down << ", " << std::fixed
       << std::setprecision(3) << h.seconds << " s (aggregate "
       << h.aggregate_seconds << " s)\n";
    os.unsetf(std::ios::fixed);
  }

  if (const auto cp = attribution_.latest()) {
    os << "critical path: round " << cp->round << " -> ";
    if (cp->client < 0)
      os << "coordinator";
    else
      os << "client " << cp->client;
    os << ", cause " << to_string(cp->cause) << " (" << std::fixed
       << std::setprecision(3) << cp->cause_seconds << " s of " << cp->round_seconds
       << " s round, client busy " << cp->client_seconds << " s), span 0x"
       << std::hex << cp->exemplar_span << std::dec << '\n';
    os.unsetf(std::ios::fixed);
  }

  for (const auto& [g, h] : combiners_) {
    os << "combiner " << g << ": round=" << h.round << " participated="
       << h.participated << '/' << h.expected << " dropped=" << h.dropped
       << " deadline_hit=" << (h.deadline_hit ? "yes" : "no")
       << " agg_peak_bytes=" << h.agg_peak_bytes << ' ' << std::fixed
       << std::setprecision(3) << h.seconds << " s\n";
    os.unsetf(std::ios::fixed);
  }

  if (serve_) {
    const ServeHealth& h = *serve_;
    os << "serve: version=" << h.version << " population=" << h.population
       << " alive=" << h.alive << " sampled=" << h.sampled << " buffer="
       << h.buffered << '/' << h.buffer_size << " accepted=" << h.accepted_total
       << " rejected=" << h.rejected_stale_total + h.rejected_full_total
       << " (stale " << h.rejected_stale_total << ", full " << h.rejected_full_total
       << ") resampled=" << h.resampled_total << " joins=" << h.joins_total
       << " leaves=" << h.leaves_total << " mean_staleness="
       << prom_double(h.mean_staleness) << '\n';
  }

  std::uint32_t max_round = 0;
  for (const auto& [rank, n] : nodes_) max_round = std::max(max_round, n.last.round);

  for (const auto& [rank, n] : nodes_) {
    const std::uint64_t pool_total = n.last.pool_hits + n.last.pool_misses;
    const double hit_pct =
        pool_total == 0
            ? 0.0
            : 100.0 * static_cast<double>(n.last.pool_hits) / static_cast<double>(pool_total);
    // Units rule: every duration on this page is seconds.
    os << "node " << rank << ": round=" << n.last.round << " offset_s="
       << prom_double(static_cast<double>(n.last.clock_offset_ns) / 1e9)
       << " rtt_s=" << prom_double(static_cast<double>(n.last.rtt_ns) / 1e9)
       << " sent=" << n.last.bytes_sent << " recv=" << n.last.bytes_received
       << " pool_hit%=" << prom_double(hit_pct) << " reconnects="
       << n.last.reconnects << " faults=" << n.last.faults_injected << '\n';
  }

  os << "stragglers:";
  bool any_straggler = false;
  for (const auto& [rank, n] : nodes_)
    if (n.last.round < max_round) {
      os << ' ' << rank;
      any_straggler = true;
    }
  if (!any_straggler) os << " none";
  os << '\n';

  // Cross-node phase percentiles, histogram-backed: every reported round
  // of every node is one observation, so the numbers survive stragglers
  // that stopped reporting. Seconds, like every duration on this page.
  os << "phase p50/p95 s (all rounds):";
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    os << ' ' << phase_label(i) << '=';
    std::uint64_t total = 0;
    for (const auto b : phase_hist_[i]) total += b;
    if (total == 0) {
      os << "-/-";
      continue;
    }
    os << prom_double(static_cast<double>(percentile_log2(
              phase_hist_[i], Attribution::LatencyHist::kBuckets, 50)) / 1e9)
       << '/'
       << prom_double(static_cast<double>(percentile_log2(
              phase_hist_[i], Attribution::LatencyHist::kBuckets, 95)) / 1e9);
  }
  os << '\n';
  return os.str();
}

}  // namespace of::obs
