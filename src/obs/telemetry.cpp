#include "obs/telemetry.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "obs/export.hpp"

namespace of::obs {
namespace {

constexpr std::uint32_t kTelemetryMagic = 0x4F46544Cu;  // "OFTL"
constexpr std::uint16_t kTelemetryVersion = 1;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

std::uint16_t get_u16(const std::uint8_t*& p) {
  std::uint16_t v = static_cast<std::uint16_t>(p[0] | (p[1] << 8));
  p += 2;
  return v;
}
std::uint32_t get_u32(const std::uint8_t*& p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  p += 4;
  return v;
}
std::uint64_t get_u64(const std::uint8_t*& p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  p += 8;
  return v;
}
std::int64_t get_i64(const std::uint8_t*& p) {
  return static_cast<std::int64_t>(get_u64(p));
}

// Nearest-rank percentile over an ascending vector; n must be > 0.
std::uint64_t percentile(const std::vector<std::uint64_t>& sorted, int pct) {
  const std::size_t idx =
      (static_cast<std::size_t>(pct) * (sorted.size() - 1) + 50) / 100;
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

void TelemetrySummary::serialize_to(std::vector<std::uint8_t>& out) const {
  const std::size_t before = out.size();
  put_u32(out, kTelemetryMagic);
  put_u16(out, kTelemetryVersion);
  put_u16(out, 0);  // reserved
  put_u64(out, trace_id);
  put_u32(out, rank);
  put_u32(out, round);
  put_i64(out, clock_offset_ns);
  put_i64(out, rtt_ns);
  put_u64(out, bytes_sent);
  put_u64(out, bytes_received);
  put_u64(out, pool_hits);
  put_u64(out, pool_misses);
  put_u64(out, reconnects);
  put_u64(out, frames_dropped);
  put_u64(out, faults_injected);
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    put_u64(out, phases[i].count);
    put_u64(out, phases[i].total_ns);
    put_u64(out, phases[i].max_ns);
  }
  (void)before;
  static_assert(TelemetrySummary::kWireBytes == 216, "wire layout drifted");
}

std::optional<TelemetrySummary> TelemetrySummary::parse_tail(
    const std::uint8_t* data, std::size_t len) {
  if (len < kWireBytes) return std::nullopt;
  const std::uint8_t* p = data + (len - kWireBytes);
  if (get_u32(p) != kTelemetryMagic) return std::nullopt;
  if (get_u16(p) != kTelemetryVersion) return std::nullopt;
  get_u16(p);  // reserved
  TelemetrySummary s;
  s.trace_id = get_u64(p);
  s.rank = get_u32(p);
  s.round = get_u32(p);
  s.clock_offset_ns = get_i64(p);
  s.rtt_ns = get_i64(p);
  s.bytes_sent = get_u64(p);
  s.bytes_received = get_u64(p);
  s.pool_hits = get_u64(p);
  s.pool_misses = get_u64(p);
  s.reconnects = get_u64(p);
  s.frames_dropped = get_u64(p);
  s.faults_injected = get_u64(p);
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    s.phases[i].count = get_u64(p);
    s.phases[i].total_ns = get_u64(p);
    s.phases[i].max_ns = get_u64(p);
  }
  return s;
}

Fleet& Fleet::global() {
  static Fleet fleet;
  return fleet;
}

void Fleet::reset(std::uint64_t trace_id) {
  std::lock_guard<std::mutex> lock(mu_);
  trace_id_ = trace_id;
  nodes_.clear();
  last_round_.reset();
  combiners_.clear();
}

void Fleet::record(const TelemetrySummary& s) {
  std::lock_guard<std::mutex> lock(mu_);
  NodeState& n = nodes_[static_cast<int>(s.rank)];
  n.last = s;
  ++n.updates;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    n.cum_phases[i].count += s.phases[i].count;
    n.cum_phases[i].total_ns += s.phases[i].total_ns;
    n.cum_phases[i].max_ns = std::max(n.cum_phases[i].max_ns, s.phases[i].max_ns);
  }
}

void Fleet::record_round(const RoundHealth& h) {
  std::lock_guard<std::mutex> lock(mu_);
  last_round_ = h;
}

void Fleet::record_combiner(const CombinerHealth& h) {
  std::lock_guard<std::mutex> lock(mu_);
  combiners_[h.group] = h;
}

std::vector<Fleet::CombinerHealth> Fleet::combiners() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CombinerHealth> out;
  out.reserve(combiners_.size());
  for (const auto& [g, h] : combiners_) out.push_back(h);
  return out;
}

std::uint64_t Fleet::trace_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_id_;
}

std::vector<TelemetrySummary> Fleet::latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TelemetrySummary> out;
  out.reserve(nodes_.size());
  for (const auto& [rank, n] : nodes_) out.push_back(n.last);
  return out;
}

std::map<int, std::int64_t> Fleet::clock_offsets() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<int, std::int64_t> out;
  for (const auto& [rank, n] : nodes_)
    if (n.last.rtt_ns > 0) out[rank] = n.last.clock_offset_ns;
  return out;
}

std::string Fleet::prometheus_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  {
    std::ostringstream id;
    id << "0x" << std::hex << trace_id_;
    os << "# TYPE of_fleet_info gauge\n"
       << "of_fleet_info{trace_id=\"" << prom_escape_label(id.str()) << "\"} 1\n";
  }
  os << "# TYPE of_fleet_nodes gauge\nof_fleet_nodes " << nodes_.size() << '\n';

  const auto gauge_per_node = [&](const char* name, auto value_of) {
    os << "# TYPE of_fleet_" << name << " gauge\n";
    for (const auto& [rank, n] : nodes_)
      os << "of_fleet_" << name << "{node=\"" << rank << "\"} " << value_of(n) << '\n';
  };
  const auto counter_per_node = [&](const char* name, auto value_of) {
    os << "# TYPE of_fleet_" << name << " counter\n";
    for (const auto& [rank, n] : nodes_)
      os << "of_fleet_" << name << "{node=\"" << rank << "\"} " << value_of(n) << '\n';
  };

  gauge_per_node("round", [](const NodeState& n) { return n.last.round; });
  gauge_per_node("clock_offset_ns",
                 [](const NodeState& n) { return n.last.clock_offset_ns; });
  gauge_per_node("clock_rtt_ns", [](const NodeState& n) { return n.last.rtt_ns; });
  gauge_per_node("round_bytes_sent",
                 [](const NodeState& n) { return n.last.bytes_sent; });
  gauge_per_node("round_bytes_received",
                 [](const NodeState& n) { return n.last.bytes_received; });
  counter_per_node("pool_hits_total",
                   [](const NodeState& n) { return n.last.pool_hits; });
  counter_per_node("pool_misses_total",
                   [](const NodeState& n) { return n.last.pool_misses; });
  // Hit rate over zero acquires is 0, not NaN (prom_double also guards).
  os << "# TYPE of_fleet_pool_hit_rate gauge\n";
  for (const auto& [rank, n] : nodes_) {
    const std::uint64_t total = n.last.pool_hits + n.last.pool_misses;
    const double rate =
        total == 0 ? 0.0
                   : static_cast<double>(n.last.pool_hits) / static_cast<double>(total);
    os << "of_fleet_pool_hit_rate{node=\"" << rank << "\"} " << prom_double(rate)
       << '\n';
  }
  counter_per_node("reconnects_total",
                   [](const NodeState& n) { return n.last.reconnects; });
  counter_per_node("frames_dropped_total",
                   [](const NodeState& n) { return n.last.frames_dropped; });
  counter_per_node("faults_injected_total",
                   [](const NodeState& n) { return n.last.faults_injected; });
  counter_per_node("updates_total", [](const NodeState& n) { return n.updates; });

  os << "# TYPE of_fleet_phase_seconds_total counter\n";
  for (const auto& [rank, n] : nodes_)
    for (std::size_t i = 0; i < kPhaseCount; ++i)
      os << "of_fleet_phase_seconds_total{node=\"" << rank << "\",phase=\""
         << prom_escape_label(phase_label(i)) << "\"} "
         << prom_double(static_cast<double>(n.cum_phases[i].total_ns) / 1e9) << '\n';

  if (last_round_) {
    const RoundHealth& h = *last_round_;
    os << "# TYPE of_fleet_last_round gauge\nof_fleet_last_round " << h.round << '\n'
       << "# TYPE of_fleet_last_round_participated gauge\n"
       << "of_fleet_last_round_participated " << h.participated << '\n'
       << "# TYPE of_fleet_last_round_expected gauge\n"
       << "of_fleet_last_round_expected " << h.expected << '\n'
       << "# TYPE of_fleet_last_round_dropped gauge\n"
       << "of_fleet_last_round_dropped " << h.dropped.size() << '\n'
       << "# TYPE of_fleet_last_round_deadline_hit gauge\n"
       << "of_fleet_last_round_deadline_hit " << (h.deadline_hit ? 1 : 0) << '\n'
       << "# TYPE of_fleet_last_round_bytes_up gauge\n"
       << "of_fleet_last_round_bytes_up " << h.bytes_up << '\n'
       << "# TYPE of_fleet_last_round_bytes_down gauge\n"
       << "of_fleet_last_round_bytes_down " << h.bytes_down << '\n';
  }

  if (!combiners_.empty()) {
    const auto combiner_gauge = [&](const char* name, auto value_of) {
      os << "# TYPE of_fleet_combiner_" << name << " gauge\n";
      for (const auto& [g, h] : combiners_)
        os << "of_fleet_combiner_" << name << "{group=\"" << g << "\"} "
           << value_of(h) << '\n';
    };
    combiner_gauge("round", [](const CombinerHealth& h) { return h.round; });
    combiner_gauge("participated",
                   [](const CombinerHealth& h) { return h.participated; });
    combiner_gauge("expected", [](const CombinerHealth& h) { return h.expected; });
    combiner_gauge("dropped", [](const CombinerHealth& h) { return h.dropped; });
    combiner_gauge("deadline_hit",
                   [](const CombinerHealth& h) { return h.deadline_hit ? 1 : 0; });
    combiner_gauge("agg_peak_bytes",
                   [](const CombinerHealth& h) { return h.agg_peak_bytes; });
  }
  return os.str();
}

std::string Fleet::health_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "OmniFed fleet health — trace 0x" << std::hex << trace_id_ << std::dec
     << ", " << nodes_.size() << " reporting node(s)\n";

  if (last_round_) {
    const RoundHealth& h = *last_round_;
    os << "round " << h.round << ": participated " << h.participated << '/'
       << h.expected << ", dropped [";
    for (std::size_t i = 0; i < h.dropped.size(); ++i)
      os << (i ? " " : "") << h.dropped[i];
    os << "], deadline_hit " << (h.deadline_hit ? "yes" : "no") << ", bytes up "
       << h.bytes_up << " / down " << h.bytes_down << ", " << std::fixed
       << std::setprecision(3) << h.seconds << " s\n";
    os.unsetf(std::ios::fixed);
  }

  for (const auto& [g, h] : combiners_) {
    os << "combiner " << g << ": round=" << h.round << " participated="
       << h.participated << '/' << h.expected << " dropped=" << h.dropped
       << " deadline_hit=" << (h.deadline_hit ? "yes" : "no")
       << " agg_peak_bytes=" << h.agg_peak_bytes << ' ' << std::fixed
       << std::setprecision(3) << h.seconds << " s\n";
    os.unsetf(std::ios::fixed);
  }

  std::uint32_t max_round = 0;
  for (const auto& [rank, n] : nodes_) max_round = std::max(max_round, n.last.round);

  for (const auto& [rank, n] : nodes_) {
    const std::uint64_t pool_total = n.last.pool_hits + n.last.pool_misses;
    const double hit_pct =
        pool_total == 0
            ? 0.0
            : 100.0 * static_cast<double>(n.last.pool_hits) / static_cast<double>(pool_total);
    os << "node " << rank << ": round=" << n.last.round
       << " offset_us=" << n.last.clock_offset_ns / 1000
       << " rtt_us=" << n.last.rtt_ns / 1000 << " sent=" << n.last.bytes_sent
       << " recv=" << n.last.bytes_received << " pool_hit%=" << prom_double(hit_pct)
       << " reconnects=" << n.last.reconnects << " faults=" << n.last.faults_injected
       << '\n';
  }

  os << "stragglers:";
  bool any_straggler = false;
  for (const auto& [rank, n] : nodes_)
    if (n.last.round < max_round) {
      os << ' ' << rank;
      any_straggler = true;
    }
  if (!any_straggler) os << " none";
  os << '\n';

  // Cross-node phase percentiles for the latest reported round.
  os << "phase p50/p95 ms (latest round):";
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    std::vector<std::uint64_t> totals;
    for (const auto& [rank, n] : nodes_)
      if (n.last.phases[i].count > 0) totals.push_back(n.last.phases[i].total_ns);
    os << ' ' << phase_label(i) << '=';
    if (totals.empty()) {
      os << "-/-";
      continue;
    }
    std::sort(totals.begin(), totals.end());
    os << prom_double(static_cast<double>(percentile(totals, 50)) / 1e6) << '/'
       << prom_double(static_cast<double>(percentile(totals, 95)) / 1e6);
  }
  os << '\n';
  return os.str();
}

}  // namespace of::obs
