// of::obs telemetry channel — the compact per-round summary a client
// piggybacks on its update frame, and the coordinator-side fleet view
// built from those summaries (DESIGN.md §9).
//
// The summary is a fixed-size little-endian blob appended to the *end* of
// an update frame, so the coordinator strips it with one resize and the
// training payload bytes are untouched — telemetry can never feed back
// into aggregation, which is what keeps the threads=1-vs-4 bitwise
// identity property intact with telemetry enabled. Both sides decide
// append/strip from the same engine-level obs config, so the framing
// always agrees.
//
// The Fleet singleton is the coordinator's registry keyed by node rank:
// latest summary per node, cumulative phase digests, plus the aggregator's
// own per-round health record. It renders two read-only views for the
// scrape endpoint: Prometheus text (`of_fleet_*`, one series per node) and
// a one-page health summary (stragglers, drops, bytes, phase p50/p95).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/aligned.hpp"
#include "obs/attribution.hpp"
#include "obs/context.hpp"
#include "refl/refl.hpp"

namespace of::obs {

// One client's round digest. Bytes and phase digests cover the round being
// reported (the client zeroes its running digests after each send, so the
// send phase reflects the previous round's send); pool / reconnect / fault
// counters are cumulative over the run.
struct TelemetrySummary {
  std::uint64_t trace_id = 0;
  std::uint32_t rank = 0;
  std::uint32_t round = 0;
  std::int64_t clock_offset_ns = 0;  // client − coordinator, 0 = unknown
  std::int64_t rtt_ns = 0;
  std::uint64_t bytes_sent = 0;      // this round, client-side comm stats
  std::uint64_t bytes_received = 0;
  std::uint64_t pool_hits = 0;       // cumulative, this node's frame pool
  std::uint64_t pool_misses = 0;
  std::uint64_t reconnects = 0;      // cumulative, transport
  std::uint64_t frames_dropped = 0;
  std::uint64_t faults_injected = 0; // cumulative, client-side injections
  PhaseDigest phases[kPhaseCount];
  // Peak resident set of the reporting process (getrusage ru_maxrss), kB.
  // v2-wire only: the frozen v1 fixed layout predates it.
  std::uint64_t peak_rss_kb = 0;
  // The client's open round span id when the summary was built — the
  // attribution engine's exemplar link into the merged trace. v2-wire
  // only; 0 when tracing is off or the sender predates the field.
  std::uint64_t round_span_id = 0;

  // Wire size of the *v1* fixed-layout blob (fields + magic/version
  // header). The v1 layout is frozen — new fields ride the v2 TLV wire.
  static constexpr std::size_t kWireBytes =
      4 + 2 + 2 +                    // magic, version, reserved
      8 + 4 + 4 +                    // trace_id, rank, round
      8 + 8 +                        // clock offset, rtt
      8 * 7 +                        // byte/pool/reconnect/drop/fault counters
      kPhaseCount * 3 * 8;           // phase digests

  // Append the fixed-size v1 blob to `out` (always exactly kWireBytes).
  void serialize_to(AlignedBytes& out) const;

  // Append the v2 blob: the TLV records of every descriptor field
  // followed by a fixed 12-byte trailer (payload_len, version, magic) so
  // the coordinator can strip a variable-size tail from the frame end.
  // Unknown tags are skipped on decode, so mixed-version fleets
  // interoperate in both directions (DESIGN.md §13).
  void serialize_tlv_to(AlignedBytes& out) const;

  // Parse a blob from the tail of [data, data+len): first the v2 TLV
  // trailer, then the fixed v1 layout as fallback. Returns nullopt if the
  // buffer is too short or no magic/version matches. On success,
  // *tail_bytes (when given) receives the byte count the tail occupies —
  // what the caller must strip off the frame.
  static std::optional<TelemetrySummary> parse_tail(const std::uint8_t* data,
                                                    std::size_t len,
                                                    std::size_t* tail_bytes = nullptr);
};

class Fleet {
 public:
  static Fleet& global();

  // The coordinator's own view of one finished round.
  struct RoundHealth {
    std::uint32_t round = 0;
    std::uint32_t participated = 0;
    std::uint32_t expected = 0;
    std::vector<int> dropped;
    bool deadline_hit = false;
    std::uint64_t bytes_up = 0;
    std::uint64_t bytes_down = 0;
    double seconds = 0.0;
    // Coordinator-side aggregation time for the round — the server-side
    // candidate the attribution engine weighs against client phases.
    double aggregate_seconds = 0.0;
  };

  // One combiner's (group leader's) view of a finished round — the
  // hierarchical tier's health row (DESIGN.md §10).
  struct CombinerHealth {
    int group = 0;
    std::uint32_t round = 0;
    std::uint32_t participated = 0;  // group members that made the cutoff
    std::uint32_t expected = 0;
    std::uint32_t dropped = 0;       // stragglers cut at the deadline
    bool deadline_hit = false;
    std::uint64_t agg_peak_bytes = 0;  // StreamingSum::peak_bytes()
    double seconds = 0.0;              // group gather + partial encode
  };

  // The serving tier's view of the run (DESIGN.md §14): population and
  // liveness from the registry, sampling and buffer admission counters,
  // staleness. The serve loop records a fresh row at every buffer drain.
  struct ServeHealth {
    std::uint64_t version = 0;  // server model version = drains so far
    std::uint64_t population = 0;  // registered identities over the run
    std::uint32_t alive = 0;
    std::uint32_t sampled = 0;      // current window's invitation count
    std::uint32_t buffered = 0;     // updates in the buffer after this drain
    std::uint32_t buffer_size = 0;
    std::uint64_t accepted_total = 0;
    std::uint64_t rejected_stale_total = 0;
    std::uint64_t rejected_full_total = 0;
    std::uint64_t resampled_total = 0;  // churned invitees replaced mid-window
    std::uint64_t joins_total = 0;
    std::uint64_t leaves_total = 0;
    double mean_staleness = 0.0;  // over accepted updates, cumulative
    double seconds = 0.0;         // since the serve loop started
  };

  // Start a fresh fleet view for a run.
  void reset(std::uint64_t trace_id);

  // Record a client summary / the aggregator's round record / one combiner's
  // round record. Thread-safe.
  void record(const TelemetrySummary& s);
  void record_round(const RoundHealth& h);
  void record_combiner(const CombinerHealth& h);
  void record_serve(const ServeHealth& h);

  // Latest health row per combiner group, ascending group id.
  std::vector<CombinerHealth> combiners() const;
  // Latest serving-tier row, when a serve loop is (or was) running.
  std::optional<ServeHealth> serve() const;

  std::uint64_t trace_id() const;
  // Latest summary per node, ascending rank.
  std::vector<TelemetrySummary> latest() const;
  // Latest round critical-path verdict from the attribution engine, when
  // round health and client telemetry have both arrived.
  std::optional<CriticalPath> critical_path() const;
  // Per-client round-latency histograms (attribution engine), keyed by rank.
  std::map<int, Attribution::LatencyHist> client_hists() const;
  // Node rank → min-RTT clock offset (ns, client − coordinator). Nodes
  // that never reported an offset are omitted.
  std::map<int, std::int64_t> clock_offsets() const;

  // Prometheus 0.0.4 text: of_fleet_* families with a node="<rank>" label.
  // Family names and types come from the TelemetrySummary / RoundHealth /
  // CombinerHealth field descriptors.
  std::string prometheus_text() const;
  // The same fleet view as a JSON document (GET /fleet.json) — keys match
  // the Prometheus families name-for-name, from the same descriptors.
  std::string json_text() const;
  // Per-node CSV (GET /fleet.csv), one row per reporting node; the column
  // set is the TelemetrySummary descriptor's exported fields.
  std::string csv_text() const;
  // Human-readable one-page per-round health summary.
  std::string health_text() const;

 private:
  struct NodeState {
    TelemetrySummary last;
    PhaseDigest cum_phases[kPhaseCount];
    std::uint64_t updates = 0;
  };

  mutable std::mutex mu_;
  std::uint64_t trace_id_ = 0;
  std::map<int, NodeState> nodes_;
  std::optional<RoundHealth> last_round_;
  std::map<int, CombinerHealth> combiners_;  // group id → latest row
  std::optional<ServeHealth> serve_;
  // Mutated only under mu_ (the engine itself is lock-free plain data).
  Attribution attribution_;
  // Cross-client per-phase round-time histograms (log2 buckets over ns),
  // fed once per summary — what the /fleet percentiles render from.
  std::uint64_t phase_hist_[kPhaseCount][Attribution::LatencyHist::kBuckets] = {};
};

}  // namespace of::obs

// The telemetry schema (DESIGN.md §13). Tags are wire ABI: stable forever,
// never reused. Adding a field here is the single edit that makes it
// appear on the v2 TLV wire, in the of_fleet_* Prometheus families, in
// /fleet.json, and in the /fleet.csv columns. The exporter name defaults
// to the field name; .prom_name() overrides keep the historical gauge
// names stable where they differ.
template <>
struct of::refl::Reflect<of::obs::TelemetrySummary> {
  using S = of::obs::TelemetrySummary;
  OF_REFL_FIELDS(
      field("trace_id", &S::trace_id, 1).skip_export(),
      field("rank", &S::rank, 2).label().prom_name("node"),
      field("round", &S::round, 3),
      field("clock_offset_ns", &S::clock_offset_ns, 4),
      field("rtt_ns", &S::rtt_ns, 5).prom_name("clock_rtt_ns"),
      field("bytes_sent", &S::bytes_sent, 6).prom_name("round_bytes_sent"),
      field("bytes_received", &S::bytes_received, 7).prom_name("round_bytes_received"),
      field("pool_hits", &S::pool_hits, 8).counter().prom_name("pool_hits_total"),
      field("pool_misses", &S::pool_misses, 9).counter().prom_name("pool_misses_total"),
      field("reconnects", &S::reconnects, 10).counter().prom_name("reconnects_total"),
      field("frames_dropped", &S::frames_dropped, 11).counter().prom_name("frames_dropped_total"),
      field("faults_injected", &S::faults_injected, 12).counter().prom_name("faults_injected_total"),
      field("phases", &S::phases, 13).skip_export(),
      field("peak_rss_kb", &S::peak_rss_kb, 14),
      field("round_span_id", &S::round_span_id, 15).skip_export())
};

template <>
struct of::refl::Reflect<of::obs::Fleet::RoundHealth> {
  using S = of::obs::Fleet::RoundHealth;
  OF_REFL_FIELDS(
      field("round", &S::round, 1).prom_name("last_round"),
      field("participated", &S::participated, 2).prom_name("last_round_participated"),
      field("expected", &S::expected, 3).prom_name("last_round_expected"),
      field("dropped", &S::dropped, 4).prom_name("last_round_dropped"),
      field("deadline_hit", &S::deadline_hit, 5).prom_name("last_round_deadline_hit"),
      field("bytes_up", &S::bytes_up, 6).prom_name("last_round_bytes_up"),
      field("bytes_down", &S::bytes_down, 7).prom_name("last_round_bytes_down"),
      field("seconds", &S::seconds, 8).prom_name("last_round_seconds"),
      field("aggregate_seconds", &S::aggregate_seconds, 9)
          .prom_name("last_round_aggregate_seconds"))
};

template <>
struct of::refl::Reflect<of::obs::Fleet::ServeHealth> {
  using S = of::obs::Fleet::ServeHealth;
  OF_REFL_FIELDS(
      field("version", &S::version, 1),
      field("population", &S::population, 2),
      field("alive", &S::alive, 3),
      field("sampled", &S::sampled, 4),
      field("buffered", &S::buffered, 5),
      field("buffer_size", &S::buffer_size, 6),
      field("accepted_total", &S::accepted_total, 7).counter(),
      field("rejected_stale_total", &S::rejected_stale_total, 8).counter(),
      field("rejected_full_total", &S::rejected_full_total, 9).counter(),
      field("resampled_total", &S::resampled_total, 10).counter(),
      field("joins_total", &S::joins_total, 11).counter(),
      field("leaves_total", &S::leaves_total, 12).counter(),
      field("mean_staleness", &S::mean_staleness, 13),
      field("seconds", &S::seconds, 14))
};

template <>
struct of::refl::Reflect<of::obs::Fleet::CombinerHealth> {
  using S = of::obs::Fleet::CombinerHealth;
  OF_REFL_FIELDS(
      field("group", &S::group, 1).label(),
      field("round", &S::round, 2),
      field("participated", &S::participated, 3),
      field("expected", &S::expected, 4),
      field("dropped", &S::dropped, 5),
      field("deadline_hit", &S::deadline_hit, 6),
      field("agg_peak_bytes", &S::agg_peak_bytes, 7),
      field("seconds", &S::seconds, 8))
};
