// of::obs telemetry channel — the compact per-round summary a client
// piggybacks on its update frame, and the coordinator-side fleet view
// built from those summaries (DESIGN.md §9).
//
// The summary is a fixed-size little-endian blob appended to the *end* of
// an update frame, so the coordinator strips it with one resize and the
// training payload bytes are untouched — telemetry can never feed back
// into aggregation, which is what keeps the threads=1-vs-4 bitwise
// identity property intact with telemetry enabled. Both sides decide
// append/strip from the same engine-level obs config, so the framing
// always agrees.
//
// The Fleet singleton is the coordinator's registry keyed by node rank:
// latest summary per node, cumulative phase digests, plus the aggregator's
// own per-round health record. It renders two read-only views for the
// scrape endpoint: Prometheus text (`of_fleet_*`, one series per node) and
// a one-page health summary (stragglers, drops, bytes, phase p50/p95).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/context.hpp"

namespace of::obs {

// One client's round digest. Bytes and phase digests cover the round being
// reported (the client zeroes its running digests after each send, so the
// send phase reflects the previous round's send); pool / reconnect / fault
// counters are cumulative over the run.
struct TelemetrySummary {
  std::uint64_t trace_id = 0;
  std::uint32_t rank = 0;
  std::uint32_t round = 0;
  std::int64_t clock_offset_ns = 0;  // client − coordinator, 0 = unknown
  std::int64_t rtt_ns = 0;
  std::uint64_t bytes_sent = 0;      // this round, client-side comm stats
  std::uint64_t bytes_received = 0;
  std::uint64_t pool_hits = 0;       // cumulative, this node's frame pool
  std::uint64_t pool_misses = 0;
  std::uint64_t reconnects = 0;      // cumulative, transport
  std::uint64_t frames_dropped = 0;
  std::uint64_t faults_injected = 0; // cumulative, client-side injections
  PhaseDigest phases[kPhaseCount];

  // Wire size of the serialized blob (fields + magic/version header).
  static constexpr std::size_t kWireBytes =
      4 + 2 + 2 +                    // magic, version, reserved
      8 + 4 + 4 +                    // trace_id, rank, round
      8 + 8 +                        // clock offset, rtt
      8 * 7 +                        // byte/pool/reconnect/drop/fault counters
      kPhaseCount * 3 * 8;           // phase digests

  // Append the fixed-size blob to `out` (always exactly kWireBytes).
  void serialize_to(std::vector<std::uint8_t>& out) const;

  // Parse a blob from the last kWireBytes of [data, data+len). Returns
  // nullopt if the buffer is too short or the magic/version don't match.
  static std::optional<TelemetrySummary> parse_tail(const std::uint8_t* data,
                                                    std::size_t len);
};

class Fleet {
 public:
  static Fleet& global();

  // The coordinator's own view of one finished round.
  struct RoundHealth {
    std::uint32_t round = 0;
    std::uint32_t participated = 0;
    std::uint32_t expected = 0;
    std::vector<int> dropped;
    bool deadline_hit = false;
    std::uint64_t bytes_up = 0;
    std::uint64_t bytes_down = 0;
    double seconds = 0.0;
  };

  // One combiner's (group leader's) view of a finished round — the
  // hierarchical tier's health row (DESIGN.md §10).
  struct CombinerHealth {
    int group = 0;
    std::uint32_t round = 0;
    std::uint32_t participated = 0;  // group members that made the cutoff
    std::uint32_t expected = 0;
    std::uint32_t dropped = 0;       // stragglers cut at the deadline
    bool deadline_hit = false;
    std::uint64_t agg_peak_bytes = 0;  // StreamingSum::peak_bytes()
    double seconds = 0.0;              // group gather + partial encode
  };

  // Start a fresh fleet view for a run.
  void reset(std::uint64_t trace_id);

  // Record a client summary / the aggregator's round record / one combiner's
  // round record. Thread-safe.
  void record(const TelemetrySummary& s);
  void record_round(const RoundHealth& h);
  void record_combiner(const CombinerHealth& h);

  // Latest health row per combiner group, ascending group id.
  std::vector<CombinerHealth> combiners() const;

  std::uint64_t trace_id() const;
  // Latest summary per node, ascending rank.
  std::vector<TelemetrySummary> latest() const;
  // Node rank → min-RTT clock offset (ns, client − coordinator). Nodes
  // that never reported an offset are omitted.
  std::map<int, std::int64_t> clock_offsets() const;

  // Prometheus 0.0.4 text: of_fleet_* families with a node="<rank>" label.
  std::string prometheus_text() const;
  // Human-readable one-page per-round health summary.
  std::string health_text() const;

 private:
  struct NodeState {
    TelemetrySummary last;
    PhaseDigest cum_phases[kPhaseCount];
    std::uint64_t updates = 0;
  };

  mutable std::mutex mu_;
  std::uint64_t trace_id_ = 0;
  std::map<int, NodeState> nodes_;
  std::optional<RoundHealth> last_round_;
  std::map<int, CombinerHealth> combiners_;  // group id → latest row
};

}  // namespace of::obs
