#include "obs/trace.hpp"

#include <algorithm>

namespace of::obs {

const char* to_string(Name n) {
  switch (n) {
    case Name::Round: return "round";
    case Name::LocalTrain: return "local_train";
    case Name::Encode: return "encode";
    case Name::Send: return "send";
    case Name::Recv: return "recv";
    case Name::Decode: return "decode";
    case Name::Aggregate: return "aggregate";
    case Name::Broadcast: return "broadcast";
    case Name::TcpSend: return "tcp.send";
    case Name::TcpRecv: return "tcp.recv";
    case Name::TcpReconnect: return "tcp.reconnect";
    case Name::TcpBackoff: return "tcp.backoff";
    case Name::PoolHit: return "pool.hit";
    case Name::PoolMiss: return "pool.miss";
    case Name::FaultCrash: return "fault.crash";
    case Name::FaultDisconnect: return "fault.disconnect";
    case Name::FaultDelay: return "fault.delay";
    case Name::DeadlineCut: return "fault.deadline_cut";
    case Name::AsyncStaleness: return "async.staleness";
    case Name::InProcDeliver: return "inproc.deliver";
    case Name::ModeledDelay: return "modeled.delay";
    case Name::AmqpPublish: return "amqp.publish";
    case Name::ExecJob: return "exec.job";
  }
  return "?";
}

const char* phase_label(std::size_t i) {
  switch (i) {
    case 0: return "train";
    case 1: return "encode";
    case 2: return "send";
    case 3: return "recv";
    case 4: return "decode";
    default: return "?";
  }
}

const char* category(Name n) {
  switch (n) {
    case Name::Round:
    case Name::LocalTrain:
    case Name::Encode:
    case Name::Send:
    case Name::Recv:
    case Name::Decode:
    case Name::Aggregate:
    case Name::Broadcast: return "node";
    case Name::TcpSend:
    case Name::TcpRecv:
    case Name::TcpReconnect:
    case Name::TcpBackoff: return "tcp";
    case Name::PoolHit:
    case Name::PoolMiss: return "pool";
    case Name::FaultCrash:
    case Name::FaultDisconnect:
    case Name::FaultDelay:
    case Name::DeadlineCut: return "fault";
    case Name::AsyncStaleness: return "sched";
    case Name::InProcDeliver:
    case Name::ModeledDelay:
    case Name::AmqpPublish: return "comm";
    case Name::ExecJob: return "exec";
  }
  return "?";
}

namespace {

// Thread-local ring handle. The generation tag detects recorder resets so a
// stale pointer from a previous generation is never dereferenced.
struct TlRing {
  TraceRecorder::Ring* ring = nullptr;
  std::uint64_t generation = ~0ull;
};

thread_local TlRing t_ring;

}  // namespace

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::reset(std::size_t ring_capacity) {
  std::lock_guard<std::mutex> lock(rings_mu_);
  // Unpublish before freeing so a lock-free reader (flight recorder) that
  // loads the table mid-reset sees nulls, not dangling pointers.
  ring_count_.store(0, std::memory_order_release);
  for (auto& slot : ring_table_) slot.store(nullptr, std::memory_order_release);
  rings_.clear();
  ring_capacity_ = ring_capacity == 0 ? 1 : ring_capacity;
  epoch_ = std::chrono::steady_clock::now();
  // Bump after clearing: a thread observing the new generation re-acquires.
  generation_.fetch_add(1, std::memory_order_release);
}

TraceRecorder::Ring* TraceRecorder::ring_for_this_thread() {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (t_ring.ring != nullptr && t_ring.generation == gen) return t_ring.ring;
  std::lock_guard<std::mutex> lock(rings_mu_);
  // Re-read under the lock: reset() bumps generation while holding it.
  const std::uint64_t locked_gen = generation_.load(std::memory_order_relaxed);
  rings_.push_back(std::make_unique<Ring>(ring_capacity_,
                                          static_cast<std::uint32_t>(rings_.size())));
  Ring* ring = rings_.back().get();
  // Publish to the lock-free table (release: the Ring is fully built).
  const std::size_t idx = rings_.size() - 1;
  if (idx < kMaxPublishedRings) {
    ring_table_[idx].store(ring, std::memory_order_release);
    ring_count_.store(rings_.size(), std::memory_order_release);
  }
  t_ring.ring = ring;
  t_ring.generation = locked_gen;
  return t_ring.ring;
}

void TraceRecorder::record(const TraceEvent& e) {
  Ring* ring = ring_for_this_thread();
  const std::uint64_t w = ring->widx.load(std::memory_order_relaxed);
  TraceEvent& slot = ring->slots[w % ring->slots.size()];
  slot = e;
  slot.tid = ring->id;
  // Release-publish so a post-join drainer sees the fully written slot.
  ring->widx.store(w + 1, std::memory_order_release);
}

std::vector<TraceEvent> TraceRecorder::drain() const {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (const auto& ring : rings_) {
    const std::uint64_t w = ring->widx.load(std::memory_order_acquire);
    const std::uint64_t cap = ring->slots.size();
    const std::uint64_t first = w > cap ? w - cap : 0;  // overflow: newest-N survive
    for (std::uint64_t i = first; i < w; ++i)
      out.push_back(ring->slots[i % cap]);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.ts_ns < b.ts_ns; });
  return out;
}

}  // namespace of::obs
