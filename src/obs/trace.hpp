// of::obs tracing — always-compiled, zero-cost-when-disabled span/instant
// recording for the round loop (config group `obs/`).
//
// Design (DESIGN.md §7): each recording thread owns a fixed-capacity ring of
// TraceEvent slots. The hot path is one relaxed atomic flag load when
// disabled; when enabled it is a thread-local lookup, a steady_clock read
// and a single slot store — no mutex, no allocation after the ring exists,
// no formatting. Rings overwrite their oldest slot on overflow (newest-N
// survive). The drain side runs only when the producers are quiescent — the
// Engine drains after joining its node threads — so consuming needs no
// synchronization beyond the joins' happens-before.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/context.hpp"

namespace of::obs {

// Every instrumented site in the framework. Fixed enum (not strings) so a
// recorded event is a few plain words, never an allocation.
enum class Name : std::uint8_t {
  // Round-loop phases (category "node").
  Round,
  LocalTrain,
  Encode,
  Send,
  Recv,
  Decode,
  Aggregate,
  Broadcast,
  // Transport (category "tcp").
  TcpSend,
  TcpRecv,
  TcpReconnect,
  TcpBackoff,
  // Buffer arena (category "pool").
  PoolHit,
  PoolMiss,
  // Fault injection + deadline aggregation (category "fault").
  FaultCrash,
  FaultDisconnect,
  FaultDelay,
  DeadlineCut,
  // Scheduling (category "sched").
  AsyncStaleness,
  // Other backends (category "comm").
  InProcDeliver,
  ModeledDelay,
  AmqpPublish,
  // Execution pool (category "exec"): one span per parallel region, arg =
  // chunk count.
  ExecJob,
};

const char* to_string(Name n);
// Chrome-trace category for the event ("node", "tcp", "pool", …).
const char* category(Name n);

struct TraceEvent {
  std::uint64_t ts_ns = 0;   // start time, ns since the recorder epoch
  std::uint64_t dur_ns = 0;  // span duration; 0 = instant event
  std::uint64_t arg = 0;     // site-specific payload (bytes, staleness, rank…)
  std::uint64_t span_id = 0;     // unique per span; 0 = instant / untracked
  std::uint64_t parent_span = 0; // enclosing (or remote) span; 0 = root
  std::int32_t node = -1;    // federation node id (-1 = not node-scoped)
  std::uint32_t round = 0;   // global round the event belongs to
  std::uint32_t tid = 0;     // recording ring id (one per thread)
  Name name = Name::Round;
};

// Which telemetry phase digest (context.hpp) a span name feeds, or
// kPhaseCount for names outside the five digested round-loop phases.
constexpr std::size_t phase_index(Name n) noexcept {
  switch (n) {
    case Name::LocalTrain: return 0;
    case Name::Encode: return 1;
    case Name::Send: return 2;
    case Name::Recv: return 3;
    case Name::Decode: return 4;
    default: return kPhaseCount;
  }
}

class TraceRecorder {
 public:
  // The process-wide recorder every instrumented site records into.
  static TraceRecorder& global();

  // The disabled fast path: one relaxed atomic load.
  bool enabled() const noexcept { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) noexcept { enabled_.store(on, std::memory_order_relaxed); }

  // Drop all rings and start a fresh generation with `ring_capacity` slots
  // per thread. Live threads re-acquire a ring on their next record; call
  // only while no thread is mid-record (e.g. between runs).
  void reset(std::size_t ring_capacity = kDefaultRingCapacity);

  // Record one event into the calling thread's ring. Callers must check
  // enabled() first (ScopedSpan/instant do); record() itself never
  // allocates once the thread's ring exists.
  void record(const TraceEvent& e);

  // Snapshot every ring's surviving events, sorted by start time. Only
  // valid when all producer threads are quiescent (joined, or provably not
  // recording); the Engine drains after joining its node threads.
  std::vector<TraceEvent> drain() const;

  // Nanoseconds since the recorder epoch (reset time).
  std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  std::size_t ring_capacity() const noexcept { return ring_capacity_; }

  static constexpr std::size_t kDefaultRingCapacity = 1 << 16;
  // Upper bound on rings visible to lock-free readers (the flight
  // recorder). Rings beyond it still record and drain normally; they are
  // just invisible to a crash-time snapshot.
  static constexpr std::size_t kMaxPublishedRings = 256;

  // One thread's fixed-capacity SPSC ring. The owning thread is the only
  // writer; slots_ never reallocates after construction.
  struct Ring {
    explicit Ring(std::size_t cap, std::uint32_t id) : slots(cap), id(id) {}
    std::vector<TraceEvent> slots;
    std::atomic<std::uint64_t> widx{0};  // total events written (monotonic)
    std::uint32_t id;
  };

  // Visit each published ring's newest events lock-free — at most
  // `per_ring` from each — calling fn(const TraceEvent&). Async-signal-safe
  // (no allocation, no locks): the flight recorder calls this from a crash
  // handler. Events may tear against a concurrent writer on the same slot;
  // acceptable for post-mortem output. Racing reset() is not defended —
  // reset runs only between engine runs, and a crash there loses at most
  // the dump.
  template <class Fn>
  void visit_recent_unsafe(std::size_t per_ring, Fn&& fn) const {
    const std::size_t n = std::min(
        ring_count_.load(std::memory_order_acquire), kMaxPublishedRings);
    for (std::size_t i = 0; i < n; ++i) {
      const Ring* ring = ring_table_[i].load(std::memory_order_acquire);
      if (ring == nullptr) continue;
      const std::uint64_t w = ring->widx.load(std::memory_order_acquire);
      const std::uint64_t cap = ring->slots.size();
      const std::uint64_t window = w > cap ? cap : w;
      const std::uint64_t take = window > per_ring ? per_ring : window;
      for (std::uint64_t k = w - take; k < w; ++k) fn(ring->slots[k % cap]);
    }
  }

 private:
  TraceRecorder();
  Ring* ring_for_this_thread();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> generation_{0};
  std::chrono::steady_clock::time_point epoch_;
  std::size_t ring_capacity_ = kDefaultRingCapacity;

  // Rings are created under rings_mu_ (once per thread per generation) and
  // only destroyed by reset(); record() touches them lock-free. The first
  // kMaxPublishedRings are additionally release-published to ring_table_ so
  // signal-context readers can iterate without the mutex.
  mutable std::mutex rings_mu_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::atomic<const Ring*> ring_table_[kMaxPublishedRings] = {};
  std::atomic<std::size_t> ring_count_{0};
};

// RAII span: captures the start time at construction (when tracing is on)
// and records one complete event at destruction. When tracing is off the
// constructor is a single relaxed load and the destructor a branch.
class ScopedSpan {
 public:
  ScopedSpan(Name name, int node, std::size_t round, std::uint64_t arg = 0) {
    TraceRecorder& r = TraceRecorder::global();
    if (!r.enabled()) return;
    armed_ = true;
    name_ = name;
    node_ = node;
    round_ = static_cast<std::uint32_t>(round);
    arg_ = arg;
    auto& st = detail::tls();
    span_id_ = detail::new_span_id(st);
    parent_span_ = st.current_span;
    prev_round_ = st.current_round;
    st.current_span = span_id_;
    st.current_round = round_;
    t0_ns_ = r.now_ns();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { end(); }

  // Record the span now instead of at scope exit (no-op when disabled or
  // already ended). The destructor calls this, so plain RAII use needs no
  // explicit call.
  void end() {
    if (!armed_) return;
    armed_ = false;
    TraceRecorder& r = TraceRecorder::global();
    auto& st = detail::tls();
    TraceEvent e;
    e.ts_ns = t0_ns_;
    e.dur_ns = r.now_ns() - t0_ns_;
    e.arg = arg_;
    e.span_id = span_id_;
    e.parent_span = parent_span_ != 0
                        ? parent_span_
                        : (link_remote_ ? st.remote_span : 0);
    e.node = node_;
    e.round = round_;
    e.name = name_;
    r.record(e);
    st.current_span = parent_span_;
    st.current_round = prev_round_;
    if (st.phase_sink != nullptr) {
      const std::size_t pi = phase_index(name_);
      if (pi < kPhaseCount) {
        PhaseDigest& d = st.phase_sink[pi];
        ++d.count;
        d.total_ns += e.dur_ns;
        if (e.dur_ns > d.max_ns) d.max_ns = e.dur_ns;
      }
    }
  }

  // Late-bound payload (e.g. bytes known only after the recv returns).
  void set_arg(std::uint64_t arg) noexcept { arg_ = arg; }

  // If this span has no local parent, adopt the last remote context this
  // thread received as its parent. Called only on the top-level client
  // round span: that is the one place a cross-node edge (server broadcast →
  // client round) is unambiguous.
  void link_remote_parent() noexcept { link_remote_ = true; }

  // The id this span will record under (0 when tracing is disabled).
  std::uint64_t span_id() const noexcept { return span_id_; }

 private:
  std::uint64_t t0_ns_ = 0;
  std::uint64_t arg_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_span_ = 0;
  std::int32_t node_ = -1;
  std::uint32_t round_ = 0;
  std::uint32_t prev_round_ = 0;
  Name name_ = Name::Round;
  bool armed_ = false;
  bool link_remote_ = false;
};

// Record an instant (zero-duration) event, parented to the calling
// thread's innermost open span.
inline void instant(Name name, int node, std::size_t round, std::uint64_t arg = 0) {
  TraceRecorder& r = TraceRecorder::global();
  if (!r.enabled()) return;
  TraceEvent e;
  e.ts_ns = r.now_ns();
  e.arg = arg;
  e.parent_span = detail::tls().current_span;
  e.node = node;
  e.round = static_cast<std::uint32_t>(round);
  e.name = name;
  r.record(e);
}

// The context a frame sent right now should carry: the run's trace id, the
// calling thread's innermost open span, and its round. All zeros while
// tracing is disabled — one relaxed load on that path.
inline TraceContext current_context() noexcept {
  if (!TraceRecorder::global().enabled()) return {};
  const auto& st = detail::tls();
  return TraceContext{run_trace_id(), st.current_span, st.current_round};
}

}  // namespace of::obs
