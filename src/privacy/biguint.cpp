#include "privacy/biguint.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace of::privacy {

namespace {
constexpr std::uint64_t kBase = 1ULL << 32;
}

BigUInt::BigUInt(std::uint64_t v) {
  if (v & 0xFFFFFFFFULL) limbs_.push_back(static_cast<std::uint32_t>(v));
  else if (v >> 32) limbs_.push_back(0);
  if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
}

void BigUInt::trim() noexcept {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUInt BigUInt::from_hex(const std::string& hex) {
  BigUInt out;
  for (char c : hex) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else OF_CHECK_MSG(false, "bad hex digit '" << c << "'");
    out = (out << 4) + BigUInt(static_cast<std::uint64_t>(digit));
  }
  return out;
}

BigUInt BigUInt::from_bytes_be(const std::vector<std::uint8_t>& bytes) {
  BigUInt out;
  for (std::uint8_t b : bytes) out = (out << 8) + BigUInt(static_cast<std::uint64_t>(b));
  return out;
}

std::vector<std::uint8_t> BigUInt::to_bytes_be() const {
  if (is_zero()) return {0};
  std::vector<std::uint8_t> bytes;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint32_t limb = limbs_[i];
    bytes.push_back(static_cast<std::uint8_t>(limb));
    bytes.push_back(static_cast<std::uint8_t>(limb >> 8));
    bytes.push_back(static_cast<std::uint8_t>(limb >> 16));
    bytes.push_back(static_cast<std::uint8_t>(limb >> 24));
  }
  while (bytes.size() > 1 && bytes.back() == 0) bytes.pop_back();
  std::reverse(bytes.begin(), bytes.end());
  return bytes;
}

std::string BigUInt::to_hex() const {
  if (is_zero()) return "0";
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it) {
    for (int shift = 28; shift >= 0; shift -= 4)
      out.push_back(digits[(*it >> shift) & 0xF]);
  }
  const auto nz = out.find_first_not_of('0');
  return nz == std::string::npos ? "0" : out.substr(nz);
}

std::size_t BigUInt::bit_length() const noexcept {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 32;
  std::uint32_t top = limbs_.back();
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigUInt::bit(std::size_t i) const noexcept {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1u;
}

std::uint64_t BigUInt::to_u64() const {
  OF_CHECK_MSG(limbs_.size() <= 2, "BigUInt does not fit in 64 bits");
  std::uint64_t v = 0;
  if (limbs_.size() >= 1) v = limbs_[0];
  if (limbs_.size() == 2) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return v;
}

int BigUInt::compare(const BigUInt& o) const noexcept {
  if (limbs_.size() != o.limbs_.size())
    return limbs_.size() < o.limbs_.size() ? -1 : 1;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != o.limbs_[i]) return limbs_[i] < o.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigUInt BigUInt::operator+(const BigUInt& o) const {
  BigUInt out;
  const std::size_t n = std::max(limbs_.size(), o.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < o.limbs_.size()) sum += o.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<std::uint32_t>(carry);
  out.trim();
  return out;
}

BigUInt BigUInt::operator-(const BigUInt& o) const {
  OF_CHECK_MSG(*this >= o, "BigUInt subtraction underflow");
  BigUInt out;
  out.limbs_.resize(limbs_.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow;
    if (i < o.limbs_.size()) diff -= static_cast<std::int64_t>(o.limbs_[i]);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  out.trim();
  return out;
}

BigUInt BigUInt::operator*(const BigUInt& o) const {
  if (is_zero() || o.is_zero()) return BigUInt();
  BigUInt out;
  out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t a = limbs_[i];
    for (std::size_t j = 0; j < o.limbs_.size(); ++j) {
      const std::uint64_t cur =
          static_cast<std::uint64_t>(out.limbs_[i + j]) + a * o.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + o.limbs_.size();
    while (carry) {
      const std::uint64_t cur = static_cast<std::uint64_t>(out.limbs_[k]) + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.trim();
  return out;
}

BigUInt BigUInt::operator<<(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigUInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift)
      out.limbs_[i + limb_shift + 1] |=
          static_cast<std::uint32_t>(static_cast<std::uint64_t>(limbs_[i]) >> (32 - bit_shift));
  }
  out.trim();
  return out;
}

BigUInt BigUInt::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return BigUInt();
  const std::size_t bit_shift = bits % 32;
  BigUInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size())
      out.limbs_[i] |= static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(limbs_[i + limb_shift + 1]) << (32 - bit_shift));
  }
  out.trim();
  return out;
}

// Knuth TAOCP vol. 2, Algorithm 4.3.1 D.
void BigUInt::divmod(const BigUInt& u_in, const BigUInt& v_in, BigUInt& q, BigUInt& r) {
  OF_CHECK_MSG(!v_in.is_zero(), "BigUInt division by zero");
  if (u_in < v_in) {
    q = BigUInt();
    r = u_in;
    return;
  }
  if (v_in.limbs_.size() == 1) {
    // Single-limb fast path.
    const std::uint64_t d = v_in.limbs_[0];
    q.limbs_.assign(u_in.limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = u_in.limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | u_in.limbs_[i];
      q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    q.trim();
    r = BigUInt(rem);
    return;
  }

  // D1: normalize so the top limb of v has its high bit set.
  int shift = 0;
  {
    std::uint32_t top = v_in.limbs_.back();
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  const BigUInt u = u_in << static_cast<std::size_t>(shift);
  const BigUInt v = v_in << static_cast<std::size_t>(shift);
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;

  std::vector<std::uint32_t> un(u.limbs_);
  un.push_back(0);  // extra high limb for the algorithm
  const std::vector<std::uint32_t>& vn = v.limbs_;
  q.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate qhat from the top two limbs.
    const std::uint64_t numerator =
        (static_cast<std::uint64_t>(un[j + n]) << 32) | un[j + n - 1];
    std::uint64_t qhat = numerator / vn[n - 1];
    std::uint64_t rhat = numerator % vn[n - 1];
    while (qhat >= kBase ||
           qhat * vn[n - 2] > ((rhat << 32) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >= kBase) break;
    }
    // D4: multiply-subtract.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * vn[i] + carry;
      carry = p >> 32;
      const std::int64_t t =
          static_cast<std::int64_t>(un[i + j]) - static_cast<std::int64_t>(p & 0xFFFFFFFFu) -
          borrow;
      un[i + j] = static_cast<std::uint32_t>(t);
      borrow = (t < 0) ? 1 : 0;
    }
    const std::int64_t t =
        static_cast<std::int64_t>(un[j + n]) - static_cast<std::int64_t>(carry) - borrow;
    un[j + n] = static_cast<std::uint32_t>(t);
    // D5/D6: if we subtracted too much, add one v back.
    if (t < 0) {
      --qhat;
      std::uint64_t c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t s =
            static_cast<std::uint64_t>(un[i + j]) + vn[i] + c;
        un[i + j] = static_cast<std::uint32_t>(s);
        c = s >> 32;
      }
      un[j + n] = static_cast<std::uint32_t>(un[j + n] + c);
    }
    q.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }
  q.trim();
  // D8: denormalize the remainder.
  r.limbs_.assign(un.begin(), un.begin() + static_cast<std::ptrdiff_t>(n));
  r.trim();
  r = r >> static_cast<std::size_t>(shift);
}

BigUInt BigUInt::operator/(const BigUInt& o) const {
  BigUInt q, r;
  divmod(*this, o, q, r);
  return q;
}

BigUInt BigUInt::operator%(const BigUInt& o) const {
  BigUInt q, r;
  divmod(*this, o, q, r);
  return r;
}

BigUInt BigUInt::mulmod(const BigUInt& a, const BigUInt& b, const BigUInt& m) {
  return (a * b) % m;
}

BigUInt BigUInt::powmod(const BigUInt& base, const BigUInt& exp, const BigUInt& m) {
  OF_CHECK_MSG(!m.is_zero(), "powmod modulus is zero");
  if (m == BigUInt(1)) return BigUInt();
  BigUInt result(1);
  BigUInt b = base % m;
  const std::size_t bits = exp.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (exp.bit(i)) result = mulmod(result, b, m);
    b = mulmod(b, b, m);
  }
  return result;
}

BigUInt BigUInt::gcd(BigUInt a, BigUInt b) {
  while (!b.is_zero()) {
    BigUInt r = a % b;
    a = b;
    b = r;
  }
  return a;
}

BigUInt BigUInt::lcm(const BigUInt& a, const BigUInt& b) {
  if (a.is_zero() || b.is_zero()) return BigUInt();
  return (a / gcd(a, b)) * b;
}

BigUInt BigUInt::invmod(const BigUInt& a, const BigUInt& m) {
  // Iterative extended Euclid tracking coefficients as (value, negative?).
  OF_CHECK_MSG(!m.is_zero(), "invmod modulus is zero");
  BigUInt r0 = m, r1 = a % m;
  // t coefficients: t0 = 0, t1 = 1 with sign flags.
  BigUInt t0, t1(1);
  bool neg0 = false, neg1 = false;
  while (!r1.is_zero()) {
    BigUInt q, r2;
    divmod(r0, r1, q, r2);
    // t2 = t0 - q*t1 (signed arithmetic over the flag pairs).
    const BigUInt qt1 = q * t1;
    BigUInt t2;
    bool neg2;
    if (neg0 == neg1) {
      // same sign: t0 - q*t1 flips when |q*t1| > |t0|
      if (t0 >= qt1) {
        t2 = t0 - qt1;
        neg2 = neg0;
      } else {
        t2 = qt1 - t0;
        neg2 = !neg0;
      }
    } else {
      t2 = t0 + qt1;
      neg2 = neg0;
    }
    r0 = r1;
    r1 = r2;
    t0 = t1;
    neg0 = neg1;
    t1 = t2;
    neg1 = neg2;
  }
  OF_CHECK_MSG(r0 == BigUInt(1), "invmod: operand is not invertible modulo m");
  if (neg0) return m - (t0 % m);
  return t0 % m;
}

BigUInt BigUInt::random_bits(std::size_t bits, tensor::Rng& rng) {
  BigUInt out;
  const std::size_t limbs = (bits + 31) / 32;
  out.limbs_.resize(limbs);
  for (auto& limb : out.limbs_) limb = static_cast<std::uint32_t>(rng.next_u64());
  const std::size_t extra = limbs * 32 - bits;
  if (extra) out.limbs_.back() &= 0xFFFFFFFFu >> extra;
  out.trim();
  return out;
}

BigUInt BigUInt::random_below(const BigUInt& bound, tensor::Rng& rng) {
  OF_CHECK_MSG(!bound.is_zero(), "random_below(0)");
  const std::size_t bits = bound.bit_length();
  for (;;) {
    BigUInt candidate = random_bits(bits, rng);
    if (candidate < bound) return candidate;
  }
}

bool BigUInt::is_probable_prime(const BigUInt& n, tensor::Rng& rng, int rounds) {
  if (n < BigUInt(2)) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL,
                          29ULL, 31ULL, 37ULL}) {
    const BigUInt bp(p);
    if (n == bp) return true;
    if ((n % bp).is_zero()) return false;
  }
  // n-1 = d * 2^s with d odd.
  const BigUInt n1 = n - BigUInt(1);
  BigUInt d = n1;
  std::size_t s = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++s;
  }
  for (int round = 0; round < rounds; ++round) {
    const BigUInt a = BigUInt(2) + random_below(n - BigUInt(4), rng);
    BigUInt x = powmod(a, d, n);
    if (x == BigUInt(1) || x == n1) continue;
    bool witness = true;
    for (std::size_t i = 1; i < s; ++i) {
      x = mulmod(x, x, n);
      if (x == n1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigUInt BigUInt::random_prime(std::size_t bits, tensor::Rng& rng) {
  OF_CHECK_MSG(bits >= 8, "prime size too small");
  for (;;) {
    BigUInt candidate = random_bits(bits, rng);
    // Force exact bit length and oddness.
    if (!candidate.bit(bits - 1)) candidate = candidate + (BigUInt(1) << (bits - 1));
    if (!candidate.is_odd()) candidate = candidate + BigUInt(1);
    if (is_probable_prime(candidate, rng)) return candidate;
  }
}

}  // namespace of::privacy
