// BigUInt — arbitrary-precision unsigned integers, built from scratch for
// the privacy substrate (Paillier homomorphic encryption, Diffie–Hellman).
//
// Representation: little-endian vector of 32-bit limbs, normalized (no
// leading zero limbs; zero = empty vector). Multiplication is schoolbook,
// division is Knuth Algorithm D, modular exponentiation is square-and-
// multiply — fast enough for the 256–1024-bit operands the privacy
// mechanisms use, with correctness property-tested against native 128-bit
// arithmetic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/rng.hpp"

namespace of::privacy {

class BigUInt {
 public:
  BigUInt() = default;
  BigUInt(std::uint64_t v);  // NOLINT(google-explicit-constructor) — numeric literal ergonomics

  static BigUInt from_hex(const std::string& hex);
  static BigUInt from_bytes_be(const std::vector<std::uint8_t>& bytes);
  std::vector<std::uint8_t> to_bytes_be() const;
  std::string to_hex() const;

  bool is_zero() const noexcept { return limbs_.empty(); }
  bool is_odd() const noexcept { return !limbs_.empty() && (limbs_[0] & 1u); }
  std::size_t bit_length() const noexcept;
  bool bit(std::size_t i) const noexcept;
  std::uint64_t to_u64() const;  // throws if it does not fit

  // --- comparison ------------------------------------------------------------
  int compare(const BigUInt& o) const noexcept;
  bool operator==(const BigUInt& o) const noexcept { return compare(o) == 0; }
  bool operator!=(const BigUInt& o) const noexcept { return compare(o) != 0; }
  bool operator<(const BigUInt& o) const noexcept { return compare(o) < 0; }
  bool operator<=(const BigUInt& o) const noexcept { return compare(o) <= 0; }
  bool operator>(const BigUInt& o) const noexcept { return compare(o) > 0; }
  bool operator>=(const BigUInt& o) const noexcept { return compare(o) >= 0; }

  // --- arithmetic --------------------------------------------------------------
  BigUInt operator+(const BigUInt& o) const;
  BigUInt operator-(const BigUInt& o) const;  // requires *this >= o
  BigUInt operator*(const BigUInt& o) const;
  BigUInt operator<<(std::size_t bits) const;
  BigUInt operator>>(std::size_t bits) const;

  // Quotient and remainder in one pass (Knuth D).
  static void divmod(const BigUInt& u, const BigUInt& v, BigUInt& q, BigUInt& r);
  BigUInt operator/(const BigUInt& o) const;
  BigUInt operator%(const BigUInt& o) const;

  // --- modular ------------------------------------------------------------------
  static BigUInt mulmod(const BigUInt& a, const BigUInt& b, const BigUInt& m);
  static BigUInt powmod(const BigUInt& base, const BigUInt& exp, const BigUInt& m);
  static BigUInt gcd(BigUInt a, BigUInt b);
  static BigUInt lcm(const BigUInt& a, const BigUInt& b);
  // Modular inverse via extended Euclid; throws if gcd(a, m) != 1.
  static BigUInt invmod(const BigUInt& a, const BigUInt& m);

  // --- randomness & primality -------------------------------------------------
  // Uniform in [0, bound) by rejection sampling.
  static BigUInt random_below(const BigUInt& bound, tensor::Rng& rng);
  static BigUInt random_bits(std::size_t bits, tensor::Rng& rng);
  // Miller–Rabin with `rounds` random bases (error < 4^-rounds).
  static bool is_probable_prime(const BigUInt& n, tensor::Rng& rng, int rounds = 24);
  // Random prime with exactly `bits` bits (top bit set).
  static BigUInt random_prime(std::size_t bits, tensor::Rng& rng);

 private:
  void trim() noexcept;
  std::vector<std::uint32_t> limbs_;  // little-endian, base 2^32
};

}  // namespace of::privacy
