#include "privacy/dh.hpp"

namespace of::privacy {

DhGroup DhGroup::default_group() {
  // Deterministically generated 384-bit prime (fixed seed → every process
  // derives the identical group). Memoized: Miller–Rabin prime search is
  // not free.
  static const DhGroup cached = [] {
    DhGroup g;
    tensor::Rng rng(0x0D1FF1E8E11AULL);
    g.p = BigUInt::random_prime(384, rng);
    g.g = BigUInt(2);
    return g;
  }();
  return cached;
}

DhParty::DhParty(const DhGroup& group, tensor::Rng& rng) : group_(group) {
  // Private exponent in [2, p-2].
  private_ = BigUInt(2) + BigUInt::random_below(group_.p - BigUInt(4), rng);
  public_ = BigUInt::powmod(group_.g, private_, group_.p);
}

std::vector<std::uint8_t> DhParty::shared_key(const BigUInt& peer_public) const {
  const BigUInt shared = BigUInt::powmod(peer_public, private_, group_.p);
  const auto bytes = shared.to_bytes_be();
  const Digest d = Sha256::hash(bytes.data(), bytes.size());
  return std::vector<std::uint8_t>(d.begin(), d.end());
}

}  // namespace of::privacy
