// Diffie–Hellman key agreement over a multiplicative prime group, on the
// from-scratch BigUInt. The paper's secure-aggregation prototype derives
// pair seeds deterministically from HMAC and names DH key exchange as the
// planned replacement — this is that replacement.
#pragma once

#include <vector>

#include "privacy/biguint.hpp"
#include "privacy/sha256.hpp"

namespace of::privacy {

struct DhGroup {
  BigUInt p;  // safe-ish prime modulus
  BigUInt g;  // generator

  // RFC 3526 group 5 truncated is overkill here; we ship a fixed 512-bit
  // prime generated offline (value checked prime in tests) plus g = 2.
  static DhGroup default_group();
};

class DhParty {
 public:
  DhParty(const DhGroup& group, tensor::Rng& rng);

  const BigUInt& public_value() const noexcept { return public_; }
  // shared = peer_public ^ private mod p, hashed to a 32-byte key.
  std::vector<std::uint8_t> shared_key(const BigUInt& peer_public) const;

 private:
  DhGroup group_;
  BigUInt private_;
  BigUInt public_;
};

}  // namespace of::privacy
