#include "privacy/dp.hpp"

#include <cmath>

#include "common/check.hpp"

namespace of::privacy {

double gaussian_sigma(const DpParams& p) {
  OF_CHECK_MSG(p.epsilon > 0.0 && p.delta > 0.0 && p.delta < 1.0, "bad DP parameters");
  return p.clip_norm * std::sqrt(2.0 * std::log(1.25 / p.delta)) / p.epsilon;
}

void CompositionAccountant::record_release(double epsilon, double delta) {
  sum_epsilon_ += epsilon;
  sum_delta_ += delta;
  per_release_epsilon_ = epsilon;
  ++k_;
}

double CompositionAccountant::advanced_epsilon(double delta_slack) const {
  OF_CHECK_MSG(delta_slack > 0.0 && delta_slack < 1.0, "bad delta slack");
  if (k_ == 0) return 0.0;
  const double e = per_release_epsilon_;
  const double k = static_cast<double>(k_);
  return e * std::sqrt(2.0 * k * std::log(1.0 / delta_slack)) +
         k * e * (std::exp(e) - 1.0);
}

DifferentialPrivacy::DifferentialPrivacy(DpParams params, std::uint64_t seed)
    : params_(params), sigma_(gaussian_sigma(params)), rng_(seed) {}

Bytes DifferentialPrivacy::protect(const Tensor& update, int client_id, int num_clients) {
  (void)client_id;
  (void)num_clients;
  Tensor noised = update;
  // Clip to sensitivity C...
  const float norm = noised.l2_norm();
  if (norm > params_.clip_norm)
    noised.scale_(static_cast<float>(params_.clip_norm) / norm);
  // ...then add calibrated Gaussian noise.
  for (std::size_t i = 0; i < noised.numel(); ++i)
    noised[i] += static_cast<float>(rng_.gaussian(0.0, sigma_));
  accountant_.record_release(params_.epsilon, params_.delta);
  return tensor::serialize_tensor(noised);
}

Tensor DifferentialPrivacy::aggregate_sum(const std::vector<Bytes>& contributions,
                                          std::size_t numel) {
  Tensor sum({numel});
  for (const auto& c : contributions) {
    Tensor t = tensor::deserialize_tensor(c);
    OF_CHECK_MSG(t.numel() == numel, "DP contribution size mismatch");
    sum.add_(t.reshape({numel}));
  }
  return sum;
}

}  // namespace of::privacy
