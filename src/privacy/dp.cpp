#include "privacy/dp.hpp"

#include <cmath>

#include "common/check.hpp"
#include "simd/simd.hpp"

namespace of::privacy {

double gaussian_sigma(const DpParams& p) {
  OF_CHECK_MSG(p.epsilon > 0.0 && p.delta > 0.0 && p.delta < 1.0, "bad DP parameters");
  return p.clip_norm * std::sqrt(2.0 * std::log(1.25 / p.delta)) / p.epsilon;
}

void CompositionAccountant::record_release(double epsilon, double delta) {
  sum_epsilon_ += epsilon;
  sum_delta_ += delta;
  per_release_epsilon_ = epsilon;
  ++k_;
}

double CompositionAccountant::advanced_epsilon(double delta_slack) const {
  OF_CHECK_MSG(delta_slack > 0.0 && delta_slack < 1.0, "bad delta slack");
  if (k_ == 0) return 0.0;
  const double e = per_release_epsilon_;
  const double k = static_cast<double>(k_);
  return e * std::sqrt(2.0 * k * std::log(1.0 / delta_slack)) +
         k * e * (std::exp(e) - 1.0);
}

DifferentialPrivacy::DifferentialPrivacy(DpParams params, std::uint64_t seed)
    : params_(params), sigma_(gaussian_sigma(params)), rng_(seed) {}

void DifferentialPrivacy::protect(ConstFloatSpan update, int client_id, int num_clients,
                                  Bytes& out) {
  (void)client_id;
  (void)num_clients;
  const std::size_t n = update.size();
  // Clip to sensitivity C (4-lane double sum — identical between the scalar
  // and AVX2 simd tables)...
  const double norm2 = simd::sum_squares(update.data(), n);
  const double norm = std::sqrt(norm2);
  const float clip_scale =
      norm > params_.clip_norm ? static_cast<float>(params_.clip_norm / norm) : 1.0f;
  // ...then add calibrated Gaussian noise, writing the serialized 1-D tensor
  // straight into the (pooled) output buffer. The RNG chain is serial; the
  // clip-and-perturb store vectorizes over the pre-drawn noise.
  out.clear();
  tensor::append_pod<std::uint32_t>(out, 1);
  tensor::append_pod<std::uint64_t>(out, n);
  const std::size_t start = out.size();
  out.resize(start + n * sizeof(float));
  noise_.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    noise_[i] = static_cast<float>(rng_.gaussian(0.0, sigma_));
  simd::mul_add_store_bytes(out.data() + start, update.data(), clip_scale,
                            noise_.data(), n);
  accountant_.record_release(params_.epsilon, params_.delta);
}

void DifferentialPrivacy::aggregate_sum(const std::vector<ConstByteSpan>& contributions,
                                        FloatSpan out) {
  sum_serialized_tensors(contributions, out);
}

}  // namespace of::privacy
