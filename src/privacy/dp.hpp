// Differential privacy for federated updates (the PETINA stand-in).
//
// Gaussian mechanism on the clipped update: clip to L2 norm C, then add
// N(0, σ²) per coordinate with σ = C·√(2·ln(1.25/δ))/ε — the standard
// (ε, δ)-DP calibration (Dwork & Roth Thm. A.1, the same recipe DP-SGD
// uses per round). A composition accountant tracks the privacy budget
// spent across rounds (basic linear and advanced composition bounds).
#pragma once

#include "privacy/mechanism.hpp"

namespace of::privacy {

struct DpParams {
  double epsilon = 1.0;
  double delta = 1e-5;
  double clip_norm = 1.0;
};

double gaussian_sigma(const DpParams& p);

// Privacy accountant over repeated releases of the same mechanism.
class CompositionAccountant {
 public:
  void record_release(double epsilon, double delta);
  // Basic composition: ε_total = Σ ε_i, δ_total = Σ δ_i.
  double basic_epsilon() const noexcept { return sum_epsilon_; }
  double basic_delta() const noexcept { return sum_delta_; }
  // Advanced composition (Dwork–Rothblum–Vadhan) for k releases of the
  // same (ε, δ): ε' = ε√(2k·ln(1/δ')) + k·ε(e^ε −1) at extra slack δ'.
  double advanced_epsilon(double delta_slack) const;
  std::size_t releases() const noexcept { return k_; }

 private:
  double sum_epsilon_ = 0.0;
  double sum_delta_ = 0.0;
  double per_release_epsilon_ = 0.0;
  std::size_t k_ = 0;
};

class DifferentialPrivacy final : public PrivacyMechanism {
 public:
  DifferentialPrivacy(DpParams params, std::uint64_t seed);

  void protect(ConstFloatSpan update, int client_id, int num_clients, Bytes& out) override;
  void aggregate_sum(const std::vector<ConstByteSpan>& contributions, FloatSpan out) override;
  using PrivacyMechanism::protect;
  using PrivacyMechanism::aggregate_sum;
  std::string name() const override { return "DifferentialPrivacy"; }

  const DpParams& params() const noexcept { return params_; }
  double sigma() const noexcept { return sigma_; }
  const CompositionAccountant& accountant() const noexcept { return accountant_; }

 private:
  DpParams params_;
  double sigma_;
  Rng rng_;
  CompositionAccountant accountant_;
  std::vector<float> noise_;  // per-call draws: serial RNG, SIMD clip+add store
};

}  // namespace of::privacy
