// Homomorphic-encryption privacy mechanism: Paillier-encrypted updates,
// aggregated by ciphertext multiplication. In this simulation the
// aggregator holds the key pair (threshold/key-splitting is out of scope,
// DESIGN.md §12); the compute cost of encrypt/add/decrypt is the real
// big-integer cost that Table 3b measures.
#pragma once

#include "privacy/mechanism.hpp"
#include "privacy/paillier.hpp"

namespace of::privacy {

class HomomorphicEncryption final : public PrivacyMechanism {
 public:
  // `keygen_seed` must match across the cohort (everyone derives the same
  // keypair); `enc_seed` differs per client so encryption randomness never
  // repeats across nodes. enc_seed == 0 derives it from keygen_seed.
  HomomorphicEncryption(std::size_t key_bits, std::size_t max_summands,
                        std::uint64_t keygen_seed, std::uint64_t enc_seed = 0);

  void protect(ConstFloatSpan update, int client_id, int num_clients, Bytes& out) override;
  void aggregate_sum(const std::vector<ConstByteSpan>& contributions, FloatSpan out) override;
  using PrivacyMechanism::protect;
  using PrivacyMechanism::aggregate_sum;
  std::string name() const override { return "HomomorphicEncryption"; }

  const PaillierVector& vector_scheme() const noexcept { return vec_; }

 private:
  PaillierVector vec_;
  Rng rng_;
};

}  // namespace of::privacy
