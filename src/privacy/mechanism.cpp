#include "privacy/mechanism.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "privacy/dp.hpp"
#include "privacy/he.hpp"
#include "privacy/secure_agg.hpp"
#include "refl/config_io.hpp"

namespace of::privacy {

// Reflected per-mechanism param structs — unknown keys fail with a
// `privacy.<key>` path unless strict=false. Seeds default to the historical
// factory constants so configs without a seed stay bit-identical.
namespace params {
struct None {};
struct Dp {
  double epsilon = 1.0;
  double delta = 1e-5;
  double clip_norm = 1.0;
  std::int64_t seed = 0xD9;
};
struct He {
  std::size_t key_bits = 256;
  std::size_t max_summands = 1024;
  std::int64_t seed = 0x4E;
  std::int64_t enc_seed = 0;
};
struct Sa {
  std::string group_key = "omnifed-sa";
  int num_clients = 0;
  std::string key_agreement = "hmac";
};
}  // namespace params
}  // namespace of::privacy

template <>
struct of::refl::Reflect<of::privacy::params::None> {
  OF_REFL_FIELDS()
};
template <>
struct of::refl::Reflect<of::privacy::params::Dp> {
  OF_REFL_FIELDS(field("epsilon", &of::privacy::params::Dp::epsilon, 1).gt(0),
                 field("delta", &of::privacy::params::Dp::delta, 2).ge(0).lt(1),
                 field("clip_norm", &of::privacy::params::Dp::clip_norm, 3).gt(0),
                 field("seed", &of::privacy::params::Dp::seed, 4))
};
template <>
struct of::refl::Reflect<of::privacy::params::He> {
  OF_REFL_FIELDS(field("key_bits", &of::privacy::params::He::key_bits, 1).ge(16),
                 field("max_summands", &of::privacy::params::He::max_summands, 2).ge(1),
                 field("seed", &of::privacy::params::He::seed, 3),
                 field("enc_seed", &of::privacy::params::He::enc_seed, 4))
};
template <>
struct of::refl::Reflect<of::privacy::params::Sa> {
  OF_REFL_FIELDS(field("group_key", &of::privacy::params::Sa::group_key, 1),
                 field("num_clients", &of::privacy::params::Sa::num_clients, 2)
                     .req()
                     .ge(1),
                 field("key_agreement", &of::privacy::params::Sa::key_agreement, 3))
};

namespace of::privacy {

void sum_serialized_tensors(const std::vector<ConstByteSpan>& contributions, FloatSpan out) {
  std::fill(out.begin(), out.end(), 0.0f);
  for (const auto& c : contributions) {
    std::size_t off = 0;
    const auto ndim = tensor::read_pod<std::uint32_t>(c, off);
    OF_CHECK_MSG(ndim <= 8, "implausible tensor rank " << ndim << " — corrupt frame?");
    std::size_t numel = 1;
    for (std::uint32_t d = 0; d < ndim; ++d) {
      const auto dim = tensor::read_pod<std::uint64_t>(c, off);
      const std::size_t max_numel = (c.size() - off) / sizeof(float);
      OF_CHECK_MSG(dim <= max_numel && (dim == 0 || numel <= max_numel / dim),
                   "tensor dims exceed remaining contribution — corrupt frame?");
      numel *= static_cast<std::size_t>(dim);
    }
    OF_CHECK_MSG(numel == out.size(), "contribution size mismatch");
    tensor::add_scaled_from_bytes(c.subspan(off), 1.0, out);
  }
}

void NoPrivacy::protect(ConstFloatSpan update, int client_id, int num_clients, Bytes& out) {
  (void)client_id;
  (void)num_clients;
  out.clear();
  tensor::append_pod<std::uint32_t>(out, 1);
  tensor::append_pod<std::uint64_t>(out, update.size());
  tensor::append_span(out, update);
}

void NoPrivacy::aggregate_sum(const std::vector<ConstByteSpan>& contributions,
                              FloatSpan out) {
  sum_serialized_tensors(contributions, out);
}

namespace {
PaillierVector make_paillier_vector(std::size_t key_bits, std::size_t max_summands,
                                    std::uint64_t seed) {
  // keygen gets its own derived stream so protect() randomness does not
  // depend on how long key generation searched for primes.
  Rng rng(seed);
  return PaillierVector(key_bits, max_summands, rng);
}
}  // namespace

HomomorphicEncryption::HomomorphicEncryption(std::size_t key_bits,
                                             std::size_t max_summands,
                                             std::uint64_t keygen_seed,
                                             std::uint64_t enc_seed)
    : vec_(make_paillier_vector(key_bits, max_summands, keygen_seed)),
      rng_(enc_seed ? enc_seed : (keygen_seed ^ 0x9E3779B97F4A7C15ULL)) {}

void HomomorphicEncryption::protect(ConstFloatSpan update, int client_id, int num_clients,
                                    Bytes& out) {
  (void)client_id;
  (void)num_clients;
  // Big-integer encryption dwarfs a copy into the packer's Tensor, so the
  // span API here is about interface uniformity, not allocation savings.
  Tensor t({update.size()});
  std::copy(update.begin(), update.end(), t.data());
  out = vec_.encrypt(t, rng_);
}

void HomomorphicEncryption::aggregate_sum(const std::vector<ConstByteSpan>& contributions,
                                          FloatSpan out) {
  std::vector<BigUInt> acc;
  for (const auto& c : contributions) vec_.accumulate(acc, c);
  const Tensor sum = vec_.decrypt_sum(acc, out.size(), contributions.size());
  std::copy_n(sum.data(), out.size(), out.data());
}

namespace {

const std::vector<std::string> kTargetKey = {"_target_"};

void register_builtin(PrivacyRegistry& reg) {
  reg.add("NoPrivacy", [](const config::ConfigNode& cfg, bool strict) {
    refl::from_node<params::None>(cfg, "privacy", kTargetKey, strict);
    return std::make_unique<NoPrivacy>();
  });
  reg.add("DifferentialPrivacy",
          [](const config::ConfigNode& cfg,
             bool strict) -> std::unique_ptr<PrivacyMechanism> {
            const auto c = refl::from_node<params::Dp>(cfg, "privacy", kTargetKey, strict);
            DpParams p;
            p.epsilon = c.epsilon;
            p.delta = c.delta;
            p.clip_norm = c.clip_norm;
            return std::make_unique<DifferentialPrivacy>(
                p, static_cast<std::uint64_t>(c.seed));
          });
  reg.add("HomomorphicEncryption",
          [](const config::ConfigNode& cfg,
             bool strict) -> std::unique_ptr<PrivacyMechanism> {
            const auto c = refl::from_node<params::He>(cfg, "privacy", kTargetKey, strict);
            return std::make_unique<HomomorphicEncryption>(
                c.key_bits, c.max_summands, static_cast<std::uint64_t>(c.seed),
                static_cast<std::uint64_t>(c.enc_seed));
          });
  reg.add("SecureAggregation",
          [](const config::ConfigNode& cfg,
             bool strict) -> std::unique_ptr<PrivacyMechanism> {
            const auto c = refl::from_node<params::Sa>(cfg, "privacy", kTargetKey, strict);
            const SaKeyAgreement agreement = (c.key_agreement == "diffie_hellman")
                                                 ? SaKeyAgreement::DiffieHellman
                                                 : SaKeyAgreement::Hmac;
            return std::make_unique<SecureAggregation>(c.group_key, c.num_clients,
                                                       agreement);
          });
}

}  // namespace

PrivacyRegistry& privacy_registry() {
  static PrivacyRegistry reg = [] {
    PrivacyRegistry r;
    register_builtin(r);
    return r;
  }();
  return reg;
}

std::unique_ptr<PrivacyMechanism> make_mechanism(const config::ConfigNode& cfg,
                                                 bool strict) {
  return privacy_registry().create(cfg, strict);
}

}  // namespace of::privacy
