#include "privacy/mechanism.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "privacy/dp.hpp"
#include "privacy/he.hpp"
#include "privacy/secure_agg.hpp"

namespace of::privacy {

void sum_serialized_tensors(const std::vector<ConstByteSpan>& contributions, FloatSpan out) {
  std::fill(out.begin(), out.end(), 0.0f);
  for (const auto& c : contributions) {
    std::size_t off = 0;
    const auto ndim = tensor::read_pod<std::uint32_t>(c, off);
    OF_CHECK_MSG(ndim <= 8, "implausible tensor rank " << ndim << " — corrupt frame?");
    std::size_t numel = 1;
    for (std::uint32_t d = 0; d < ndim; ++d) {
      const auto dim = tensor::read_pod<std::uint64_t>(c, off);
      const std::size_t max_numel = (c.size() - off) / sizeof(float);
      OF_CHECK_MSG(dim <= max_numel && (dim == 0 || numel <= max_numel / dim),
                   "tensor dims exceed remaining contribution — corrupt frame?");
      numel *= static_cast<std::size_t>(dim);
    }
    OF_CHECK_MSG(numel == out.size(), "contribution size mismatch");
    tensor::add_scaled_from_bytes(c.subspan(off), 1.0, out);
  }
}

void NoPrivacy::protect(ConstFloatSpan update, int client_id, int num_clients, Bytes& out) {
  (void)client_id;
  (void)num_clients;
  out.clear();
  tensor::append_pod<std::uint32_t>(out, 1);
  tensor::append_pod<std::uint64_t>(out, update.size());
  tensor::append_span(out, update);
}

void NoPrivacy::aggregate_sum(const std::vector<ConstByteSpan>& contributions,
                              FloatSpan out) {
  sum_serialized_tensors(contributions, out);
}

namespace {
PaillierVector make_paillier_vector(std::size_t key_bits, std::size_t max_summands,
                                    std::uint64_t seed) {
  // keygen gets its own derived stream so protect() randomness does not
  // depend on how long key generation searched for primes.
  Rng rng(seed);
  return PaillierVector(key_bits, max_summands, rng);
}
}  // namespace

HomomorphicEncryption::HomomorphicEncryption(std::size_t key_bits,
                                             std::size_t max_summands,
                                             std::uint64_t keygen_seed,
                                             std::uint64_t enc_seed)
    : vec_(make_paillier_vector(key_bits, max_summands, keygen_seed)),
      rng_(enc_seed ? enc_seed : (keygen_seed ^ 0x9E3779B97F4A7C15ULL)) {}

void HomomorphicEncryption::protect(ConstFloatSpan update, int client_id, int num_clients,
                                    Bytes& out) {
  (void)client_id;
  (void)num_clients;
  // Big-integer encryption dwarfs a copy into the packer's Tensor, so the
  // span API here is about interface uniformity, not allocation savings.
  Tensor t({update.size()});
  std::copy(update.begin(), update.end(), t.data());
  out = vec_.encrypt(t, rng_);
}

void HomomorphicEncryption::aggregate_sum(const std::vector<ConstByteSpan>& contributions,
                                          FloatSpan out) {
  std::vector<BigUInt> acc;
  for (const auto& c : contributions) vec_.accumulate(acc, c);
  const Tensor sum = vec_.decrypt_sum(acc, out.size(), contributions.size());
  std::copy_n(sum.data(), out.size(), out.data());
}

namespace {

void register_builtin(PrivacyRegistry& reg) {
  reg.add("NoPrivacy",
          [](const config::ConfigNode&) { return std::make_unique<NoPrivacy>(); });
  reg.add("DifferentialPrivacy",
          [](const config::ConfigNode& cfg) -> std::unique_ptr<PrivacyMechanism> {
            DpParams p;
            p.epsilon = cfg.get_or<double>("epsilon", 1.0);
            p.delta = cfg.get_or<double>("delta", 1e-5);
            p.clip_norm = cfg.get_or<double>("clip_norm", 1.0);
            const auto seed =
                static_cast<std::uint64_t>(cfg.get_or<std::int64_t>("seed", 0xD9));
            return std::make_unique<DifferentialPrivacy>(p, seed);
          });
  reg.add("HomomorphicEncryption",
          [](const config::ConfigNode& cfg) -> std::unique_ptr<PrivacyMechanism> {
            const auto bits = cfg.get_or<std::size_t>("key_bits", 256);
            const auto summands = cfg.get_or<std::size_t>("max_summands", 1024);
            const auto seed =
                static_cast<std::uint64_t>(cfg.get_or<std::int64_t>("seed", 0x4E));
            const auto enc_seed =
                static_cast<std::uint64_t>(cfg.get_or<std::int64_t>("enc_seed", 0));
            return std::make_unique<HomomorphicEncryption>(bits, summands, seed, enc_seed);
          });
  reg.add("SecureAggregation",
          [](const config::ConfigNode& cfg) -> std::unique_ptr<PrivacyMechanism> {
            const auto key = cfg.get_or<std::string>("group_key", "omnifed-sa");
            const auto clients = cfg.get<int>("num_clients");
            const auto mode = cfg.get_or<std::string>("key_agreement", "hmac");
            const SaKeyAgreement agreement = (mode == "diffie_hellman")
                                                 ? SaKeyAgreement::DiffieHellman
                                                 : SaKeyAgreement::Hmac;
            return std::make_unique<SecureAggregation>(key, clients, agreement);
          });
}

}  // namespace

PrivacyRegistry& privacy_registry() {
  static PrivacyRegistry reg = [] {
    PrivacyRegistry r;
    register_builtin(r);
    return r;
  }();
  return reg;
}

std::unique_ptr<PrivacyMechanism> make_mechanism(const config::ConfigNode& cfg) {
  return privacy_registry().create(cfg);
}

}  // namespace of::privacy
