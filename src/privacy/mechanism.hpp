// PrivacyMechanism — pluggable privacy layer (paper §3.4.4).
//
// A mechanism transforms a client's model update into a wire payload
// (protect) and turns the collected payloads back into the *sum* of the
// plain updates (aggregate_sum). This two-sided shape covers all three of
// the paper's mechanisms:
//   DP — noise added client-side, aggregation is plain summation
//   HE — ciphertexts cross the wire, aggregation is homomorphic
//   SA — pairwise masks cancel only in the sum
#pragma once

#include <memory>
#include <string>

#include "config/node.hpp"
#include "config/registry.hpp"
#include "tensor/serialize.hpp"
#include "tensor/tensor.hpp"

namespace of::privacy {

using tensor::Bytes;
using tensor::Rng;
using tensor::Tensor;

class PrivacyMechanism {
 public:
  PrivacyMechanism() = default;
  PrivacyMechanism(const PrivacyMechanism&) = delete;
  PrivacyMechanism& operator=(const PrivacyMechanism&) = delete;
  virtual ~PrivacyMechanism() = default;

  // Client-side: wrap the update for transmission.
  virtual Bytes protect(const Tensor& update, int client_id, int num_clients) = 0;
  // Aggregator-side: recover the SUM of the protected updates.
  virtual Tensor aggregate_sum(const std::vector<Bytes>& contributions,
                               std::size_t numel) = 0;
  virtual std::string name() const = 0;
};

// Pass-through (serialize/sum), the default.
class NoPrivacy final : public PrivacyMechanism {
 public:
  Bytes protect(const Tensor& update, int client_id, int num_clients) override;
  Tensor aggregate_sum(const std::vector<Bytes>& contributions, std::size_t numel) override;
  std::string name() const override { return "NoPrivacy"; }
};

using PrivacyRegistry = config::Registry<PrivacyMechanism>;
PrivacyRegistry& privacy_registry();
std::unique_ptr<PrivacyMechanism> make_mechanism(const config::ConfigNode& cfg);

}  // namespace of::privacy
