// PrivacyMechanism — pluggable privacy layer (paper §3.4.4).
//
// A mechanism transforms a client's model update into a wire payload
// (protect) and turns the collected payloads back into the *sum* of the
// plain updates (aggregate_sum). This two-sided shape covers all three of
// the paper's mechanisms:
//   DP — noise added client-side, aggregation is plain summation
//   HE — ciphertexts cross the wire, aggregation is homomorphic
//   SA — pairwise masks cancel only in the sum
#pragma once

#include <memory>
#include <string>

#include "config/node.hpp"
#include "config/registry.hpp"
#include "tensor/serialize.hpp"
#include "tensor/tensor.hpp"

namespace of::privacy {

using tensor::Bytes;
using tensor::ConstByteSpan;
using tensor::ConstFloatSpan;
using tensor::FloatSpan;
using tensor::Rng;
using tensor::Tensor;

class PrivacyMechanism {
 public:
  PrivacyMechanism() = default;
  PrivacyMechanism(const PrivacyMechanism&) = delete;
  PrivacyMechanism& operator=(const PrivacyMechanism&) = delete;
  virtual ~PrivacyMechanism() = default;

  // Span-primary API (the zero-copy pipeline).
  // Client-side: wrap the flat update for transmission. Clears and rewrites
  // `out` — capacity survives, so pooled buffers amortize across rounds.
  virtual void protect(ConstFloatSpan update, int client_id, int num_clients,
                       Bytes& out) = 0;
  // Aggregator-side: overwrite `out` with the SUM of the protected updates,
  // reading each contribution in place (typically a view into a received
  // frame at a nonzero offset — implementations must not assume alignment).
  virtual void aggregate_sum(const std::vector<ConstByteSpan>& contributions,
                             FloatSpan out) = 0;
  virtual std::string name() const = 0;

  // Owning conveniences for tests and cold paths.
  Bytes protect(const Tensor& update, int client_id, int num_clients) {
    Bytes out;
    protect(update.span(), client_id, num_clients, out);
    return out;
  }
  Tensor aggregate_sum(const std::vector<Bytes>& contributions, std::size_t numel) {
    const std::vector<ConstByteSpan> views(contributions.begin(), contributions.end());
    Tensor sum({numel});
    aggregate_sum(views, sum.span());
    return sum;
  }
};

// Sum serialized 1-D tensors (the NoPrivacy/DP wire body: u32 ndim | u64
// dims | f32 data) into `out`, overwriting it. Shared by mechanisms whose
// aggregation is plain summation.
void sum_serialized_tensors(const std::vector<ConstByteSpan>& contributions, FloatSpan out);

// Pass-through (serialize/sum), the default.
class NoPrivacy final : public PrivacyMechanism {
 public:
  void protect(ConstFloatSpan update, int client_id, int num_clients, Bytes& out) override;
  void aggregate_sum(const std::vector<ConstByteSpan>& contributions, FloatSpan out) override;
  using PrivacyMechanism::protect;
  using PrivacyMechanism::aggregate_sum;
  std::string name() const override { return "NoPrivacy"; }
};

// Param structs are reflected (src/refl/), so unknown/typo'd keys fail with
// a path-aware error unless strict=false.
using PrivacyRegistry = config::Registry<PrivacyMechanism, bool /*strict*/>;
PrivacyRegistry& privacy_registry();
std::unique_ptr<PrivacyMechanism> make_mechanism(const config::ConfigNode& cfg,
                                                 bool strict = true);

}  // namespace of::privacy
