#include "privacy/paillier.hpp"

#include <cmath>

#include "common/check.hpp"

namespace of::privacy {

Paillier Paillier::keygen(std::size_t key_bits, tensor::Rng& rng) {
  OF_CHECK_MSG(key_bits >= 64, "Paillier key must be at least 64 bits");
  Paillier out;
  const std::size_t half = key_bits / 2;
  BigUInt p = BigUInt::random_prime(half, rng);
  BigUInt q = BigUInt::random_prime(half, rng);
  while (q == p) q = BigUInt::random_prime(half, rng);
  out.pub_.n = p * q;
  out.pub_.n_squared = out.pub_.n * out.pub_.n;
  const BigUInt p1 = p - BigUInt(1);
  const BigUInt q1 = q - BigUInt(1);
  out.priv_.lambda = BigUInt::lcm(p1, q1);
  // With g = n+1: L(g^λ mod n²) = λ mod n, so μ = λ⁻¹ mod n.
  out.priv_.mu = BigUInt::invmod(out.priv_.lambda % out.pub_.n, out.pub_.n);
  return out;
}

BigUInt Paillier::encrypt(const BigUInt& plaintext, tensor::Rng& rng) const {
  OF_CHECK_MSG(plaintext < pub_.n, "Paillier plaintext exceeds modulus");
  // g^m = (1+n)^m = 1 + m·n (mod n²) — the standard g=n+1 shortcut.
  const BigUInt gm = (BigUInt(1) + plaintext * pub_.n) % pub_.n_squared;
  BigUInt r = BigUInt(1) + BigUInt::random_below(pub_.n - BigUInt(1), rng);
  while (!(BigUInt::gcd(r, pub_.n) == BigUInt(1)))
    r = BigUInt(1) + BigUInt::random_below(pub_.n - BigUInt(1), rng);
  const BigUInt rn = BigUInt::powmod(r, pub_.n, pub_.n_squared);
  return BigUInt::mulmod(gm, rn, pub_.n_squared);
}

BigUInt Paillier::decrypt(const BigUInt& ciphertext) const {
  const BigUInt x = BigUInt::powmod(ciphertext, priv_.lambda, pub_.n_squared);
  const BigUInt l = (x - BigUInt(1)) / pub_.n;
  return BigUInt::mulmod(l, priv_.mu, pub_.n);
}

BigUInt Paillier::add(const BigUInt& c1, const BigUInt& c2) const {
  return BigUInt::mulmod(c1, c2, pub_.n_squared);
}

BigUInt Paillier::scale(const BigUInt& c, const BigUInt& k) const {
  return BigUInt::powmod(c, k, pub_.n_squared);
}

// --- packed vector encryption ---------------------------------------------------

namespace {
// Field layout: 62-bit fields; encoded value = round(v·2^16) + 2^37, values
// clipped to |v| ≤ 2^20. A field then stays below 2^38, and sums of up to
// 2^24 contributions stay below 2^62 — no carry into the next field.
constexpr std::size_t kFieldBits = 62;
constexpr std::uint64_t kOffset = 1ULL << 37;
constexpr double kClip = static_cast<double>(1ULL << 20);
}  // namespace

PaillierVector::PaillierVector(std::size_t key_bits, std::size_t max_summands,
                               tensor::Rng& rng)
    : scheme_(Paillier::keygen(key_bits, rng)), field_bits_(kFieldBits) {
  OF_CHECK_MSG(max_summands < (1ULL << 24),
               "packed encoding supports at most 2^24 summands");
  const std::size_t n_bits = scheme_.pub().n.bit_length();
  OF_CHECK_MSG(n_bits > field_bits_ + 2,
               "Paillier key too small for 62-bit packed fields");
  pack_ = (n_bits - 2) / field_bits_;
  offset_ = kOffset;
}

tensor::Bytes PaillierVector::encrypt(const tensor::Tensor& t, tensor::Rng& rng) const {
  const std::size_t numel = t.numel();
  const std::size_t num_ct = (numel + pack_ - 1) / pack_;
  tensor::Bytes out;
  tensor::append_pod<std::uint64_t>(out, num_ct);
  for (std::size_t c = 0; c < num_ct; ++c) {
    BigUInt plain;
    for (std::size_t j = 0; j < pack_; ++j) {
      const std::size_t i = c * pack_ + j;
      std::uint64_t field = offset_;  // padding lanes encode value 0
      if (i < numel) {
        double v = static_cast<double>(t[i]);
        v = std::min(kClip, std::max(-kClip, v));
        const std::int64_t scaled = static_cast<std::int64_t>(std::llround(v * kScale));
        field = static_cast<std::uint64_t>(scaled + static_cast<std::int64_t>(offset_));
      }
      plain = plain + (BigUInt(field) << (j * field_bits_));
    }
    const BigUInt ct = scheme_.encrypt(plain, rng);
    const auto bytes = ct.to_bytes_be();
    tensor::append_pod<std::uint32_t>(out, static_cast<std::uint32_t>(bytes.size()));
    out.insert(out.end(), bytes.begin(), bytes.end());
  }
  return out;
}

std::vector<BigUInt> PaillierVector::parse(tensor::ConstByteSpan b) const {
  std::size_t off = 0;
  const auto num_ct = tensor::read_pod<std::uint64_t>(b, off);
  std::vector<BigUInt> cts;
  cts.reserve(num_ct);
  for (std::uint64_t c = 0; c < num_ct; ++c) {
    const auto len = tensor::read_pod<std::uint32_t>(b, off);
    OF_CHECK_MSG(off + len <= b.size(), "ciphertext frame truncated");
    std::vector<std::uint8_t> bytes(b.begin() + static_cast<std::ptrdiff_t>(off),
                                    b.begin() + static_cast<std::ptrdiff_t>(off + len));
    off += len;
    cts.push_back(BigUInt::from_bytes_be(bytes));
  }
  OF_CHECK_MSG(off == b.size(), "trailing bytes after ciphertext vector");
  return cts;
}

void PaillierVector::accumulate(std::vector<BigUInt>& acc,
                                tensor::ConstByteSpan contribution) const {
  const auto cts = parse(contribution);
  if (acc.empty()) {
    acc = cts;
    return;
  }
  OF_CHECK_MSG(acc.size() == cts.size(), "ciphertext count mismatch in accumulate");
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] = scheme_.add(acc[i], cts[i]);
}

tensor::Tensor PaillierVector::decrypt_sum(const std::vector<BigUInt>& acc,
                                           std::size_t numel,
                                           std::size_t num_summands) const {
  tensor::Tensor out({numel});
  const BigUInt mask = (BigUInt(1) << field_bits_) - BigUInt(1);
  for (std::size_t c = 0; c < acc.size(); ++c) {
    const BigUInt plain = scheme_.decrypt(acc[c]);
    for (std::size_t j = 0; j < pack_; ++j) {
      const std::size_t i = c * pack_ + j;
      if (i >= numel) break;
      const std::uint64_t field = ((plain >> (j * field_bits_)) % (mask + BigUInt(1))).to_u64();
      const std::int64_t centered =
          static_cast<std::int64_t>(field) -
          static_cast<std::int64_t>(num_summands * offset_);
      out[i] = static_cast<float>(static_cast<double>(centered) / kScale);
    }
  }
  return out;
}

}  // namespace of::privacy
