// Paillier additively homomorphic cryptosystem (the TenSEAL/SEAL stand-in).
//
//   KeyGen:  n = p·q (random primes), g = n+1, λ = lcm(p−1, q−1),
//            μ = λ⁻¹ mod n
//   Enc(m):  c = (1 + m·n) · rⁿ  mod n²      (g = n+1 makes g^m linear)
//   Add:     Enc(a) ⊙ Enc(b) = Enc(a)·Enc(b) mod n²  = Enc(a+b)
//   Dec(c):  m = L(c^λ mod n²) · μ mod n,  L(x) = (x−1)/n
//
// Tensors are encoded fixed-point with an offset so negatives survive the
// unsigned plaintext space, and several values are *packed* per ciphertext
// (standard batching) — each value gets a fixed-width field wide enough to
// absorb the sum over all clients without carry-over between fields.
#pragma once

#include <vector>

#include "privacy/biguint.hpp"
#include "tensor/serialize.hpp"
#include "tensor/tensor.hpp"

namespace of::privacy {

struct PaillierPublicKey {
  BigUInt n;
  BigUInt n_squared;
};

struct PaillierPrivateKey {
  BigUInt lambda;
  BigUInt mu;
};

class Paillier {
 public:
  // Generate a keypair with an n of ~`key_bits` bits. 256 is the default
  // used by tests/benches — cryptographically toy-sized but algorithmically
  // faithful (see DESIGN.md §12).
  static Paillier keygen(std::size_t key_bits, tensor::Rng& rng);

  const PaillierPublicKey& pub() const noexcept { return pub_; }

  BigUInt encrypt(const BigUInt& plaintext, tensor::Rng& rng) const;
  BigUInt decrypt(const BigUInt& ciphertext) const;
  // Homomorphic addition of plaintexts.
  BigUInt add(const BigUInt& c1, const BigUInt& c2) const;
  // Homomorphic multiplication by a plaintext scalar.
  BigUInt scale(const BigUInt& c, const BigUInt& k) const;

 private:
  PaillierPublicKey pub_;
  PaillierPrivateKey priv_;
};

// Fixed-point packed tensor encryption on top of the scalar scheme.
class PaillierVector {
 public:
  // `max_summands`: how many ciphertext additions the encoding must survive
  // without fields overflowing into their neighbours.
  PaillierVector(std::size_t key_bits, std::size_t max_summands, tensor::Rng& rng);

  // Encrypt a float tensor into a list of ciphertexts (serialized bytes).
  tensor::Bytes encrypt(const tensor::Tensor& t, tensor::Rng& rng) const;
  // Homomorphically add a serialized ciphertext vector into an accumulator.
  void accumulate(std::vector<BigUInt>& acc, tensor::ConstByteSpan contribution) const;
  // Decrypt an accumulated sum of `num_summands` contributions.
  tensor::Tensor decrypt_sum(const std::vector<BigUInt>& acc, std::size_t numel,
                             std::size_t num_summands) const;
  // Parse a serialized contribution into ciphertexts (for tests).
  std::vector<BigUInt> parse(tensor::ConstByteSpan b) const;

  std::size_t values_per_ciphertext() const noexcept { return pack_; }
  const Paillier& scheme() const noexcept { return scheme_; }

  static constexpr double kScale = 65536.0;  // 16 fractional bits

 private:
  Paillier scheme_;
  std::size_t field_bits_;
  std::size_t pack_;
  std::uint64_t offset_;  // per-value offset making plaintext fields non-negative
};

}  // namespace of::privacy
