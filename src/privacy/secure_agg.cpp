#include "privacy/secure_agg.hpp"

#include <cmath>

#include "common/check.hpp"
#include "privacy/dh.hpp"

namespace of::privacy {

SecureAggregation::SecureAggregation(std::string group_key, int num_clients,
                                     SaKeyAgreement agreement, std::uint64_t dh_seed)
    : group_key_(std::move(group_key)), num_clients_(num_clients), agreement_(agreement) {
  OF_CHECK_MSG(num_clients_ >= 1, "secure aggregation needs at least one client");
  if (agreement_ == SaKeyAgreement::DiffieHellman) {
    // Run the pairwise exchanges once up front. Each client gets a key
    // pair; pair (i, j) derives the same shared key from each side (the
    // symmetry is property-tested in tests/test_privacy.cpp).
    const DhGroup group = DhGroup::default_group();
    tensor::Rng rng(dh_seed);
    std::vector<DhParty> parties;
    parties.reserve(static_cast<std::size_t>(num_clients_));
    for (int i = 0; i < num_clients_; ++i) parties.emplace_back(group, rng);
    dh_shared_.resize(static_cast<std::size_t>(num_clients_) *
                      static_cast<std::size_t>(num_clients_));
    for (int i = 0; i < num_clients_; ++i) {
      for (int j = i + 1; j < num_clients_; ++j) {
        auto key = parties[static_cast<std::size_t>(i)].shared_key(
            parties[static_cast<std::size_t>(j)].public_value());
        dh_shared_[pair_index(i, j)] = key;
      }
    }
  }
}

std::size_t SecureAggregation::pair_index(int i, int j) const {
  const int lo = std::min(i, j), hi = std::max(i, j);
  return static_cast<std::size_t>(lo) * static_cast<std::size_t>(num_clients_) +
         static_cast<std::size_t>(hi);
}

std::vector<std::uint8_t> SecureAggregation::pair_seed(int i, int j) const {
  if (agreement_ == SaKeyAgreement::DiffieHellman) {
    const auto& key = dh_shared_[pair_index(i, j)];
    OF_CHECK_MSG(!key.empty(), "no DH shared key for pair");
    return key;
  }
  // Paper's prototype: deterministic shared key from HMAC over the sorted
  // pair identity.
  const int lo = std::min(i, j), hi = std::max(i, j);
  const std::string msg = "pair:" + std::to_string(lo) + ":" + std::to_string(hi);
  const Digest d = hmac_sha256(group_key_, msg);
  return std::vector<std::uint8_t>(d.begin(), d.end());
}

void SecureAggregation::protect(ConstFloatSpan update, int client_id, int num_clients,
                                Bytes& out) {
  OF_CHECK_MSG(num_clients == num_clients_,
               "cohort size mismatch: configured " << num_clients_ << ", got "
                                                   << num_clients);
  OF_CHECK_MSG(client_id >= 0 && client_id < num_clients_, "bad client id");
  const std::size_t n = update.size();
  // Fixed-point lift.
  std::vector<std::uint64_t> masked(n);
  for (std::size_t k = 0; k < n; ++k) {
    const auto scaled =
        static_cast<std::int64_t>(std::llround(static_cast<double>(update[k]) * kScale));
    masked[k] = static_cast<std::uint64_t>(scaled);
  }
  // Apply pairwise masks: + for peers above us, − for peers below.
  std::vector<std::uint64_t> mask(n);
  for (int peer = 0; peer < num_clients_; ++peer) {
    if (peer == client_id) continue;
    HmacDrbg prg(pair_seed(client_id, peer));
    prg.generate(reinterpret_cast<std::uint8_t*>(mask.data()), n * sizeof(std::uint64_t));
    if (client_id < peer) {
      for (std::size_t k = 0; k < n; ++k) masked[k] += mask[k];  // wrapping
    } else {
      for (std::size_t k = 0; k < n; ++k) masked[k] -= mask[k];  // wrapping
    }
  }
  out.clear();
  tensor::append_pod<std::uint64_t>(out, n);
  tensor::append_span(out, masked.data(), n);
}

void SecureAggregation::aggregate_sum(const std::vector<ConstByteSpan>& contributions,
                                      FloatSpan out) {
  const std::size_t numel = out.size();
  std::vector<std::uint64_t> acc(numel, 0);
  std::vector<std::uint64_t> vals(numel);
  for (const auto& c : contributions) {
    std::size_t off = 0;
    const auto n = tensor::read_pod<std::uint64_t>(c, off);
    OF_CHECK_MSG(n == numel, "secure-agg contribution size mismatch");
    tensor::read_span(c, off, vals.data(), numel);
    for (std::size_t k = 0; k < numel; ++k) acc[k] += vals[k];  // wrapping sum
  }
  // Masks have cancelled; centered lift back to signed fixed-point.
  for (std::size_t k = 0; k < numel; ++k) {
    const auto v = static_cast<std::int64_t>(acc[k]);  // two's-complement lift
    out[k] = static_cast<float>(static_cast<double>(v) / kScale);
  }
}

}  // namespace of::privacy
