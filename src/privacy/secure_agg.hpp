// Secure aggregation with pairwise masks (Bonawitz et al., CCS'17 shape).
//
// Updates are lifted into fixed-point uint64 arithmetic; every ordered pair
// (i, j) shares a seed from which an HMAC-SHA256 counter-mode PRG expands a
// mask vector. Client i adds the mask for pairs (i, j>i) and subtracts it
// for pairs (j<i, i); wrap-around uint64 addition makes the masks cancel
// *exactly* in the aggregate while individual payloads are
// indistinguishable from noise.
//
// Seed agreement supports both of the paper's variants:
//   Hmac          — deterministic HMAC(global_key, "i:j") (the paper's prototype)
//   DiffieHellman — per-pair DH key exchange over a MODP group (the
//                   paper's stated future-work upgrade)
#pragma once

#include "privacy/mechanism.hpp"
#include "privacy/sha256.hpp"

namespace of::privacy {

enum class SaKeyAgreement { Hmac, DiffieHellman };

class SecureAggregation final : public PrivacyMechanism {
 public:
  SecureAggregation(std::string group_key, int num_clients,
                    SaKeyAgreement agreement = SaKeyAgreement::Hmac,
                    std::uint64_t dh_seed = 0x0F5EEDDEADULL);

  void protect(ConstFloatSpan update, int client_id, int num_clients, Bytes& out) override;
  void aggregate_sum(const std::vector<ConstByteSpan>& contributions, FloatSpan out) override;
  using PrivacyMechanism::protect;
  using PrivacyMechanism::aggregate_sum;
  std::string name() const override { return "SecureAggregation"; }

  // The seed both ends of pair (i, j) derive; exposed for tests.
  std::vector<std::uint8_t> pair_seed(int i, int j) const;

  static constexpr double kScale = 65536.0;  // 16 fractional bits

 private:
  std::string group_key_;
  int num_clients_;
  SaKeyAgreement agreement_;
  // DH mode: per-client key pairs, generated once for the cohort.
  std::vector<std::vector<std::uint8_t>> dh_shared_;  // flattened pair matrix

  std::size_t pair_index(int i, int j) const;
};

}  // namespace of::privacy
