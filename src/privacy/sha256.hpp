// SHA-256 and HMAC-SHA256, implemented from scratch (FIPS 180-4 /
// RFC 2104). These back the secure-aggregation mask PRG exactly the way
// the paper prototypes SA with Python's hashlib/hmac.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace of::privacy {

using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();
  void update(const std::uint8_t* data, std::size_t len);
  void update(const std::string& s);
  Digest finish();

  static Digest hash(const std::uint8_t* data, std::size_t len);
  static Digest hash(const std::string& s);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

Digest hmac_sha256(const std::vector<std::uint8_t>& key, const std::uint8_t* msg,
                   std::size_t len);
Digest hmac_sha256(const std::string& key, const std::string& msg);

// Deterministic byte stream: HMAC(key, counter) in counter mode. Used as
// the secure-aggregation mask generator.
class HmacDrbg {
 public:
  explicit HmacDrbg(std::vector<std::uint8_t> key);
  // Fill `out` with the next `len` pseudorandom bytes.
  void generate(std::uint8_t* out, std::size_t len);

 private:
  std::vector<std::uint8_t> key_;
  std::uint64_t counter_ = 0;
  Digest block_{};
  std::size_t block_used_ = 32;  // force first refill
};

std::string digest_hex(const Digest& d);

}  // namespace of::privacy
