// of::refl config visitors — generated ConfigNode↔struct mapping.
//
// from_node<T>(node, path) walks T's field descriptor: every present key
// is converted with the same coercions ConfigNode's typed getters use,
// missing keys keep the member's default (unless .req()), range metadata
// is enforced, and unknown keys are rejected with the full dotted path
// ("fault.reconnect.max_atempts: unknown key ...") so typos never
// silently no-op. to_node<T> is the inverse — it materializes defaults,
// which is what --dump-config renders.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "config/node.hpp"
#include "refl/refl.hpp"

namespace of::refl {

[[noreturn]] inline void config_fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("config error at '" + path + "': " + what);
}

inline std::string join_path(const std::string& parent, const char* key) {
  return parent.empty() ? std::string(key) : parent + "." + key;
}

template <Reflected T>
T from_node(const config::ConfigNode& node, const std::string& path = "",
            const std::vector<std::string>& extra_keys = {}, bool strict = true);
template <Reflected T>
config::ConfigNode to_node(const T& value);

// --- scalar conversions ----------------------------------------------------

template <class T>
void value_from_node(const config::ConfigNode& n, const std::string& path, T& out,
                     bool strict = true) {
  if constexpr (std::is_same_v<T, bool>) {
    if (n.kind() != config::ConfigNode::Kind::Bool)
      config_fail(path, "expected a bool");
    out = n.as_bool();
  } else if constexpr (std::is_same_v<T, std::string>) {
    if (n.kind() != config::ConfigNode::Kind::String)
      config_fail(path, "expected a string");
    out = n.as_string();
  } else if constexpr (NamedEnum<T>) {
    if (n.kind() != config::ConfigNode::Kind::String)
      config_fail(path, "expected one of " + enum_choices<T>());
    if (!enum_from_string(n.as_string(), out))
      config_fail(path, "unknown value '" + n.as_string() + "' (" + enum_choices<T>() + ")");
  } else if constexpr (std::is_floating_point_v<T>) {
    if (n.kind() != config::ConfigNode::Kind::Int &&
        n.kind() != config::ConfigNode::Kind::Float)
      config_fail(path, "expected a number");
    out = static_cast<T>(n.as_double());
  } else if constexpr (std::is_integral_v<T>) {
    if (n.kind() != config::ConfigNode::Kind::Int)
      config_fail(path, "expected an integer");
    const std::int64_t v = n.as_int();
    if constexpr (std::is_unsigned_v<T>) {
      if (v < 0) {
        std::ostringstream os;
        os << "must be non-negative, got " << v;
        config_fail(path, os.str());
      }
    }
    out = static_cast<T>(v);
  } else if constexpr (Reflected<T>) {
    out = from_node<T>(n, path, {}, strict);
  } else if constexpr (is_std_vector_v<T>) {
    if (!n.is_list() && !n.is_null())
      config_fail(path, "expected a list");
    out.clear();
    for (std::size_t i = 0; n.is_list() && i < n.size(); ++i) {
      std::ostringstream os;
      os << path << '[' << i << ']';
      typename T::value_type item{};
      value_from_node(n.at(i), os.str(), item, strict);
      out.push_back(std::move(item));
    }
  } else {
    static_assert(sizeof(T) == 0, "unsupported field type for config reflection");
  }
}

// --- struct reader ---------------------------------------------------------

// Parse the map `node` into a T. Unknown keys not named by a field (or by
// `extra_keys`, for polymorphic groups that carry _target_/seed/...) throw.
// A null node yields the defaulted struct, matching the hand-written
// from_config conventions (required fields still throw then).
template <Reflected T>
T from_node(const config::ConfigNode& node, const std::string& path,
            const std::vector<std::string>& extra_keys, bool strict) {
  T out{};
  const std::string where = path.empty() ? "(root)" : path;
  if (!node.is_null() && !node.is_map())
    config_fail(where, "expected a map");

  for_each_field<T>([&](const auto& f) {
    const std::string fpath = join_path(path, f.name);
    if (!node.is_map() || !node.has(f.name)) {
      if (f.required) config_fail(fpath, "required key is missing");
      return;
    }
    auto& slot = out.*(f.member);
    value_from_node(node.at(f.name), fpath, slot, strict);
    using FT = std::decay_t<decltype(slot)>;
    if constexpr (std::is_arithmetic_v<FT> && !std::is_same_v<FT, bool>) {
      const double v = static_cast<double>(slot);
      const auto bound_fail = [&](const char* op, double bound) {
        std::ostringstream os;
        os << "must be " << op << ' ' << bound << ", got " << v;
        config_fail(fpath, os.str());
      };
      if (f.has_min && (f.min_excl ? !(v > f.min_v) : !(v >= f.min_v)))
        bound_fail(f.min_excl ? ">" : ">=", f.min_v);
      if (f.has_max && (f.max_excl ? !(v < f.max_v) : !(v <= f.max_v)))
        bound_fail(f.max_excl ? "<" : "<=", f.max_v);
    }
  });

  if (strict && node.is_map()) {
    for (const auto& [key, child] : node.items()) {
      (void)child;
      bool known = false;
      for_each_field<T>([&](const auto& f) { known = known || key == f.name; });
      for (const auto& extra : extra_keys) known = known || key == extra;
      if (!known)
        config_fail(join_path(path, key.c_str()),
                    "unknown key (strict config; set config.strict: false to allow)");
    }
  }
  return out;
}

// --- struct writer ---------------------------------------------------------

template <class T>
config::ConfigNode value_to_node(const T& v) {
  if constexpr (std::is_same_v<T, bool>) {
    return config::ConfigNode::boolean(v);
  } else if constexpr (std::is_same_v<T, std::string>) {
    return config::ConfigNode::string(v);
  } else if constexpr (NamedEnum<T>) {
    return config::ConfigNode::string(enum_to_string(v));
  } else if constexpr (std::is_floating_point_v<T>) {
    return config::ConfigNode::floating(static_cast<double>(v));
  } else if constexpr (std::is_integral_v<T>) {
    return config::ConfigNode::integer(static_cast<std::int64_t>(v));
  } else if constexpr (Reflected<T>) {
    return to_node(v);
  } else if constexpr (is_std_vector_v<T>) {
    config::ConfigNode list = config::ConfigNode::list();
    for (const auto& item : v) list.push_back(value_to_node(item));
    return list;
  } else {
    static_assert(sizeof(T) == 0, "unsupported field type for config reflection");
  }
}

// Render T back to a ConfigNode map, defaults materialized — the effective
// config --dump-config prints.
template <Reflected T>
config::ConfigNode to_node(const T& value) {
  config::ConfigNode node = config::ConfigNode::map();
  for_each_field<T>([&](const auto& f) { node[f.name] = value_to_node(value.*(f.member)); });
  return node;
}

// YAML keys T accepts — the strict-config allowlist for reflected groups.
template <Reflected T>
std::vector<std::string> field_names() {
  std::vector<std::string> out;
  for_each_field<T>([&](const auto& f) { out.emplace_back(f.name); });
  return out;
}

}  // namespace of::refl
