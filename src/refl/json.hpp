// of::refl JSON writer — reflected structs rendered as JSON objects.
//
// Keys come from each field's export_name() (the Prometheus-name override
// when set, else the field name) so the `/fleet.json` document matches
// the `of_fleet_*` gauge set name-for-name; fields marked .skip_export()
// are omitted. Values: numbers as numbers (non-finite doubles as 0, like
// prom_double), bools as true/false, enums as their name string, nested
// reflected structs as objects, vectors/arrays as arrays.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <type_traits>

#include "refl/refl.hpp"

namespace of::refl::json {

inline void append_escaped(const std::string& s, std::string& out) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

inline void append_double(double v, std::string& out) {
  if (!std::isfinite(v)) {
    out += '0';
    return;
  }
  std::ostringstream os;
  os.precision(17);
  os << v;
  out += os.str();
}

template <Reflected T>
void to_json(const T& value, std::string& out);

template <class T>
void value_to_json(const T& v, std::string& out) {
  if constexpr (std::is_same_v<T, bool>) {
    out += v ? "true" : "false";
  } else if constexpr (NamedEnum<T>) {
    append_escaped(enum_to_string(v), out);
  } else if constexpr (std::is_floating_point_v<T>) {
    append_double(static_cast<double>(v), out);
  } else if constexpr (std::is_integral_v<T>) {
    out += std::to_string(static_cast<std::int64_t>(v));
  } else if constexpr (std::is_same_v<T, std::string>) {
    append_escaped(v, out);
  } else if constexpr (Reflected<T>) {
    to_json(v, out);
  } else if constexpr (is_std_vector_v<T> || std::is_array_v<T>) {
    out += '[';
    std::size_t count = 0;
    if constexpr (std::is_array_v<T>) {
      count = std::extent_v<T>;
    } else {
      count = v.size();
    }
    for (std::size_t i = 0; i < count; ++i) {
      if (i) out += ',';
      value_to_json(v[i], out);
    }
    out += ']';
  } else {
    static_assert(sizeof(T) == 0, "unsupported field type for JSON reflection");
  }
}

// Render `value` as a JSON object keyed by export_name(), omitting fields
// marked .skip_export().
template <Reflected T>
void to_json(const T& value, std::string& out) {
  out += '{';
  bool first = true;
  for_each_field<T>([&](const auto& f) {
    if (f.exported == Export::Skip) return;
    if (!first) out += ',';
    first = false;
    append_escaped(f.export_name(), out);
    out += ':';
    value_to_json(value.*(f.member), out);
  });
  out += '}';
}

template <Reflected T>
std::string to_json(const T& value) {
  std::string out;
  to_json(value, out);
  return out;
}

}  // namespace of::refl::json
