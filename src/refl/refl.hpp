// of::refl — the field-reflection core (DESIGN.md §13).
//
// One `fields()` descriptor per aggregate struct drives every derived
// surface: YAML→struct config parsing with required/range/unknown-key
// validation (config_io.hpp), the versioned tag-length-value wire format
// with skip-unknown forward compatibility (tlv.hpp), and the exporter
// name tables — Prometheus families, CSV columns, /fleet.json keys
// (json.hpp and the obs/metrics renderers). Adding a field to a
// descriptor is the *only* edit needed for it to appear on all of them.
//
// The descriptor is a constexpr tuple of Field<S,T> entries — a name, a
// member pointer, a stable wire tag, and fluent metadata (required,
// range bounds, export kind, exporter-name override). No macros are
// required; OF_REFL_FIELDS(...) is an optional one-liner helper. No
// external dependencies, C++20 only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace of::refl {

// How a field shows up on the exporter surfaces (Prometheus / JSON / CSV).
enum class Export : std::uint8_t {
  Gauge,    // numeric gauge family (default)
  Counter,  // monotonic counter family ("# TYPE ... counter")
  Label,    // identifies the row (Prometheus label / JSON key), not a series
  Skip,     // wire/config only; never exported
};

// One named field of S: name, member pointer, stable wire tag, metadata.
// The fluent setters return modified copies so descriptors stay constexpr:
//   field("bits", &Qsgd::bits, 1).req().ge(1).le(16)
template <class S, class T>
struct Field {
  using Struct = S;
  using Type = T;

  const char* name;  // YAML key and default exporter name
  T S::* member;
  std::uint16_t tag;  // stable TLV wire tag; never reuse after removal

  Export exported = Export::Gauge;
  const char* prom = nullptr;  // exporter-name override (nullptr = `name`)
  bool required = false;       // config: key must be present
  bool deterministic = false;  // metrics CSV: part of the deterministic subset
  // Range constraints, applied to arithmetic fields after conversion.
  bool has_min = false, min_excl = false;
  bool has_max = false, max_excl = false;
  double min_v = 0.0, max_v = 0.0;

  constexpr Field(const char* n, T S::* m, std::uint16_t t)
      : name(n), member(m), tag(t) {}

  constexpr Field req() const { Field f = *this; f.required = true; return f; }
  constexpr Field ge(double v) const {
    Field f = *this; f.has_min = true; f.min_excl = false; f.min_v = v; return f;
  }
  constexpr Field gt(double v) const {
    Field f = *this; f.has_min = true; f.min_excl = true; f.min_v = v; return f;
  }
  constexpr Field le(double v) const {
    Field f = *this; f.has_max = true; f.max_excl = false; f.max_v = v; return f;
  }
  constexpr Field lt(double v) const {
    Field f = *this; f.has_max = true; f.max_excl = true; f.max_v = v; return f;
  }
  constexpr Field prom_name(const char* p) const { Field f = *this; f.prom = p; return f; }
  constexpr Field counter() const { Field f = *this; f.exported = Export::Counter; return f; }
  constexpr Field label() const { Field f = *this; f.exported = Export::Label; return f; }
  constexpr Field skip_export() const { Field f = *this; f.exported = Export::Skip; return f; }
  constexpr Field det() const { Field f = *this; f.deterministic = true; return f; }

  constexpr const char* export_name() const { return prom ? prom : name; }
};

template <class S, class T>
constexpr Field<S, T> field(const char* name, T S::* member, std::uint16_t tag) {
  return Field<S, T>(name, member, tag);
}

// Customization point: specialize with a `static constexpr auto fields()`
// returning a std::tuple of field(...) descriptors.
template <class T>
struct Reflect;

// Optional helper for the common body of a Reflect specialization.
#define OF_REFL_FIELDS(...) \
  static constexpr auto fields() { return std::tuple{__VA_ARGS__}; }

template <class T>
concept Reflected = requires { Reflect<T>::fields(); };

// Apply fn to every Field descriptor of T, in declaration order.
template <Reflected T, class Fn>
constexpr void for_each_field(Fn&& fn) {
  std::apply([&](const auto&... fs) { (fn(fs), ...); }, Reflect<T>::fields());
}

template <Reflected T>
constexpr std::size_t field_count() {
  return std::tuple_size_v<decltype(Reflect<T>::fields())>;
}

// Enum naming: specialize with `static constexpr std::pair<E, const char*>
// names[]` listing every enumerator. Drives YAML parsing/dumping and JSON.
template <class E>
struct EnumNames;

template <class E>
concept NamedEnum = std::is_enum_v<E> && requires { EnumNames<E>::names; };

template <NamedEnum E>
const char* enum_to_string(E v) {
  for (const auto& [e, n] : EnumNames<E>::names)
    if (e == v) return n;
  return "?";
}

template <NamedEnum E>
bool enum_from_string(const std::string& s, E& out) {
  for (const auto& [e, n] : EnumNames<E>::names)
    if (s == n) { out = e; return true; }
  return false;
}

template <NamedEnum E>
std::string enum_choices() {
  std::string out;
  for (const auto& [e, n] : EnumNames<E>::names) {
    if (!out.empty()) out += '|';
    out += n;
  }
  return out;
}

// --- type traits shared by the visitors ------------------------------------

template <class T>
struct is_std_vector : std::false_type {};
template <class T, class A>
struct is_std_vector<std::vector<T, A>> : std::true_type {};

template <class T>
inline constexpr bool is_std_vector_v = is_std_vector<T>::value;

}  // namespace of::refl
