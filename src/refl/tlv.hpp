// of::refl TLV wire visitors — versioned tag-length-value encode/decode.
//
// Every field serializes as `u16 tag | u32 len | payload` (little-endian).
// Decoders match fields by tag and *skip* unknown tags, so a v2 reader
// consumes a v3 frame (extra fields ignored) and a v3 reader consumes a
// v2 frame (missing fields keep defaults) — the mixed-version-fleet
// forward/backward compatibility contract (DESIGN.md §13). Tags are part
// of the wire ABI: never renumber, never reuse a retired tag.
//
// Payload shapes: bool → 1 byte; integral/enum → 8 bytes (two's
// complement); double → 8-byte IEEE bits; string → raw bytes; nested
// reflected struct → its concatenated TLV fields; array/vector →
// `u32 count` then per-element `u32 len | element payload`.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/aligned.hpp"
#include "refl/refl.hpp"

namespace of::refl::tlv {

// Same aligned buffer type as tensor::Bytes, so TLV records append onto
// wire frames directly.
using Bytes = AlignedBytes;

inline void put_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
inline void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
inline void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

// Bounds-checked little-endian reads over [p, p+len).
struct Cursor {
  const std::uint8_t* p = nullptr;
  std::size_t len = 0;

  bool u16(std::uint16_t& v) {
    if (len < 2) return false;
    v = static_cast<std::uint16_t>(p[0] | (p[1] << 8));
    p += 2;
    len -= 2;
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (len < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    p += 4;
    len -= 4;
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (len < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    p += 8;
    len -= 8;
    return true;
  }
  bool skip(std::size_t n) {
    if (len < n) return false;
    p += n;
    len -= n;
    return true;
  }
};

// --- value encode ----------------------------------------------------------

template <Reflected T>
void encode(const T& value, Bytes& out);

template <class T>
void value_encode(const T& v, Bytes& out) {
  if constexpr (std::is_same_v<T, bool>) {
    out.push_back(v ? 1 : 0);
  } else if constexpr (std::is_enum_v<T>) {
    put_u64(out, static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
  } else if constexpr (std::is_same_v<T, double>) {
    put_u64(out, std::bit_cast<std::uint64_t>(v));
  } else if constexpr (std::is_integral_v<T>) {
    put_u64(out, static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
  } else if constexpr (std::is_same_v<T, std::string>) {
    out.insert(out.end(), v.begin(), v.end());
  } else if constexpr (Reflected<T>) {
    encode(v, out);
  } else if constexpr (is_std_vector_v<T> || std::is_array_v<T>) {
    std::uint32_t count = 0;
    if constexpr (std::is_array_v<T>) {
      count = static_cast<std::uint32_t>(std::extent_v<T>);
    } else {
      count = static_cast<std::uint32_t>(v.size());
    }
    put_u32(out, count);
    for (std::uint32_t i = 0; i < count; ++i) {
      Bytes elem;
      value_encode(v[i], elem);
      put_u32(out, static_cast<std::uint32_t>(elem.size()));
      out.insert(out.end(), elem.begin(), elem.end());
    }
  } else {
    static_assert(sizeof(T) == 0, "unsupported field type for TLV reflection");
  }
}

// Concatenated `tag | len | payload` records for every field of T, in
// descriptor order.
template <Reflected T>
void encode(const T& value, Bytes& out) {
  for_each_field<T>([&](const auto& f) {
    Bytes payload;
    value_encode(value.*(f.member), payload);
    put_u16(out, f.tag);
    put_u32(out, static_cast<std::uint32_t>(payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
  });
}

// --- value decode ----------------------------------------------------------

template <Reflected T>
bool decode(T& value, const std::uint8_t* data, std::size_t len);

template <class T>
bool value_decode(T& v, const std::uint8_t* data, std::size_t len) {
  Cursor c{data, len};
  if constexpr (std::is_same_v<T, bool>) {
    if (len != 1) return false;
    v = data[0] != 0;
    return true;
  } else if constexpr (std::is_enum_v<T>) {
    std::uint64_t raw = 0;
    if (len != 8 || !c.u64(raw)) return false;
    v = static_cast<T>(static_cast<std::int64_t>(raw));
    return true;
  } else if constexpr (std::is_same_v<T, double>) {
    std::uint64_t raw = 0;
    if (len != 8 || !c.u64(raw)) return false;
    v = std::bit_cast<double>(raw);
    return true;
  } else if constexpr (std::is_integral_v<T>) {
    std::uint64_t raw = 0;
    if (len != 8 || !c.u64(raw)) return false;
    v = static_cast<T>(static_cast<std::int64_t>(raw));
    return true;
  } else if constexpr (std::is_same_v<T, std::string>) {
    v.assign(reinterpret_cast<const char*>(data), len);
    return true;
  } else if constexpr (Reflected<T>) {
    return decode(v, data, len);
  } else if constexpr (is_std_vector_v<T> || std::is_array_v<T>) {
    std::uint32_t count = 0;
    if (!c.u32(count)) return false;
    if constexpr (is_std_vector_v<T>) v.clear();
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint32_t elen = 0;
      if (!c.u32(elen) || c.len < elen) return false;
      if constexpr (std::is_array_v<T>) {
        // Fixed array: fill the slots we have, skip any extra elements a
        // newer sender appended.
        if (i < std::extent_v<T>) {
          if (!value_decode(v[i], c.p, elen)) return false;
        }
      } else {
        typename T::value_type item{};
        if (!value_decode(item, c.p, elen)) return false;
        v.push_back(std::move(item));
      }
      if (!c.skip(elen)) return false;
    }
    return true;
  } else {
    static_assert(sizeof(T) == 0, "unsupported field type for TLV reflection");
  }
}

// Decode TLV records from [data, data+len) into `value`. Fields absent
// from the stream keep their current contents; records whose tag matches
// no descriptor entry are skipped (forward compatibility). Returns false
// on a truncated or malformed stream.
template <Reflected T>
bool decode(T& value, const std::uint8_t* data, std::size_t len) {
  Cursor c{data, len};
  while (c.len > 0) {
    std::uint16_t tag = 0;
    std::uint32_t plen = 0;
    if (!c.u16(tag) || !c.u32(plen) || c.len < plen) return false;
    bool ok = true;
    bool matched = false;
    for_each_field<T>([&](const auto& f) {
      if (matched || f.tag != tag) return;
      matched = true;
      ok = value_decode(value.*(f.member), c.p, plen);
    });
    if (!ok) return false;
    c.skip(plen);
  }
  return true;
}

}  // namespace of::refl::tlv
