#include "serve/buffer.hpp"

#include "common/check.hpp"

namespace of::serve {

StalenessBuffer::StalenessBuffer(core::FramePool& pool,
                                 compression::Compressor* decompressor,
                                 std::size_t capacity, std::size_t max_staleness,
                                 double alpha)
    : sum_(pool, decompressor),
      capacity_(capacity),
      max_staleness_(max_staleness),
      alpha_(alpha) {
  OF_CHECK_MSG(capacity_ >= 1, "staleness buffer capacity must be >= 1");
}

double StalenessBuffer::weight(std::size_t staleness) const {
  return alpha_ / (1.0 + static_cast<double>(staleness));
}

StalenessBuffer::Admission StalenessBuffer::offer(tensor::ConstByteSpan frame,
                                                  std::size_t staleness) {
  if (size_ >= capacity_) {
    ++rejected_full_;
    return Admission::RejectedFull;
  }
  if (max_staleness_ > 0 && staleness > max_staleness_) {
    ++rejected_stale_;
    return Admission::RejectedStale;
  }
  sum_.add(frame, weight(staleness));
  ++size_;
  ++accepted_;
  staleness_sum_ += staleness;
  return Admission::Accepted;
}

std::vector<tensor::Tensor> StalenessBuffer::drain() {
  OF_CHECK_MSG(size_ > 0, "staleness buffer drained with no accepted updates");
  auto mean = sum_.finish_mean();
  sum_.reset();
  size_ = 0;
  ++drains_;
  return mean;
}

}  // namespace of::serve
