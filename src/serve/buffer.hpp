// StalenessBuffer — FedBuff-style bounded aggregation buffer (DESIGN.md §14).
//
// Updates are folded into a pooled StreamingSum the moment they arrive,
// each weighted by its staleness: an update trained against a model
// `s` server versions old joins the buffer as (α/(1+s))·Δ. The buffer
// drains — one aggregation step, global += mean of the buffered weighted
// updates — every `capacity` accepted updates. capacity = 1 reproduces the
// FedAsync rule w ← w + α/(1+s)·Δ exactly; larger buffers trade update
// latency for a smoother, lower-variance aggregate.
//
// Admission control is explicit: offer() rejects an update when the buffer
// already holds `capacity` entries (the caller has deferred the drain) or
// when the staleness bound is exceeded, and the serving loop answers the
// client with a retry-after control frame instead of silently folding or
// dropping. Memory stays O(model) regardless of capacity — the buffer
// holds a running weighted sum, never the individual frames.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/payload.hpp"

namespace of::serve {

class StalenessBuffer {
 public:
  enum class Admission { Accepted, RejectedStale, RejectedFull };

  // `max_staleness` 0 = unbounded. `decompressor` is the aggregator-side
  // codec instance for compressed client frames.
  StalenessBuffer(core::FramePool& pool, compression::Compressor* decompressor,
                  std::size_t capacity, std::size_t max_staleness, double alpha);

  // Staleness weight for an accepted update: α/(1+s).
  double weight(std::size_t staleness) const;

  // Fold `frame` in with weight α/(1+staleness), or reject it. Rejections
  // leave the buffer untouched.
  Admission offer(tensor::ConstByteSpan frame, std::size_t staleness);

  bool ready() const noexcept { return size_ >= capacity_; }
  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return capacity_; }

  // Mean of the buffered weighted updates, in the payload's tensor-list
  // structure; resets the buffer for the next window. size() must be > 0.
  std::vector<tensor::Tensor> drain();

  // Run counters (cumulative, not reset by drain()).
  std::uint64_t accepted_total() const noexcept { return accepted_; }
  std::uint64_t rejected_stale_total() const noexcept { return rejected_stale_; }
  std::uint64_t rejected_full_total() const noexcept { return rejected_full_; }
  std::uint64_t drains_total() const noexcept { return drains_; }
  // Staleness sum over accepted updates — mean_staleness for telemetry.
  std::uint64_t staleness_sum() const noexcept { return staleness_sum_; }
  std::size_t peak_bytes() const noexcept { return sum_.peak_bytes(); }

 private:
  core::StreamingSum sum_;
  std::size_t capacity_;
  std::size_t max_staleness_;
  double alpha_;
  std::size_t size_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_stale_ = 0;
  std::uint64_t rejected_full_ = 0;
  std::uint64_t drains_ = 0;
  std::uint64_t staleness_sum_ = 0;
};

}  // namespace of::serve
