#include "serve/registry.hpp"

namespace of::serve {

void PopulationRegistry::join(int rank, std::uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[rank];
  if (e.alive) return;  // duplicate join (e.g. protocol join after transport admit)
  e.alive = true;
  ++e.incarnations;
  e.last_seen_version = version;
  ++joins_;
}

void PopulationRegistry::leave(int rank, std::uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(rank);
  if (it == entries_.end() || !it->second.alive) return;
  it->second.alive = false;
  it->second.last_seen_version = version;
  ++leaves_;
}

void PopulationRegistry::seen(int rank, std::uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(rank);
  if (it != entries_.end()) it->second.last_seen_version = version;
}

bool PopulationRegistry::is_alive(int rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(rank);
  return it != entries_.end() && it->second.alive;
}

std::vector<int> PopulationRegistry::alive() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> out;
  for (const auto& [rank, e] : entries_)
    if (e.alive) out.push_back(rank);
  return out;
}

std::size_t PopulationRegistry::alive_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [rank, e] : entries_)
    if (e.alive) ++n;
  return n;
}

std::uint64_t PopulationRegistry::population() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& [rank, e] : entries_) n += e.incarnations;
  return n;
}

std::uint64_t PopulationRegistry::joins_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return joins_;
}

std::uint64_t PopulationRegistry::leaves_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return leaves_;
}

PopulationRegistry::Entry PopulationRegistry::entry(int rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(rank);
  return it == entries_.end() ? Entry{} : it->second;
}

}  // namespace of::serve
