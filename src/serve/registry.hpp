// PopulationRegistry — the coordinator's view of who exists (DESIGN.md §14).
//
// Cross-device fleets register devices, lose them, and see them come back;
// a returning device is a fresh registration event, which is why
// `population()` counts registrations over the run rather than distinct
// transport ranks — a 2-client federation with churn grows a population of
// 4+ identities, exactly like a device fleet's registration log.
//
// The registry is fed from two directions:
//   - protocol: explicit join/leave control frames in the serve loop
//     (works on every comm backend, drives the churn fault model), and
//   - transport: on TCP, the event loop's connection lifecycle
//     (TcpCommunicator::set_peer_lifecycle) marks a client dead the moment
//     its socket drops and alive again when it re-registers — no waiting
//     for a protocol-level timeout.
//
// Thread safety: the transport callback fires on the event-loop thread
// while the serve loop reads on the node thread, so every method locks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

namespace of::serve {

class PopulationRegistry {
 public:
  struct Entry {
    bool alive = false;
    std::uint64_t incarnations = 0;  // registrations of this rank so far
    std::uint64_t last_seen_version = 0;  // server version at last activity
  };

  // Register `rank` (initial connect or a rejoin after leave). Idempotent
  // while alive; a join after a leave counts a fresh incarnation.
  void join(int rank, std::uint64_t version);
  // Deregister `rank` (protocol leave or transport drop). Idempotent.
  void leave(int rank, std::uint64_t version);
  // Touch the last-seen version without changing liveness (an update or
  // control frame arrived from `rank`).
  void seen(int rank, std::uint64_t version);

  bool is_alive(int rank) const;
  // Currently-alive ranks, ascending.
  std::vector<int> alive() const;
  std::size_t alive_count() const;

  // Registered client identities over the run: every (rank, incarnation)
  // pair ever seen. Grows past the transport world size under churn.
  std::uint64_t population() const;
  std::uint64_t joins_total() const;
  std::uint64_t leaves_total() const;

  Entry entry(int rank) const;

 private:
  mutable std::mutex mu_;
  std::map<int, Entry> entries_;
  std::uint64_t joins_ = 0;
  std::uint64_t leaves_ = 0;
};

}  // namespace of::serve
