#include "serve/sampler.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/rng.hpp"

namespace of::serve {
namespace {

// Decorrelate (seed, window[, pick]) into one Rng seed the same way the
// participation schedule in node.cpp does.
std::uint64_t window_seed(std::uint64_t seed, std::uint64_t window) {
  return seed ^ (0x9E3779B97F4A7C15ULL * (window + 1));
}

}  // namespace

std::size_t ClientSampler::target_count(std::size_t alive, double fraction) {
  if (alive == 0) return 0;
  const auto k = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(alive)));
  return std::min(alive, std::max<std::size_t>(1, k));
}

std::vector<int> ClientSampler::sample(std::uint64_t window,
                                       const std::vector<int>& alive,
                                       double fraction) const {
  std::vector<int> ids = alive;
  std::sort(ids.begin(), ids.end());
  const std::size_t k = target_count(ids.size(), fraction);
  tensor::Rng rng(window_seed(seed_, window));
  // Partial Fisher–Yates: the first k slots are the draw.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + rng.next_below(ids.size() - i);
    std::swap(ids[i], ids[j]);
  }
  ids.resize(k);
  std::sort(ids.begin(), ids.end());
  return ids;
}

int ClientSampler::resample(std::uint64_t window, std::uint64_t pick,
                            const std::vector<int>& eligible,
                            const std::vector<int>& exclude) const {
  std::vector<int> pool;
  for (int id : eligible)
    if (std::find(exclude.begin(), exclude.end(), id) == exclude.end())
      pool.push_back(id);
  if (pool.empty()) return -1;
  std::sort(pool.begin(), pool.end());
  tensor::Rng rng(window_seed(seed_, window) ^ (0xC2B2AE3D27D4EB4FULL * (pick + 1)));
  return pool[static_cast<std::size_t>(rng.next_below(pool.size()))];
}

}  // namespace of::serve
