// ClientSampler — seeded, reproducible fraction-fit sampling (DESIGN.md §14).
//
// Each aggregation window the coordinator invites ceil(fraction × alive)
// clients. The draw is a partial Fisher–Yates over the alive set, seeded
// from (sampler seed, window index) through the same splitmix64 mixing the
// rest of the framework uses — so a run's entire invitation schedule is a
// pure function of the run seed and the registry's liveness history, and a
// fixed-seed rerun selects the identical clients (the property test in
// tests/test_serve.cpp).
//
// `resample` draws replacement picks when an invited client churns away
// mid-window: deterministic in (window, pick index), skewed away from the
// exclusion set, so replacements are reproducible too.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace of::serve {

class ClientSampler {
 public:
  explicit ClientSampler(std::uint64_t seed) : seed_(seed) {}

  // How many invitations a window issues over `alive` clients:
  // ceil(fraction × alive), at least 1 while anyone is alive.
  static std::size_t target_count(std::size_t alive, double fraction);

  // The window's invitation set: `target_count` ranks drawn without
  // replacement from `alive` (ascending input order does not matter; the
  // draw is over the sorted set). Returns fewer when alive is small.
  std::vector<int> sample(std::uint64_t window, const std::vector<int>& alive,
                          double fraction) const;

  // Replacement pick `pick` for `window`: one rank from `eligible` minus
  // `exclude`, or -1 when the difference is empty.
  int resample(std::uint64_t window, std::uint64_t pick,
               const std::vector<int>& eligible,
               const std::vector<int>& exclude) const;

  std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t seed_;
};

}  // namespace of::serve
