#include "serve/serve.hpp"

#include "common/check.hpp"
#include "refl/config_io.hpp"

namespace of::serve {

ServeConfig ServeConfig::from_config(const config::ConfigNode& node, bool strict) {
  if (node.is_null()) return ServeConfig{};
  OF_CHECK_MSG(node.is_map(), "serve config must be a map");
  ServeConfig cfg = refl::from_node<ServeConfig>(node, "serve", {}, strict);
  // Per-field bounds live in the descriptor; only cross-field constraints
  // remain hand-written.
  if (cfg.mode == Mode::Sync) {
    OF_CHECK_MSG(cfg.buffer_size == 1,
                 "serve.buffer_size only applies to mode: fedbuff");
    OF_CHECK_MSG(cfg.max_staleness == 0,
                 "serve.max_staleness only applies to mode: fedbuff");
  }
  return cfg;
}

}  // namespace of::serve
