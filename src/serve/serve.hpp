// of::serve — the async serving layer (config group `serve/`, DESIGN.md §14).
//
// The classic round loops treat the federation as "N fixed workers running
// lockstep rounds". Cross-device fleets are nothing like that: a registered
// population of M clients of which only a sampled fraction trains at any
// moment, with stragglers, dropouts, and stale updates as the steady state.
// This module turns the coordinator into a serving loop over that
// population:
//
//   registry.hpp  PopulationRegistry — who is registered, who is alive,
//                 when each client was last seen (fed by explicit
//                 join/leave control frames and, on TCP, by the event
//                 loop's connection lifecycle)
//   sampler.hpp   ClientSampler — seeded, reproducible fraction-fit
//                 sampling: invite ceil(fraction × alive) clients per
//                 aggregation window
//   buffer.hpp    StalenessBuffer — FedBuff-style bounded buffer folding
//                 staleness-weighted updates into a pooled StreamingSum,
//                 draining every `buffer_size` accepted updates
//
// `mode: sync` keeps the classic path untouched (bitwise-identical runs);
// `mode: fedbuff` replaces the per-round barrier with the buffer loop. The
// old `scheduling: {mode: async}` group maps onto fedbuff with
// fraction = 1 and buffer_size = 1, which reproduces FedAsync exactly.
#pragma once

#include <cstddef>
#include <string>

#include "config/node.hpp"
#include "refl/refl.hpp"

namespace of::serve {

enum class Mode {
  Sync,     // classic lockstep rounds; the serving layer stays out of the path
  FedBuff,  // buffered async aggregation over a sampled population
};

struct ServeConfig {
  bool enabled = false;
  Mode mode = Mode::Sync;

  // Fraction-fit sampling: each aggregation window the coordinator keeps
  // ceil(fraction × alive) clients training concurrently.
  double fraction = 1.0;

  // FedBuff buffer: aggregate (drain the buffer into the global model)
  // every `buffer_size` accepted updates. 1 reproduces FedAsync.
  std::size_t buffer_size = 1;

  // Admission control: an update whose staleness (server versions elapsed
  // since its model snapshot) exceeds this bound is rejected with a
  // retry-after control frame instead of silently folded in. 0 = unbounded.
  std::size_t max_staleness = 0;

  // Staleness-weighted mixing rate: an accepted update joins the buffer
  // with weight α/(1+s). Migrated from the old scheduling.alpha knob.
  double alpha = 0.6;

  // Total client contributions to absorb before stopping
  // (0 = global_rounds × clients). Migrated from scheduling.total_updates.
  std::size_t total_updates = 0;

  // Client-side pause after a retry-after reply before blocking on the
  // next coordinator frame, seconds.
  double retry_seconds = 0.01;

  // Parse the `serve:` config group; a null/missing node yields the
  // disabled default. Cross-field constraints (fraction bounds vs mode)
  // are checked here; per-field ranges live in the descriptor.
  static ServeConfig from_config(const config::ConfigNode& node, bool strict = true);
};

}  // namespace of::serve

template <>
struct of::refl::EnumNames<of::serve::Mode> {
  static constexpr std::pair<of::serve::Mode, const char*> names[] = {
      {of::serve::Mode::Sync, "sync"},
      {of::serve::Mode::FedBuff, "fedbuff"},
  };
};

template <>
struct of::refl::Reflect<of::serve::ServeConfig> {
  using S = of::serve::ServeConfig;
  OF_REFL_FIELDS(
      field("enabled", &S::enabled, 1),
      field("mode", &S::mode, 2),
      field("fraction", &S::fraction, 3).gt(0.0).le(1.0),
      field("buffer_size", &S::buffer_size, 4).ge(1),
      field("max_staleness", &S::max_staleness, 5),
      field("alpha", &S::alpha, 6).gt(0.0),
      field("total_updates", &S::total_updates, 7),
      field("retry_seconds", &S::retry_seconds, 8).ge(0.0))
};
